* Emitter follower driving a capacitive load: the local feedback loop
* through the base-emitter junction rings near 100 MHz (Table 2's
* "follower" class of local loop).
.model fnpn npn is=1e-16 bf=150 br=2 vaf=80 cje=0.25p vje=0.75 mje=0.33
+ cjc=0.15p vjc=0.6 mjc=0.4 tf=0.5n tr=10n
vdd_supply vdd 0 5
vbias f_src 0 2.5 ac 1
rsource f_src f_in 10k
qf vdd f_in f_out fnpn
if_load f_out 0 1m
cload f_out 0 50p
.stability all 1e5 1e10 50
.end
