* Parallel RLC tank, fn = 1 MHz, zeta = 0.2 (paper eq. 1.4 fixture)
* Z(s) = sL / (s^2 LC + sL/R + 1); the stability plot peaks at -1/zeta^2.
r1 tank 0 397.887
l1 tank 0 25.3303u
c1 tank 0 1n
.stability tank 1e4 1e8 50
.end
