* Behavioral three-pole unity-feedback loop:
*   L(s) = a1 a2 a3 / ((1 + s/p1)(1 + s/p2)(1 + s/p3))
*   a1 = 100, a2 = a3 = 10; p1 = 1 kHz, p2 = 10 kHz, p3 = 100 kHz.
* Crossover sits past the -180 degree phase crossing, so the loop is
* UNSTABLE (true phase margin about -61 degrees) and the phase wraps
* through -180 well below crossover — the fixture for the margin
* unwrap/anchor regression tests.
* Stage 1: gm1 = a1/r1 into r1 || c1 with c1 = 1/(2 pi p1 r1).
g1 0 s1 in fb 0.01
r1 s1 0 10k
c1 s1 0 15.9155n
* Stage 2: gm2 = a2/r2 into r2 || c2 with c2 = 1/(2 pi p2 r2).
g2 0 s2 s1 0 1m
r2 s2 0 10k
c2 s2 0 1.59155n
* Stage 3: gm3 = a3/r3 into r3 || c3 with c3 = 1/(2 pi p3 r3).
g3 0 out s2 0 1m
r3 out 0 10k
c3 out 0 159.155p
* Feedback wire through the loop-gain probe (plus on the driving side).
vprobe out fb 0
rfb_bleed fb 0 1e12
vin in 0 ac 1
.end
