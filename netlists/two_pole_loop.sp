* Behavioral two-pole unity-feedback loop:
*   L(s) = a1 a2 / ((1 + s/p1)(1 + s/p2)),  a1 = a2 = 100,
*   p1 = 1 kHz, p2 = 1 MHz (same values as circuits::build_two_pole_loop).
* Stage 1: gm1 = a1/r1 into r1 || c1 with c1 = 1/(2 pi p1 r1).
g1 0 s1 in fb 0.01
r1 s1 0 10k
c1 s1 0 15.9155n
* Stage 2: gm2 = a2/r2 into r2 || c2 with c2 = 1/(2 pi p2 r2).
g2 0 out s1 0 0.01
r2 out 0 10k
c2 out 0 15.9155p
* Feedback wire through the loop-gain probe (plus on the driving side).
vprobe out fb 0
rfb_bleed fb 0 1e12
vin in 0 ac 1
.end
