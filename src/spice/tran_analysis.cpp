#include "spice/tran_analysis.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <memory>

namespace acstab::spice {

namespace {

    struct step_outcome {
        bool converged = false;
        int iterations = 0;
        real worst_delta = 0.0; ///< largest unknown update of the last iteration
        bool singular = false;  ///< the companion system could not be factored
    };

    /// Shortest round-trip number text for the non-convergence ladder
    /// diagnostics (std::to_chars: locale-independent, unlike %g).
    [[nodiscard]] std::string format_value(real v)
    {
        char buf[40];
        const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
        return ec == std::errc() ? std::string(buf, ptr) : std::string("?");
    }

    /// One ladder rung's verdict: what the Newton loop did at the step
    /// size it gave up on.
    [[nodiscard]] std::string describe_outcome(const step_outcome& out)
    {
        if (out.singular)
            return "singular matrix after " + std::to_string(out.iterations)
                + " iteration(s)";
        return "no convergence in " + std::to_string(out.iterations)
            + " iteration(s) (last max update " + format_value(out.worst_delta) + ")";
    }

    /// Append one attempted-step clause to the ladder diagnostic that a
    /// final convergence_error carries.
    void log_rung(std::string& ladder, const std::string& clause)
    {
        if (!ladder.empty())
            ladder += "; ";
        ladder += clause;
    }

    /// Companion-model stamps for one Newton iterate.
    void stamp_system(circuit& c, const std::vector<real>& x, const tran_params& p,
                      real gshunt, system_builder<real>& b)
    {
        for (const auto& dev : c.devices())
            dev->stamp_tran(x, p, b);
        if (gshunt > 0.0) {
            const std::size_t nodes = c.node_count();
            for (std::size_t i = 0; i < nodes; ++i)
                b.add(static_cast<node_id>(i), static_cast<node_id>(i), gshunt);
        }
    }

    /// Newton iteration for one candidate time step. Updates x in place
    /// and reports how the loop ended so the halving ladder can react.
    /// `shared` selects the shared-symbolic solver; null runs the seed
    /// one-shot path. Both run the identical iteration and convergence
    /// test — only the linear-solve plumbing differs.
    step_outcome solve_step(circuit& c, std::vector<real>& x, const tran_params& p,
                            const tran_options& opt, tran_solver* shared)
    {
        const std::size_t n = c.unknown_count();
        const std::size_t nodes = c.node_count();
        step_outcome out;

        for (int it = 0; it < opt.max_newton; ++it) {
            std::vector<real> x_new;
            try {
                if (shared) {
                    system_builder<real>& b = shared->begin_stamp();
                    stamp_system(c, x, p, opt.dc.gshunt, b);
                    x_new = shared->solve();
                } else {
                    system_builder<real> b(n);
                    stamp_system(c, x, p, opt.dc.gshunt, b);
                    x_new = solve_system(b, opt.solver);
                }
            } catch (const numeric_error&) {
                out.singular = true;
                out.iterations = it + 1;
                return out;
            }

            bool converged = true;
            real worst = 0.0;
            for (std::size_t i = 0; i < n; ++i) {
                const real delta = std::fabs(x_new[i] - x[i]);
                const real floor_tol = i < nodes ? opt.vntol : opt.abstol;
                const real tol = opt.reltol * std::max(std::fabs(x_new[i]), std::fabs(x[i]))
                    + floor_tol;
                if (delta > tol)
                    converged = false;
                worst = std::max(worst, delta);
            }
            out.worst_delta = worst;
            out.iterations = it + 1;
            x = std::move(x_new);
            if (converged) {
                out.converged = true;
                return out;
            }
        }
        return out;
    }

} // namespace

std::vector<real> tran_result::unknown_waveform(std::size_t index) const
{
    std::vector<real> out(solution.size());
    for (std::size_t k = 0; k < solution.size(); ++k)
        out[k] = solution[k][index];
    return out;
}

tran_result transient(circuit& c, const tran_options& opt)
{
    c.finalize();
    if (!(opt.tstop > 0.0))
        throw analysis_error("transient: tstop must be positive");
    const real dt_nominal = opt.dt > 0.0 ? opt.dt : opt.tstop / 1000.0;
    const real dt_min = dt_nominal * opt.dtmin_factor;

    // Initial operating point (sources at their t=0 DC values).
    const dc_result op = dc_operating_point(c, opt.dc);
    for (const auto& dev : c.devices())
        dev->tran_begin(op.solution);

    // Breakpoints from every source waveform.
    std::vector<real> breakpoints;
    for (const auto& dev : c.devices())
        dev->collect_breakpoints(opt.tstop, breakpoints);
    std::sort(breakpoints.begin(), breakpoints.end());
    breakpoints.erase(std::unique(breakpoints.begin(), breakpoints.end()), breakpoints.end());

    // One shared symbolic factorization serves every Newton solve of the
    // run; the one-shot path re-factors from scratch per solve.
    std::unique_ptr<tran_solver> shared;
    if (opt.shared_solver && opt.solver == solver_kind::sparse)
        shared = std::make_unique<tran_solver>(c.unknown_count(), opt.tuning);

    tran_result res;
    res.time.push_back(0.0);
    res.solution.push_back(op.solution);

    std::vector<real> x = op.solution;
    real t = 0.0;
    std::size_t next_bp = 0;
    bool force_be = true; // BE kick at t = 0

    const stamp_params dc_params{.gmin = opt.dc.gmin, .continuation = false, .source_scale = 1.0};

    while (t < opt.tstop * (1.0 - 1e-12)) {
        real dt = std::min(dt_nominal, opt.tstop - t);
        // Land exactly on the next breakpoint.
        bool hits_bp = false;
        if (next_bp < breakpoints.size() && t + dt >= breakpoints[next_bp] - 1e-15) {
            dt = breakpoints[next_bp] - t;
            hits_bp = true;
            if (dt <= 0.0) {
                ++next_bp;
                continue;
            }
        }

        bool accepted = false;
        const real dt_first = dt;
        std::string ladder;
        while (!accepted) {
            tran_params p;
            p.t0 = t;
            p.t1 = t + dt;
            p.dt = dt;
            p.use_be = force_be;
            p.dc = dc_params;

            std::vector<real> x_try = x;
            const step_outcome out = solve_step(c, x_try, p, opt, shared.get());
            if (out.converged) {
                for (const auto& dev : c.devices())
                    dev->tran_accept(x_try, p);
                x = std::move(x_try);
                t = p.t1;
                res.time.push_back(t);
                res.solution.push_back(x);
                accepted = true;
                force_be = false;
            } else {
                log_rung(ladder, "dt=" + format_value(dt) + ": " + describe_outcome(out));
                dt *= 0.5;
                hits_bp = false;
                if (dt < dt_min)
                    throw convergence_error(
                        "transient: Newton failed at t = " + format_value(t)
                        + " s advancing toward t = " + format_value(t + dt_first)
                        + " s; attempted: " + ladder + "; minimum step "
                        + format_value(dt_min) + " s (dt * dtmin_factor) reached");
            }
        }
        if (hits_bp) {
            ++next_bp;
            force_be = true; // restart the integrator across the corner
        }
    }
    if (shared)
        res.solver = shared->stats();
    return res;
}

std::vector<real> node_waveform(const circuit& c, const tran_result& res,
                                const std::string& node_name)
{
    const auto id = c.find_node(node_name);
    if (!id)
        throw analysis_error("unknown node '" + node_name + "'");
    if (*id < 0)
        return std::vector<real>(res.step_count(), 0.0);
    return res.unknown_waveform(static_cast<std::size_t>(*id));
}

} // namespace acstab::spice
