#include "spice/tran_analysis.h"

#include <algorithm>
#include <cmath>

namespace acstab::spice {

namespace {

    /// Newton iteration for one candidate time step. Returns true on
    /// convergence and leaves the solution in x.
    bool solve_step(circuit& c, std::vector<real>& x, const tran_params& p,
                    const tran_options& opt)
    {
        const std::size_t n = c.unknown_count();
        const std::size_t nodes = c.node_count();

        for (int it = 0; it < opt.max_newton; ++it) {
            system_builder<real> b(n);
            for (const auto& dev : c.devices())
                dev->stamp_tran(x, p, b);
            if (opt.dc.gshunt > 0.0)
                for (std::size_t i = 0; i < nodes; ++i)
                    b.add(static_cast<node_id>(i), static_cast<node_id>(i), opt.dc.gshunt);

            std::vector<real> x_new;
            try {
                x_new = solve_system(b, opt.solver);
            } catch (const numeric_error&) {
                return false;
            }

            bool converged = true;
            for (std::size_t i = 0; i < n; ++i) {
                const real delta = std::fabs(x_new[i] - x[i]);
                const real floor_tol = i < nodes ? opt.vntol : opt.abstol;
                const real tol = opt.reltol * std::max(std::fabs(x_new[i]), std::fabs(x[i]))
                    + floor_tol;
                if (delta > tol) {
                    converged = false;
                    break;
                }
            }
            x = std::move(x_new);
            if (converged)
                return true;
        }
        return false;
    }

} // namespace

std::vector<real> tran_result::unknown_waveform(std::size_t index) const
{
    std::vector<real> out(solution.size());
    for (std::size_t k = 0; k < solution.size(); ++k)
        out[k] = solution[k][index];
    return out;
}

tran_result transient(circuit& c, const tran_options& opt)
{
    c.finalize();
    if (!(opt.tstop > 0.0))
        throw analysis_error("transient: tstop must be positive");
    const real dt_nominal = opt.dt > 0.0 ? opt.dt : opt.tstop / 1000.0;
    const real dt_min = dt_nominal * opt.dtmin_factor;

    // Initial operating point (sources at their t=0 DC values).
    const dc_result op = dc_operating_point(c, opt.dc);
    for (const auto& dev : c.devices())
        dev->tran_begin(op.solution);

    // Breakpoints from every source waveform.
    std::vector<real> breakpoints;
    for (const auto& dev : c.devices())
        dev->collect_breakpoints(opt.tstop, breakpoints);
    std::sort(breakpoints.begin(), breakpoints.end());
    breakpoints.erase(std::unique(breakpoints.begin(), breakpoints.end()), breakpoints.end());

    tran_result res;
    res.time.push_back(0.0);
    res.solution.push_back(op.solution);

    std::vector<real> x = op.solution;
    real t = 0.0;
    std::size_t next_bp = 0;
    bool force_be = true; // BE kick at t = 0

    const stamp_params dc_params{.gmin = opt.dc.gmin, .continuation = false, .source_scale = 1.0};

    while (t < opt.tstop * (1.0 - 1e-12)) {
        real dt = std::min(dt_nominal, opt.tstop - t);
        // Land exactly on the next breakpoint.
        bool hits_bp = false;
        if (next_bp < breakpoints.size() && t + dt >= breakpoints[next_bp] - 1e-15) {
            dt = breakpoints[next_bp] - t;
            hits_bp = true;
            if (dt <= 0.0) {
                ++next_bp;
                continue;
            }
        }

        bool accepted = false;
        while (!accepted) {
            tran_params p;
            p.t0 = t;
            p.t1 = t + dt;
            p.dt = dt;
            p.use_be = force_be;
            p.dc = dc_params;

            std::vector<real> x_try = x;
            if (solve_step(c, x_try, p, opt)) {
                for (const auto& dev : c.devices())
                    dev->tran_accept(x_try, p);
                x = std::move(x_try);
                t = p.t1;
                res.time.push_back(t);
                res.solution.push_back(x);
                accepted = true;
                force_be = false;
            } else {
                dt *= 0.5;
                hits_bp = false;
                if (dt < dt_min)
                    throw convergence_error("transient: Newton failed at t = "
                                            + std::to_string(t) + " even at minimum step");
            }
        }
        if (hits_bp) {
            ++next_bp;
            force_be = true; // restart the integrator across the corner
        }
    }
    return res;
}

std::vector<real> node_waveform(const circuit& c, const tran_result& res,
                                const std::string& node_name)
{
    const auto id = c.find_node(node_name);
    if (!id)
        throw analysis_error("unknown node '" + node_name + "'");
    if (*id < 0)
        return std::vector<real>(res.step_count(), 0.0);
    return res.unknown_waveform(static_cast<std::size_t>(*id));
}

} // namespace acstab::spice
