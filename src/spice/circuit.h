// Circuit database: node registry plus owned device instances.
//
// Nodes are created on first use by name; ground is spelled "0" or "gnd".
// After mutation, finalize() assigns MNA unknown indices: node voltages
// first, then one slot per device branch current (voltage sources,
// inductors, ...).
#ifndef ACSTAB_SPICE_CIRCUIT_H
#define ACSTAB_SPICE_CIRCUIT_H

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/error.h"
#include "spice/device.h"

namespace acstab::spice {

class circuit {
public:
    circuit() = default;
    circuit(const circuit&) = delete;
    circuit& operator=(const circuit&) = delete;
    circuit(circuit&&) = default;
    circuit& operator=(circuit&&) = default;

    /// Find or create a node by name; "0", "gnd" and "GND" map to ground.
    [[nodiscard]] node_id node(std::string_view name);

    /// Find an existing node; nullopt when the name is unknown.
    [[nodiscard]] std::optional<node_id> find_node(std::string_view name) const;

    /// Name of a node id (ground reports "0").
    [[nodiscard]] const std::string& node_name(node_id n) const;

    /// Number of non-ground nodes.
    [[nodiscard]] std::size_t node_count() const noexcept { return node_names_.size(); }

    /// Construct a device in place; returns a stable reference.
    template <class D, class... Args>
    D& add(Args&&... args)
    {
        auto dev = std::make_unique<D>(std::forward<Args>(args)...);
        D& ref = *dev;
        add_device(std::move(dev));
        return ref;
    }

    device& add_device(std::unique_ptr<device> dev);

    /// Remove a device by name; throws circuit_error when absent.
    void remove_device(std::string_view name);

    [[nodiscard]] device* find_device(std::string_view name) noexcept;
    [[nodiscard]] const device* find_device(std::string_view name) const noexcept;

    [[nodiscard]] const std::vector<std::unique_ptr<device>>& devices() const noexcept
    {
        return devices_;
    }

    /// Assign branch indices and resolve device cross-references.
    /// Idempotent; called automatically by the analyses.
    void finalize();

    /// Total MNA unknowns (node voltages + branch currents). Requires a
    /// finalized circuit.
    [[nodiscard]] std::size_t unknown_count() const;

    [[nodiscard]] std::size_t branch_count() const;

    /// Nodes whose voltage is fixed by a chain of ideal voltage sources to
    /// ground; the stability sweep skips them. Requires finalized circuit.
    [[nodiscard]] std::vector<bool> source_forced_nodes() const;

private:
    std::vector<std::string> node_names_;
    std::unordered_map<std::string, node_id> node_index_;
    std::vector<std::unique_ptr<device>> devices_;
    std::unordered_map<std::string, std::size_t> device_index_;
    std::size_t branch_count_ = 0;
    bool finalized_ = false;
};

} // namespace acstab::spice

#endif // ACSTAB_SPICE_CIRCUIT_H
