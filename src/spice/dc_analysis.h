// DC operating-point analysis: damped Newton–Raphson with device-level
// junction limiting, falling back to gmin stepping and then source
// stepping (the standard SPICE continuation ladder).
#ifndef ACSTAB_SPICE_DC_ANALYSIS_H
#define ACSTAB_SPICE_DC_ANALYSIS_H

#include <string>
#include <vector>

#include "spice/circuit.h"
#include "spice/mna.h"

namespace acstab::spice {

struct dc_options {
    real gmin = 1e-12;
    /// Node-to-ground shunt added to every node row; 0 disables. When the
    /// plain solve hits a singular matrix (floating node), the analysis
    /// retries once with `gshunt_retry` if that is positive.
    real gshunt = 0.0;
    real gshunt_retry = 1e-9;
    int max_iterations = 200;
    real reltol = 1e-3;
    real vntol = 1e-6;
    real abstol = 1e-12;
    /// Largest Newton update applied per unknown per iteration [V or A].
    real max_step = 2.0;
    solver_kind solver = solver_kind::sparse;
    bool allow_gmin_stepping = true;
    bool allow_source_stepping = true;
};

struct dc_result {
    std::vector<real> solution; ///< node voltages then branch currents
    int iterations = 0;         ///< Newton iterations of the final solve
    bool used_gmin_stepping = false;
    bool used_source_stepping = false;
    bool used_gshunt = false;
};

/// Compute the DC operating point. Throws convergence_error if every
/// continuation strategy fails.
[[nodiscard]] dc_result dc_operating_point(circuit& c, const dc_options& opt = {});

/// Voltage of a named node in a solution vector.
[[nodiscard]] real node_voltage(const circuit& c, const std::vector<real>& solution,
                                const std::string& node_name);

} // namespace acstab::spice

#endif // ACSTAB_SPICE_DC_ANALYSIS_H
