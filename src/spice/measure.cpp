#include "spice/measure.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "numeric/interpolation.h"

namespace acstab::spice {

real db20(real magnitude)
{
    return 20.0 * std::log10(magnitude);
}

std::vector<real> db20(std::span<const cplx> h)
{
    std::vector<real> out(h.size());
    for (std::size_t i = 0; i < h.size(); ++i)
        out[i] = 20.0 * std::log10(std::abs(h[i]));
    return out;
}

std::vector<real> phase_deg_unwrapped(std::span<const cplx> h)
{
    std::vector<real> out(h.size());
    real offset = 0.0;
    real prev = 0.0;
    for (std::size_t i = 0; i < h.size(); ++i) {
        real ph = std::arg(h[i]) * 180.0 / pi;
        if (i > 0) {
            while (ph + offset - prev > 180.0)
                offset -= 360.0;
            while (ph + offset - prev < -180.0)
                offset += 360.0;
        }
        out[i] = ph + offset;
        prev = out[i];
    }
    return out;
}

real overshoot_percent(std::span<const real> y, real initial, real final_value)
{
    if (y.empty())
        throw analysis_error("overshoot: empty waveform");
    const real swing = final_value - initial;
    if (swing == 0.0)
        throw analysis_error("overshoot: zero step swing");
    real peak = swing > 0.0 ? *std::max_element(y.begin(), y.end())
                            : *std::min_element(y.begin(), y.end());
    return 100.0 * (peak - final_value) / swing;
}

real final_value(std::span<const real> y, real tail_fraction)
{
    if (y.empty())
        throw analysis_error("final_value: empty waveform");
    const std::size_t tail = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<real>(y.size()) * tail_fraction));
    real acc = 0.0;
    for (std::size_t i = y.size() - tail; i < y.size(); ++i)
        acc += y[i];
    return acc / static_cast<real>(tail);
}

real settling_time(std::span<const real> t, std::span<const real> y, real final_value,
                   real band_fraction)
{
    return settling_time_abs(t, y, final_value, std::fabs(final_value) * band_fraction);
}

real settling_time_abs(std::span<const real> t, std::span<const real> y, real final_value,
                       real band_abs)
{
    if (t.size() != y.size() || t.empty())
        throw analysis_error("settling_time: bad inputs");
    std::size_t settled_from = t.size();
    for (std::size_t i = t.size(); i-- > 0;) {
        if (std::fabs(y[i] - final_value) > band_abs)
            break;
        settled_from = i;
    }
    return settled_from < t.size() ? t[settled_from] : t.back();
}

real ringing_frequency(std::span<const real> t, std::span<const real> y, real final_value)
{
    if (t.size() != y.size() || t.size() < 3)
        return 0.0;
    std::vector<real> crossings;
    for (std::size_t i = 1; i < y.size(); ++i) {
        const real a = y[i - 1] - final_value;
        const real b = y[i] - final_value;
        if ((a < 0.0) != (b < 0.0) && a != b) {
            const real f = a / (a - b);
            crossings.push_back(t[i - 1] + f * (t[i] - t[i - 1]));
        }
    }
    if (crossings.size() < 3)
        return 0.0;
    // Mean half-period between consecutive crossings.
    const real span = crossings.back() - crossings.front();
    const real half_periods = static_cast<real>(crossings.size() - 1);
    if (span <= 0.0)
        return 0.0;
    return half_periods / (2.0 * span);
}

namespace {

    /// Map an angle in degrees into (-180, 180].
    [[nodiscard]] real wrap_half_turn_deg(real deg)
    {
        deg = std::fmod(deg + 180.0, 360.0);
        if (deg <= 0.0)
            deg += 360.0;
        return deg - 180.0;
    }

    /// First crossing of `phase` (unwrapped, degrees) through any level of
    /// the form -180 + 360 k. The unwrap anchors at the first sample's
    /// principal-value argument, so a sweep window that opens after the
    /// phase has already wrapped carries a 360-degree anchor offset; the
    /// physically meaningful "phase reaches -180" events are crossings of
    /// the whole level family, not of the literal -180.
    [[nodiscard]] bool find_phase_crossing(std::span<const real> x,
                                           std::span<const real> phase, real& x_cross)
    {
        const auto level_index = [](real deg) { return (deg + 180.0) / 360.0; };
        for (std::size_t i = 1; i < x.size(); ++i) {
            const real a = phase[i - 1];
            const real b = phase[i];
            const real ka = level_index(a);
            const real kb = level_index(b);
            // Integers k with -180 + 360 k strictly between a and b (or an
            // exact hit on a); the first one in sweep direction wins.
            const real k = a <= b ? std::ceil(ka) : std::floor(ka);
            if ((a <= b && k > kb) || (a > b && k < kb))
                continue;
            const real level = -180.0 + 360.0 * k;
            if (a == level) {
                x_cross = x[i - 1];
                return true;
            }
            x_cross = x[i - 1] + (level - a) / (b - a) * (x[i] - x[i - 1]);
            return true;
        }
        return false;
    }

} // namespace

bode_margins margins(std::span<const real> freq_hz, std::span<const cplx> loop_gain)
{
    if (freq_hz.size() != loop_gain.size() || freq_hz.size() < 2)
        throw analysis_error("margins: bad inputs");

    const std::vector<real> gain_db = db20(loop_gain);
    const std::vector<real> phase = phase_deg_unwrapped(loop_gain);
    // Work on a log-frequency axis for interpolation quality.
    std::vector<real> logf(freq_hz.size());
    for (std::size_t i = 0; i < freq_hz.size(); ++i)
        logf[i] = std::log10(freq_hz[i]);

    bode_margins m;
    real x = 0.0;
    if (numeric::find_crossing(logf, gain_db, 0.0, x)) {
        m.has_unity_crossing = true;
        m.unity_freq_hz = std::pow(10.0, x);
        const real ph = numeric::interp_linear(logf, phase, x);
        // The unwrapped phase is only determined modulo 360 (the anchor is
        // the first sample's principal value, which loses any wrap through
        // +-180 that happened below the sweep window); report the margin
        // in the canonical (-180, 180] band.
        m.phase_margin_deg = wrap_half_turn_deg(180.0 + ph);
    }
    if (find_phase_crossing(logf, phase, x)) {
        m.has_phase_crossing = true;
        m.phase_cross_freq_hz = std::pow(10.0, x);
        m.gain_margin_db = -numeric::interp_linear(logf, gain_db, x);
    }
    return m;
}

} // namespace acstab::spice
