// Independent-source waveform descriptors: DC, AC small-signal spec, and
// the time-domain shapes (PULSE, SIN, PWL, EXP) used by transient analysis.
#ifndef ACSTAB_SPICE_WAVEFORM_SPEC_H
#define ACSTAB_SPICE_WAVEFORM_SPEC_H

#include <vector>

#include "common/types.h"

namespace acstab::spice {

enum class waveform_kind { dc, pulse, sine, pwl, exponential };

/// Full source specification. `dc` is the operating-point value; `ac_mag`
/// / `ac_phase_deg` form the small-signal stimulus; the transient shape is
/// selected by `kind`.
struct waveform_spec {
    waveform_kind kind = waveform_kind::dc;

    real dc = 0.0;
    real ac_mag = 0.0;
    real ac_phase_deg = 0.0;

    // PULSE(v1 v2 td tr tf pw per)
    real v1 = 0.0;
    real v2 = 0.0;
    real delay = 0.0;
    real rise = 0.0;
    real fall = 0.0;
    real width = 0.0;
    real period = 0.0;

    // SIN(vo va freq td theta)
    real offset = 0.0;
    real amplitude = 0.0;
    real frequency = 0.0;
    real damping = 0.0;

    // EXP(v1 v2 td1 tau1 td2 tau2)
    real tau1 = 0.0;
    real delay2 = 0.0;
    real tau2 = 0.0;

    // PWL(t0 v0 t1 v1 ...)
    std::vector<real> pwl_time;
    std::vector<real> pwl_value;

    [[nodiscard]] static waveform_spec make_dc(real value)
    {
        waveform_spec w;
        w.dc = value;
        return w;
    }

    [[nodiscard]] static waveform_spec make_ac(real dc_value, real mag, real phase_deg = 0.0)
    {
        waveform_spec w;
        w.dc = dc_value;
        w.ac_mag = mag;
        w.ac_phase_deg = phase_deg;
        return w;
    }

    [[nodiscard]] static waveform_spec make_pulse(real v1, real v2, real td, real tr, real tf,
                                                  real pw, real per)
    {
        waveform_spec w;
        w.kind = waveform_kind::pulse;
        w.dc = v1;
        w.v1 = v1;
        w.v2 = v2;
        w.delay = td;
        w.rise = tr;
        w.fall = tf;
        w.width = pw;
        w.period = per;
        return w;
    }

    [[nodiscard]] static waveform_spec make_step(real v1, real v2, real td, real tr)
    {
        // A step is a pulse that never returns.
        return make_pulse(v1, v2, td, tr, tr, 1e30, 1e30);
    }

    [[nodiscard]] static waveform_spec make_sine(real vo, real va, real freq, real td = 0.0,
                                                 real theta = 0.0)
    {
        waveform_spec w;
        w.kind = waveform_kind::sine;
        w.dc = vo;
        w.offset = vo;
        w.amplitude = va;
        w.frequency = freq;
        w.delay = td;
        w.damping = theta;
        return w;
    }

    [[nodiscard]] static waveform_spec make_pwl(std::vector<real> times, std::vector<real> values);

    /// Instantaneous value at time t (transient analyses).
    [[nodiscard]] real value_at(real t) const;

    /// Times at which the waveform has slope discontinuities within
    /// [0, tstop]; the transient engine aligns steps with these.
    [[nodiscard]] std::vector<real> breakpoints(real tstop) const;

    /// Complex AC stimulus phasor.
    [[nodiscard]] cplx ac_phasor() const;
};

} // namespace acstab::spice

#endif // ACSTAB_SPICE_WAVEFORM_SPEC_H
