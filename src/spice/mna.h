// Solve dispatch for assembled MNA systems: dense reference LU or sparse
// Gilbert–Peierls (the default). Shared by every analysis.
//
// These one-shot helpers compress and factor from scratch per call. Loops
// that solve the same pattern repeatedly should not use them: frequency
// sweeps go through engine::sweep_engine and transient Newton solves
// through spice::tran_solver, both of which share one symbolic
// factorization and refactor numerically in place.
#ifndef ACSTAB_SPICE_MNA_H
#define ACSTAB_SPICE_MNA_H

#include <optional>
#include <vector>

#include "numeric/lu.h"
#include "numeric/sparse_lu.h"
#include "spice/device.h"

namespace acstab::spice {

enum class solver_kind { dense, sparse };

/// A factored MNA matrix reusable across many right-hand sides (the
/// all-nodes stability sweep factors once per frequency and back-solves
/// once per node).
template <class T>
class factored_system {
public:
    factored_system(const system_builder<T>& b, solver_kind kind)
    {
        if (kind == solver_kind::dense)
            dense_.emplace(b.matrix().to_dense());
        else
            sparse_.emplace(numeric::csc_matrix<T>(b.matrix()));
    }

    [[nodiscard]] std::vector<T> solve(const std::vector<T>& rhs) const
    {
        if (dense_)
            return dense_->solve(rhs);
        return sparse_->solve(rhs);
    }

private:
    std::optional<numeric::lu_decomposition<T>> dense_;
    std::optional<numeric::sparse_lu<T>> sparse_;
};

/// Factor the builder's matrix and solve against its right-hand side.
/// Throws numeric_error on singular systems.
template <class T>
[[nodiscard]] std::vector<T> solve_system(const system_builder<T>& b, solver_kind kind)
{
    return factored_system<T>(b, kind).solve(b.rhs());
}

} // namespace acstab::spice

#endif // ACSTAB_SPICE_MNA_H
