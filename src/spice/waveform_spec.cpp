#include "spice/waveform_spec.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace acstab::spice {

waveform_spec waveform_spec::make_pwl(std::vector<real> times, std::vector<real> values)
{
    if (times.size() != values.size() || times.empty())
        throw circuit_error("pwl: need matching non-empty time/value lists");
    for (std::size_t i = 1; i < times.size(); ++i)
        if (!(times[i] > times[i - 1]))
            throw circuit_error("pwl: times must be strictly increasing");
    waveform_spec w;
    w.kind = waveform_kind::pwl;
    w.dc = values.front();
    w.pwl_time = std::move(times);
    w.pwl_value = std::move(values);
    return w;
}

real waveform_spec::value_at(real t) const
{
    switch (kind) {
    case waveform_kind::dc:
        return dc;

    case waveform_kind::pulse: {
        if (t < delay)
            return v1;
        real tau = t - delay;
        if (period > 0.0 && period < 1e30)
            tau = std::fmod(tau, period);
        if (rise > 0.0 && tau < rise)
            return v1 + (v2 - v1) * tau / rise;
        if (tau < rise + width)
            return v2;
        if (fall > 0.0 && tau < rise + width + fall)
            return v2 + (v1 - v2) * (tau - rise - width) / fall;
        if (rise == 0.0 && tau < width)
            return v2;
        return (tau <= rise + width) ? v2 : v1;
    }

    case waveform_kind::sine: {
        if (t < delay)
            return offset;
        const real tau = t - delay;
        const real decay = damping > 0.0 ? std::exp(-tau * damping) : 1.0;
        return offset + amplitude * decay * std::sin(two_pi * frequency * tau);
    }

    case waveform_kind::pwl: {
        if (t <= pwl_time.front())
            return pwl_value.front();
        if (t >= pwl_time.back())
            return pwl_value.back();
        const auto it = std::upper_bound(pwl_time.begin(), pwl_time.end(), t);
        const std::size_t hi = static_cast<std::size_t>(it - pwl_time.begin());
        const std::size_t lo = hi - 1;
        const real f = (t - pwl_time[lo]) / (pwl_time[hi] - pwl_time[lo]);
        return pwl_value[lo] + f * (pwl_value[hi] - pwl_value[lo]);
    }

    case waveform_kind::exponential: {
        real v = v1;
        if (t >= delay)
            v += (v2 - v1) * (1.0 - std::exp(-(t - delay) / std::max(tau1, 1e-18)));
        if (t >= delay2)
            v += (v1 - v2) * (1.0 - std::exp(-(t - delay2) / std::max(tau2, 1e-18)));
        return v;
    }
    }
    return dc;
}

std::vector<real> waveform_spec::breakpoints(real tstop) const
{
    std::vector<real> bp;
    const auto add = [&bp, tstop](real t) {
        if (t > 0.0 && t < tstop)
            bp.push_back(t);
    };
    switch (kind) {
    case waveform_kind::dc:
    case waveform_kind::sine:
        break;
    case waveform_kind::pulse: {
        const real per = (period > 0.0 && period < 1e30) ? period : 2.0 * tstop + 1.0;
        for (real t0 = delay; t0 < tstop; t0 += per) {
            add(t0);
            add(t0 + rise);
            add(t0 + rise + width);
            add(t0 + rise + width + fall);
            if (per > tstop)
                break;
        }
        break;
    }
    case waveform_kind::pwl:
        for (const real t : pwl_time)
            add(t);
        break;
    case waveform_kind::exponential:
        add(delay);
        add(delay2);
        break;
    }
    std::sort(bp.begin(), bp.end());
    bp.erase(std::unique(bp.begin(), bp.end()), bp.end());
    return bp;
}

cplx waveform_spec::ac_phasor() const
{
    const real phase = ac_phase_deg * pi / 180.0;
    return {ac_mag * std::cos(phase), ac_mag * std::sin(phase)};
}

} // namespace acstab::spice
