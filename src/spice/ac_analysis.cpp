#include "spice/ac_analysis.h"

#include <cmath>

namespace acstab::spice {

std::vector<cplx> ac_result::unknown_response(std::size_t index) const
{
    std::vector<cplx> out(solution.size());
    for (std::size_t k = 0; k < solution.size(); ++k)
        out[k] = solution[k][index];
    return out;
}

std::vector<real> ac_result::unknown_magnitude(std::size_t index) const
{
    std::vector<real> out(solution.size());
    for (std::size_t k = 0; k < solution.size(); ++k)
        out[k] = std::abs(solution[k][index]);
    return out;
}

ac_result ac_sweep(circuit& c, const std::vector<real>& freqs_hz, const std::vector<real>& op,
                   const ac_options& opt)
{
    c.finalize();
    if (freqs_hz.empty())
        throw analysis_error("ac sweep: empty frequency list");
    if (op.size() != c.unknown_count())
        throw analysis_error("ac sweep: operating point has wrong size");

    const std::size_t n = c.unknown_count();
    const std::size_t nodes = c.node_count();

    ac_result res;
    res.freq_hz = freqs_hz;
    res.solution.reserve(freqs_hz.size());

    for (const real f : freqs_hz) {
        if (!(f > 0.0))
            throw analysis_error("ac sweep: frequencies must be positive");
        ac_params p;
        p.omega = to_omega(f);
        p.gmin = opt.gmin;
        p.exclusive_source = opt.exclusive_source;

        system_builder<cplx> b(n);
        for (const auto& dev : c.devices())
            dev->stamp_ac(op, p, b);
        if (opt.gshunt > 0.0)
            for (std::size_t i = 0; i < nodes; ++i)
                b.add(static_cast<node_id>(i), static_cast<node_id>(i), cplx{opt.gshunt, 0.0});

        res.solution.push_back(solve_system(b, opt.solver));
    }
    return res;
}

std::vector<cplx> node_response(const circuit& c, const ac_result& res,
                                const std::string& node_name)
{
    const auto id = c.find_node(node_name);
    if (!id)
        throw analysis_error("unknown node '" + node_name + "'");
    if (*id < 0)
        return std::vector<cplx>(res.point_count(), cplx{0.0, 0.0});
    return res.unknown_response(static_cast<std::size_t>(*id));
}

} // namespace acstab::spice
