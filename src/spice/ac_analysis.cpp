#include "spice/ac_analysis.h"

#include <cmath>

#include "engine/adaptive_sweep.h"
#include "engine/linearized_snapshot.h"
#include "engine/sweep_engine.h"

namespace acstab::spice {

std::vector<cplx> ac_result::unknown_response(std::size_t index) const
{
    std::vector<cplx> out(solution.size());
    for (std::size_t k = 0; k < solution.size(); ++k)
        out[k] = solution[k][index];
    return out;
}

std::vector<real> ac_result::unknown_magnitude(std::size_t index) const
{
    std::vector<real> out(solution.size());
    for (std::size_t k = 0; k < solution.size(); ++k)
        out[k] = std::abs(solution[k][index]);
    return out;
}

ac_result ac_sweep(circuit& c, const std::vector<real>& freqs_hz, const std::vector<real>& op,
                   const ac_options& opt)
{
    c.finalize();
    if (freqs_hz.empty())
        throw analysis_error("ac sweep: empty frequency list");
    for (const real f : freqs_hz)
        if (!(f > 0.0))
            throw analysis_error("ac sweep: frequencies must be positive");
    if (op.size() != c.unknown_count())
        throw analysis_error("ac sweep: operating point has wrong size");

    engine::snapshot_options sopt;
    sopt.gmin = opt.gmin;
    sopt.gshunt = opt.gshunt;
    sopt.exclusive_source = opt.exclusive_source;
    const engine::linearized_snapshot snap(c, op, sopt);

    ac_result res;
    if (opt.adaptive) {
        // One adaptive channel per MNA unknown: the shared-support
        // rational model then reconstructs the whole solution vector on
        // the dense output grid, not just a pre-selected probe node.
        engine::adaptive_sweep_options aopt = engine::adaptive_options_for_grid(freqs_hz);
        aopt.anchors_per_decade = opt.anchors_per_decade;
        aopt.fit_tol = opt.fit_tol;
        aopt.engine.threads = opt.threads;
        aopt.engine.solver = opt.solver;
        aopt.engine.tuning = opt.tuning;
        std::vector<engine::adaptive_channel> channels(snap.size());
        for (std::size_t k = 0; k < snap.size(); ++k)
            channels[k] = {0, k};
        const engine::adaptive_sweep_result ares
            = engine::adaptive_sweep(aopt).run(snap, {snap.stimulus_rhs()}, channels);
        res.freq_hz = ares.freq_hz;
        res.factorizations = ares.factorizations;
        res.solution.assign(ares.freq_hz.size(), std::vector<cplx>(snap.size()));
        for (std::size_t k = 0; k < snap.size(); ++k)
            for (std::size_t fi = 0; fi < ares.freq_hz.size(); ++fi)
                res.solution[fi][k] = ares.values[k][fi];
        return res;
    }

    engine::sweep_engine_options eopt;
    eopt.threads = opt.threads;
    eopt.solver = opt.solver;
    eopt.tuning = opt.tuning;
    const engine::sweep_engine eng(eopt);

    res.freq_hz = freqs_hz;
    res.factorizations = freqs_hz.size();
    res.solution.resize(freqs_hz.size());
    eng.run(snap, freqs_hz, {snap.stimulus_rhs()},
            [&res](std::size_t fi, std::size_t, std::span<const cplx> sol) {
                res.solution[fi].assign(sol.begin(), sol.end());
            });
    return res;
}

std::vector<cplx> node_response(const circuit& c, const ac_result& res,
                                const std::string& node_name)
{
    const auto id = c.find_node(node_name);
    if (!id)
        throw analysis_error("unknown node '" + node_name + "'");
    if (*id < 0)
        return std::vector<cplx>(res.point_count(), cplx{0.0, 0.0});
    return res.unknown_response(static_cast<std::size_t>(*id));
}

} // namespace acstab::spice
