// Shared pn-junction helpers: Newton step limiting (SPICE3 pnjlim) and
// depletion capacitance with the standard forward-bias linearization.
#ifndef ACSTAB_SPICE_DEVICES_JUNCTION_H
#define ACSTAB_SPICE_DEVICES_JUNCTION_H

#include <cmath>

#include "common/types.h"

namespace acstab::spice {

/// Thermal voltage kT/q at a temperature in Celsius.
[[nodiscard]] inline real thermal_voltage(real temp_celsius = 27.0) noexcept
{
    constexpr real k_over_q = 8.617333262e-5; // V/K
    return k_over_q * (temp_celsius + 273.15);
}

/// Critical voltage above which junction limiting engages.
[[nodiscard]] inline real junction_vcrit(real sat_current, real n_vt) noexcept
{
    return n_vt * std::log(n_vt / (1.4142135623730951 * sat_current));
}

/// SPICE3 pnjlim: clamp the Newton update of a junction voltage so the
/// exponential cannot overflow or oscillate.
[[nodiscard]] inline real pnjlim(real v_new, real v_old, real n_vt, real vcrit) noexcept
{
    if (v_new > vcrit && std::fabs(v_new - v_old) > 2.0 * n_vt) {
        if (v_old > 0.0) {
            const real arg = 1.0 + (v_new - v_old) / n_vt;
            if (arg > 0.0)
                return v_old + n_vt * std::log(arg);
            return vcrit;
        }
        return n_vt * std::log(v_new / n_vt);
    }
    return v_new;
}

/// Junction (depletion) capacitance cj0/(1 - v/vj)^m, linearized above
/// fc*vj the way Berkeley SPICE does to avoid the singularity at v = vj.
[[nodiscard]] inline real junction_capacitance(real v, real cj0, real vj, real m,
                                               real fc = 0.5) noexcept
{
    if (cj0 <= 0.0)
        return 0.0;
    const real fcv = fc * vj;
    if (v < fcv)
        return cj0 / std::pow(1.0 - v / vj, m);
    const real f2 = std::pow(1.0 - fc, -m);
    return cj0 * f2 * (1.0 + m * (v - fcv) / (vj * (1.0 - fc)));
}

/// Saturation-current exponential with linear continuation above the
/// overflow guard, returning both current and conductance.
struct junction_current {
    real i = 0.0;
    real g = 0.0;
};

[[nodiscard]] inline junction_current junction_exp(real v, real isat, real n_vt) noexcept
{
    constexpr real max_arg = 80.0; // exp(80) ~ 5.5e34, still finite in double
    const real arg = v / n_vt;
    junction_current out;
    if (arg > max_arg) {
        const real e = std::exp(max_arg);
        out.g = isat * e / n_vt;
        out.i = isat * (e - 1.0) + out.g * (v - max_arg * n_vt);
    } else if (arg < -max_arg) {
        out.i = -isat;
        out.g = 0.0;
    } else {
        const real e = std::exp(arg);
        out.i = isat * (e - 1.0);
        out.g = isat * e / n_vt;
    }
    return out;
}

} // namespace acstab::spice

#endif // ACSTAB_SPICE_DEVICES_JUNCTION_H
