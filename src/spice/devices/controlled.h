// Linear controlled sources: VCVS (E), VCCS (G), CCCS (F), CCVS (H).
// Current-controlled elements reference the branch current of a named
// voltage source, resolved during circuit::finalize via bind().
#ifndef ACSTAB_SPICE_DEVICES_CONTROLLED_H
#define ACSTAB_SPICE_DEVICES_CONTROLLED_H

#include "spice/device.h"

namespace acstab::spice {

/// Voltage-controlled voltage source: v(p,m) = gain * v(cp,cm).
class vcvs final : public device {
public:
    vcvs(std::string name, node_id p, node_id m, node_id cp, node_id cm, real gain);

    [[nodiscard]] std::string_view type_name() const noexcept override { return "vcvs"; }
    [[nodiscard]] real gain() const noexcept { return gain_; }
    void set_gain(real gain) noexcept { gain_ = gain; }
    [[nodiscard]] std::size_t extra_unknown_count() const noexcept override { return 1; }
    [[nodiscard]] node_id branch() const noexcept { return extra(0); }

    void stamp_dc(const std::vector<real>& x, const stamp_params& p,
                  system_builder<real>& b) override;
    void stamp_ac(const std::vector<real>& op, const ac_params& p,
                  system_builder<cplx>& b) const override;

private:
    real gain_;
};

/// Voltage-controlled current source: i(p->m) = gm * v(cp,cm).
class vccs final : public device {
public:
    vccs(std::string name, node_id p, node_id m, node_id cp, node_id cm, real gm);

    [[nodiscard]] std::string_view type_name() const noexcept override { return "vccs"; }
    [[nodiscard]] real transconductance() const noexcept { return gm_; }
    void set_transconductance(real gm) noexcept { gm_ = gm; }

    void stamp_dc(const std::vector<real>& x, const stamp_params& p,
                  system_builder<real>& b) override;
    void stamp_ac(const std::vector<real>& op, const ac_params& p,
                  system_builder<cplx>& b) const override;

private:
    real gm_;
};

/// Current-controlled current source: i(p->m) = gain * i(ctrl vsource).
class cccs final : public device {
public:
    cccs(std::string name, node_id p, node_id m, std::string ctrl_vsource, real gain);

    [[nodiscard]] std::string_view type_name() const noexcept override { return "cccs"; }
    void bind(const circuit& c) override;

    void stamp_dc(const std::vector<real>& x, const stamp_params& p,
                  system_builder<real>& b) override;
    void stamp_ac(const std::vector<real>& op, const ac_params& p,
                  system_builder<cplx>& b) const override;

private:
    std::string ctrl_name_;
    node_id ctrl_branch_ = -1;
    real gain_;
};

/// Current-controlled voltage source: v(p,m) = r * i(ctrl vsource).
class ccvs final : public device {
public:
    ccvs(std::string name, node_id p, node_id m, std::string ctrl_vsource, real transresistance);

    [[nodiscard]] std::string_view type_name() const noexcept override { return "ccvs"; }
    [[nodiscard]] std::size_t extra_unknown_count() const noexcept override { return 1; }
    [[nodiscard]] node_id branch() const noexcept { return extra(0); }
    void bind(const circuit& c) override;

    void stamp_dc(const std::vector<real>& x, const stamp_params& p,
                  system_builder<real>& b) override;
    void stamp_ac(const std::vector<real>& op, const ac_params& p,
                  system_builder<cplx>& b) const override;

private:
    std::string ctrl_name_;
    node_id ctrl_branch_ = -1;
    real r_;
};

} // namespace acstab::spice

#endif // ACSTAB_SPICE_DEVICES_CONTROLLED_H
