// MOSFET, SPICE Level-1 (Shichman–Hodges) with body effect, channel-length
// modulation and Meyer-style piecewise gate capacitances plus constant
// junction capacitances to bulk.
//
// Node order: drain, gate, source, bulk. NMOS and PMOS share the code via
// a polarity flip; drain/source reversal is handled symmetrically.
#ifndef ACSTAB_SPICE_DEVICES_MOSFET_H
#define ACSTAB_SPICE_DEVICES_MOSFET_H

#include "spice/device.h"
#include "spice/devices/companion.h"

namespace acstab::spice {

enum class mos_polarity { nmos, pmos };

struct mosfet_model {
    mos_polarity polarity = mos_polarity::nmos;
    real vto = 0.7;     ///< threshold voltage [V] (positive for both types)
    real kp = 100e-6;   ///< transconductance parameter [A/V^2]
    real lambda = 0.02; ///< channel-length modulation [1/V]
    real gamma = 0.0;   ///< body-effect coefficient [sqrt(V)]
    real phi = 0.65;    ///< surface potential [V]
    real cox = 3.45e-3; ///< gate oxide capacitance per area [F/m^2]
    real cgso = 0.0;    ///< G-S overlap capacitance per width [F/m]
    real cgdo = 0.0;    ///< G-D overlap capacitance per width [F/m]
    real cbd = 0.0;     ///< drain-bulk junction capacitance [F] (constant)
    real cbs = 0.0;     ///< source-bulk junction capacitance [F] (constant)
};

/// Small-signal quantities at the operating point.
struct mosfet_small_signal {
    real id = 0.0;
    real gm = 0.0;
    real gds = 0.0;
    real gmb = 0.0;
    real cgs = 0.0;
    real cgd = 0.0;
    real cgb = 0.0;
    int region = 0; ///< 0 cutoff, 1 triode, 2 saturation
};

class mosfet final : public device {
public:
    mosfet(std::string name, node_id drain, node_id gate, node_id source, node_id bulk,
           mosfet_model model, real width, real length);

    [[nodiscard]] std::string_view type_name() const noexcept override { return "mosfet"; }
    [[nodiscard]] const mosfet_model& model() const noexcept { return model_; }
    [[nodiscard]] real width() const noexcept { return w_; }
    [[nodiscard]] real length() const noexcept { return l_; }

    void stamp_dc(const std::vector<real>& x, const stamp_params& p,
                  system_builder<real>& b) override;
    void stamp_ac(const std::vector<real>& op, const ac_params& p,
                  system_builder<cplx>& b) const override;

    void tran_begin(const std::vector<real>& op) override;
    void stamp_tran(const std::vector<real>& x, const tran_params& p,
                    system_builder<real>& b) override;
    void tran_accept(const std::vector<real>& x, const tran_params& p) override;

    [[nodiscard]] mosfet_small_signal small_signal(const std::vector<real>& op) const;

private:
    struct eval_result {
        real id = 0.0; ///< channel current drain->source, internal polarity
        real did_dvgs = 0.0;
        real did_dvds = 0.0;
        real did_dvbs = 0.0;
        real cgs = 0.0;
        real cgd = 0.0;
        real cgb = 0.0;
        int region = 0;
    };
    /// Channel current for vds >= 0 in internal polarity.
    [[nodiscard]] eval_result evaluate_forward(real vgs, real vds, real vbs) const noexcept;
    /// Full evaluation with drain/source reversal handling.
    [[nodiscard]] eval_result evaluate(real vgs, real vds, real vbs) const noexcept;

    mosfet_model model_;
    real w_;
    real l_;
    companion_cap cap_gs_;
    companion_cap cap_gd_;
    companion_cap cap_gb_;
    companion_cap cap_db_;
    companion_cap cap_sb_;
};

} // namespace acstab::spice

#endif // ACSTAB_SPICE_DEVICES_MOSFET_H
