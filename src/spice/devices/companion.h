// Companion-model state for one (possibly nonlinear) capacitor branch used
// by the transient integrator: backward Euler on demand, trapezoidal
// otherwise. The capacitance value is re-evaluated by the owning device at
// each Newton iterate.
//
// Pattern contract: for fixed (c > 0, dt > 0) the matrix stamp hits the
// same coordinates every Newton iterate, which is what lets the shared
// transient solver (spice/tran_solver.h) deposit into one fixed CSC
// pattern instead of compressing a fresh matrix per solve. A capacitance
// crossing zero changes the emitted stamp sequence; the solver detects
// that as a pattern-breaking event and re-runs the symbolic analysis.
#ifndef ACSTAB_SPICE_DEVICES_COMPANION_H
#define ACSTAB_SPICE_DEVICES_COMPANION_H

#include "spice/device.h"

namespace acstab::spice {

struct companion_cap {
    real v_prev = 0.0;
    real i_prev = 0.0;

    void begin(real v) noexcept
    {
        v_prev = v;
        i_prev = 0.0;
    }

    void stamp(system_builder<real>& b, node_id a, node_id k, real c,
               const tran_params& p) const
    {
        if (c <= 0.0 || p.dt <= 0.0)
            return;
        real geq = 0.0;
        real ieq = 0.0;
        if (p.use_be) {
            geq = c / p.dt;
            ieq = geq * v_prev;
        } else {
            geq = 2.0 * c / p.dt;
            ieq = geq * v_prev + i_prev;
        }
        b.conductance(a, k, geq);
        b.rhs_add(a, ieq);
        b.rhs_add(k, -ieq);
    }

    void accept(real v_new, real c, const tran_params& p) noexcept
    {
        if (c > 0.0 && p.dt > 0.0) {
            if (p.use_be)
                i_prev = c / p.dt * (v_new - v_prev);
            else
                i_prev = 2.0 * c / p.dt * (v_new - v_prev) - i_prev;
        } else {
            i_prev = 0.0;
        }
        v_prev = v_new;
    }
};

} // namespace acstab::spice

#endif // ACSTAB_SPICE_DEVICES_COMPANION_H
