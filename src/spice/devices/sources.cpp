#include "spice/devices/sources.h"

namespace acstab::spice {

// --- vsource ----------------------------------------------------------

vsource::vsource(std::string name, node_id plus, node_id minus, waveform_spec spec)
    : device(std::move(name), {plus, minus}), spec_(std::move(spec))
{
}

vsource::vsource(std::string name, node_id plus, node_id minus, real dc_volts)
    : vsource(std::move(name), plus, minus, waveform_spec::make_dc(dc_volts))
{
}

void vsource::stamp_topology(system_builder<real>& b) const
{
    const node_id br = branch();
    b.add(nodes()[0], br, 1.0);
    b.add(nodes()[1], br, -1.0);
    b.add(br, nodes()[0], 1.0);
    b.add(br, nodes()[1], -1.0);
}

void vsource::stamp_dc(const std::vector<real>&, const stamp_params& p, system_builder<real>& b)
{
    stamp_topology(b);
    b.rhs_add(branch(), spec_.dc * p.source_scale);
}

void vsource::stamp_ac(const std::vector<real>&, const ac_params& p, system_builder<cplx>& b) const
{
    const node_id br = branch();
    b.add(nodes()[0], br, cplx{1.0, 0.0});
    b.add(nodes()[1], br, cplx{-1.0, 0.0});
    b.add(br, nodes()[0], cplx{1.0, 0.0});
    b.add(br, nodes()[1], cplx{-1.0, 0.0});
    if (!p.zero_all_sources && (p.exclusive_source == nullptr || p.exclusive_source == this))
        b.rhs_add(br, spec_.ac_phasor());
}

void vsource::stamp_tran(const std::vector<real>&, const tran_params& p, system_builder<real>& b)
{
    stamp_topology(b);
    b.rhs_add(branch(), spec_.value_at(p.t1));
}

void vsource::collect_breakpoints(real tstop, std::vector<real>& out) const
{
    const std::vector<real> bp = spec_.breakpoints(tstop);
    out.insert(out.end(), bp.begin(), bp.end());
}

// --- isource ----------------------------------------------------------

isource::isource(std::string name, node_id from, node_id to, waveform_spec spec)
    : device(std::move(name), {from, to}), spec_(std::move(spec))
{
}

isource::isource(std::string name, node_id from, node_id to, real dc_amps)
    : isource(std::move(name), from, to, waveform_spec::make_dc(dc_amps))
{
}

void isource::stamp_dc(const std::vector<real>&, const stamp_params& p, system_builder<real>& b)
{
    const real i = spec_.dc * p.source_scale;
    b.rhs_add(nodes()[0], -i);
    b.rhs_add(nodes()[1], i);
}

void isource::stamp_ac(const std::vector<real>&, const ac_params& p, system_builder<cplx>& b) const
{
    if (p.zero_all_sources || (p.exclusive_source != nullptr && p.exclusive_source != this))
        return;
    const cplx i = spec_.ac_phasor();
    b.rhs_add(nodes()[0], -i);
    b.rhs_add(nodes()[1], i);
}

void isource::stamp_tran(const std::vector<real>&, const tran_params& p, system_builder<real>& b)
{
    const real i = spec_.value_at(p.t1);
    b.rhs_add(nodes()[0], -i);
    b.rhs_add(nodes()[1], i);
}

void isource::collect_breakpoints(real tstop, std::vector<real>& out) const
{
    const std::vector<real> bp = spec_.breakpoints(tstop);
    out.insert(out.end(), bp.begin(), bp.end());
}

} // namespace acstab::spice
