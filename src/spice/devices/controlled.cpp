#include "spice/devices/controlled.h"

#include "common/error.h"
#include "spice/circuit.h"
#include "spice/devices/sources.h"

namespace acstab::spice {

namespace {

    [[nodiscard]] node_id resolve_control_branch(const circuit& c, const std::string& owner,
                                                 const std::string& ctrl_name)
    {
        const device* dev = c.find_device(ctrl_name);
        if (dev == nullptr)
            throw circuit_error(owner + ": controlling source '" + ctrl_name + "' not found");
        const auto* src = dynamic_cast<const vsource*>(dev);
        if (src == nullptr)
            throw circuit_error(owner + ": controlling device '" + ctrl_name
                                + "' is not a voltage source");
        return src->branch();
    }

} // namespace

// --- vcvs ---------------------------------------------------------------

vcvs::vcvs(std::string name, node_id p, node_id m, node_id cp, node_id cm, real gain)
    : device(std::move(name), {p, m, cp, cm}), gain_(gain)
{
}

void vcvs::stamp_dc(const std::vector<real>&, const stamp_params&, system_builder<real>& b)
{
    const node_id br = branch();
    b.add(nodes()[0], br, 1.0);
    b.add(nodes()[1], br, -1.0);
    b.add(br, nodes()[0], 1.0);
    b.add(br, nodes()[1], -1.0);
    b.add(br, nodes()[2], -gain_);
    b.add(br, nodes()[3], gain_);
}

void vcvs::stamp_ac(const std::vector<real>&, const ac_params&, system_builder<cplx>& b) const
{
    const node_id br = branch();
    b.add(nodes()[0], br, cplx{1.0, 0.0});
    b.add(nodes()[1], br, cplx{-1.0, 0.0});
    b.add(br, nodes()[0], cplx{1.0, 0.0});
    b.add(br, nodes()[1], cplx{-1.0, 0.0});
    b.add(br, nodes()[2], cplx{-gain_, 0.0});
    b.add(br, nodes()[3], cplx{gain_, 0.0});
}

// --- vccs ---------------------------------------------------------------

vccs::vccs(std::string name, node_id p, node_id m, node_id cp, node_id cm, real gm)
    : device(std::move(name), {p, m, cp, cm}), gm_(gm)
{
}

void vccs::stamp_dc(const std::vector<real>&, const stamp_params&, system_builder<real>& b)
{
    b.transconductance(nodes()[0], nodes()[1], nodes()[2], nodes()[3], gm_);
}

void vccs::stamp_ac(const std::vector<real>&, const ac_params&, system_builder<cplx>& b) const
{
    b.transconductance(nodes()[0], nodes()[1], nodes()[2], nodes()[3], cplx{gm_, 0.0});
}

// --- cccs ---------------------------------------------------------------

cccs::cccs(std::string name, node_id p, node_id m, std::string ctrl_vsource, real gain)
    : device(std::move(name), {p, m}), ctrl_name_(std::move(ctrl_vsource)), gain_(gain)
{
}

void cccs::bind(const circuit& c)
{
    ctrl_branch_ = resolve_control_branch(c, name(), ctrl_name_);
}

void cccs::stamp_dc(const std::vector<real>&, const stamp_params&, system_builder<real>& b)
{
    b.add(nodes()[0], ctrl_branch_, gain_);
    b.add(nodes()[1], ctrl_branch_, -gain_);
}

void cccs::stamp_ac(const std::vector<real>&, const ac_params&, system_builder<cplx>& b) const
{
    b.add(nodes()[0], ctrl_branch_, cplx{gain_, 0.0});
    b.add(nodes()[1], ctrl_branch_, cplx{-gain_, 0.0});
}

// --- ccvs ---------------------------------------------------------------

ccvs::ccvs(std::string name, node_id p, node_id m, std::string ctrl_vsource, real transresistance)
    : device(std::move(name), {p, m}), ctrl_name_(std::move(ctrl_vsource)), r_(transresistance)
{
}

void ccvs::bind(const circuit& c)
{
    ctrl_branch_ = resolve_control_branch(c, name(), ctrl_name_);
}

void ccvs::stamp_dc(const std::vector<real>&, const stamp_params&, system_builder<real>& b)
{
    const node_id br = branch();
    b.add(nodes()[0], br, 1.0);
    b.add(nodes()[1], br, -1.0);
    b.add(br, nodes()[0], 1.0);
    b.add(br, nodes()[1], -1.0);
    b.add(br, ctrl_branch_, -r_);
}

void ccvs::stamp_ac(const std::vector<real>&, const ac_params&, system_builder<cplx>& b) const
{
    const node_id br = branch();
    b.add(nodes()[0], br, cplx{1.0, 0.0});
    b.add(nodes()[1], br, cplx{-1.0, 0.0});
    b.add(br, nodes()[0], cplx{1.0, 0.0});
    b.add(br, nodes()[1], cplx{-1.0, 0.0});
    b.add(br, ctrl_branch_, cplx{-r_, 0.0});
}

} // namespace acstab::spice
