// Independent sources: voltage source (with branch current) and current
// source. Both carry a full waveform_spec (DC value, AC stimulus,
// transient shape).
#ifndef ACSTAB_SPICE_DEVICES_SOURCES_H
#define ACSTAB_SPICE_DEVICES_SOURCES_H

#include "spice/device.h"
#include "spice/waveform_spec.h"

namespace acstab::spice {

/// Ideal voltage source from node plus to node minus.
class vsource final : public device {
public:
    vsource(std::string name, node_id plus, node_id minus, waveform_spec spec);
    vsource(std::string name, node_id plus, node_id minus, real dc_volts);

    [[nodiscard]] std::string_view type_name() const noexcept override { return "vsource"; }
    [[nodiscard]] const waveform_spec& spec() const noexcept { return spec_; }
    void set_spec(waveform_spec spec) { spec_ = std::move(spec); }
    void set_dc(real volts) { spec_.dc = volts; }

    [[nodiscard]] std::size_t extra_unknown_count() const noexcept override { return 1; }
    /// MNA index of the branch current flowing from plus through the
    /// source to minus.
    [[nodiscard]] node_id branch() const noexcept { return extra(0); }

    [[nodiscard]] bool is_ideal_voltage_source() const noexcept override { return true; }

    void stamp_dc(const std::vector<real>& x, const stamp_params& p,
                  system_builder<real>& b) override;
    void stamp_ac(const std::vector<real>& op, const ac_params& p,
                  system_builder<cplx>& b) const override;
    void stamp_tran(const std::vector<real>& x, const tran_params& p,
                    system_builder<real>& b) override;
    void collect_breakpoints(real tstop, std::vector<real>& out) const override;

private:
    void stamp_topology(system_builder<real>& b) const;
    waveform_spec spec_;
};

/// Ideal current source; the specified current flows out of node `from`,
/// through the source, into node `to` (i.e. it is injected into `to`).
class isource final : public device {
public:
    isource(std::string name, node_id from, node_id to, waveform_spec spec);
    isource(std::string name, node_id from, node_id to, real dc_amps);

    [[nodiscard]] std::string_view type_name() const noexcept override { return "isource"; }
    [[nodiscard]] const waveform_spec& spec() const noexcept { return spec_; }
    void set_spec(waveform_spec spec) { spec_ = std::move(spec); }

    void stamp_dc(const std::vector<real>& x, const stamp_params& p,
                  system_builder<real>& b) override;
    void stamp_ac(const std::vector<real>& op, const ac_params& p,
                  system_builder<cplx>& b) const override;
    void stamp_tran(const std::vector<real>& x, const tran_params& p,
                    system_builder<real>& b) override;
    void collect_breakpoints(real tstop, std::vector<real>& out) const override;

private:
    waveform_spec spec_;
};

} // namespace acstab::spice

#endif // ACSTAB_SPICE_DEVICES_SOURCES_H
