#include "spice/devices/passive.h"

#include "common/error.h"

namespace acstab::spice {

// --- resistor ---------------------------------------------------------

resistor::resistor(std::string name, node_id a, node_id b, real ohms)
    : device(std::move(name), {a, b}), ohms_(ohms)
{
    if (!(ohms_ > 0.0))
        throw circuit_error("resistor " + this->name() + ": resistance must be positive");
}

void resistor::set_resistance(real ohms)
{
    if (!(ohms > 0.0))
        throw circuit_error("resistor " + name() + ": resistance must be positive");
    ohms_ = ohms;
}

void resistor::stamp_dc(const std::vector<real>&, const stamp_params&, system_builder<real>& b)
{
    b.conductance(nodes()[0], nodes()[1], 1.0 / ohms_);
}

void resistor::stamp_ac(const std::vector<real>&, const ac_params&, system_builder<cplx>& b) const
{
    b.conductance(nodes()[0], nodes()[1], cplx{1.0 / ohms_, 0.0});
}

// --- capacitor --------------------------------------------------------

capacitor::capacitor(std::string name, node_id a, node_id b, real farads)
    : device(std::move(name), {a, b}), farads_(farads)
{
    if (!(farads_ >= 0.0))
        throw circuit_error("capacitor " + this->name() + ": capacitance must be non-negative");
}

void capacitor::set_capacitance(real farads)
{
    if (!(farads >= 0.0))
        throw circuit_error("capacitor " + name() + ": capacitance must be non-negative");
    farads_ = farads;
}

void capacitor::stamp_dc(const std::vector<real>&, const stamp_params&, system_builder<real>&)
{
    // Open circuit at DC.
}

void capacitor::stamp_ac(const std::vector<real>&, const ac_params& p, system_builder<cplx>& b) const
{
    b.conductance(nodes()[0], nodes()[1], cplx{0.0, p.omega * farads_});
}

void capacitor::tran_begin(const std::vector<real>& op)
{
    v_prev_ = unknown_voltage(op, nodes()[0], nodes()[1]);
    i_prev_ = 0.0;
}

void capacitor::stamp_tran(const std::vector<real>&, const tran_params& p,
                           system_builder<real>& b)
{
    if (farads_ == 0.0)
        return;
    real geq = 0.0;
    real ieq = 0.0;
    if (p.use_be) {
        geq = farads_ / p.dt;
        ieq = geq * v_prev_;
    } else {
        geq = 2.0 * farads_ / p.dt;
        ieq = geq * v_prev_ + i_prev_;
    }
    b.conductance(nodes()[0], nodes()[1], geq);
    b.rhs_add(nodes()[0], ieq);
    b.rhs_add(nodes()[1], -ieq);
}

void capacitor::tran_accept(const std::vector<real>& x, const tran_params& p)
{
    const real v_new = unknown_voltage(x, nodes()[0], nodes()[1]);
    if (farads_ == 0.0 || p.dt <= 0.0) {
        v_prev_ = v_new;
        i_prev_ = 0.0;
        return;
    }
    if (p.use_be) {
        i_prev_ = farads_ / p.dt * (v_new - v_prev_);
    } else {
        const real geq = 2.0 * farads_ / p.dt;
        i_prev_ = geq * (v_new - v_prev_) - i_prev_;
    }
    v_prev_ = v_new;
}

// --- inductor ---------------------------------------------------------

inductor::inductor(std::string name, node_id a, node_id b, real henries)
    : device(std::move(name), {a, b}), henries_(henries)
{
    if (!(henries_ > 0.0))
        throw circuit_error("inductor " + this->name() + ": inductance must be positive");
}

void inductor::stamp_dc(const std::vector<real>&, const stamp_params&, system_builder<real>& b)
{
    // Short circuit at DC: v(a) - v(b) = 0 with the branch current free.
    const node_id br = branch();
    b.add(nodes()[0], br, 1.0);
    b.add(nodes()[1], br, -1.0);
    b.add(br, nodes()[0], 1.0);
    b.add(br, nodes()[1], -1.0);
}

void inductor::stamp_ac(const std::vector<real>&, const ac_params& p, system_builder<cplx>& b) const
{
    const node_id br = branch();
    b.add(nodes()[0], br, cplx{1.0, 0.0});
    b.add(nodes()[1], br, cplx{-1.0, 0.0});
    b.add(br, nodes()[0], cplx{1.0, 0.0});
    b.add(br, nodes()[1], cplx{-1.0, 0.0});
    b.add(br, br, cplx{0.0, -p.omega * henries_});
}

void inductor::tran_begin(const std::vector<real>& op)
{
    i_prev_ = op[static_cast<std::size_t>(branch())];
    v_prev_ = unknown_voltage(op, nodes()[0], nodes()[1]);
}

void inductor::stamp_tran(const std::vector<real>&, const tran_params& p,
                          system_builder<real>& b)
{
    const node_id br = branch();
    b.add(nodes()[0], br, 1.0);
    b.add(nodes()[1], br, -1.0);
    // Branch equation: i1 - k*v1 = i0 [+ k*v0 for trapezoidal].
    b.add(br, br, 1.0);
    if (p.use_be) {
        const real k = p.dt / henries_;
        b.add(br, nodes()[0], -k);
        b.add(br, nodes()[1], k);
        b.rhs_add(br, i_prev_);
    } else {
        const real k = p.dt / (2.0 * henries_);
        b.add(br, nodes()[0], -k);
        b.add(br, nodes()[1], k);
        b.rhs_add(br, i_prev_ + k * v_prev_);
    }
}

void inductor::tran_accept(const std::vector<real>& x, const tran_params&)
{
    i_prev_ = x[static_cast<std::size_t>(branch())];
    v_prev_ = unknown_voltage(x, nodes()[0], nodes()[1]);
}

} // namespace acstab::spice
