// Bipolar junction transistor: Ebers–Moll transport model with forward
// Early effect, junction (depletion) capacitances and tf/tr diffusion
// capacitances. NPN and PNP share the code via a polarity flip.
//
// Simplifications vs full Gummel–Poon (documented in DESIGN.md): no
// high-injection roll-off (IKF/IKR), no base resistance, no substrate
// junction. These do not affect the small-signal loop dynamics the paper's
// method probes at the bias points used here.
#ifndef ACSTAB_SPICE_DEVICES_BJT_H
#define ACSTAB_SPICE_DEVICES_BJT_H

#include "spice/device.h"
#include "spice/devices/companion.h"

namespace acstab::spice {

enum class bjt_polarity { npn, pnp };

struct bjt_model {
    bjt_polarity polarity = bjt_polarity::npn;
    real is = 1e-16;  ///< transport saturation current [A]
    real bf = 100.0;  ///< forward beta
    real br = 1.0;    ///< reverse beta
    real nf = 1.0;    ///< forward emission coefficient
    real nr = 1.0;    ///< reverse emission coefficient
    real vaf = 0.0;   ///< forward Early voltage [V], 0 = infinite
    real cje = 0.0;   ///< B-E zero-bias depletion capacitance [F]
    real vje = 0.75;  ///< B-E junction potential [V]
    real mje = 0.33;  ///< B-E grading coefficient
    real cjc = 0.0;   ///< B-C zero-bias depletion capacitance [F]
    real vjc = 0.75;  ///< B-C junction potential [V]
    real mjc = 0.33;  ///< B-C grading coefficient
    real fc = 0.5;    ///< forward-bias depletion threshold
    real tf = 0.0;    ///< forward transit time [s]
    real tr = 0.0;    ///< reverse transit time [s]
    real temp = 27.0; ///< device temperature [C]
};

/// Small-signal quantities at the operating point (for reports/tests).
struct bjt_small_signal {
    real gm = 0.0;   ///< d(ic)/d(vbe)
    real gpi = 0.0;  ///< d(ib)/d(vbe)
    real gmu = 0.0;  ///< d(ib)/d(vbc)
    real go = 0.0;   ///< -d(ic)/d(vce) contribution (output conductance)
    real cbe = 0.0;  ///< total B-E capacitance
    real cbc = 0.0;  ///< total B-C capacitance
    real ic = 0.0;
    real ib = 0.0;
};

/// Node order: collector, base, emitter.
class bjt final : public device {
public:
    bjt(std::string name, node_id collector, node_id base, node_id emitter, bjt_model model);

    [[nodiscard]] std::string_view type_name() const noexcept override { return "bjt"; }
    [[nodiscard]] const bjt_model& model() const noexcept { return model_; }

    void dc_begin() override;
    void stamp_dc(const std::vector<real>& x, const stamp_params& p,
                  system_builder<real>& b) override;
    void stamp_ac(const std::vector<real>& op, const ac_params& p,
                  system_builder<cplx>& b) const override;

    void tran_begin(const std::vector<real>& op) override;
    void stamp_tran(const std::vector<real>& x, const tran_params& p,
                    system_builder<real>& b) override;
    void tran_accept(const std::vector<real>& x, const tran_params& p) override;

    /// Small-signal parameters at an operating point (diagnostics).
    [[nodiscard]] bjt_small_signal small_signal(const std::vector<real>& op) const;

private:
    struct eval_result {
        real ic = 0.0; ///< internal collector current (NPN orientation)
        real ib = 0.0;
        real dic_dvbe = 0.0;
        real dic_dvbc = 0.0;
        real dib_dvbe = 0.0;
        real dib_dvbc = 0.0;
        real cbe = 0.0;
        real cbc = 0.0;
    };
    [[nodiscard]] eval_result evaluate(real vbe, real vbc) const noexcept;
    void stamp_linearized(const std::vector<real>& x, const stamp_params& p,
                          system_builder<real>& b, bool limit);

    bjt_model model_;
    real pol_ = 1.0;
    real vbe_state_ = 0.0;
    real vbc_state_ = 0.0;
    companion_cap cap_be_;
    companion_cap cap_bc_;
};

} // namespace acstab::spice

#endif // ACSTAB_SPICE_DEVICES_BJT_H
