// Junction diode with depletion + diffusion capacitance.
#ifndef ACSTAB_SPICE_DEVICES_DIODE_H
#define ACSTAB_SPICE_DEVICES_DIODE_H

#include "spice/device.h"

namespace acstab::spice {

struct diode_model {
    real is = 1e-14;  ///< saturation current [A]
    real n = 1.0;     ///< emission coefficient
    real cj0 = 0.0;   ///< zero-bias junction capacitance [F]
    real vj = 1.0;    ///< junction potential [V]
    real m = 0.5;     ///< grading coefficient
    real fc = 0.5;    ///< forward-bias depletion threshold
    real tt = 0.0;    ///< transit time [s] (diffusion capacitance)
    real temp = 27.0; ///< device temperature [C]
};

class diode final : public device {
public:
    diode(std::string name, node_id anode, node_id cathode, diode_model model = {});

    [[nodiscard]] std::string_view type_name() const noexcept override { return "diode"; }
    [[nodiscard]] const diode_model& model() const noexcept { return model_; }

    void dc_begin() override;
    void stamp_dc(const std::vector<real>& x, const stamp_params& p,
                  system_builder<real>& b) override;
    void stamp_ac(const std::vector<real>& op, const ac_params& p,
                  system_builder<cplx>& b) const override;

    void tran_begin(const std::vector<real>& op) override;
    void stamp_tran(const std::vector<real>& x, const tran_params& p,
                    system_builder<real>& b) override;
    void tran_accept(const std::vector<real>& x, const tran_params& p) override;

    /// Small-signal conductance at junction voltage v.
    [[nodiscard]] real conductance_at(real v) const noexcept;
    /// Total small-signal capacitance (depletion + diffusion) at v.
    [[nodiscard]] real capacitance_at(real v) const noexcept;

private:
    diode_model model_;
    real v_limit_state_ = 0.0; // previous Newton iterate (junction limiting)
    real v_prev_ = 0.0;        // accepted transient junction voltage
    real icap_prev_ = 0.0;     // accepted transient capacitor current
};

} // namespace acstab::spice

#endif // ACSTAB_SPICE_DEVICES_DIODE_H
