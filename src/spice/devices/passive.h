// Linear passive devices: resistor, capacitor, inductor.
#ifndef ACSTAB_SPICE_DEVICES_PASSIVE_H
#define ACSTAB_SPICE_DEVICES_PASSIVE_H

#include "spice/device.h"

namespace acstab::spice {

class resistor final : public device {
public:
    resistor(std::string name, node_id a, node_id b, real ohms);

    [[nodiscard]] std::string_view type_name() const noexcept override { return "resistor"; }
    [[nodiscard]] real resistance() const noexcept { return ohms_; }
    void set_resistance(real ohms);

    void stamp_dc(const std::vector<real>& x, const stamp_params& p,
                  system_builder<real>& b) override;
    void stamp_ac(const std::vector<real>& op, const ac_params& p,
                  system_builder<cplx>& b) const override;

private:
    real ohms_;
};

class capacitor final : public device {
public:
    capacitor(std::string name, node_id a, node_id b, real farads);

    [[nodiscard]] std::string_view type_name() const noexcept override { return "capacitor"; }
    [[nodiscard]] real capacitance() const noexcept { return farads_; }
    void set_capacitance(real farads);

    void stamp_dc(const std::vector<real>& x, const stamp_params& p,
                  system_builder<real>& b) override;
    void stamp_ac(const std::vector<real>& op, const ac_params& p,
                  system_builder<cplx>& b) const override;

    void tran_begin(const std::vector<real>& op) override;
    void stamp_tran(const std::vector<real>& x, const tran_params& p,
                    system_builder<real>& b) override;
    void tran_accept(const std::vector<real>& x, const tran_params& p) override;

private:
    real farads_;
    real v_prev_ = 0.0;
    real i_prev_ = 0.0;
};

class inductor final : public device {
public:
    inductor(std::string name, node_id a, node_id b, real henries);

    [[nodiscard]] std::string_view type_name() const noexcept override { return "inductor"; }
    [[nodiscard]] real inductance() const noexcept { return henries_; }

    [[nodiscard]] std::size_t extra_unknown_count() const noexcept override { return 1; }
    [[nodiscard]] node_id branch() const noexcept { return extra(0); }

    void stamp_dc(const std::vector<real>& x, const stamp_params& p,
                  system_builder<real>& b) override;
    void stamp_ac(const std::vector<real>& op, const ac_params& p,
                  system_builder<cplx>& b) const override;

    void tran_begin(const std::vector<real>& op) override;
    void stamp_tran(const std::vector<real>& x, const tran_params& p,
                    system_builder<real>& b) override;
    void tran_accept(const std::vector<real>& x, const tran_params& p) override;

private:
    real henries_;
    real i_prev_ = 0.0;
    real v_prev_ = 0.0;
};

} // namespace acstab::spice

#endif // ACSTAB_SPICE_DEVICES_PASSIVE_H
