#include "spice/devices/diode.h"

#include "spice/devices/junction.h"

namespace acstab::spice {

diode::diode(std::string name, node_id anode, node_id cathode, diode_model model)
    : device(std::move(name), {anode, cathode}), model_(model)
{
}

void diode::dc_begin()
{
    v_limit_state_ = 0.0;
}

void diode::stamp_dc(const std::vector<real>& x, const stamp_params& p, system_builder<real>& b)
{
    const real n_vt = model_.n * thermal_voltage(model_.temp);
    const real vcrit = junction_vcrit(model_.is, n_vt);
    real vd = unknown_voltage(x, nodes()[0], nodes()[1]);
    vd = pnjlim(vd, v_limit_state_, n_vt, vcrit);
    v_limit_state_ = vd;

    const junction_current jc = junction_exp(vd, model_.is, n_vt);
    const real g = jc.g + p.gmin;
    const real i = jc.i + p.gmin * vd;
    // Linearize i(v) about vd: matrix gets g, RHS gets -(i - g*vd).
    b.conductance(nodes()[0], nodes()[1], g);
    const real ieq = i - g * vd;
    b.rhs_add(nodes()[0], -ieq);
    b.rhs_add(nodes()[1], ieq);
}

void diode::stamp_ac(const std::vector<real>& op, const ac_params& p, system_builder<cplx>& b) const
{
    const real vd = unknown_voltage(op, nodes()[0], nodes()[1]);
    const real g = conductance_at(vd) + p.gmin;
    const real c = capacitance_at(vd);
    b.conductance(nodes()[0], nodes()[1], cplx{g, p.omega * c});
}

void diode::tran_begin(const std::vector<real>& op)
{
    v_prev_ = unknown_voltage(op, nodes()[0], nodes()[1]);
    icap_prev_ = 0.0;
    v_limit_state_ = v_prev_;
}

void diode::stamp_tran(const std::vector<real>& x, const tran_params& p, system_builder<real>& b)
{
    stamp_dc(x, p.dc, b);

    // Companion model of the (nonlinear) junction capacitance evaluated at
    // the limited candidate voltage stored by stamp_dc.
    const real vd = v_limit_state_;
    const real c = capacitance_at(vd);
    if (c <= 0.0)
        return;
    real geq = 0.0;
    real ieq = 0.0;
    if (p.use_be) {
        geq = c / p.dt;
        ieq = geq * v_prev_;
    } else {
        geq = 2.0 * c / p.dt;
        ieq = geq * v_prev_ + icap_prev_;
    }
    b.conductance(nodes()[0], nodes()[1], geq);
    b.rhs_add(nodes()[0], ieq);
    b.rhs_add(nodes()[1], -ieq);
}

void diode::tran_accept(const std::vector<real>& x, const tran_params& p)
{
    const real v_new = unknown_voltage(x, nodes()[0], nodes()[1]);
    const real c = capacitance_at(v_new);
    if (c > 0.0 && p.dt > 0.0) {
        if (p.use_be) {
            icap_prev_ = c / p.dt * (v_new - v_prev_);
        } else {
            const real geq = 2.0 * c / p.dt;
            icap_prev_ = geq * (v_new - v_prev_) - icap_prev_;
        }
    } else {
        icap_prev_ = 0.0;
    }
    v_prev_ = v_new;
}

real diode::conductance_at(real v) const noexcept
{
    const real n_vt = model_.n * thermal_voltage(model_.temp);
    return junction_exp(v, model_.is, n_vt).g;
}

real diode::capacitance_at(real v) const noexcept
{
    const real cdep = junction_capacitance(v, model_.cj0, model_.vj, model_.m, model_.fc);
    const real cdiff = model_.tt * conductance_at(v);
    return cdep + cdiff;
}

} // namespace acstab::spice
