#include "spice/devices/bjt.h"

#include <cmath>

#include "spice/devices/junction.h"

namespace acstab::spice {

bjt::bjt(std::string name, node_id collector, node_id base, node_id emitter, bjt_model model)
    : device(std::move(name), {collector, base, emitter}), model_(model),
      pol_(model.polarity == bjt_polarity::npn ? 1.0 : -1.0)
{
}

void bjt::dc_begin()
{
    vbe_state_ = 0.0;
    vbc_state_ = 0.0;
}

bjt::eval_result bjt::evaluate(real vbe, real vbc) const noexcept
{
    const real vt = thermal_voltage(model_.temp);
    const real nvt_f = model_.nf * vt;
    const real nvt_r = model_.nr * vt;

    const junction_current fwd = junction_exp(vbe, model_.is, nvt_f);
    const junction_current rev = junction_exp(vbc, model_.is, nvt_r);

    // Forward Early factor, clamped away from collapse.
    real kq = 1.0;
    real dkq_dvbc = 0.0;
    if (model_.vaf > 0.0) {
        kq = 1.0 - vbc / model_.vaf;
        dkq_dvbc = -1.0 / model_.vaf;
        if (kq < 0.05) {
            kq = 0.05;
            dkq_dvbc = 0.0;
        }
    }

    eval_result r;
    r.ic = kq * (fwd.i - rev.i) - rev.i / model_.br;
    r.ib = fwd.i / model_.bf + rev.i / model_.br;
    r.dic_dvbe = kq * fwd.g;
    r.dic_dvbc = dkq_dvbc * (fwd.i - rev.i) - kq * rev.g - rev.g / model_.br;
    r.dib_dvbe = fwd.g / model_.bf;
    r.dib_dvbc = rev.g / model_.br;
    r.cbe = junction_capacitance(vbe, model_.cje, model_.vje, model_.mje, model_.fc)
        + model_.tf * fwd.g;
    r.cbc = junction_capacitance(vbc, model_.cjc, model_.vjc, model_.mjc, model_.fc)
        + model_.tr * rev.g;
    return r;
}

void bjt::stamp_linearized(const std::vector<real>& x, const stamp_params& p,
                           system_builder<real>& b, bool limit)
{
    const node_id nc = nodes()[0];
    const node_id nb = nodes()[1];
    const node_id ne = nodes()[2];

    const real vt = thermal_voltage(model_.temp);
    const real nvt_f = model_.nf * vt;
    const real nvt_r = model_.nr * vt;

    real vbe = pol_ * unknown_voltage(x, nb, ne);
    real vbc = pol_ * unknown_voltage(x, nb, nc);
    if (limit) {
        vbe = pnjlim(vbe, vbe_state_, nvt_f, junction_vcrit(model_.is, nvt_f));
        vbc = pnjlim(vbc, vbc_state_, nvt_r, junction_vcrit(model_.is, nvt_r));
    }
    vbe_state_ = vbe;
    vbc_state_ = vbc;

    const eval_result r = evaluate(vbe, vbc);

    // Terminal currents into C and B (actual orientation); E balances.
    // Internal voltages are pol * actual, currents pol * internal, so the
    // polarity cancels in every Jacobian entry but not in the currents.
    const real vb = nb >= 0 ? x[static_cast<std::size_t>(nb)] : 0.0;
    const real vc = nc >= 0 ? x[static_cast<std::size_t>(nc)] : 0.0;
    const real ve = ne >= 0 ? x[static_cast<std::size_t>(ne)] : 0.0;

    // Rows: Ic, Ib; columns: vb, vc, ve.
    const real jac[2][3] = {
        {r.dic_dvbe + r.dic_dvbc, -r.dic_dvbc, -r.dic_dvbe},
        {r.dib_dvbe + r.dib_dvbc, -r.dib_dvbc, -r.dib_dvbe},
    };
    const real cur[2] = {pol_ * r.ic, pol_ * r.ib};
    const node_id rows[2] = {nc, nb};
    const node_id cols[3] = {nb, nc, ne};
    const real volt[3] = {vb, vc, ve};

    real e_row[3] = {0.0, 0.0, 0.0};
    real e_cur = 0.0;
    for (int i = 0; i < 2; ++i) {
        real ieq = cur[i];
        for (int j = 0; j < 3; ++j) {
            b.add(rows[i], cols[j], jac[i][j]);
            ieq -= jac[i][j] * volt[j];
            e_row[j] -= jac[i][j];
        }
        b.rhs_add(rows[i], -ieq);
        e_cur -= cur[i];
    }
    real ieq_e = e_cur;
    for (int j = 0; j < 3; ++j) {
        b.add(ne, cols[j], e_row[j]);
        ieq_e -= e_row[j] * volt[j];
    }
    b.rhs_add(ne, -ieq_e);

    // Convergence shunts across both junctions.
    b.conductance(nb, ne, p.gmin);
    b.conductance(nb, nc, p.gmin);
}

void bjt::stamp_dc(const std::vector<real>& x, const stamp_params& p, system_builder<real>& b)
{
    stamp_linearized(x, p, b, true);
}

void bjt::stamp_ac(const std::vector<real>& op, const ac_params& p, system_builder<cplx>& b) const
{
    const node_id nc = nodes()[0];
    const node_id nb = nodes()[1];
    const node_id ne = nodes()[2];

    const real vbe = pol_ * unknown_voltage(op, nb, ne);
    const real vbc = pol_ * unknown_voltage(op, nb, nc);
    const eval_result r = evaluate(vbe, vbc);

    const real jac[2][3] = {
        {r.dic_dvbe + r.dic_dvbc, -r.dic_dvbc, -r.dic_dvbe},
        {r.dib_dvbe + r.dib_dvbc, -r.dib_dvbc, -r.dib_dvbe},
    };
    const node_id rows[2] = {nc, nb};
    const node_id cols[3] = {nb, nc, ne};
    for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 3; ++j) {
            b.add(rows[i], cols[j], cplx{jac[i][j], 0.0});
            b.add(ne, cols[j], cplx{-jac[i][j], 0.0});
        }

    b.conductance(nb, ne, cplx{p.gmin, p.omega * r.cbe});
    b.conductance(nb, nc, cplx{p.gmin, p.omega * r.cbc});
}

void bjt::tran_begin(const std::vector<real>& op)
{
    const node_id nc = nodes()[0];
    const node_id nb = nodes()[1];
    const node_id ne = nodes()[2];
    cap_be_.begin(unknown_voltage(op, nb, ne));
    cap_bc_.begin(unknown_voltage(op, nb, nc));
    vbe_state_ = pol_ * unknown_voltage(op, nb, ne);
    vbc_state_ = pol_ * unknown_voltage(op, nb, nc);
}

void bjt::stamp_tran(const std::vector<real>& x, const tran_params& p, system_builder<real>& b)
{
    stamp_linearized(x, p.dc, b, true);
    const eval_result r = evaluate(vbe_state_, vbc_state_);
    cap_be_.stamp(b, nodes()[1], nodes()[2], r.cbe, p);
    cap_bc_.stamp(b, nodes()[1], nodes()[0], r.cbc, p);
}

void bjt::tran_accept(const std::vector<real>& x, const tran_params& p)
{
    const node_id nc = nodes()[0];
    const node_id nb = nodes()[1];
    const node_id ne = nodes()[2];
    const real vbe_int = pol_ * unknown_voltage(x, nb, ne);
    const real vbc_int = pol_ * unknown_voltage(x, nb, nc);
    const eval_result r = evaluate(vbe_int, vbc_int);
    cap_be_.accept(unknown_voltage(x, nb, ne), r.cbe, p);
    cap_bc_.accept(unknown_voltage(x, nb, nc), r.cbc, p);
}

bjt_small_signal bjt::small_signal(const std::vector<real>& op) const
{
    const node_id nc = nodes()[0];
    const node_id nb = nodes()[1];
    const node_id ne = nodes()[2];
    const real vbe = pol_ * unknown_voltage(op, nb, ne);
    const real vbc = pol_ * unknown_voltage(op, nb, nc);
    const eval_result r = evaluate(vbe, vbc);
    bjt_small_signal ss;
    ss.gm = r.dic_dvbe;
    ss.gpi = r.dib_dvbe;
    ss.gmu = r.dib_dvbc;
    ss.go = -r.dic_dvbc - r.dib_dvbc; // d(ic)/d(vce) at fixed vbe
    ss.cbe = r.cbe;
    ss.cbc = r.cbc;
    ss.ic = pol_ * r.ic;
    ss.ib = pol_ * r.ib;
    return ss;
}

} // namespace acstab::spice
