#include "spice/devices/mosfet.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace acstab::spice {

mosfet::mosfet(std::string name, node_id drain, node_id gate, node_id source, node_id bulk,
               mosfet_model model, real width, real length)
    : device(std::move(name), {drain, gate, source, bulk}), model_(model), w_(width), l_(length)
{
    if (!(w_ > 0.0) || !(l_ > 0.0))
        throw circuit_error("mosfet " + this->name() + ": W and L must be positive");
}

mosfet::eval_result mosfet::evaluate_forward(real vgs, real vds, real vbs) const noexcept
{
    eval_result r;

    // Threshold with body effect; forward body bias is linearized.
    real vth = model_.vto;
    real dvth_dvbs = 0.0;
    if (model_.gamma > 0.0) {
        const real sphi = std::sqrt(model_.phi);
        if (vbs <= 0.0) {
            const real sq = std::sqrt(model_.phi - vbs);
            vth += model_.gamma * (sq - sphi);
            dvth_dvbs = -model_.gamma / (2.0 * sq);
        } else {
            const real sq = std::max(sphi - vbs / (2.0 * sphi), 0.0);
            vth += model_.gamma * (sq - sphi);
            dvth_dvbs = sq > 0.0 ? -model_.gamma / (2.0 * sphi) : 0.0;
        }
    }

    const real beta = model_.kp * w_ / l_;
    const real vov = vgs - vth;
    const real cox_total = model_.cox * w_ * l_;
    const real cgs_ov = model_.cgso * w_;
    const real cgd_ov = model_.cgdo * w_;

    if (vov <= 0.0) {
        r.region = 0;
        r.cgs = cgs_ov;
        r.cgd = cgd_ov;
        r.cgb = cox_total;
        return r;
    }

    const real clm = 1.0 + model_.lambda * vds;
    real gm = 0.0;
    if (vds < vov) {
        r.region = 1;
        const real core = vov * vds - 0.5 * vds * vds;
        r.id = beta * core * clm;
        gm = beta * vds * clm;
        r.did_dvds = beta * (vov - vds) * clm + beta * core * model_.lambda;
        r.cgs = 0.5 * cox_total + cgs_ov;
        r.cgd = 0.5 * cox_total + cgd_ov;
    } else {
        r.region = 2;
        const real core = 0.5 * vov * vov;
        r.id = beta * core * clm;
        gm = beta * vov * clm;
        r.did_dvds = beta * core * model_.lambda;
        r.cgs = (2.0 / 3.0) * cox_total + cgs_ov;
        r.cgd = cgd_ov;
    }
    r.did_dvgs = gm;
    r.did_dvbs = -gm * dvth_dvbs;
    r.cgb = 0.0;
    return r;
}

mosfet::eval_result mosfet::evaluate(real vgs, real vds, real vbs) const noexcept
{
    if (vds >= 0.0)
        return evaluate_forward(vgs, vds, vbs);
    // Source and drain exchange roles: id(vgs,vds,vbs) = -idf(vgd,-vds,vbd).
    const eval_result f = evaluate_forward(vgs - vds, -vds, vbs - vds);
    eval_result r;
    r.region = f.region;
    r.id = -f.id;
    r.did_dvgs = -f.did_dvgs;
    r.did_dvds = f.did_dvgs + f.did_dvds + f.did_dvbs;
    r.did_dvbs = -f.did_dvbs;
    // The Meyer caps swap with the terminals.
    r.cgs = f.cgd;
    r.cgd = f.cgs;
    r.cgb = f.cgb;
    return r;
}

void mosfet::stamp_dc(const std::vector<real>& x, const stamp_params& p, system_builder<real>& b)
{
    const node_id nd = nodes()[0];
    const node_id ng = nodes()[1];
    const node_id ns = nodes()[2];
    const node_id nb = nodes()[3];
    const real pol = model_.polarity == mos_polarity::nmos ? 1.0 : -1.0;

    const real vgs = pol * unknown_voltage(x, ng, ns);
    const real vds = pol * unknown_voltage(x, nd, ns);
    const real vbs = pol * unknown_voltage(x, nb, ns);
    const eval_result r = evaluate(vgs, vds, vbs);

    // Current into the drain terminal: pol * id; source balances; the
    // polarity cancels in the Jacobian (chain rule applies pol twice).
    const real vd = nd >= 0 ? x[static_cast<std::size_t>(nd)] : 0.0;
    const real vg = ng >= 0 ? x[static_cast<std::size_t>(ng)] : 0.0;
    const real vs = ns >= 0 ? x[static_cast<std::size_t>(ns)] : 0.0;
    const real vb = nb >= 0 ? x[static_cast<std::size_t>(nb)] : 0.0;

    // Row d: id; row s = -row d. Columns g, d, b, s.
    const real jg = r.did_dvgs;
    const real jd = r.did_dvds;
    const real jb = r.did_dvbs;
    const real js = -(jg + jd + jb);

    b.add(nd, ng, jg);
    b.add(nd, nd, jd);
    b.add(nd, nb, jb);
    b.add(nd, ns, js);
    b.add(ns, ng, -jg);
    b.add(ns, nd, -jd);
    b.add(ns, nb, -jb);
    b.add(ns, ns, -js);

    const real i0 = pol * r.id;
    const real ieq = i0 - (jg * vg + jd * vd + jb * vb + js * vs);
    b.rhs_add(nd, -ieq);
    b.rhs_add(ns, ieq);

    // Convergence shunts: channel and both bulk junctions.
    b.conductance(nd, ns, p.gmin);
    b.conductance(nd, nb, p.gmin);
    b.conductance(ns, nb, p.gmin);
}

void mosfet::stamp_ac(const std::vector<real>& op, const ac_params& p, system_builder<cplx>& b) const
{
    const node_id nd = nodes()[0];
    const node_id ng = nodes()[1];
    const node_id ns = nodes()[2];
    const node_id nb = nodes()[3];
    const real pol = model_.polarity == mos_polarity::nmos ? 1.0 : -1.0;

    const real vgs = pol * unknown_voltage(op, ng, ns);
    const real vds = pol * unknown_voltage(op, nd, ns);
    const real vbs = pol * unknown_voltage(op, nb, ns);
    const eval_result r = evaluate(vgs, vds, vbs);

    const real jg = r.did_dvgs;
    const real jd = r.did_dvds;
    const real jb = r.did_dvbs;
    const real js = -(jg + jd + jb);
    b.add(nd, ng, cplx{jg, 0.0});
    b.add(nd, nd, cplx{jd, 0.0});
    b.add(nd, nb, cplx{jb, 0.0});
    b.add(nd, ns, cplx{js, 0.0});
    b.add(ns, ng, cplx{-jg, 0.0});
    b.add(ns, nd, cplx{-jd, 0.0});
    b.add(ns, nb, cplx{-jb, 0.0});
    b.add(ns, ns, cplx{-js, 0.0});

    b.conductance(ng, ns, cplx{0.0, p.omega * r.cgs});
    b.conductance(ng, nd, cplx{0.0, p.omega * r.cgd});
    b.conductance(ng, nb, cplx{0.0, p.omega * r.cgb});
    b.conductance(nd, nb, cplx{p.gmin, p.omega * model_.cbd});
    b.conductance(ns, nb, cplx{p.gmin, p.omega * model_.cbs});
    b.conductance(nd, ns, cplx{p.gmin, 0.0});
}

void mosfet::tran_begin(const std::vector<real>& op)
{
    const node_id nd = nodes()[0];
    const node_id ng = nodes()[1];
    const node_id ns = nodes()[2];
    const node_id nb = nodes()[3];
    cap_gs_.begin(unknown_voltage(op, ng, ns));
    cap_gd_.begin(unknown_voltage(op, ng, nd));
    cap_gb_.begin(unknown_voltage(op, ng, nb));
    cap_db_.begin(unknown_voltage(op, nd, nb));
    cap_sb_.begin(unknown_voltage(op, ns, nb));
}

void mosfet::stamp_tran(const std::vector<real>& x, const tran_params& p, system_builder<real>& b)
{
    stamp_dc(x, p.dc, b);

    const node_id nd = nodes()[0];
    const node_id ng = nodes()[1];
    const node_id ns = nodes()[2];
    const node_id nb = nodes()[3];
    const real pol = model_.polarity == mos_polarity::nmos ? 1.0 : -1.0;
    const real vgs = pol * unknown_voltage(x, ng, ns);
    const real vds = pol * unknown_voltage(x, nd, ns);
    const real vbs = pol * unknown_voltage(x, nb, ns);
    const eval_result r = evaluate(vgs, vds, vbs);

    cap_gs_.stamp(b, ng, ns, r.cgs, p);
    cap_gd_.stamp(b, ng, nd, r.cgd, p);
    cap_gb_.stamp(b, ng, nb, r.cgb, p);
    cap_db_.stamp(b, nd, nb, model_.cbd, p);
    cap_sb_.stamp(b, ns, nb, model_.cbs, p);
}

void mosfet::tran_accept(const std::vector<real>& x, const tran_params& p)
{
    const node_id nd = nodes()[0];
    const node_id ng = nodes()[1];
    const node_id ns = nodes()[2];
    const node_id nb = nodes()[3];
    const real pol = model_.polarity == mos_polarity::nmos ? 1.0 : -1.0;
    const real vgs = pol * unknown_voltage(x, ng, ns);
    const real vds = pol * unknown_voltage(x, nd, ns);
    const real vbs = pol * unknown_voltage(x, nb, ns);
    const eval_result r = evaluate(vgs, vds, vbs);

    cap_gs_.accept(unknown_voltage(x, ng, ns), r.cgs, p);
    cap_gd_.accept(unknown_voltage(x, ng, nd), r.cgd, p);
    cap_gb_.accept(unknown_voltage(x, ng, nb), r.cgb, p);
    cap_db_.accept(unknown_voltage(x, nd, nb), model_.cbd, p);
    cap_sb_.accept(unknown_voltage(x, ns, nb), model_.cbs, p);
}

mosfet_small_signal mosfet::small_signal(const std::vector<real>& op) const
{
    const real pol = model_.polarity == mos_polarity::nmos ? 1.0 : -1.0;
    const real vgs = pol * unknown_voltage(op, nodes()[1], nodes()[2]);
    const real vds = pol * unknown_voltage(op, nodes()[0], nodes()[2]);
    const real vbs = pol * unknown_voltage(op, nodes()[3], nodes()[2]);
    const eval_result r = evaluate(vgs, vds, vbs);
    mosfet_small_signal ss;
    ss.id = pol * r.id;
    ss.gm = r.did_dvgs;
    ss.gds = r.did_dvds;
    ss.gmb = r.did_dvbs;
    ss.cgs = r.cgs;
    ss.cgd = r.cgd;
    ss.cgb = r.cgb;
    ss.region = r.region;
    return ss;
}

} // namespace acstab::spice
