// Small-signal AC analysis: linearize every device ONCE at the DC
// operating point (engine::linearized_snapshot) and solve the complex MNA
// system at each sweep frequency through the shared sweep engine, which
// reuses one sparsity pattern, refactors numerically between frequencies
// and distributes the grid over the process-wide thread pool.
#ifndef ACSTAB_SPICE_AC_ANALYSIS_H
#define ACSTAB_SPICE_AC_ANALYSIS_H

#include <string>
#include <vector>

#include "engine/sweep_engine.h"
#include "spice/circuit.h"
#include "spice/dc_analysis.h"
#include "spice/mna.h"

namespace acstab::spice {

struct ac_options {
    solver_kind solver = solver_kind::sparse;
    real gmin = 1e-12;
    /// Node-to-ground shunt conductance regularizing floating nodes in the
    /// complex system (mirrors the DC gshunt).
    real gshunt = 0.0;
    /// When non-null, AC stimuli of all other sources are zeroed (the
    /// paper's auto-zero feature); this one drives the circuit alone.
    const device* exclusive_source = nullptr;
    /// Worker threads for the sweep (1 = serial, 0 = all hardware threads).
    std::size_t threads = 1;
    /// Adaptive frequency grid (engine/adaptive_sweep): the passed grid
    /// defines band and output density; one channel per MNA unknown is
    /// fitted, so the FULL solution vector is available at every output
    /// frequency (exact where solved, model-evaluated elsewhere) and
    /// `.ac` cards in `acstab run` decks ride the adaptive path too.
    bool adaptive = false;
    real fit_tol = 1e-6;
    std::size_t anchors_per_decade = 4;
    /// Sparse-solver tuning (ordering / SIMD kernel / warm start)
    /// forwarded to the sweep engine.
    engine::solver_tuning tuning;
};

/// Complex response of every MNA unknown over a frequency sweep.
struct ac_result {
    std::vector<real> freq_hz;
    std::vector<std::vector<cplx>> solution; ///< [freq index][unknown index]
    /// LU factorizations behind the sweep (fixed grid: one per point;
    /// adaptive: the usually much smaller solved-point count).
    std::size_t factorizations = 0;

    [[nodiscard]] std::size_t point_count() const noexcept { return freq_hz.size(); }

    /// Response of one unknown across the sweep.
    [[nodiscard]] std::vector<cplx> unknown_response(std::size_t index) const;

    /// Magnitude of one unknown across the sweep.
    [[nodiscard]] std::vector<real> unknown_magnitude(std::size_t index) const;
};

/// Run an AC sweep about the given operating point (from dc_operating_point).
[[nodiscard]] ac_result ac_sweep(circuit& c, const std::vector<real>& freqs_hz,
                                 const std::vector<real>& op, const ac_options& opt = {});

/// Complex node response helper (ground returns 0).
[[nodiscard]] std::vector<cplx> node_response(const circuit& c, const ac_result& res,
                                              const std::string& node_name);

} // namespace acstab::spice

#endif // ACSTAB_SPICE_AC_ANALYSIS_H
