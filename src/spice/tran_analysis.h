// Transient analysis: trapezoidal integration with a backward-Euler kick
// at t=0 and after every source breakpoint, Newton iteration per step, and
// automatic step halving when Newton stalls.
//
// Newton solves run on the shared-symbolic path by default (one symbolic
// factorization for the whole run, numeric-only refactorization per
// solve — see tran_solver.h); the seed's one-shot factor-per-solve path
// is kept behind shared_solver=false as the ablation and equivalence
// baseline.
#ifndef ACSTAB_SPICE_TRAN_ANALYSIS_H
#define ACSTAB_SPICE_TRAN_ANALYSIS_H

#include <string>
#include <vector>

#include "spice/circuit.h"
#include "spice/dc_analysis.h"
#include "spice/mna.h"
#include "spice/tran_solver.h"

namespace acstab::spice {

struct tran_options {
    real tstop = 0.0;
    /// Nominal step; the engine subdivides at breakpoints and halves on
    /// Newton failure. 0 selects tstop/1000.
    real dt = 0.0;
    real dtmin_factor = 1e-6; ///< smallest allowed step = dt * factor
    int max_newton = 60;
    real reltol = 1e-3;
    real vntol = 1e-6;
    real abstol = 1e-12;
    solver_kind solver = solver_kind::sparse;
    /// Route every Newton solve through one shared symbolic factorization
    /// with numeric-only refactorization (tran_solver). OFF selects the
    /// seed one-shot path — fresh compression + symbolic analysis +
    /// factorization per Newton iteration. Sparse-only; the dense
    /// reference solver ignores it. Both paths run the identical Newton
    /// iteration, so waveforms agree to solver rounding (<= 1e-12,
    /// CI-guarded).
    bool shared_solver = true;
    /// Ordering / supernodal tuning of the shared path. The sweep
    /// engine's warm-start knobs have no transient analog: a Newton
    /// solve always refactors, which IS the warm path here.
    tran_solver_options tuning;
    dc_options dc; ///< options for the initial operating point
};

struct tran_result {
    std::vector<real> time;
    std::vector<std::vector<real>> solution; ///< [step][unknown]
    /// Shared-path solver counters (all zero on the one-shot/dense path).
    tran_solver_stats solver;

    [[nodiscard]] std::size_t step_count() const noexcept { return time.size(); }

    /// Waveform of one unknown over time.
    [[nodiscard]] std::vector<real> unknown_waveform(std::size_t index) const;
};

/// Run a transient analysis starting from the DC operating point.
[[nodiscard]] tran_result transient(circuit& c, const tran_options& opt);

/// Time-domain waveform of a named node.
[[nodiscard]] std::vector<real> node_waveform(const circuit& c, const tran_result& res,
                                              const std::string& node_name);

} // namespace acstab::spice

#endif // ACSTAB_SPICE_TRAN_ANALYSIS_H
