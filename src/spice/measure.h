// Waveform-calculator style measurements used by the baselines and the
// benches: dB/phase conversion, step-response metrics, Bode margins.
#ifndef ACSTAB_SPICE_MEASURE_H
#define ACSTAB_SPICE_MEASURE_H

#include <span>
#include <vector>

#include "common/types.h"

namespace acstab::spice {

/// 20*log10(|x|).
[[nodiscard]] real db20(real magnitude);
[[nodiscard]] std::vector<real> db20(std::span<const cplx> h);

/// Phase in degrees, unwrapped so adjacent points never jump more than
/// 180 degrees.
[[nodiscard]] std::vector<real> phase_deg_unwrapped(std::span<const cplx> h);

/// Percent overshoot of a step response relative to its initial and final
/// values: 100 * (peak - final) / (final - initial).
[[nodiscard]] real overshoot_percent(std::span<const real> y, real initial, real final_value);

/// Final value estimated as the mean of the last `tail_fraction` of the
/// record (default last 5 %).
[[nodiscard]] real final_value(std::span<const real> y, real tail_fraction = 0.05);

/// First time the response enters and stays within +/- band_fraction of
/// the final value; returns the last time point when it never settles.
[[nodiscard]] real settling_time(std::span<const real> t, std::span<const real> y,
                                 real final_value, real band_fraction = 0.02);

/// Settling with an absolute band (use 2 % of the step swing for
/// small-signal steps riding on a large DC level).
[[nodiscard]] real settling_time_abs(std::span<const real> t, std::span<const real> y,
                                     real final_value, real band_abs);

/// Ringing frequency estimated from the mean spacing of zero crossings of
/// (y - final). Returns 0 when fewer than 3 crossings exist.
[[nodiscard]] real ringing_frequency(std::span<const real> t, std::span<const real> y,
                                     real final_value);

/// Bode stability margins extracted from a loop-gain frequency response.
struct bode_margins {
    bool has_unity_crossing = false;
    real unity_freq_hz = 0.0;     ///< 0 dB crossover
    real phase_margin_deg = 0.0;  ///< 180 + phase at crossover
    bool has_phase_crossing = false;
    real phase_cross_freq_hz = 0.0; ///< frequency of -180 deg phase
    real gain_margin_db = 0.0;      ///< -|T| in dB at the phase crossing
};

/// Compute margins of loop gain T(jw) sampled at freqs (Hz).
[[nodiscard]] bode_margins margins(std::span<const real> freq_hz, std::span<const cplx> loop_gain);

} // namespace acstab::spice

#endif // ACSTAB_SPICE_MEASURE_H
