#include "spice/dc_analysis.h"

#include <algorithm>
#include <cmath>

namespace acstab::spice {

namespace {

    struct newton_outcome {
        bool converged = false;
        int iterations = 0;
    };

    /// One damped Newton solve at fixed continuation parameters. Updates x
    /// in place; returns convergence status instead of throwing so the
    /// continuation ladder can react.
    newton_outcome newton_solve(circuit& c, std::vector<real>& x, const stamp_params& params,
                                real gshunt, const dc_options& opt)
    {
        const std::size_t n = c.unknown_count();
        const std::size_t nodes = c.node_count();
        newton_outcome out;

        for (int it = 0; it < opt.max_iterations; ++it) {
            system_builder<real> b(n);
            for (const auto& dev : c.devices())
                dev->stamp_dc(x, params, b);
            if (gshunt > 0.0)
                for (std::size_t i = 0; i < nodes; ++i)
                    b.add(static_cast<node_id>(i), static_cast<node_id>(i), gshunt);

            std::vector<real> x_new;
            try {
                x_new = solve_system(b, opt.solver);
            } catch (const numeric_error&) {
                return out; // singular at this continuation point
            }

            bool converged = true;
            real worst = 0.0;
            for (std::size_t i = 0; i < n; ++i) {
                const real delta = std::fabs(x_new[i] - x[i]);
                const real floor_tol = i < nodes ? opt.vntol : opt.abstol;
                const real tol = opt.reltol * std::max(std::fabs(x_new[i]), std::fabs(x[i]))
                    + floor_tol;
                if (delta > tol)
                    converged = false;
                worst = std::max(worst, delta);
            }

            if (converged) {
                x = std::move(x_new);
                out.converged = true;
                out.iterations = it + 1;
                return out;
            }

            // Damping: clamp the infinity norm of the update.
            real scale = 1.0;
            if (opt.max_step > 0.0 && worst > opt.max_step)
                scale = opt.max_step / worst;
            for (std::size_t i = 0; i < n; ++i)
                x[i] += scale * (x_new[i] - x[i]);
            out.iterations = it + 1;
        }
        return out;
    }

    void reset_devices(circuit& c)
    {
        for (const auto& dev : c.devices())
            dev->dc_begin();
    }

    [[nodiscard]] bool try_plain(circuit& c, real gshunt, const dc_options& opt,
                                 const stamp_params& params, dc_result& result)
    {
        reset_devices(c);
        std::vector<real> x(c.unknown_count(), 0.0);
        const newton_outcome plain = newton_solve(c, x, params, gshunt, opt);
        if (!plain.converged)
            return false;
        result.solution = std::move(x);
        result.iterations = plain.iterations;
        result.used_gshunt = gshunt > 0.0;
        return true;
    }

    [[nodiscard]] bool try_gmin_stepping(circuit& c, real gshunt, const dc_options& opt,
                                         dc_result& result)
    {
        reset_devices(c);
        std::vector<real> x(c.unknown_count(), 0.0);
        stamp_params step;
        step.continuation = true;
        bool ok = true;
        for (real g = 1e-2; ok && g >= opt.gmin * 0.99; g *= 0.1) {
            step.gmin = g;
            ok = newton_solve(c, x, step, gshunt, opt).converged;
        }
        if (!ok)
            return false;
        step.gmin = opt.gmin;
        step.continuation = false;
        const newton_outcome last = newton_solve(c, x, step, gshunt, opt);
        if (!last.converged)
            return false;
        result.solution = std::move(x);
        result.iterations = last.iterations;
        result.used_gmin_stepping = true;
        result.used_gshunt = gshunt > 0.0;
        return true;
    }

    [[nodiscard]] bool try_source_stepping(circuit& c, real gshunt, const dc_options& opt,
                                           dc_result& result)
    {
        reset_devices(c);
        std::vector<real> x_good(c.unknown_count(), 0.0);
        stamp_params step;
        step.gmin = opt.gmin;
        step.continuation = true;

        real last_good = 0.0;
        real increment = 0.05;
        int failures = 0;
        while (last_good < 1.0) {
            const real scale = std::min(1.0, last_good + increment);
            step.source_scale = scale;
            std::vector<real> x = x_good;
            if (newton_solve(c, x, step, gshunt, opt).converged) {
                last_good = scale;
                x_good = std::move(x);
                increment *= 1.5;
            } else {
                increment *= 0.25;
                if (++failures > 16 || increment < 1e-5)
                    return false;
            }
        }
        step.source_scale = 1.0;
        step.continuation = false;
        const newton_outcome final_solve = newton_solve(c, x_good, step, gshunt, opt);
        if (!final_solve.converged)
            return false;
        result.solution = std::move(x_good);
        result.iterations = final_solve.iterations;
        result.used_source_stepping = true;
        result.used_gshunt = gshunt > 0.0;
        return true;
    }

} // namespace

dc_result dc_operating_point(circuit& c, const dc_options& opt)
{
    c.finalize();
    dc_result result;

    stamp_params params;
    params.gmin = opt.gmin;

    if (try_plain(c, opt.gshunt, opt, params, result))
        return result;
    const bool retry_shunt = opt.gshunt_retry > opt.gshunt;
    if (retry_shunt && try_plain(c, opt.gshunt_retry, opt, params, result))
        return result;

    const real gshunt = std::max(opt.gshunt, retry_shunt ? opt.gshunt_retry : opt.gshunt);
    if (opt.allow_gmin_stepping && try_gmin_stepping(c, gshunt, opt, result))
        return result;
    if (opt.allow_source_stepping && try_source_stepping(c, gshunt, opt, result))
        return result;

    throw convergence_error("dc operating point did not converge (plain Newton, gmin "
                            "stepping and source stepping all failed)");
}

real node_voltage(const circuit& c, const std::vector<real>& solution,
                  const std::string& node_name)
{
    const auto id = c.find_node(node_name);
    if (!id)
        throw analysis_error("unknown node '" + node_name + "'");
    if (*id < 0)
        return 0.0;
    return solution[static_cast<std::size_t>(*id)];
}

} // namespace acstab::spice
