#include "spice/dc_analysis.h"

#include <algorithm>
#include <charconv>
#include <cmath>

namespace acstab::spice {

namespace {

    struct newton_outcome {
        bool converged = false;
        int iterations = 0;
        bool singular = false; ///< the linearized system could not be factored
    };

    /// Shortest round-trip number text for the non-convergence ladder
    /// diagnostics (std::to_chars: locale-independent, unlike %g).
    [[nodiscard]] std::string format_value(real v)
    {
        char buf[40];
        const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
        return ec == std::errc() ? std::string(buf, ptr) : std::string("?");
    }

    /// One ladder rung's verdict: what the Newton loop did at the point
    /// it gave up.
    [[nodiscard]] std::string describe_outcome(const newton_outcome& out)
    {
        if (out.singular)
            return "singular matrix after " + std::to_string(out.iterations)
                + " iteration(s)";
        return "no convergence in " + std::to_string(out.iterations) + " iteration(s)";
    }

    /// One damped Newton solve at fixed continuation parameters. Updates x
    /// in place; returns convergence status instead of throwing so the
    /// continuation ladder can react.
    newton_outcome newton_solve(circuit& c, std::vector<real>& x, const stamp_params& params,
                                real gshunt, const dc_options& opt)
    {
        const std::size_t n = c.unknown_count();
        const std::size_t nodes = c.node_count();
        newton_outcome out;

        for (int it = 0; it < opt.max_iterations; ++it) {
            system_builder<real> b(n);
            for (const auto& dev : c.devices())
                dev->stamp_dc(x, params, b);
            if (gshunt > 0.0)
                for (std::size_t i = 0; i < nodes; ++i)
                    b.add(static_cast<node_id>(i), static_cast<node_id>(i), gshunt);

            std::vector<real> x_new;
            try {
                x_new = solve_system(b, opt.solver);
            } catch (const numeric_error&) {
                out.singular = true;
                out.iterations = it + 1;
                return out; // singular at this continuation point
            }

            bool converged = true;
            real worst = 0.0;
            for (std::size_t i = 0; i < n; ++i) {
                const real delta = std::fabs(x_new[i] - x[i]);
                const real floor_tol = i < nodes ? opt.vntol : opt.abstol;
                const real tol = opt.reltol * std::max(std::fabs(x_new[i]), std::fabs(x[i]))
                    + floor_tol;
                if (delta > tol)
                    converged = false;
                worst = std::max(worst, delta);
            }

            if (converged) {
                x = std::move(x_new);
                out.converged = true;
                out.iterations = it + 1;
                return out;
            }

            // Damping: clamp the infinity norm of the update.
            real scale = 1.0;
            if (opt.max_step > 0.0 && worst > opt.max_step)
                scale = opt.max_step / worst;
            for (std::size_t i = 0; i < n; ++i)
                x[i] += scale * (x_new[i] - x[i]);
            out.iterations = it + 1;
        }
        return out;
    }

    void reset_devices(circuit& c)
    {
        for (const auto& dev : c.devices())
            dev->dc_begin();
    }

    /// Append one attempted-strategy clause to the ladder diagnostic that
    /// a final convergence_error carries.
    void log_rung(std::string& ladder, const std::string& clause)
    {
        if (!ladder.empty())
            ladder += "; ";
        ladder += clause;
    }

    [[nodiscard]] bool try_plain(circuit& c, real gshunt, const dc_options& opt,
                                 const stamp_params& params, dc_result& result,
                                 std::string& ladder)
    {
        reset_devices(c);
        std::vector<real> x(c.unknown_count(), 0.0);
        const newton_outcome plain = newton_solve(c, x, params, gshunt, opt);
        if (!plain.converged) {
            log_rung(ladder, "plain Newton (gshunt=" + format_value(gshunt) + "): "
                                 + describe_outcome(plain));
            return false;
        }
        result.solution = std::move(x);
        result.iterations = plain.iterations;
        result.used_gshunt = gshunt > 0.0;
        return true;
    }

    [[nodiscard]] bool try_gmin_stepping(circuit& c, real gshunt, const dc_options& opt,
                                         dc_result& result, std::string& ladder)
    {
        reset_devices(c);
        std::vector<real> x(c.unknown_count(), 0.0);
        stamp_params step;
        step.continuation = true;
        for (real g = 1e-2; g >= opt.gmin * 0.99; g *= 0.1) {
            step.gmin = g;
            const newton_outcome out = newton_solve(c, x, step, gshunt, opt);
            if (!out.converged) {
                log_rung(ladder, "gmin stepping (gshunt=" + format_value(gshunt)
                                     + "): stalled at gmin=" + format_value(g) + ", "
                                     + describe_outcome(out));
                return false;
            }
        }
        step.gmin = opt.gmin;
        step.continuation = false;
        const newton_outcome last = newton_solve(c, x, step, gshunt, opt);
        if (!last.converged) {
            log_rung(ladder, "gmin stepping (gshunt=" + format_value(gshunt)
                                 + "): final polish at gmin=" + format_value(opt.gmin)
                                 + " failed, " + describe_outcome(last));
            return false;
        }
        result.solution = std::move(x);
        result.iterations = last.iterations;
        result.used_gmin_stepping = true;
        result.used_gshunt = gshunt > 0.0;
        return true;
    }

    [[nodiscard]] bool try_source_stepping(circuit& c, real gshunt, const dc_options& opt,
                                           dc_result& result, std::string& ladder)
    {
        reset_devices(c);
        std::vector<real> x_good(c.unknown_count(), 0.0);
        stamp_params step;
        step.gmin = opt.gmin;
        step.continuation = true;

        real last_good = 0.0;
        real increment = 0.05;
        int failures = 0;
        newton_outcome last_attempt;
        while (last_good < 1.0) {
            const real scale = std::min(1.0, last_good + increment);
            step.source_scale = scale;
            std::vector<real> x = x_good;
            last_attempt = newton_solve(c, x, step, gshunt, opt);
            if (last_attempt.converged) {
                last_good = scale;
                x_good = std::move(x);
                increment *= 1.5;
            } else {
                increment *= 0.25;
                if (++failures > 16 || increment < 1e-5) {
                    log_rung(ladder, "source stepping (gshunt=" + format_value(gshunt)
                                         + "): stalled at source scale "
                                         + format_value(last_good) + " after "
                                         + std::to_string(failures) + " rejected steps, "
                                         + describe_outcome(last_attempt));
                    return false;
                }
            }
        }
        step.source_scale = 1.0;
        step.continuation = false;
        const newton_outcome final_solve = newton_solve(c, x_good, step, gshunt, opt);
        if (!final_solve.converged) {
            log_rung(ladder, "source stepping (gshunt=" + format_value(gshunt)
                                 + "): full-source polish failed, "
                                 + describe_outcome(final_solve));
            return false;
        }
        result.solution = std::move(x_good);
        result.iterations = final_solve.iterations;
        result.used_source_stepping = true;
        result.used_gshunt = gshunt > 0.0;
        return true;
    }

} // namespace

dc_result dc_operating_point(circuit& c, const dc_options& opt)
{
    c.finalize();
    dc_result result;

    stamp_params params;
    params.gmin = opt.gmin;

    // Every rung the ladder actually attempts records its gshunt value
    // and where the Newton loop gave up, so a non-convergence error tells
    // the user (and the farm's quarantine records) exactly what was
    // tried instead of a generic "did not converge".
    std::string ladder;

    if (try_plain(c, opt.gshunt, opt, params, result, ladder))
        return result;
    const bool retry_shunt = opt.gshunt_retry > opt.gshunt;
    if (retry_shunt && try_plain(c, opt.gshunt_retry, opt, params, result, ladder))
        return result;

    const real gshunt = std::max(opt.gshunt, retry_shunt ? opt.gshunt_retry : opt.gshunt);
    if (opt.allow_gmin_stepping) {
        if (try_gmin_stepping(c, gshunt, opt, result, ladder))
            return result;
    } else {
        log_rung(ladder, "gmin stepping: disabled");
    }
    if (opt.allow_source_stepping) {
        if (try_source_stepping(c, gshunt, opt, result, ladder))
            return result;
    } else {
        log_rung(ladder, "source stepping: disabled");
    }

    throw convergence_error("dc operating point did not converge; attempted: " + ladder);
}

real node_voltage(const circuit& c, const std::vector<real>& solution,
                  const std::string& node_name)
{
    const auto id = c.find_node(node_name);
    if (!id)
        throw analysis_error("unknown node '" + node_name + "'");
    if (*id < 0)
        return 0.0;
    return solution[static_cast<std::size_t>(*id)];
}

} // namespace acstab::spice
