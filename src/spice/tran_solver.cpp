#include "spice/tran_solver.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

namespace acstab::spice {

tran_solver::tran_solver(std::size_t n, const tran_solver_options& opt)
    : n_(n), opt_(opt), builder_(n), resid_(n, 0.0)
{
}

system_builder<real>& tran_solver::begin_stamp()
{
    builder_.matrix().clear_values_keep_capacity();
    std::fill(builder_.rhs().begin(), builder_.rhs().end(), 0.0);
    return builder_;
}

bool tran_solver::pattern_matches() const noexcept
{
    const auto& entries = builder_.matrix().entries();
    if (entries.size() != entry_row_.size())
        return false;
    for (std::size_t k = 0; k < entries.size(); ++k)
        if (entries[k].row != entry_row_[k] || entries[k].col != entry_col_[k])
            return false;
    return true;
}

void tran_solver::rebuild_pattern()
{
    const auto& entries = builder_.matrix().entries();
    const std::size_t m = entries.size();

    entry_row_.resize(m);
    entry_col_.resize(m);
    for (std::size_t k = 0; k < m; ++k) {
        entry_row_[k] = entries[k].row;
        entry_col_[k] = entries[k].col;
    }

    // Sort entry indices by (col, row) — the csc_matrix triplet
    // constructor's order — keeping the stamp order within duplicate
    // coordinates so the slot assignment below is deterministic.
    std::vector<std::size_t> order(m);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return entry_col_[a] != entry_col_[b] ? entry_col_[a] < entry_col_[b]
                                              : entry_row_[a] < entry_row_[b];
    });

    std::vector<std::size_t> col_ptr(n_ + 1, 0);
    std::vector<std::size_t> row_idx;
    slot_.assign(m, 0);
    std::size_t slots = 0;
    for (std::size_t k = 0; k < m; ++k) {
        const std::size_t e = order[k];
        if (k == 0 || entry_col_[e] != entry_col_[order[k - 1]]
            || entry_row_[e] != entry_row_[order[k - 1]]) {
            row_idx.push_back(entry_row_[e]);
            ++col_ptr[entry_col_[e] + 1];
            ++slots;
        }
        slot_[e] = slots - 1;
    }
    for (std::size_t c = 0; c < n_; ++c)
        col_ptr[c + 1] += col_ptr[c];

    // Not valid until the symbolic analysis below succeeds: a singular
    // first assembly must not leave a half-built pattern behind.
    has_pattern_ = false;
    csc_ = numeric::csc_matrix<real>(n_, n_, std::move(col_ptr), std::move(row_idx),
                                     std::vector<real>(slots, 0.0));
    deposit();
    rebuild_symbolic();
    has_pattern_ = true;
}

void tran_solver::rebuild_symbolic()
{
    numeric::lu_options lu;
    lu.pivot_tol = opt_.pivot_tol;
    lu.ordering = opt_.ordering;
    sym_ = std::make_shared<const numeric::symbolic_lu<real>>(csc_, lu);
    num_ = std::make_unique<numeric::numeric_lu<real>>(sym_);
    num_->set_batch_kernel(opt_.simd ? numeric::batch_kernel::simd
                                     : numeric::batch_kernel::scalar);
    num_->set_supernodal(opt_.supernodal);
    num_->refactor(csc_);
    ++stats_.symbolic_builds;
}

void tran_solver::deposit()
{
    const auto& entries = builder_.matrix().entries();
    auto& values = csc_.values_mut();
    std::fill(values.begin(), values.end(), 0.0);
    for (std::size_t k = 0; k < entries.size(); ++k)
        values[slot_[k]] += entries[k].value;
}

real tran_solver::residual_rel(const std::vector<real>& x)
{
    csc_.multiply_into(x.data(), resid_.data());
    const auto& rhs = builder_.rhs();
    real num = 0.0;
    real den = 0.0;
    for (std::size_t i = 0; i < n_; ++i) {
        num = std::max(num, std::fabs(resid_[i] - rhs[i]));
        den = std::max(den, std::fabs(rhs[i]));
    }
    if (den == 0.0)
        den = 1.0;
    return num / den;
}

std::vector<real> tran_solver::solve()
{
    ++stats_.solves;

    if (!has_pattern_) {
        rebuild_pattern();
    } else if (!pattern_matches()) {
        ++stats_.pattern_rebuilds;
        rebuild_pattern();
    } else {
        deposit();
        try {
            num_->refactor(csc_);
        } catch (const numeric_error&) {
            // Zero pivot under the reused order: re-pivot once before
            // declaring the step singular.
            ++stats_.guard_rebuilds;
            rebuild_symbolic();
        }
    }

    std::vector<real> x = builder_.rhs();
    num_->solve_in_place(x.data());

    if (num_->growth() > opt_.growth_limit) {
        ++stats_.guard_probes;
        if (residual_rel(x) > opt_.residual_tol) {
            ++stats_.guard_rebuilds;
            rebuild_symbolic();
            x = builder_.rhs();
            num_->solve_in_place(x.data());
        }
    }
    return x;
}

} // namespace acstab::spice
