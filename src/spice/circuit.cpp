#include "spice/circuit.h"

#include <algorithm>

namespace acstab::spice {

namespace {

    [[nodiscard]] bool is_ground_name(std::string_view name) noexcept
    {
        return name == "0" || name == "gnd" || name == "GND" || name == "Gnd";
    }

} // namespace

node_id circuit::node(std::string_view name)
{
    if (is_ground_name(name))
        return ground_node;
    const std::string key(name);
    if (const auto it = node_index_.find(key); it != node_index_.end())
        return it->second;
    const node_id id = static_cast<node_id>(node_names_.size());
    node_names_.push_back(key);
    node_index_.emplace(key, id);
    finalized_ = false;
    return id;
}

std::optional<node_id> circuit::find_node(std::string_view name) const
{
    if (is_ground_name(name))
        return ground_node;
    const auto it = node_index_.find(std::string(name));
    if (it == node_index_.end())
        return std::nullopt;
    return it->second;
}

const std::string& circuit::node_name(node_id n) const
{
    static const std::string ground_name = "0";
    if (n < 0)
        return ground_name;
    if (static_cast<std::size_t>(n) >= node_names_.size())
        throw circuit_error("node id out of range");
    return node_names_[static_cast<std::size_t>(n)];
}

device& circuit::add_device(std::unique_ptr<device> dev)
{
    if (!dev)
        throw circuit_error("null device");
    if (device_index_.contains(dev->name()))
        throw circuit_error("duplicate device name '" + dev->name() + "'");
    device_index_.emplace(dev->name(), devices_.size());
    devices_.push_back(std::move(dev));
    finalized_ = false;
    return *devices_.back();
}

void circuit::remove_device(std::string_view name)
{
    const auto it = device_index_.find(std::string(name));
    if (it == device_index_.end())
        throw circuit_error("cannot remove unknown device '" + std::string(name) + "'");
    const std::size_t pos = it->second;
    devices_.erase(devices_.begin() + static_cast<std::ptrdiff_t>(pos));
    device_index_.erase(it);
    for (auto& [key, idx] : device_index_)
        if (idx > pos)
            --idx;
    finalized_ = false;
}

device* circuit::find_device(std::string_view name) noexcept
{
    const auto it = device_index_.find(std::string(name));
    return it == device_index_.end() ? nullptr : devices_[it->second].get();
}

const device* circuit::find_device(std::string_view name) const noexcept
{
    const auto it = device_index_.find(std::string(name));
    return it == device_index_.end() ? nullptr : devices_[it->second].get();
}

void circuit::finalize()
{
    if (finalized_)
        return;
    node_id next = static_cast<node_id>(node_count());
    branch_count_ = 0;
    for (const auto& dev : devices_) {
        const std::size_t extras = dev->extra_unknown_count();
        if (extras > 0) {
            dev->assign_extra_unknowns(next);
            next += static_cast<node_id>(extras);
            branch_count_ += extras;
        }
        dev->bind(*this);
    }
    finalized_ = true;
}

std::size_t circuit::unknown_count() const
{
    if (!finalized_)
        throw circuit_error("circuit not finalized");
    return node_count() + branch_count_;
}

std::size_t circuit::branch_count() const
{
    if (!finalized_)
        throw circuit_error("circuit not finalized");
    return branch_count_;
}

std::vector<bool> circuit::source_forced_nodes() const
{
    if (!finalized_)
        throw circuit_error("circuit not finalized");
    // Union-find over ideal-voltage-source edges, seeded at ground.
    const std::size_t n = node_count();
    std::vector<int> parent(n + 1);
    for (std::size_t i = 0; i <= n; ++i)
        parent[i] = static_cast<int>(i);
    const auto find = [&parent](int v) {
        while (parent[static_cast<std::size_t>(v)] != v) {
            parent[static_cast<std::size_t>(v)]
                = parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(v)])];
            v = parent[static_cast<std::size_t>(v)];
        }
        return v;
    };
    const auto unite = [&parent, &find](int a, int b) {
        parent[static_cast<std::size_t>(find(a))] = find(b);
    };
    const int ground_slot = static_cast<int>(n);
    const auto slot = [ground_slot](node_id id) { return id < 0 ? ground_slot : id; };

    for (const auto& dev : devices_) {
        if (!dev->is_ideal_voltage_source())
            continue;
        const auto& nodes = dev->nodes();
        if (nodes.size() >= 2)
            unite(slot(nodes[0]), slot(nodes[1]));
    }
    std::vector<bool> forced(n, false);
    for (std::size_t i = 0; i < n; ++i)
        forced[i] = find(static_cast<int>(i)) == find(ground_slot);
    return forced;
}

} // namespace acstab::spice
