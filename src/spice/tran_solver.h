// Shared-symbolic linear solver for the transient Newton loop.
//
// The companion-model stamp pattern is fixed across timesteps and Newton
// iterations — device topology never changes mid-run, only conductance
// and equivalent-current values do — so the sweep engine's central trick
// applies to the time domain: run the (AMD-ordered) symbolic analysis
// ONCE and refactor numerically in place for every Newton solve. Devices
// still stamp through the familiar system_builder; instead of
// compressing a fresh CSC matrix and re-running the symbolic analysis
// per solve, the k-th add() of a stamp pass deposits into a recorded CSC
// slot (the slot map is built from the first pass's (row, col) entry
// sequence, sorted exactly like the csc_matrix triplet constructor).
//
// The pattern is *observed*, never assumed: every stamp pass is verified
// against the recorded (row, col) sequence in O(nnz), because
// triplet_matrix::add drops exact-zero values — a device conductance
// crossing zero (a MOSFET entering cutoff, a junction with vanishing gm)
// changes the stamp sequence even though the topology did not. Any
// mismatch is a pattern-breaking event: the CSC pattern, slot map and
// symbolic factorization are rebuilt and the run continues.
//
// Numeric safety reuses the PR 2 two-tier guard. The refactorization's
// element growth is a free witness; when it exceeds growth_limit a
// single SpMV residual probe checks the solution against the assembled
// matrix, and a failed probe re-pivots (fresh symbolic analysis on the
// current values) and re-solves. A zero pivot during refactorization
// triggers the same re-pivot before the step is declared singular.
#ifndef ACSTAB_SPICE_TRAN_SOLVER_H
#define ACSTAB_SPICE_TRAN_SOLVER_H

#include <cstddef>
#include <memory>
#include <vector>

#include "numeric/sparse_factor.h"
#include "numeric/sparse_matrix.h"
#include "spice/device.h"

namespace acstab::spice {

struct tran_solver_options {
    /// Fill-reducing column pre-ordering of the shared symbolic LU.
    numeric::column_ordering ordering = numeric::column_ordering::amd_approx;
    /// Blocked/supernodal refactorization (numeric_lu::set_supernodal).
    bool supernodal = true;
    /// Batched back-solve kernel selection. Transient right-hand sides are
    /// real and solved one at a time, where numeric_lu always runs the
    /// scalar kernel; accepted for CLI symmetry with the sweep engine.
    bool simd = true;
    /// Threshold-pivoting tolerance of the symbolic analysis.
    double pivot_tol = 0.1;
    /// Element growth above which the residual probe runs (PR 2 witness).
    real growth_limit = 1e4;
    /// Relative residual above which the reused pivot order is declared
    /// stale and the symbolic factorization is rebuilt.
    real residual_tol = 1e-10;
};

/// Counters for --solver-stats and the equivalence/regression tests.
struct tran_solver_stats {
    std::size_t solves = 0;           ///< Newton solves served
    std::size_t symbolic_builds = 0;  ///< symbolic analyses run (1 in the steady state)
    std::size_t pattern_rebuilds = 0; ///< stamp-sequence changes observed
    std::size_t guard_probes = 0;     ///< growth witness tripped, residual probed
    std::size_t guard_rebuilds = 0;   ///< stale pivots / zero pivots that re-pivoted
};

class tran_solver {
public:
    explicit tran_solver(std::size_t n, const tran_solver_options& opt = {});

    /// Builder for the next stamp pass, with matrix and RHS cleared. The
    /// triplet capacity and the CSC pattern behind it are reused.
    [[nodiscard]] system_builder<real>& begin_stamp();

    /// Deposit the stamped values into the fixed CSC pattern, refactor
    /// against the shared symbolic object and solve for the stamped RHS.
    /// Throws numeric_error when the system is singular even under a
    /// fresh pivot order.
    [[nodiscard]] std::vector<real> solve();

    [[nodiscard]] const tran_solver_stats& stats() const noexcept { return stats_; }

private:
    /// True when the current stamp sequence matches the recorded one.
    [[nodiscard]] bool pattern_matches() const noexcept;
    /// Rebuild CSC pattern + slot map from the current triplet entries,
    /// then re-run the symbolic analysis.
    void rebuild_pattern();
    /// Re-run the symbolic analysis on the current CSC values (fresh
    /// pivot order) and refactor.
    void rebuild_symbolic();
    /// Scatter triplet values into the CSC value array via the slot map.
    void deposit();
    /// Relative residual ||Ax - b||_inf / ||b||_inf of a candidate x.
    [[nodiscard]] real residual_rel(const std::vector<real>& x);

    std::size_t n_;
    tran_solver_options opt_;
    system_builder<real> builder_;

    // Fixed CSC pattern and the stamp-sequence slot map over it.
    bool has_pattern_ = false;
    numeric::csc_matrix<real> csc_;
    std::vector<std::size_t> slot_;      ///< triplet entry k -> CSC value slot
    std::vector<std::size_t> entry_row_; ///< recorded stamp sequence
    std::vector<std::size_t> entry_col_;

    std::shared_ptr<const numeric::symbolic_lu<real>> sym_;
    std::unique_ptr<numeric::numeric_lu<real>> num_;
    std::vector<real> resid_; ///< SpMV probe scratch

    tran_solver_stats stats_;
};

} // namespace acstab::spice

#endif // ACSTAB_SPICE_TRAN_SOLVER_H
