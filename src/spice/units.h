// SPICE engineering-unit parsing and formatting.
//
// Accepts the classic suffixes (f p n u m k meg g t, case-insensitive,
// trailing unit letters ignored: "10kOhm" == "10k") and renders numbers
// back in engineering notation for reports.
#ifndef ACSTAB_SPICE_UNITS_H
#define ACSTAB_SPICE_UNITS_H

#include <optional>
#include <string>
#include <string_view>

#include "common/types.h"

namespace acstab::spice {

/// Parse a SPICE number such as "2.2u", "10MEG", "1e-9", "4k7" is NOT
/// supported (that is an E-series idiom, not SPICE). Returns nullopt on
/// malformed input.
[[nodiscard]] std::optional<real> try_parse_spice_number(std::string_view text);

/// Parse or throw acstab::parse_error.
[[nodiscard]] real parse_spice_number(std::string_view text);

/// Format a value in engineering notation, e.g. 3.162e6 -> "3.162M".
/// `digits` controls significant digits.
[[nodiscard]] std::string format_engineering(real value, int digits = 4);

/// Format a frequency with trailing "Hz", e.g. "3.162MHz".
[[nodiscard]] std::string format_frequency(real hertz, int digits = 4);

} // namespace acstab::spice

#endif // ACSTAB_SPICE_UNITS_H
