#include "spice/parser/netlist_parser.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/error.h"
#include "spice/devices/bjt.h"
#include "spice/devices/controlled.h"
#include "spice/devices/diode.h"
#include "spice/devices/mosfet.h"
#include "spice/devices/passive.h"
#include "spice/devices/sources.h"
#include "spice/units.h"

namespace acstab::spice {

namespace {

    [[nodiscard]] std::string lower(std::string s)
    {
        for (char& c : s)
            c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        return s;
    }

    struct logical_line {
        int number = 0;
        std::vector<std::string> tokens;
    };

    /// Strip comments, join continuations, normalize separators, tokenize.
    [[nodiscard]] std::vector<logical_line> tokenize(std::string_view text, std::string& title)
    {
        std::vector<std::pair<int, std::string>> raw;
        {
            std::istringstream in{std::string(text)};
            std::string line;
            int number = 0;
            while (std::getline(in, line)) {
                ++number;
                // Trailing comments.
                for (const char* marker : {";", "$ ", "//"}) {
                    const std::size_t pos = line.find(marker);
                    if (pos != std::string::npos)
                        line.erase(pos);
                }
                raw.emplace_back(number, line);
            }
        }

        // SPICE convention: the first line is always the title, never a
        // device or card.
        std::size_t start = 0;
        if (!raw.empty()) {
            const std::string& first = raw[0].second;
            const std::size_t i = first.find_first_not_of(" \t\r");
            if (i != std::string::npos)
                title = first.substr(i);
            start = 1;
        }

        std::vector<logical_line> lines;
        for (std::size_t k = start; k < raw.size(); ++k) {
            std::string line = raw[k].second;
            const std::size_t first = line.find_first_not_of(" \t\r");
            if (first == std::string::npos)
                continue;
            if (line[first] == '*')
                continue;
            if (line[first] == '+') {
                if (lines.empty())
                    throw parse_error("continuation with no previous line", raw[k].first);
                line = line.substr(first + 1);
            } else {
                line = line.substr(first);
            }

            // Normalize separators so PULSE(1 2) and key=val split cleanly.
            std::string spaced;
            spaced.reserve(line.size() + 8);
            for (const char c : line) {
                if (c == '(' || c == ')' || c == '=' || c == ',') {
                    spaced.push_back(' ');
                    spaced.push_back(c);
                    spaced.push_back(' ');
                } else {
                    spaced.push_back(c);
                }
            }

            std::istringstream ts(spaced);
            std::vector<std::string> tokens;
            std::string tok;
            bool in_brace = false;
            std::string brace;
            while (ts >> tok) {
                // Re-join {...} expressions split by the normalizer.
                if (!in_brace && tok.front() == '{' && tok.back() != '}') {
                    in_brace = true;
                    brace = tok;
                    continue;
                }
                if (in_brace) {
                    brace += tok;
                    if (tok.back() == '}') {
                        tokens.push_back(brace);
                        in_brace = false;
                    }
                    continue;
                }
                tokens.push_back(tok);
            }
            if (in_brace)
                throw parse_error("unterminated '{' expression", raw[k].first);
            if (tokens.empty())
                continue;

            const bool continuation = raw[k].second.find_first_not_of(" \t\r")
                    != std::string::npos
                && raw[k].second[raw[k].second.find_first_not_of(" \t\r")] == '+';
            if (continuation && !lines.empty()) {
                lines.back().tokens.insert(lines.back().tokens.end(), tokens.begin(),
                                           tokens.end());
            } else {
                lines.push_back({raw[k].first, std::move(tokens)});
            }
        }
        return lines;
    }

    struct model_def {
        std::string type; // d, npn, pnp, nmos, pmos
        std::unordered_map<std::string, real> params;
        int line = 0;
    };

    struct subckt_def {
        std::vector<std::string> ports;
        std::vector<logical_line> body;
    };

    class netlist_builder {
    public:
        netlist_builder(parsed_netlist& out, const parse_options& opt) : out_(out), opt_(opt)
        {
            // Overrides are seeded before any card is read, so `.param`
            // expressions that reference an overridden name resolve to the
            // override value.
            for (const auto& [name, v] : opt_.param_overrides) {
                const std::string key = lower(name);
                out_.parameters[key] = v;
                overridden_.insert(key);
            }
        }

        void run(const std::vector<logical_line>& lines)
        {
            collect_definitions(lines);
            for (const logical_line& line : main_body_)
                dispatch(line, /*prefix=*/"", nullptr, 0);
        }

    private:
        [[noreturn]] void fail(const logical_line& line, const std::string& what) const
        {
            throw parse_error(what, line.number);
        }

        [[nodiscard]] real value(const logical_line& line, const std::string& token) const
        {
            if (token.size() >= 2 && token.front() == '{' && token.back() == '}')
                return evaluate_expression(token.substr(1, token.size() - 2), out_.parameters);
            const auto parsed = try_parse_spice_number(token);
            if (!parsed)
                fail(line, "bad value '" + token + "'");
            return *parsed;
        }

        void collect_definitions(const std::vector<logical_line>& lines)
        {
            const subckt_def* open = nullptr;
            std::string open_name;
            subckt_def pending;
            for (const logical_line& line : lines) {
                const std::string head = lower(line.tokens[0]);
                if (head == ".subckt") {
                    if (open != nullptr)
                        fail(line, "nested .subckt is not supported");
                    if (line.tokens.size() < 3)
                        fail(line, ".subckt needs a name and at least one port");
                    open_name = lower(line.tokens[1]);
                    pending = subckt_def{};
                    for (std::size_t i = 2; i < line.tokens.size(); ++i)
                        pending.ports.push_back(lower(line.tokens[i]));
                    open = &pending;
                    continue;
                }
                if (head == ".ends") {
                    if (open == nullptr)
                        fail(line, ".ends without .subckt");
                    subckts_[open_name] = std::move(pending);
                    open = nullptr;
                    continue;
                }
                if (open != nullptr) {
                    pending.body.push_back(line);
                    continue;
                }
                if (head == ".param") {
                    parse_param(line);
                    continue;
                }
                if (head == ".model") {
                    parse_model(line);
                    continue;
                }
                if (head == ".end")
                    continue;
                main_body_.push_back(line);
            }
            if (open != nullptr)
                throw parse_error(".subckt '" + open_name + "' never closed");
        }

        void parse_param(const logical_line& line)
        {
            // .param a = 1k b = {a*2}
            std::size_t i = 1;
            while (i < line.tokens.size()) {
                if (i + 2 >= line.tokens.size() || line.tokens[i + 1] != "=")
                    fail(line, ".param expects name = value pairs");
                const std::string name = lower(line.tokens[i]);
                const std::string& tok = line.tokens[i + 2];
                real v = 0.0;
                if (tok.size() >= 2 && tok.front() == '{' && tok.back() == '}')
                    v = evaluate_expression(tok.substr(1, tok.size() - 2), out_.parameters);
                else if (const auto parsed = try_parse_spice_number(tok); parsed)
                    v = *parsed;
                else
                    v = evaluate_expression(tok, out_.parameters);
                // An externally overridden parameter keeps its override;
                // the card still parses (and its expression still
                // evaluates) so errors surface identically either way.
                if (overridden_.find(name) == overridden_.end())
                    out_.parameters[name] = v;
                i += 3;
            }
        }

        void parse_model(const logical_line& line)
        {
            if (line.tokens.size() < 3)
                fail(line, ".model needs a name and a type");
            model_def def;
            def.type = lower(line.tokens[2]);
            def.line = line.number;
            std::size_t i = 3;
            while (i < line.tokens.size()) {
                const std::string& tok = line.tokens[i];
                if (tok == "(" || tok == ")") {
                    ++i;
                    continue;
                }
                if (i + 2 < line.tokens.size() && line.tokens[i + 1] == "=") {
                    def.params[lower(tok)] = value(line, line.tokens[i + 2]);
                    i += 3;
                } else {
                    fail(line, "bad .model parameter syntax near '" + tok + "'");
                }
            }
            models_[lower(line.tokens[1])] = std::move(def);
        }

        [[nodiscard]] const model_def& model(const logical_line& line,
                                             const std::string& name) const
        {
            const auto it = models_.find(lower(name));
            if (it == models_.end())
                fail(line, "unknown model '" + name + "'");
            return it->second;
        }

        [[nodiscard]] node_id map_node(const std::string& token, const std::string& prefix,
                                       const std::unordered_map<std::string, std::string>* ports)
        {
            const std::string name = lower(token);
            if (name == "0" || name == "gnd")
                return out_.ckt.node("0");
            if (ports != nullptr) {
                if (const auto it = ports->find(name); it != ports->end())
                    return out_.ckt.node(it->second);
            }
            return out_.ckt.node(prefix + name);
        }

        void dispatch(const logical_line& line, const std::string& prefix,
                      const std::unordered_map<std::string, std::string>* ports, int depth)
        {
            const std::string& head = line.tokens[0];
            const char kind = static_cast<char>(std::tolower(static_cast<unsigned char>(head[0])));
            const std::string name = prefix + lower(head);
            const auto node_at = [&](std::size_t i) -> node_id {
                if (i >= line.tokens.size())
                    fail(line, "missing node");
                return map_node(line.tokens[i], prefix, ports);
            };

            if (head[0] == '.') {
                parse_analysis(line);
                return;
            }

            switch (kind) {
            case 'r':
                require(line, 4);
                out_.ckt.add<resistor>(name, node_at(1), node_at(2), value(line, line.tokens[3]));
                return;
            case 'c':
                require(line, 4);
                out_.ckt.add<capacitor>(name, node_at(1), node_at(2),
                                        value(line, line.tokens[3]));
                return;
            case 'l':
                require(line, 4);
                out_.ckt.add<inductor>(name, node_at(1), node_at(2), value(line, line.tokens[3]));
                return;
            case 'v':
                out_.ckt.add<vsource>(name, node_at(1), node_at(2), parse_source(line));
                return;
            case 'i':
                out_.ckt.add<isource>(name, node_at(1), node_at(2), parse_source(line));
                return;
            case 'e':
                require(line, 6);
                out_.ckt.add<vcvs>(name, node_at(1), node_at(2), node_at(3), node_at(4),
                                   value(line, line.tokens[5]));
                return;
            case 'g':
                require(line, 6);
                out_.ckt.add<vccs>(name, node_at(1), node_at(2), node_at(3), node_at(4),
                                   value(line, line.tokens[5]));
                return;
            case 'f':
                require(line, 5);
                out_.ckt.add<cccs>(name, node_at(1), node_at(2), prefix + lower(line.tokens[3]),
                                   value(line, line.tokens[4]));
                return;
            case 'h':
                require(line, 5);
                out_.ckt.add<ccvs>(name, node_at(1), node_at(2), prefix + lower(line.tokens[3]),
                                   value(line, line.tokens[4]));
                return;
            case 'd':
                require(line, 4);
                out_.ckt.add<diode>(name, node_at(1), node_at(2),
                                    diode_from(model(line, line.tokens[3]), line));
                return;
            case 'q':
                require(line, 5);
                out_.ckt.add<bjt>(name, node_at(1), node_at(2), node_at(3),
                                  bjt_from(model(line, line.tokens[4]), line));
                return;
            case 'm':
                parse_mosfet(line, name, prefix, ports);
                return;
            case 'x':
                expand_subckt(line, prefix, ports, depth);
                return;
            default:
                fail(line, std::string("unknown device type '") + head[0] + "'");
            }
        }

        void require(const logical_line& line, std::size_t tokens) const
        {
            if (line.tokens.size() < tokens)
                fail(line, "too few fields for device '" + line.tokens[0] + "'");
        }

        [[nodiscard]] waveform_spec parse_source(const logical_line& line)
        {
            waveform_spec spec;
            std::size_t i = 3;
            // Optional leading plain DC value.
            if (i < line.tokens.size()) {
                if (const auto v = try_parse_spice_number(line.tokens[i]); v) {
                    spec.dc = *v;
                    ++i;
                }
            }
            while (i < line.tokens.size()) {
                const std::string key = lower(line.tokens[i]);
                if (key == "dc") {
                    if (i + 1 >= line.tokens.size())
                        fail(line, "DC needs a value");
                    spec.dc = value(line, line.tokens[i + 1]);
                    i += 2;
                } else if (key == "ac") {
                    if (i + 1 >= line.tokens.size())
                        fail(line, "AC needs a magnitude");
                    spec.ac_mag = value(line, line.tokens[i + 1]);
                    i += 2;
                    if (i < line.tokens.size()) {
                        if (const auto ph = try_parse_spice_number(line.tokens[i]); ph) {
                            spec.ac_phase_deg = *ph;
                            ++i;
                        }
                    }
                } else if (key == "pulse" || key == "sin" || key == "pwl" || key == "step"
                           || key == "exp") {
                    const std::vector<real> args = paren_args(line, i);
                    apply_shape(line, spec, key, args);
                } else {
                    fail(line, "unknown source keyword '" + key + "'");
                }
            }
            return spec;
        }

        /// Consume "name ( a b c )" starting at i (i points at name).
        [[nodiscard]] std::vector<real> paren_args(const logical_line& line, std::size_t& i)
        {
            ++i;
            if (i >= line.tokens.size() || line.tokens[i] != "(")
                fail(line, "expected '(' after source shape");
            ++i;
            std::vector<real> args;
            while (i < line.tokens.size() && line.tokens[i] != ")")
                args.push_back(value(line, line.tokens[i++]));
            if (i >= line.tokens.size())
                fail(line, "missing ')' in source shape");
            ++i;
            return args;
        }

        void apply_shape(const logical_line& line, waveform_spec& spec, const std::string& key,
                         const std::vector<real>& a)
        {
            const real dc = spec.dc;
            const real ac = spec.ac_mag;
            const real ph = spec.ac_phase_deg;
            if (key == "pulse") {
                if (a.size() < 7)
                    fail(line, "PULSE needs 7 arguments");
                spec = waveform_spec::make_pulse(a[0], a[1], a[2], a[3], a[4], a[5], a[6]);
            } else if (key == "step") {
                if (a.size() < 4)
                    fail(line, "STEP needs v1 v2 delay rise");
                spec = waveform_spec::make_step(a[0], a[1], a[2], a[3]);
            } else if (key == "sin") {
                if (a.size() < 3)
                    fail(line, "SIN needs at least vo va freq");
                spec = waveform_spec::make_sine(a[0], a[1], a[2], a.size() > 3 ? a[3] : 0.0,
                                                a.size() > 4 ? a[4] : 0.0);
            } else if (key == "pwl") {
                if (a.size() < 4 || a.size() % 2 != 0)
                    fail(line, "PWL needs an even number (>= 4) of arguments");
                std::vector<real> t;
                std::vector<real> v;
                for (std::size_t k = 0; k < a.size(); k += 2) {
                    t.push_back(a[k]);
                    v.push_back(a[k + 1]);
                }
                spec = waveform_spec::make_pwl(std::move(t), std::move(v));
            } else if (key == "exp") {
                if (a.size() < 6)
                    fail(line, "EXP needs 6 arguments");
                spec.kind = waveform_kind::exponential;
                spec.v1 = a[0];
                spec.v2 = a[1];
                spec.delay = a[2];
                spec.tau1 = a[3];
                spec.delay2 = a[4];
                spec.tau2 = a[5];
                spec.dc = a[0];
            }
            // Shapes define their own operating-point value; restore the
            // AC stimulus parsed before the shape keyword.
            (void)dc;
            spec.ac_mag = ac;
            spec.ac_phase_deg = ph;
        }

        [[nodiscard]] static real get(const model_def& m, const char* key, real fallback)
        {
            const auto it = m.params.find(key);
            return it == m.params.end() ? fallback : it->second;
        }

        /// Device temperature: a model-local `temp=` wins, then the parse
        /// option's campaign override, then the device default.
        [[nodiscard]] real device_temp(const model_def& m, real model_default) const
        {
            return get(m, "temp", opt_.temp_celsius.value_or(model_default));
        }

        [[nodiscard]] diode_model diode_from(const model_def& m, const logical_line& line) const
        {
            if (m.type != "d")
                fail(line, "model is not a diode");
            diode_model d;
            d.temp = device_temp(m, d.temp);
            d.is = get(m, "is", d.is);
            d.n = get(m, "n", d.n);
            d.cj0 = get(m, "cjo", get(m, "cj0", d.cj0));
            d.vj = get(m, "vj", d.vj);
            d.m = get(m, "m", d.m);
            d.fc = get(m, "fc", d.fc);
            d.tt = get(m, "tt", d.tt);
            return d;
        }

        [[nodiscard]] bjt_model bjt_from(const model_def& m, const logical_line& line) const
        {
            if (m.type != "npn" && m.type != "pnp")
                fail(line, "model is not a BJT");
            bjt_model q;
            q.polarity = m.type == "npn" ? bjt_polarity::npn : bjt_polarity::pnp;
            q.temp = device_temp(m, q.temp);
            q.is = get(m, "is", q.is);
            q.bf = get(m, "bf", q.bf);
            q.br = get(m, "br", q.br);
            q.nf = get(m, "nf", q.nf);
            q.nr = get(m, "nr", q.nr);
            q.vaf = get(m, "vaf", q.vaf);
            q.cje = get(m, "cje", q.cje);
            q.vje = get(m, "vje", q.vje);
            q.mje = get(m, "mje", q.mje);
            q.cjc = get(m, "cjc", q.cjc);
            q.vjc = get(m, "vjc", q.vjc);
            q.mjc = get(m, "mjc", q.mjc);
            q.fc = get(m, "fc", q.fc);
            q.tf = get(m, "tf", q.tf);
            q.tr = get(m, "tr", q.tr);
            return q;
        }

        void parse_mosfet(const logical_line& line, const std::string& name,
                          const std::string& prefix,
                          const std::unordered_map<std::string, std::string>* ports)
        {
            require(line, 6);
            const model_def& m = model(line, line.tokens[5]);
            if (m.type != "nmos" && m.type != "pmos")
                fail(line, "model is not a MOSFET");
            mosfet_model mm;
            mm.polarity = m.type == "nmos" ? mos_polarity::nmos : mos_polarity::pmos;
            mm.vto = get(m, "vto", mm.vto);
            mm.kp = get(m, "kp", mm.kp);
            mm.lambda = get(m, "lambda", mm.lambda);
            mm.gamma = get(m, "gamma", mm.gamma);
            mm.phi = get(m, "phi", mm.phi);
            mm.cox = get(m, "cox", mm.cox);
            mm.cgso = get(m, "cgso", mm.cgso);
            mm.cgdo = get(m, "cgdo", mm.cgdo);
            mm.cbd = get(m, "cbd", mm.cbd);
            mm.cbs = get(m, "cbs", mm.cbs);

            real w = 10e-6;
            real l = 1e-6;
            std::size_t i = 6;
            while (i < line.tokens.size()) {
                if (i + 2 >= line.tokens.size() || line.tokens[i + 1] != "=")
                    fail(line, "MOSFET geometry must be W=val L=val");
                const std::string key = lower(line.tokens[i]);
                const real v = value(line, line.tokens[i + 2]);
                if (key == "w")
                    w = v;
                else if (key == "l")
                    l = v;
                else
                    fail(line, "unknown MOSFET parameter '" + key + "'");
                i += 3;
            }
            const auto node_at = [&](std::size_t k) {
                return map_node(line.tokens[k], prefix, ports);
            };
            out_.ckt.add<mosfet>(name, node_at(1), node_at(2), node_at(3), node_at(4), mm, w, l);
        }

        void expand_subckt(const logical_line& line, const std::string& prefix,
                           const std::unordered_map<std::string, std::string>* outer_ports,
                           int depth)
        {
            if (depth > 16)
                fail(line, "subcircuit nesting too deep (cycle?)");
            if (line.tokens.size() < 3)
                fail(line, "X line needs nodes and a subcircuit name");
            const std::string sub_name = lower(line.tokens.back());
            const auto it = subckts_.find(sub_name);
            if (it == subckts_.end())
                fail(line, "unknown subcircuit '" + sub_name + "'");
            const subckt_def& def = it->second;
            const std::size_t node_count = line.tokens.size() - 2;
            if (node_count != def.ports.size())
                fail(line, "subcircuit '" + sub_name + "' expects "
                               + std::to_string(def.ports.size()) + " nodes, got "
                               + std::to_string(node_count));

            // Map formal ports to the caller's (already-mapped) node names.
            std::unordered_map<std::string, std::string> port_map;
            for (std::size_t k = 0; k < def.ports.size(); ++k) {
                const node_id outer = map_node(line.tokens[k + 1], prefix, outer_ports);
                port_map[def.ports[k]] = out_.ckt.node_name(outer);
            }
            const std::string inner_prefix = prefix + lower(line.tokens[0]) + ".";
            for (const logical_line& body : def.body)
                dispatch(body, inner_prefix, &port_map, depth + 1);
        }

        void parse_analysis(const logical_line& line)
        {
            const std::string head = lower(line.tokens[0]);
            analysis_card card;
            if (head == ".op") {
                card.kind = analysis_kind::op;
            } else if (head == ".ac") {
                // .ac dec ppd fstart fstop
                if (line.tokens.size() < 5 || lower(line.tokens[1]) != "dec")
                    fail(line, ".ac expects: .ac dec ppd fstart fstop");
                card.kind = analysis_kind::ac;
                card.points_per_decade
                    = static_cast<std::size_t>(value(line, line.tokens[2]));
                card.fstart = value(line, line.tokens[3]);
                card.fstop = value(line, line.tokens[4]);
            } else if (head == ".tran") {
                if (line.tokens.size() < 3)
                    fail(line, ".tran expects: .tran dt tstop");
                card.kind = analysis_kind::tran;
                card.dt = value(line, line.tokens[1]);
                card.tstop = value(line, line.tokens[2]);
            } else if (head == ".temp") {
                // Campaign card: the TEMP axis of a corner farm grid.
                if (line.tokens.size() < 2)
                    fail(line, ".temp expects at least one temperature");
                for (std::size_t i = 1; i < line.tokens.size(); ++i)
                    out_.temp_values.push_back(value(line, line.tokens[i]));
                return;
            } else if (head == ".corner") {
                // Campaign card: .corner name [param = value ...]
                if (line.tokens.size() < 2)
                    fail(line, ".corner expects a name");
                corner_card corner;
                corner.name = lower(line.tokens[1]);
                std::size_t i = 2;
                while (i < line.tokens.size()) {
                    if (i + 2 >= line.tokens.size() || line.tokens[i + 1] != "=")
                        fail(line, ".corner expects param = value pairs");
                    corner.overrides[lower(line.tokens[i])] = value(line, line.tokens[i + 2]);
                    i += 3;
                }
                out_.corners.push_back(std::move(corner));
                return;
            } else if (head == ".stability") {
                card.kind = analysis_kind::stability_all;
                std::size_t i = 1;
                if (i < line.tokens.size() && lower(line.tokens[i]) != "all"
                    && !try_parse_spice_number(line.tokens[i]).has_value()) {
                    card.kind = analysis_kind::stability_node;
                    card.node = lower(line.tokens[i]);
                    ++i;
                } else if (i < line.tokens.size() && lower(line.tokens[i]) == "all") {
                    ++i;
                }
                if (i < line.tokens.size())
                    card.fstart = value(line, line.tokens[i++]);
                if (i < line.tokens.size())
                    card.fstop = value(line, line.tokens[i++]);
                if (i < line.tokens.size())
                    card.points_per_decade
                        = static_cast<std::size_t>(value(line, line.tokens[i++]));
            } else {
                fail(line, "unknown card '" + head + "'");
            }
            out_.analyses.push_back(card);
        }

        parsed_netlist& out_;
        const parse_options& opt_;
        std::unordered_set<std::string> overridden_;
        std::vector<logical_line> main_body_;
        std::unordered_map<std::string, model_def> models_;
        std::unordered_map<std::string, subckt_def> subckts_;
    };

} // namespace

parsed_netlist parse_netlist(std::string_view text, const parse_options& opt)
{
    parsed_netlist out;
    std::vector<logical_line> lines = tokenize(text, out.title);
    netlist_builder builder(out, opt);
    builder.run(lines);
    out.ckt.finalize();
    return out;
}

parsed_netlist parse_netlist_file(const std::string& path, const parse_options& opt)
{
    std::ifstream in(path);
    if (!in)
        throw parse_error("cannot open netlist file '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parse_netlist(buffer.str(), opt);
}

} // namespace acstab::spice
