#include "spice/parser/expression.h"

#include <cctype>
#include <cmath>
#include <string>

#include "common/error.h"
#include <vector>

#include "spice/units.h"

namespace acstab::spice {

namespace {

    /// Recursive-descent grammar:
    ///   expr   := term (('+'|'-') term)*
    ///   term   := factor (('*'|'/') factor)*
    ///   factor := ('+'|'-')* power
    ///   power  := primary ('^' factor)?         (right associative)
    ///   primary:= number | ident | ident '(' expr (',' expr)* ')' | '(' expr ')'
    class evaluator {
    public:
        evaluator(std::string_view text, const parameter_table& params)
            : text_(text), params_(params)
        {
        }

        [[nodiscard]] real run()
        {
            const real v = expr();
            skip_ws();
            if (pos_ != text_.size())
                fail("unexpected trailing characters");
            return v;
        }

    private:
        [[noreturn]] void fail(const std::string& what) const
        {
            throw parse_error("expression '" + std::string(text_) + "': " + what);
        }

        void skip_ws()
        {
            while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }

        [[nodiscard]] bool eat(char c)
        {
            skip_ws();
            if (pos_ < text_.size() && text_[pos_] == c) {
                ++pos_;
                return true;
            }
            return false;
        }

        [[nodiscard]] char peek()
        {
            skip_ws();
            return pos_ < text_.size() ? text_[pos_] : '\0';
        }

        real expr()
        {
            real v = term();
            while (true) {
                if (eat('+'))
                    v += term();
                else if (eat('-'))
                    v -= term();
                else
                    return v;
            }
        }

        real term()
        {
            real v = factor();
            while (true) {
                if (eat('*'))
                    v *= factor();
                else if (eat('/')) {
                    const real d = factor();
                    if (d == 0.0)
                        fail("division by zero");
                    v /= d;
                } else
                    return v;
            }
        }

        real factor()
        {
            // Unary minus binds looser than '^' (so -2^2 = -4), while the
            // exponent itself may carry a sign (2^-3).
            if (eat('-'))
                return -factor();
            if (eat('+'))
                return factor();
            return power();
        }

        real power()
        {
            const real base = primary();
            if (eat('^'))
                return std::pow(base, factor());
            return base;
        }

        real primary()
        {
            skip_ws();
            if (pos_ >= text_.size())
                fail("unexpected end of expression");
            const char c = text_[pos_];
            if (c == '(') {
                ++pos_;
                const real v = expr();
                if (!eat(')'))
                    fail("missing ')'");
                return v;
            }
            if (std::isdigit(static_cast<unsigned char>(c)) || c == '.')
                return number();
            if (std::isalpha(static_cast<unsigned char>(c)) || c == '_')
                return identifier();
            fail(std::string("unexpected character '") + c + "'");
        }

        real number()
        {
            const std::size_t start = pos_;
            // Consume a numeric literal possibly with exponent and suffix.
            while (pos_ < text_.size()) {
                const char c = text_[pos_];
                if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
                    ++pos_;
                } else if ((c == 'e' || c == 'E') && pos_ + 1 < text_.size()
                           && (std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))
                               || text_[pos_ + 1] == '+' || text_[pos_ + 1] == '-')) {
                    pos_ += 2;
                } else if (std::isalpha(static_cast<unsigned char>(c))) {
                    ++pos_; // unit suffix letters
                } else {
                    break;
                }
            }
            const auto parsed = try_parse_spice_number(text_.substr(start, pos_ - start));
            if (!parsed)
                fail("bad number '" + std::string(text_.substr(start, pos_ - start)) + "'");
            return *parsed;
        }

        real identifier()
        {
            const std::size_t start = pos_;
            while (pos_ < text_.size()
                   && (std::isalnum(static_cast<unsigned char>(text_[pos_]))
                       || text_[pos_] == '_'))
                ++pos_;
            std::string name(text_.substr(start, pos_ - start));
            for (char& ch : name)
                ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));

            if (peek() == '(')
                return function_call(name);

            if (name == "pi")
                return pi;
            const auto it = params_.find(name);
            if (it == params_.end())
                fail("unknown parameter '" + name + "'");
            return it->second;
        }

        real function_call(const std::string& name)
        {
            if (!eat('('))
                fail("expected '('");
            std::vector<real> args;
            if (peek() != ')') {
                args.push_back(expr());
                while (eat(','))
                    args.push_back(expr());
            }
            if (!eat(')'))
                fail("missing ')' in call to " + name);

            const auto need = [&](std::size_t n) {
                if (args.size() != n)
                    fail(name + " expects " + std::to_string(n) + " argument(s)");
            };
            if (name == "sqrt") {
                need(1);
                return std::sqrt(args[0]);
            }
            if (name == "exp") {
                need(1);
                return std::exp(args[0]);
            }
            if (name == "ln" || name == "log") {
                need(1);
                return std::log(args[0]);
            }
            if (name == "log10") {
                need(1);
                return std::log10(args[0]);
            }
            if (name == "abs") {
                need(1);
                return std::fabs(args[0]);
            }
            if (name == "sin") {
                need(1);
                return std::sin(args[0]);
            }
            if (name == "cos") {
                need(1);
                return std::cos(args[0]);
            }
            if (name == "tan") {
                need(1);
                return std::tan(args[0]);
            }
            if (name == "atan") {
                need(1);
                return std::atan(args[0]);
            }
            if (name == "pow") {
                need(2);
                return std::pow(args[0], args[1]);
            }
            if (name == "min") {
                need(2);
                return std::min(args[0], args[1]);
            }
            if (name == "max") {
                need(2);
                return std::max(args[0], args[1]);
            }
            fail("unknown function '" + name + "'");
        }

        std::string_view text_;
        const parameter_table& params_;
        std::size_t pos_ = 0;
    };

} // namespace

real evaluate_expression(std::string_view text, const parameter_table& params)
{
    return evaluator(text, params).run();
}

} // namespace acstab::spice
