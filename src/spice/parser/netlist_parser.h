// SPICE netlist parser: builds a circuit plus a list of analysis cards.
//
// Supported grammar (case-insensitive, '+' continuation lines, '*'
// comment lines, trailing ';' comments):
//   title line (first line)
//   Rxxx n1 n2 value            Cxxx n1 n2 value        Lxxx n1 n2 value
//   Vxxx n+ n- [DC v] [AC mag [phase]] [PULSE(..)|SIN(..)|PWL(..)|STEP(..)]
//   Ixxx n+ n- (same source syntax)
//   Exxx p m cp cm gain         Gxxx p m cp cm gm
//   Fxxx p m vname gain         Hxxx p m vname r
//   Dxxx a k model              Qxxx c b e model
//   Mxxx d g s b model W=val L=val
//   Xxxx node... subckt
//   .param name=expr ...
//   .model name D|NPN|PNP|NMOS|PMOS (key=val ...)
//   .subckt name port... / .ends
//   .op | .ac dec ppd fstart fstop | .tran dt tstop
//   .stability [node|all] [fstart fstop ppd]
//   .temp t1 [t2 ...]            campaign card: TEMP grid values
//   .corner name [p=v ...]       campaign card: named .param override set
//   .end
// Values may be plain SPICE numbers or {expressions} over .param names.
//
// Parsing is parameterizable (parse_options): a corner farm rebuilds the
// same netlist many times with per-point `.param` overrides and a global
// device-temperature override — value-typed inputs that, unlike circuit
// factories, can cross process boundaries.
#ifndef ACSTAB_SPICE_PARSER_NETLIST_PARSER_H
#define ACSTAB_SPICE_PARSER_NETLIST_PARSER_H

#include <optional>
#include <string>
#include <vector>

#include "spice/circuit.h"
#include "spice/parser/expression.h"

namespace acstab::spice {

enum class analysis_kind { op, ac, tran, stability_node, stability_all };

/// External knobs applied while parsing (a corner/TEMP campaign point).
struct parse_options {
    /// Named `.param` overrides. They win over the netlist's own `.param`
    /// cards: the card's assignment is skipped, and `{...}` expressions
    /// that reference the name see the override value.
    parameter_table param_overrides;
    /// Device temperature [Celsius] for junction devices whose `.model`
    /// card does not set its own `temp=` (a model-local temp always wins,
    /// matching SPICE's .TEMP-vs-device-temp convention).
    std::optional<real> temp_celsius;
};

/// One analysis request from the netlist, for the CLI driver to execute.
struct analysis_card {
    analysis_kind kind = analysis_kind::op;
    real fstart = 1e3;
    real fstop = 1e9;
    std::size_t points_per_decade = 40;
    real tstop = 0.0;
    real dt = 0.0;
    std::string node; ///< stability_node target
};

/// One `.corner` campaign card: a named set of `.param` overrides.
struct corner_card {
    std::string name;
    parameter_table overrides;
};

struct parsed_netlist {
    std::string title;
    circuit ckt;
    parameter_table parameters;
    std::vector<analysis_card> analyses;
    /// Campaign hints: `.temp` grid values and `.corner` override sets.
    /// They do not affect THIS parse; a campaign planner expands them into
    /// per-point parse_options.
    std::vector<real> temp_values;
    std::vector<corner_card> corners;
};

/// Parse netlist text. Throws parse_error with a line number on errors.
[[nodiscard]] parsed_netlist parse_netlist(std::string_view text, const parse_options& opt = {});

/// Read and parse a netlist file.
[[nodiscard]] parsed_netlist parse_netlist_file(const std::string& path,
                                                const parse_options& opt = {});

} // namespace acstab::spice

#endif // ACSTAB_SPICE_PARSER_NETLIST_PARSER_H
