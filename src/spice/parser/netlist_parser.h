// SPICE netlist parser: builds a circuit plus a list of analysis cards.
//
// Supported grammar (case-insensitive, '+' continuation lines, '*'
// comment lines, trailing ';' comments):
//   title line (first line)
//   Rxxx n1 n2 value            Cxxx n1 n2 value        Lxxx n1 n2 value
//   Vxxx n+ n- [DC v] [AC mag [phase]] [PULSE(..)|SIN(..)|PWL(..)|STEP(..)]
//   Ixxx n+ n- (same source syntax)
//   Exxx p m cp cm gain         Gxxx p m cp cm gm
//   Fxxx p m vname gain         Hxxx p m vname r
//   Dxxx a k model              Qxxx c b e model
//   Mxxx d g s b model W=val L=val
//   Xxxx node... subckt
//   .param name=expr ...
//   .model name D|NPN|PNP|NMOS|PMOS (key=val ...)
//   .subckt name port... / .ends
//   .op | .ac dec ppd fstart fstop | .tran dt tstop
//   .stability [node|all] [fstart fstop ppd]
//   .end
// Values may be plain SPICE numbers or {expressions} over .param names.
#ifndef ACSTAB_SPICE_PARSER_NETLIST_PARSER_H
#define ACSTAB_SPICE_PARSER_NETLIST_PARSER_H

#include <string>
#include <vector>

#include "spice/circuit.h"
#include "spice/parser/expression.h"

namespace acstab::spice {

enum class analysis_kind { op, ac, tran, stability_node, stability_all };

/// One analysis request from the netlist, for the CLI driver to execute.
struct analysis_card {
    analysis_kind kind = analysis_kind::op;
    real fstart = 1e3;
    real fstop = 1e9;
    std::size_t points_per_decade = 40;
    real tstop = 0.0;
    real dt = 0.0;
    std::string node; ///< stability_node target
};

struct parsed_netlist {
    std::string title;
    circuit ckt;
    parameter_table parameters;
    std::vector<analysis_card> analyses;
};

/// Parse netlist text. Throws parse_error with a line number on errors.
[[nodiscard]] parsed_netlist parse_netlist(std::string_view text);

/// Read and parse a netlist file.
[[nodiscard]] parsed_netlist parse_netlist_file(const std::string& path);

} // namespace acstab::spice

#endif // ACSTAB_SPICE_PARSER_NETLIST_PARSER_H
