// Arithmetic expression evaluator for netlist parameters: the values in
// `.param` cards and `{...}` braces. Supports + - * / ^, parentheses,
// unary minus, SPICE-suffixed numbers, named parameters, and a small
// function library.
#ifndef ACSTAB_SPICE_PARSER_EXPRESSION_H
#define ACSTAB_SPICE_PARSER_EXPRESSION_H

#include <string_view>
#include <unordered_map>

#include "common/types.h"

namespace acstab::spice {

using parameter_table = std::unordered_map<std::string, real>;

/// Evaluate an expression against a parameter table.
/// Throws parse_error on malformed input or unknown identifiers.
[[nodiscard]] real evaluate_expression(std::string_view text, const parameter_table& params);

} // namespace acstab::spice

#endif // ACSTAB_SPICE_PARSER_EXPRESSION_H
