// Abstract device interface and the MNA stamping builder.
//
// Every analysis drives devices through four entry points:
//   stamp_dc   — large-signal Newton linearization at a candidate solution
//   stamp_ac   — small-signal complex stamps at the DC operating point
//   stamp_tran — companion-model stamps for one time step
//   tran_*     — integrator state management around accepted steps
#ifndef ACSTAB_SPICE_DEVICE_H
#define ACSTAB_SPICE_DEVICE_H

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "numeric/sparse_matrix.h"

namespace acstab::spice {

/// Index of an MNA unknown; negative means ground (stamps are dropped).
using node_id = int;
inline constexpr node_id ground_node = -1;

class circuit;
class device;

/// Accumulates MNA stamps for one linear solve.
template <class T>
class system_builder {
public:
    explicit system_builder(std::size_t n) : matrix_(n, n), rhs_(n, T{}) {}

    [[nodiscard]] std::size_t size() const noexcept { return rhs_.size(); }

    void add(node_id row, node_id col, T value)
    {
        if (row >= 0 && col >= 0)
            matrix_.add(static_cast<std::size_t>(row), static_cast<std::size_t>(col), value);
    }

    /// Two-terminal conductance stamp between nodes a and b.
    void conductance(node_id a, node_id b, T g)
    {
        add(a, a, g);
        add(b, b, g);
        add(a, b, -g);
        add(b, a, -g);
    }

    /// Transconductance stamp: current g*(vc - vd) flowing from node a to
    /// node b (out of a, into b).
    void transconductance(node_id a, node_id b, node_id c, node_id d, T g)
    {
        add(a, c, g);
        add(a, d, -g);
        add(b, c, -g);
        add(b, d, g);
    }

    void rhs_add(node_id row, T value)
    {
        if (row >= 0)
            rhs_[static_cast<std::size_t>(row)] += value;
    }

    [[nodiscard]] numeric::triplet_matrix<T>& matrix() noexcept { return matrix_; }
    [[nodiscard]] const numeric::triplet_matrix<T>& matrix() const noexcept { return matrix_; }
    [[nodiscard]] std::vector<T>& rhs() noexcept { return rhs_; }
    [[nodiscard]] const std::vector<T>& rhs() const noexcept { return rhs_; }

private:
    numeric::triplet_matrix<T> matrix_;
    std::vector<T> rhs_;
};

/// Per-stamp analysis context shared by DC and transient.
struct stamp_params {
    /// Junction shunt conductance for convergence (SPICE GMIN).
    real gmin = 1e-12;
    /// True while gmin/source stepping is active (devices may relax).
    bool continuation = false;
    /// Source scale factor in [0,1] for source stepping; 1 = full value.
    real source_scale = 1.0;
};

/// Small-signal stamp context.
struct ac_params {
    real omega = 0.0;
    real gmin = 1e-12;
    /// When non-null, only this device contributes its AC stimulus; all
    /// other independent sources are AC-zeroed (paper's "auto-zero all AC
    /// sources / stimuli in design prior to running the analysis").
    const device* exclusive_source = nullptr;
    /// Zero every AC stimulus (the stability sweep injects its own
    /// right-hand side directly).
    bool zero_all_sources = false;
};

/// One transient step description (times refer to the step being solved).
struct tran_params {
    real t0 = 0.0;     ///< previous accepted time
    real t1 = 0.0;     ///< time being solved
    real dt = 0.0;     ///< t1 - t0
    bool use_be = false; ///< backward Euler (first step / post-breakpoint)
    stamp_params dc;   ///< nested DC context (gmin etc.)
};

/// Voltage across two unknowns of a candidate solution (ground-aware).
[[nodiscard]] inline real unknown_voltage(const std::vector<real>& x, node_id a, node_id b) noexcept
{
    const real va = a >= 0 ? x[static_cast<std::size_t>(a)] : 0.0;
    const real vb = b >= 0 ? x[static_cast<std::size_t>(b)] : 0.0;
    return va - vb;
}

class device {
public:
    device(std::string name, std::vector<node_id> nodes)
        : name_(std::move(name)), nodes_(std::move(nodes))
    {
    }
    virtual ~device() = default;
    device(const device&) = delete;
    device& operator=(const device&) = delete;

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] virtual std::string_view type_name() const noexcept = 0;
    [[nodiscard]] const std::vector<node_id>& nodes() const noexcept { return nodes_; }

    /// Number of branch-current unknowns this device needs.
    [[nodiscard]] virtual std::size_t extra_unknown_count() const noexcept { return 0; }

    /// Called by circuit::finalize with the first branch index.
    virtual void assign_extra_unknowns(node_id first) { first_extra_ = first; }

    /// Resolve references to other devices (controlled sources). Called by
    /// circuit::finalize after all devices exist.
    virtual void bind(const circuit&) {}

    /// Reset Newton helper state (junction limiting history) before a new
    /// DC solve.
    virtual void dc_begin() {}

    virtual void stamp_dc(const std::vector<real>& x, const stamp_params& p,
                          system_builder<real>& b)
        = 0;

    virtual void stamp_ac(const std::vector<real>& op, const ac_params& p,
                          system_builder<cplx>& b) const
        = 0;

    /// Initialize integrator state from the DC operating point.
    virtual void tran_begin(const std::vector<real>& op) { (void)op; }

    /// Companion-model stamp; default: behave like DC (resistive devices).
    virtual void stamp_tran(const std::vector<real>& x, const tran_params& p,
                            system_builder<real>& b)
    {
        stamp_dc(x, p.dc, b);
    }

    /// Commit integrator state after a step is accepted at solution x.
    virtual void tran_accept(const std::vector<real>& x, const tran_params& p)
    {
        (void)x;
        (void)p;
    }

    /// True when this device is an ideal voltage source (used to find
    /// source-forced nodes that the stability sweep must skip).
    [[nodiscard]] virtual bool is_ideal_voltage_source() const noexcept { return false; }

    /// Index of this device's k-th branch-current unknown (valid after
    /// circuit::finalize for k < extra_unknown_count()). Lets analyses
    /// that stamp a FILTERED device subset (impedance partitions) pin the
    /// branch rows of excluded devices so the system stays non-singular.
    [[nodiscard]] node_id branch_unknown(std::size_t k = 0) const noexcept { return extra(k); }

    /// Append waveform slope discontinuities in (0, tstop); the transient
    /// engine aligns time steps with them.
    virtual void collect_breakpoints(real tstop, std::vector<real>& out) const
    {
        (void)tstop;
        (void)out;
    }

protected:
    [[nodiscard]] node_id extra(std::size_t k = 0) const noexcept
    {
        return first_extra_ + static_cast<node_id>(k);
    }

private:
    std::string name_;
    std::vector<node_id> nodes_;
    node_id first_extra_ = -1;
};

} // namespace acstab::spice

#endif // ACSTAB_SPICE_DEVICE_H
