#include "spice/units.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/error.h"

namespace acstab::spice {

namespace {

    [[nodiscard]] char lower(char c) noexcept
    {
        return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }

} // namespace

std::optional<real> try_parse_spice_number(std::string_view text)
{
    if (text.empty())
        return std::nullopt;
    // std::from_chars, not strtod: strtod honors LC_NUMERIC, so under a
    // comma-decimal locale every "1.5k" in a netlist would silently parse
    // as 1.5 -> 1 * 1000. from_chars is locale-independent by contract.
    std::string_view body = text;
    // from_chars rejects an explicit plus sign; accept it like strtod
    // did, but only in front of an actual number so doubled-sign typos
    // ("+-5") still fail instead of silently parsing as negative.
    if (body.front() == '+' && body.size() > 1
        && (body[1] == '.' || (body[1] >= '0' && body[1] <= '9')))
        body.remove_prefix(1);
    double value = 0.0;
    const std::from_chars_result r
        = std::from_chars(body.data(), body.data() + body.size(), value);
    if (r.ec != std::errc{} || r.ptr == body.data())
        return std::nullopt;

    std::string_view tail = body.substr(static_cast<std::size_t>(r.ptr - body.data()));
    if (tail.empty())
        return value;

    // Multiplier suffix; everything after it must be letters (unit names).
    double scale = 1.0;
    std::size_t consumed = 0;
    const char c0 = lower(tail[0]);
    if (tail.size() >= 3 && c0 == 'm' && lower(tail[1]) == 'e' && lower(tail[2]) == 'g') {
        scale = 1e6;
        consumed = 3;
    } else {
        consumed = 1;
        switch (c0) {
        case 't': scale = 1e12; break;
        case 'g': scale = 1e9; break;
        case 'k': scale = 1e3; break;
        case 'm': scale = 1e-3; break;
        case 'u': scale = 1e-6; break;
        case 'n': scale = 1e-9; break;
        case 'p': scale = 1e-12; break;
        case 'f': scale = 1e-15; break;
        default:
            consumed = 0;
            break;
        }
    }
    for (std::size_t i = consumed; i < tail.size(); ++i)
        if (!std::isalpha(static_cast<unsigned char>(tail[i])))
            return std::nullopt;
    return value * scale;
}

real parse_spice_number(std::string_view text)
{
    const auto parsed = try_parse_spice_number(text);
    if (!parsed)
        throw parse_error("bad number '" + std::string(text) + "'");
    return *parsed;
}

std::string format_engineering(real value, int digits)
{
    if (value == 0.0)
        return "0";
    if (!std::isfinite(value))
        return value > 0.0 ? "inf" : (value < 0.0 ? "-inf" : "nan");

    static constexpr struct {
        real scale;
        const char* suffix;
    } bands[] = {
        {1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"}, {1.0, ""},
        {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"},
    };

    const real mag = std::fabs(value);
    for (const auto& band : bands) {
        if (mag >= band.scale * 0.9999999 || (&band == &bands[std::size(bands) - 1])) {
            char buf[64];
            std::snprintf(buf, sizeof buf, "%.*g%s", digits, value / band.scale, band.suffix);
            return buf;
        }
    }
    return std::to_string(value);
}

std::string format_frequency(real hertz, int digits)
{
    return format_engineering(hertz, digits) + "Hz";
}

} // namespace acstab::spice
