// Validation baseline: the original per-frequency re-stamp AC sweep.
//
// This is the loop the sweep engine replaced — every device is re-stamped
// and the complex MNA system re-assembled and freshly factored at every
// frequency point, serially. It exists ONLY so tests and ablation benches
// can check the engine (linearize-once snapshot + pattern-reusing
// refactorization + threading) against the direct path; production
// analyses must not call it.
#ifndef ACSTAB_ENGINE_REFERENCE_SWEEP_H
#define ACSTAB_ENGINE_REFERENCE_SWEEP_H

#include <vector>

#include "spice/ac_analysis.h"
#include "spice/circuit.h"

namespace acstab::engine {

/// Serial re-stamp-per-frequency AC sweep (the pre-engine algorithm).
[[nodiscard]] spice::ac_result reference_ac_sweep(spice::circuit& c,
                                                  const std::vector<real>& freqs_hz,
                                                  const std::vector<real>& op,
                                                  const spice::ac_options& opt = {});

} // namespace acstab::engine

#endif // ACSTAB_ENGINE_REFERENCE_SWEEP_H
