#include "engine/adaptive_sweep.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "common/error.h"
#include "numeric/aaa.h"
#include "numeric/interpolation.h"

namespace acstab::engine {

namespace {

    /// One factored-and-solved frequency: the full solution of every
    /// right-hand side, column-major (rhs r occupies [r*n, (r+1)*n)).
    struct solved_sample {
        real f = 0.0;
        std::vector<cplx> x;
    };

    /// Relative tolerance under which two frequencies are the same point
    /// (the output grid merge and the solve dedupe both use it).
    constexpr real same_freq_rtol = 1e-9;

    /// Support-point cap of the rational model; a fit that pins this cap
    /// while staying far from tolerance marks a response the model class
    /// cannot represent (see the saturation bail-out below).
    constexpr std::size_t max_model_order = 48;

    bool same_freq(real a, real b)
    {
        return std::fabs(a - b) <= same_freq_rtol * std::max(std::fabs(a), std::fabs(b));
    }

} // namespace

adaptive_sweep::adaptive_sweep(adaptive_sweep_options opt) : opt_(std::move(opt)) {}

adaptive_sweep_options adaptive_options_for_grid(const std::vector<real>& freqs_hz)
{
    if (freqs_hz.size() < 2)
        throw analysis_error("adaptive sweep: need a grid of >= 2 points");
    if (!(freqs_hz.front() > 0.0))
        throw analysis_error("adaptive sweep: frequencies must be positive");
    for (std::size_t i = 1; i < freqs_hz.size(); ++i)
        if (!(freqs_hz[i] > freqs_hz[i - 1]))
            throw analysis_error("adaptive sweep: frequency grid must be ascending");

    adaptive_sweep_options opt;
    opt.fstart = freqs_hz.front();
    opt.fstop = freqs_hz.back();
    const real decades = std::log10(opt.fstop / opt.fstart);
    opt.output_points_per_decade = std::max<std::size_t>(
        4, static_cast<std::size_t>(
               std::ceil(static_cast<real>(freqs_hz.size() - 1) / decades)));
    return opt;
}

namespace {

    struct flagged_candidate {
        real f = 0.0;
        real err = 0.0;
    };

    adaptive_sweep_result run_adaptive(const linearized_snapshot& snap,
                                       const adaptive_sweep_options& opt, std::size_t nrhs,
                                       const std::vector<adaptive_channel>& channels,
                                       const std::vector<std::vector<cplx>>& bvecs,
                                       const std::function<void(const std::vector<real>&,
                                                                std::vector<solved_sample>&)>&
                                           solve_batch)
    {
        const std::size_t n = snap.size();
        if (nrhs == 0)
            throw analysis_error("adaptive sweep: need at least one right-hand side");
        if (channels.empty())
            throw analysis_error("adaptive sweep: need at least one channel");
        for (const adaptive_channel& ch : channels)
            if (ch.rhs >= nrhs || ch.unknown >= n)
                throw analysis_error("adaptive sweep: channel index out of range");
        if (!(opt.fit_tol > 0.0))
            throw analysis_error("adaptive sweep: fit_tol must be positive");
        if (opt.anchors_per_decade == 0 || opt.output_points_per_decade == 0)
            throw analysis_error("adaptive sweep: need at least 1 point per decade");

        const std::vector<real> dense
            = numeric::log_grid(opt.fstart, opt.fstop, opt.output_points_per_decade, 8);
        const std::size_t budget
            = opt.max_solved_points != 0 ? opt.max_solved_points : dense.size();
        const real min_gap = opt.min_spacing_decades > 0.0
            ? opt.min_spacing_decades
            : 0.25 / static_cast<real>(opt.output_points_per_decade);

        adaptive_sweep_result res;
        std::vector<solved_sample> samples;

        const auto solve = [&](std::vector<real> freqs) {
            std::sort(freqs.begin(), freqs.end());
            std::vector<real> fresh_f;
            for (const real f : freqs) {
                bool known = !fresh_f.empty() && same_freq(fresh_f.back(), f);
                for (const solved_sample& s : samples)
                    known = known || same_freq(s.f, f);
                if (!known)
                    fresh_f.push_back(f);
            }
            if (fresh_f.empty())
                return;
            std::vector<solved_sample> fresh(fresh_f.size());
            for (std::size_t i = 0; i < fresh.size(); ++i) {
                fresh[i].f = fresh_f[i];
                fresh[i].x.resize(nrhs * n);
            }
            solve_batch(fresh_f, fresh);
            res.factorizations += fresh.size();
            for (solved_sample& s : fresh)
                samples.push_back(std::move(s));
            std::sort(samples.begin(), samples.end(),
                      [](const solved_sample& a, const solved_sample& b) { return a.f < b.f; });
        };

        solve(numeric::log_grid(opt.fstart, opt.fstop, opt.anchors_per_decade, 8));

        // Fit the shared-support rational model to the observable channels
        // at every solved frequency. The fit runs tighter than fit_tol so
        // model error never dominates the residual-check budget. From the
        // second round on, the refit is warm-started from the previous
        // round's support set: those frequencies are solved samples that
        // persist across rounds, so re-deriving each one greedily (one
        // weight eigen-solve per support point) is pure overhead — the
        // dominant refit cost on small circuits. The warm refit pays one
        // eigen-solve for the seed batch plus one per NEW support point,
        // and the backward-error validation below is unchanged, so the
        // accuracy contract is unaffected.
        const auto fit = [&](const numeric::aaa_model* prev) {
            std::vector<real> xs(samples.size());
            std::vector<std::vector<cplx>> data(channels.size(),
                                                std::vector<cplx>(samples.size()));
            for (std::size_t i = 0; i < samples.size(); ++i) {
                xs[i] = samples[i].f;
                for (std::size_t c = 0; c < channels.size(); ++c)
                    data[c][i] = samples[i].x[channels[c].rhs * n + channels[c].unknown];
            }
            numeric::aaa_options aopt;
            aopt.rel_tol = std::max(opt.fit_tol * 0.25, real{1e-13});
            aopt.max_support = std::min(max_model_order, samples.size() - 1);
            if (prev != nullptr) {
                for (const real fx : prev->support()) {
                    // Support abscissae are bit-identical to sample
                    // frequencies, so an exact binary search finds them.
                    const auto it = std::lower_bound(xs.begin(), xs.end(), fx);
                    if (it != xs.end() && *it == fx)
                        aopt.seed_support.push_back(
                            static_cast<std::size_t>(it - xs.begin()));
                }
            }
            return numeric::aaa_fit(xs, data, aopt);
        };

        // Refinement state: one workspace + scratch vectors reused across
        // every candidate check (assemble + SpMV only; no factorization).
        numeric::csc_matrix<cplx> work = snap.make_workspace();
        std::vector<cplx> xhat(n), yres(n);
        std::vector<real> bnorm(nrhs, 0.0);
        for (std::size_t r = 0; r < nrhs; ++r)
            for (const cplx& v : bvecs[r])
                bnorm[r] = std::max(bnorm[r], std::abs(v));

        // Normwise backward error of the model's predicted solutions at
        // frequency f: the barycentric coefficients combine the STORED
        // full solution vectors (shared support/weights), and one matrix
        // assembly plus one SpMV per RHS measures ||Y x - b|| — no
        // factorization. The worst RHS decides, so one refined grid
        // serves the whole batch.
        const auto prediction_error = [&](real fcheck, const numeric::aaa_model& model,
                                          const numeric::barycentric_coeffs& bc) {
            snap.assemble(to_omega(fcheck), work);
            real ymax = 0.0;
            for (const cplx& v : work.values())
                ymax = std::max(ymax, std::abs(v));
            real worst = 0.0;
            const std::vector<std::size_t>& sidx = model.support_samples();
            for (std::size_t r = 0; r < nrhs && worst <= opt.fit_tol; ++r) {
                std::fill(xhat.begin(), xhat.end(), cplx{});
                for (std::size_t j = 0; j < sidx.size(); ++j) {
                    const cplx* col = samples[sidx[j]].x.data() + r * n;
                    for (std::size_t k = 0; k < n; ++k)
                        xhat[k] += bc.coeff[j] * col[k];
                }
                work.multiply_into(xhat, yres);
                real rmax = 0.0;
                real xmax = 0.0;
                real finite_probe = 0.0; // NaN survives +, unlike std::max
                for (std::size_t k = 0; k < n; ++k) {
                    const real rk = std::abs(yres[k] - bvecs[r][k]);
                    const real xk = std::abs(xhat[k]);
                    rmax = std::max(rmax, rk);
                    xmax = std::max(xmax, xk);
                    finite_probe += rk + xk;
                }
                if (!std::isfinite(finite_probe))
                    return std::numeric_limits<real>::infinity();
                // A zero residual is exactly satisfied whatever the
                // scaling — in particular for an all-zero right-hand side
                // (zero AC stimulus), where the scaled form would be 0/0.
                if (rmax == 0.0)
                    continue;
                const real err = rmax / (ymax * xmax + bnorm[r]);
                // A NaN-poisoned prediction must FAIL the check, not slip
                // through std::max's NaN-dropping comparisons.
                if (!std::isfinite(err))
                    return std::numeric_limits<real>::infinity();
                worst = std::max(worst, err);
            }
            return worst;
        };

        numeric::aaa_model model;
        std::size_t saturated_rounds = 0;
        for (std::size_t round = 0;; ++round) {
            model = fit(round == 0 ? nullptr : &model);

            // A model that pins its support budget while staying far from
            // tolerance cannot represent the response (very high visible
            // order, e.g. distributed RC lines); blind bisection would
            // just burn the budget, so hand over to the output validation
            // pass below, which solves exactly the points that need it.
            if (model.support_count() >= max_model_order
                && model.fit_error() > 1e3 * opt.fit_tol) {
                if (++saturated_rounds >= 2) {
                    res.converged = false;
                    break;
                }
            } else {
                saturated_rounds = 0;
            }

            std::vector<flagged_candidate> flagged;
            for (std::size_t i = 0; i + 1 < samples.size(); ++i) {
                const real gap = std::log10(samples[i + 1].f / samples[i].f);
                if (gap < 2.0 * min_gap)
                    continue; // resolved to below the output grid's step
                const real fmid = std::sqrt(samples[i].f * samples[i + 1].f);
                const numeric::barycentric_coeffs bc = model.coeffs_at(fmid);
                if (bc.exact_hit)
                    continue;
                const real worst = prediction_error(fmid, model, bc);
                if (worst > opt.fit_tol)
                    flagged.push_back({fmid, worst});
            }

            if (flagged.empty())
                break;
            if (round >= opt.max_rounds || samples.size() >= budget) {
                res.converged = false;
                break;
            }
            const std::size_t remaining = budget - samples.size();
            if (flagged.size() > remaining) {
                // Spend what is left on the worst offenders.
                std::sort(flagged.begin(), flagged.end(),
                          [](const flagged_candidate& a, const flagged_candidate& b) {
                              if (a.err != b.err)
                                  return a.err > b.err;
                              return a.f < b.f;
                          });
                flagged.resize(remaining);
            }
            std::vector<real> to_solve;
            to_solve.reserve(flagged.size());
            for (const flagged_candidate& c : flagged)
                to_solve.push_back(c.f);
            solve(std::move(to_solve));
        }

        res.model_order = model.support_count();
        res.model_fit_error = model.fit_error();
        res.model = model;

        // Output grid: every solved frequency plus the dense grid points
        // that do not (nearly) coincide with one. Solved points carry the
        // exact solver values; the rest are evaluated from the model.
        constexpr std::size_t from_model = std::numeric_limits<std::size_t>::max();
        std::vector<std::size_t> origin; // samples index, or from_model
        const auto build_output = [&] {
            res.freq_hz.clear();
            origin.clear();
            std::size_t di = 0;
            for (std::size_t si = 0; si <= samples.size(); ++si) {
                const real next_solved = si < samples.size()
                    ? samples[si].f
                    : std::numeric_limits<real>::infinity();
                for (; di < dense.size() && dense[di] < next_solved; ++di) {
                    if (si < samples.size() && same_freq(dense[di], next_solved))
                        break;
                    if (!res.freq_hz.empty() && same_freq(res.freq_hz.back(), dense[di]))
                        continue;
                    res.freq_hz.push_back(dense[di]);
                    origin.push_back(from_model);
                }
                if (si < samples.size()) {
                    while (di < dense.size() && same_freq(dense[di], next_solved))
                        ++di;
                    res.freq_hz.push_back(samples[si].f);
                    origin.push_back(si);
                }
            }

            res.values.assign(channels.size(), std::vector<cplx>(res.freq_hz.size()));
            for (std::size_t k = 0; k < res.freq_hz.size(); ++k) {
                if (origin[k] != from_model) {
                    for (std::size_t c = 0; c < channels.size(); ++c)
                        res.values[c][k]
                            = samples[origin[k]].x[channels[c].rhs * n + channels[c].unknown];
                    continue;
                }
                // One barycentric coefficient set per output point serves
                // all channels (shared support and weights).
                const numeric::barycentric_coeffs bc = model.coeffs_at(res.freq_hz[k]);
                for (std::size_t c = 0; c < channels.size(); ++c)
                    res.values[c][k] = model.eval_with(bc, c);
            }
        };
        build_output();

        // Output validation: model-derived points that could be wrong get
        // the full backward-error check, and failures are solved directly
        // and patched in, so a response the model cannot represent
        // degrades gracefully to direct solves instead of leaking model
        // artifacts into results. When refinement CONVERGED, every
        // inter-sample midpoint already passed the check and the model
        // interpolates the solved endpoints exactly, so the only spike
        // mechanism left is a model pole inside an interval — flagged for
        // cheap by the barycentric denominator's cancellation ratio.
        // When refinement gave up (saturated model or exhausted budget),
        // every model point is suspect and all of them are checked.
        constexpr real health_floor = 1e-3;
        std::vector<real> failed;
        for (std::size_t k = 0; k < res.freq_hz.size(); ++k) {
            if (origin[k] != from_model)
                continue;
            const numeric::barycentric_coeffs bc = model.coeffs_at(res.freq_hz[k]);
            if (bc.exact_hit)
                continue;
            if (!res.converged || bc.denom_health < health_floor)
                if (prediction_error(res.freq_hz[k], model, bc) > opt.fit_tol)
                    failed.push_back(res.freq_hz[k]);
        }
        if (!failed.empty()) {
            solve(std::move(failed));
            build_output();
        }

        res.solved_freq_hz.resize(samples.size());
        for (std::size_t i = 0; i < samples.size(); ++i)
            res.solved_freq_hz[i] = samples[i].f;
        return res;
    }

} // namespace

adaptive_sweep_result
adaptive_sweep::run_injections(const linearized_snapshot& snap,
                               const std::vector<sweep_engine::injection>& injections,
                               const std::vector<adaptive_channel>& channels) const
{
    for (const sweep_engine::injection& inj : injections)
        if (inj.index >= snap.size())
            throw analysis_error("adaptive sweep: injection index out of range");

    std::vector<std::vector<cplx>> bvecs(injections.size(),
                                         std::vector<cplx>(snap.size(), cplx{}));
    for (std::size_t r = 0; r < injections.size(); ++r)
        bvecs[r][injections[r].index] = injections[r].value;

    sweep_engine_options eopt = opt_.engine;
    eopt.symbolic_omega_ref = to_omega(std::sqrt(opt_.fstart * opt_.fstop));
    const sweep_engine eng(eopt);
    const std::size_t n = snap.size();
    return run_adaptive(snap, opt_, injections.size(), channels, bvecs,
                        [&](const std::vector<real>& freqs, std::vector<solved_sample>& out) {
                            eng.run_injections(
                                snap, freqs, injections,
                                [&out, n](std::size_t fi, std::size_t ri,
                                          std::span<const cplx> sol) {
                                    std::copy(sol.begin(), sol.end(),
                                              out[fi].x.begin()
                                                  + static_cast<std::ptrdiff_t>(ri * n));
                                });
                        });
}

adaptive_sweep_result adaptive_sweep::run(const linearized_snapshot& snap,
                                          const std::vector<std::vector<cplx>>& rhs_batch,
                                          const std::vector<adaptive_channel>& channels) const
{
    for (const std::vector<cplx>& rhs : rhs_batch)
        if (rhs.size() != snap.size())
            throw analysis_error("adaptive sweep: right-hand side has wrong length");

    sweep_engine_options eopt = opt_.engine;
    eopt.symbolic_omega_ref = to_omega(std::sqrt(opt_.fstart * opt_.fstop));
    const sweep_engine eng(eopt);
    const std::size_t n = snap.size();
    return run_adaptive(snap, opt_, rhs_batch.size(), channels, rhs_batch,
                        [&](const std::vector<real>& freqs, std::vector<solved_sample>& out) {
                            eng.run(snap, freqs, rhs_batch,
                                    [&out, n](std::size_t fi, std::size_t ri,
                                              std::span<const cplx> sol) {
                                        std::copy(sol.begin(), sol.end(),
                                                  out[fi].x.begin()
                                                      + static_cast<std::ptrdiff_t>(ri * n));
                                    });
                        });
}

} // namespace acstab::engine
