// Linearize-once small-signal snapshot of a circuit at its DC operating
// point.
//
// Every device's stamp_ac contribution is affine in the angular frequency
// (entries have the form a + j w c: conductances and transconductances in
// the real part, capacitive/inductive susceptances scaling with w), so
// the full complex MNA matrix decomposes exactly as
//
//   Y(j w) = G + w B        (B = jC, purely imaginary entries)
//
// with frequency-independent G and B. The snapshot captures both stamp
// sets once — by stamping the device list at w = 0 and w = 1 and
// differencing — onto one merged CSC sparsity pattern. Per-frequency
// assembly is then a single fused value fill (no device dispatch, no
// triplet sort), and the fixed pattern lets sparse_lu refactor without
// re-running its symbolic analysis.
//
// The AC stimulus right-hand side is frequency independent as well and is
// captured alongside (honoring exclusive_source / zero_all_sources).
#ifndef ACSTAB_ENGINE_LINEARIZED_SNAPSHOT_H
#define ACSTAB_ENGINE_LINEARIZED_SNAPSHOT_H

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/types.h"
#include "numeric/sparse_factor.h"
#include "numeric/sparse_matrix.h"
#include "spice/circuit.h"

namespace acstab::engine {

struct snapshot_options {
    real gmin = 1e-12;
    /// Node-to-ground shunt conductance regularizing floating nodes.
    real gshunt = 0.0;
    /// When non-null, AC stimuli of all other sources are zeroed.
    const spice::device* exclusive_source = nullptr;
    /// Zero every AC stimulus (callers injecting their own RHS).
    bool zero_all_sources = false;
    /// When set, only devices accepted by the predicate are stamped — the
    /// impedance-partition analysis linearizes one SIDE of a circuit at
    /// the full circuit's operating point this way. Excluded devices with
    /// branch-current unknowns get a unit diagonal on their branch rows
    /// (branch current forced to zero) so the filtered system keeps the
    /// full unknown set without going singular; nodes owned entirely by
    /// excluded devices are held up by gshunt.
    std::function<bool(const spice::device&)> device_filter;
};

class linearized_snapshot {
public:
    /// Linearize all devices of a finalized circuit about the operating
    /// point `op` (from dc_operating_point). The circuit is not retained;
    /// the snapshot stays valid across later circuit edits.
    linearized_snapshot(spice::circuit& c, const std::vector<real>& op,
                        const snapshot_options& opt = {});

    [[nodiscard]] std::size_t size() const noexcept { return n_; }
    [[nodiscard]] std::size_t node_count() const noexcept { return nodes_; }
    [[nodiscard]] std::size_t nnz() const noexcept { return row_idx_.size(); }

    /// The captured AC stimulus right-hand side (all zeros under
    /// zero_all_sources).
    [[nodiscard]] const std::vector<cplx>& stimulus_rhs() const noexcept { return rhs_; }

    /// A CSC matrix holding the shared pattern with uninitialized values;
    /// one per worker, refilled by assemble() at each frequency.
    [[nodiscard]] numeric::csc_matrix<cplx> make_workspace() const;

    /// Fill `out` (a workspace from make_workspace()) with Y(j w).
    void assemble(real omega, numeric::csc_matrix<cplx>& out) const;

    /// The shared symbolic LU of this snapshot's pattern: pivot order and
    /// L/U structure chosen from the values at omega_ref under the given
    /// column ordering, computed lazily once and handed to every sweep
    /// worker (which then only refactors numerically). Thread-safe; the
    /// returned object is immutable. A request at a different omega_ref
    /// or ordering replaces the cached object.
    [[nodiscard]] std::shared_ptr<const numeric::symbolic_lu<cplx>>
    shared_symbolic(real omega_ref,
                    numeric::column_ordering ordering = numeric::column_ordering::amd_approx) const;

private:
    std::size_t n_ = 0;
    std::size_t nodes_ = 0;
    std::vector<std::size_t> col_ptr_;
    std::vector<std::size_t> row_idx_;
    std::vector<cplx> gvals_; ///< frequency-independent part (w = 0 stamps)
    std::vector<cplx> bvals_; ///< per-rad/s part: Y = gvals + omega * bvals
    std::vector<cplx> rhs_;

    mutable std::mutex symbolic_mutex_;
    mutable std::shared_ptr<const numeric::symbolic_lu<cplx>> symbolic_;
    mutable real symbolic_omega_ = -1.0;
    mutable numeric::column_ordering symbolic_ordering_ = numeric::column_ordering::amd_approx;
};

} // namespace acstab::engine

#endif // ACSTAB_ENGINE_LINEARIZED_SNAPSHOT_H
