#include "engine/sweep_engine.h"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "common/error.h"
#include "engine/thread_pool.h"
#include "numeric/lu.h"
#include "numeric/sparse_factor.h"

namespace acstab::engine {

namespace {

    /// A claimable single-shot background task: whoever flips `claimed`
    /// first runs (or cancels) the work, everyone else blocks on `done`.
    /// This is what makes the pipelined warm start deadlock-free on the
    /// shared pool — a waiter that finds the task still unclaimed (every
    /// worker busy) claims it and runs it inline, paying exactly the
    /// cold path's cost instead of waiting on a thread that may itself
    /// be waiting.
    struct bg_refactor {
        std::atomic<int> claimed{0};
        std::atomic<bool> done{false};
        std::mutex m;
        std::condition_variable cv;
        std::function<void()> work;
        bool ok = false; ///< work outcome; valid only after join()

        void claim_and_run()
        {
            if (claimed.exchange(1, std::memory_order_acq_rel) != 0)
                return;
            work();
            {
                std::lock_guard<std::mutex> lock(m);
                done.store(true, std::memory_order_release);
            }
            cv.notify_all();
        }

        void join()
        {
            claim_and_run();
            std::unique_lock<std::mutex> lock(m);
            cv.wait(lock, [this] { return done.load(std::memory_order_acquire); });
        }

        /// Cancel if still unclaimed, else wait for the runner: after
        /// this returns, no thread will touch the submitter's buffers.
        void cancel_or_wait()
        {
            if (claimed.exchange(1, std::memory_order_acq_rel) == 0)
                return; // won the claim: the work never runs
            std::unique_lock<std::mutex> lock(m);
            cv.wait(lock, [this] { return done.load(std::memory_order_acquire); });
        }
    };

    /// Per-worker solver state: a pattern workspace plus a numeric
    /// factorization refactored in place frequency to frequency against a
    /// symbolic object that is either shared across all workers or local
    /// to the chunk. The steady-state factor/solve loop performs no heap
    /// allocations; only the fresh-factor fallback (stale pivot order)
    /// allocates, and only when it actually triggers.
    class chunk_solver {
    public:
        /// With a shared symbolic object the chunk skips its own symbolic
        /// pass entirely. Otherwise omega_ref seeds a local analysis; the
        /// chunk's middle frequency serves both ends of a log-spaced
        /// range far better than its first point.
        chunk_solver(const linearized_snapshot& snap, const sweep_engine_options& opt,
                     real omega_ref, std::shared_ptr<const numeric::symbolic_lu<cplx>> shared)
            : snap_(snap), opt_(opt), work_(snap.make_workspace())
        {
            if (opt_.solver == spice::solver_kind::sparse) {
                if (shared != nullptr) {
                    sym_ = std::move(shared);
                    num_.emplace(sym_);
                    configure(*num_);
                } else {
                    snap_.assemble(omega_ref, work_);
                    fresh_factor();
                }
                probe_b_.assign(snap_.size(), cplx{1.0, 0.0});
                probe_x_.resize(snap_.size());
                probe_r_.resize(snap_.size());
            }
        }

        chunk_solver(const chunk_solver&) = delete;
        chunk_solver& operator=(const chunk_solver&) = delete;

        ~chunk_solver()
        {
            // A still-queued background refactor references this object's
            // buffers: cancel it (or wait out a running one) before they
            // go away.
            if (pending_ != nullptr)
                pending_->cancel_or_wait();
        }

        /// Factor Y(j w) — or, with warm_start, decide that the previous
        /// point's factors are close enough to serve this one through
        /// iterative refinement. omega_next (0 = none) is the chunk's
        /// following grid point: with warm_pipeline its refactorization
        /// is launched onto the pool before this call returns, so it
        /// overlaps this point's batched back-solves. Throws
        /// numeric_error only if the matrix is singular under every
        /// pivot order (matching the direct path).
        void factor(real omega, real omega_next = 0.0)
        {
            snap_.assemble(omega, work_);
            omega_cur_ = omega;
            if (opt_.solver == spice::solver_kind::dense) {
                dense_.emplace(work_.to_dense());
                return;
            }
            if (pending_ != nullptr) {
                // A lookahead refactorization is in flight (or queued).
                // When it is exactly this point's matrix, adopt it: the
                // join claims an unclaimed task and runs it inline, so
                // the wait is bounded by one refactor and a worker-less
                // pool degrades to the cold path's cost. The adopted
                // factors came from identically assembled values, so
                // after the cold guard below the state is bit-for-bit
                // what cold_factor would have produced.
                if (omega == omega_bg_ && adopt_incoming()) {
                    if (num_->growth() > opt_.refactor_growth_limit
                        && probe_residual() > opt_.refactor_guard_tol)
                        fresh_factor();
                    factored_ = true;
                    omega_fact_ = omega;
                    warm_ = false;
                    bump(&sweep_stats::warm_accepts);
                    bump(&sweep_stats::cold_factors);
                    launch_lookahead(omega_next);
                    return;
                }
                // Mismatched frequency (the foreground went cold out of
                // order) or the background hit a zero pivot: discard and
                // take the normal path.
                if (pending_ != nullptr) {
                    pending_->cancel_or_wait();
                    pending_ = nullptr;
                }
            }
            if (opt_.tuning.warm_start && factored_ && warm_eligible(omega)) {
                // The warm guard keeps the cold path's two tiers but moves
                // the residual tier to where it is strongest: tier 1 is
                // still the free growth witness of the stale factors;
                // tier 2 is the per-right-hand-side backward-error contract
                // that refine_batch enforces on the *actual* solutions of
                // this frequency (with a cold refactor as the escape
                // hatch), which subsumes what an up-front synthetic probe
                // could establish without paying its extra solves.
                ymax_ = matrix_max();
                if (num_->growth() <= opt_.refactor_growth_limit) {
                    warm_ = true;
                    bump(&sweep_stats::warm_accepts);
                    launch_lookahead(omega_next);
                    return;
                }
                bump(&sweep_stats::warm_fallbacks);
            }
            warm_ = false;
            cold_factor();
            launch_lookahead(omega_next);
        }

        /// Back-solve a batch of right-hand sides against the current
        /// factorization; x is column-major n*nrhs (see
        /// numeric_lu::solve_batch for the aliasing contract). On the
        /// warm path every solution is refined until it meets the
        /// backward-error contract, with a cold refactor + re-solve as
        /// the escape hatch.
        void solve_batch(const cplx* const* b, std::size_t nrhs, cplx* x)
        {
            if (dense_) {
                // Reference path; allocation-freedom is not a goal here.
                const std::size_t n = snap_.size();
                for (std::size_t r = 0; r < nrhs; ++r) {
                    const std::vector<cplx> rhs(b[r], b[r] + n);
                    const std::vector<cplx> sol = dense_->solve(rhs);
                    std::copy(sol.begin(), sol.end(), x + r * n);
                }
                return;
            }
            num_->solve_batch(b, nrhs, x);
            if (!warm_)
                return;
            if (!refine_batch(b, nrhs, x)) {
                // Refinement stalled (frequency step too aggressive for
                // these values): go cold and redo the whole batch against
                // exact factors of the current Y(jw). Any in-flight
                // lookahead task targets the NEXT grid point's matrix, so
                // it is of no use here; it stays queued for that point.
                bump(&sweep_stats::warm_fallbacks);
                warm_ = false;
                cold_factor();
                num_->solve_batch(b, nrhs, x);
            }
        }

    private:
        /// Cold path: values-only refactor under the reused pivot order,
        /// guarded by growth + probe, with a fresh pivot-selecting
        /// factorization as the fallback.
        void cold_factor()
        {
            try {
                num_->refactor(work_);
            } catch (const numeric_error&) {
                // Exact zero pivot under the reused order; re-pivot from
                // the current values. A fresh factorization chooses its
                // pivots from this very matrix, so no guard is needed.
                fresh_factor();
                factored_ = true;
                omega_fact_ = omega_cur_;
                bump(&sweep_stats::cold_factors);
                return;
            }
            // Two-tier guard, at factor time, so every right-hand side of
            // the batch — not just the first — sees a validated
            // factorization. Tier 1 is free: the element growth computed
            // from the refactored values witnesses a stale pivot order.
            // Only when it looks suspicious does tier 2 solve a dense
            // all-ones probe (it excites every column, unlike a sparse
            // user RHS) and measure its backward error with an in-place
            // SpMV. The witness reads final L/U maxima, so growth that
            // cancels back down within a column can pass unprobed — the
            // accepted tradeoff for keeping the per-frequency loop free
            // of an unconditional extra solve; lower refactor_growth_limit
            // (0 probes every frequency) to trade speed back for paranoia.
            if (num_->growth() > opt_.refactor_growth_limit
                && probe_residual() > opt_.refactor_guard_tol)
                fresh_factor();
            factored_ = true;
            omega_fact_ = omega_cur_;
            bump(&sweep_stats::cold_factors);
        }

        [[nodiscard]] bool warm_eligible(real omega) const noexcept
        {
            const real ratio = omega > omega_fact_ ? omega / omega_fact_ : omega_fact_ / omega;
            return ratio <= opt_.warm_ratio_limit;
        }

        [[nodiscard]] real matrix_max() const noexcept
        {
            real m = 0.0;
            for (const cplx& v : work_.values())
                m = std::max(m, std::abs(v));
            return m;
        }

        /// Tier 2 of the warm guard: iterate refinement on the whole batch
        /// of stale-factor solutions until every column's normwise backward
        /// error against the freshly assembled Y(jw) meets the cold guard's
        /// tolerance; false when the iteration budget runs out first.
        ///
        /// Refinement is batched on purpose: each iteration costs ONE
        /// L/U traversal for all still-unconverged columns (solve_batch,
        /// so the SIMD kernel applies to corrections too) plus one cheap
        /// SpMV per column, instead of a full traversal per column per
        /// iteration. Columns retire from the active set as they converge,
        /// so late iterations only pay for the stragglers.
        [[nodiscard]] bool refine_batch(const cplx* const* b, std::size_t nrhs, cplx* x)
        {
            const std::size_t n = snap_.size();
            // Lazily grown to the engine's rhs_block; steady state is
            // allocation-free like the rest of the hot loop.
            if (resid_.size() < n * nrhs) {
                resid_.resize(n * nrhs);
                corr_.resize(n * nrhs);
            }
            if (bmax_.size() < nrhs) {
                bmax_.resize(nrhs);
                active_.resize(nrhs);
                rcol_.resize(nrhs);
            }
            std::size_t nactive = nrhs;
            for (std::size_t r = 0; r < nrhs; ++r) {
                real bm = 0.0;
                for (std::size_t i = 0; i < n; ++i)
                    bm = std::max(bm, std::abs(b[r][i]));
                bmax_[r] = bm;
                active_[r] = r;
            }
            for (std::size_t iter = 0; iter <= opt_.warm_max_refine; ++iter) {
                // Residual + convergence test; converged columns drop out,
                // the rest compact their residuals into contiguous slots
                // for the batched correction solve.
                std::size_t pending = 0;
                for (std::size_t a = 0; a < nactive; ++a) {
                    const std::size_t r = active_[a];
                    cplx* res = resid_.data() + pending * n;
                    work_.multiply_into(x + r * n, res);
                    real residual = 0.0;
                    real xmax = 0.0;
                    for (std::size_t i = 0; i < n; ++i) {
                        res[i] = b[r][i] - res[i];
                        residual = std::max(residual, std::abs(res[i]));
                        xmax = std::max(xmax, std::abs(x[r * n + i]));
                    }
                    if (residual <= opt_.refactor_guard_tol * (ymax_ * xmax + bmax_[r]))
                        continue;
                    active_[pending] = r;
                    rcol_[pending] = res;
                    ++pending;
                }
                if (pending == 0)
                    return true;
                if (iter == opt_.warm_max_refine)
                    break;
                nactive = pending;
                num_->solve_batch(rcol_.data(), nactive, corr_.data());
                for (std::size_t a = 0; a < nactive; ++a) {
                    const std::size_t r = active_[a];
                    for (std::size_t i = 0; i < n; ++i)
                        x[r * n + i] += corr_[a * n + i];
                }
                bump(&sweep_stats::warm_refinements);
            }
            return false;
        }

        void bump(std::atomic<std::size_t> sweep_stats::* member) const noexcept
        {
            if (opt_.stats != nullptr)
                (opt_.stats->*member).fetch_add(1, std::memory_order_relaxed);
        }

        void configure(numeric::numeric_lu<cplx>& num) const
        {
            num.set_batch_kernel(opt_.tuning.simd ? numeric::batch_kernel::simd
                                                  : numeric::batch_kernel::scalar);
            num.set_supernodal(opt_.tuning.supernodal);
        }

        /// Join (or claim and run inline) the in-flight background
        /// refactorization, adopting its factors when it succeeded; true
        /// exactly then. On failure (zero pivot under the reused order)
        /// the current factors stay live and the caller falls back to
        /// the cold path.
        bool adopt_incoming()
        {
            if (pending_ == nullptr)
                return false;
            pending_->join();
            const bool ok = pending_->ok;
            pending_ = nullptr;
            if (!ok)
                return false;
            std::swap(num_, incoming_);
            omega_fact_ = omega_bg_;
            return true;
        }

        /// Lookahead prefetch: assemble the NEXT grid point's matrix into
        /// the spare workspace and kick its refactorization onto a pool
        /// worker, overlapping it with this point's batched back-solves.
        /// Assembly runs here on the foreground (it is cheap and snap_
        /// assembly is not advertised thread-safe against itself); only
        /// the refactor crosses the task boundary, and it never throws
        /// across it — a zero pivot is recorded as ok = false.
        void launch_lookahead(real omega_next)
        {
            if (!opt_.tuning.warm_pipeline || !(omega_next > 0.0))
                return;
            if (!bg_work_)
                bg_work_.emplace(snap_.make_workspace());
            if (!incoming_) {
                incoming_.emplace(sym_);
                configure(*incoming_);
            }
            snap_.assemble(omega_next, *bg_work_);
            omega_bg_ = omega_next;
            auto task = std::make_shared<bg_refactor>();
            task->work = [this, t = task.get()] {
                try {
                    incoming_->refactor(*bg_work_);
                    t->ok = true;
                } catch (...) {
                    t->ok = false;
                }
            };
            pending_ = task;
            thread_pool::shared().submit([task] { task->claim_and_run(); });
        }

        /// Normwise backward error of Y x = 1 for the all-ones probe:
        /// ||Y x - b||_inf / (||Y||_max ||x||_inf + ||b||_inf), so the
        /// threshold is meaningful for badly scaled circuits (milliohm
        /// branches, gigaohm nodes) where an absolute residual would trip
        /// on every frequency. Allocation-free; runs only when the growth
        /// witness already flagged the factorization.
        [[nodiscard]] real probe_residual()
        {
            std::copy(probe_b_.begin(), probe_b_.end(), probe_x_.begin());
            num_->solve_in_place(probe_x_.data());
            work_.multiply_into(probe_x_, probe_r_);
            real residual = 0.0;
            real xmax = 0.0;
            for (std::size_t i = 0; i < probe_r_.size(); ++i) {
                residual = std::max(residual, std::abs(probe_r_[i] - probe_b_[i]));
                xmax = std::max(xmax, std::abs(probe_x_[i]));
            }
            real ymax = 0.0;
            for (const cplx& v : work_.values())
                ymax = std::max(ymax, std::abs(v));
            return residual / (ymax * xmax + 1.0);
        }

        void fresh_factor()
        {
            // A queued lookahead task refactors incoming_ against the
            // OLD symbolic pattern this call is about to replace: cancel
            // it (or wait out a running one) before tearing that down.
            if (pending_ != nullptr) {
                pending_->cancel_or_wait();
                pending_ = nullptr;
            }
            // Adopt the seed values the pivot-selecting analysis computes
            // anyway instead of repeating the numeric elimination.
            numeric::lu_options sopt;
            sopt.ordering = opt_.tuning.ordering;
            numeric::symbolic_lu<cplx>::factor_values seed;
            sym_ = std::make_shared<const numeric::symbolic_lu<cplx>>(work_, sopt, &seed);
            num_.emplace(sym_, std::move(seed));
            configure(*num_);
            // The spare background object is bound to the old symbolic
            // pattern; rebuild it lazily against the new one.
            incoming_.reset();
        }

        const linearized_snapshot& snap_;
        const sweep_engine_options& opt_;
        numeric::csc_matrix<cplx> work_;
        std::shared_ptr<const numeric::symbolic_lu<cplx>> sym_;
        std::optional<numeric::numeric_lu<cplx>> num_;
        std::optional<numeric::lu_decomposition<cplx>> dense_;
        std::vector<cplx> probe_b_, probe_x_, probe_r_;
        // Warm-start batched-refinement scratch, lazily grown to the
        // engine's rhs_block on the first warm solve.
        std::vector<cplx> resid_, corr_;
        std::vector<real> bmax_;
        std::vector<std::size_t> active_;
        std::vector<const cplx*> rcol_;
        bool factored_ = false; ///< numeric factors valid (cold path ran)
        bool warm_ = false;     ///< current frequency served by stale factors
        real omega_fact_ = 0.0; ///< frequency of the current cold factors
        real omega_cur_ = 0.0;  ///< frequency of the assembled workspace
        real ymax_ = 0.0;       ///< max |Y| of the assembled workspace (warm)
        // Pipelined warm start: the spare numeric object the lookahead
        // refactorization fills, the next point's assembled workspace,
        // and the claimable in-flight task.
        std::optional<numeric::numeric_lu<cplx>> incoming_;
        std::optional<numeric::csc_matrix<cplx>> bg_work_;
        std::shared_ptr<bg_refactor> pending_;
        real omega_bg_ = 0.0; ///< frequency of the lookahead matrix
    };

} // namespace

sweep_engine::sweep_engine(sweep_engine_options opt) : opt_(opt) {}

std::size_t sweep_engine::resolved_threads() const noexcept
{
    return opt_.threads == 0 ? thread_pool::hardware_threads() : opt_.threads;
}

namespace {

    constexpr std::size_t no_prev = std::numeric_limits<std::size_t>::max();

    /// Shared chunked sweep. bind_rhs(ri, slot, prev) returns a pointer to
    /// right-hand side ri, either borrowing caller storage directly or
    /// materializing into the worker's staging column `slot` (with `prev`
    /// as the slot's persistent sparse-update state). Right-hand sides are
    /// frequency independent, so a slot only changes when a different ri
    /// rotates into it. Templated on the binder so the per-RHS call
    /// inlines instead of going through a std::function.
    template <class BindRhs>
    void run_chunks(const linearized_snapshot& snap, const sweep_engine_options& opt,
                    std::size_t threads, const std::vector<real>& freqs_hz, std::size_t nrhs,
                    const BindRhs& bind_rhs, const sweep_engine::sink& out)
    {
        if (freqs_hz.empty())
            throw analysis_error("sweep engine: empty frequency list");
        for (const real f : freqs_hz)
            if (!(f > 0.0))
                throw analysis_error("sweep engine: frequencies must be positive");
        if (nrhs == 0)
            return;

        const std::size_t n = snap.size();
        const std::size_t nf = freqs_hz.size();
        const std::size_t block = std::max<std::size_t>(1, std::min(opt.rhs_block, nrhs));

        // One symbolic analysis for the whole sweep, computed (or fetched
        // from the snapshot's cache) on the calling thread before any
        // worker starts.
        std::shared_ptr<const numeric::symbolic_lu<cplx>> shared_sym;
        if (opt.solver == spice::solver_kind::sparse && opt.shared_symbolic)
            shared_sym = snap.shared_symbolic(opt.symbolic_omega_ref > 0.0
                                                  ? opt.symbolic_omega_ref
                                                  : to_omega(freqs_hz[nf / 2]),
                                              opt.tuning.ordering);

        // Balanced contiguous partition: exactly `workers` chunks, sizes
        // differing by at most one (a ceil-sized chunk count would leave
        // part of the thread budget idle).
        const std::size_t workers = std::max<std::size_t>(1, std::min(threads, nf));
        const std::size_t base = nf / workers;
        const std::size_t rem = nf % workers;

        thread_pool::shared().parallel_for(workers, workers, [&](std::size_t w) {
            const std::size_t begin = w * base + std::min(w, rem);
            const std::size_t end = begin + base + (w < rem ? 1 : 0);
            chunk_solver solver(snap, opt, to_omega(freqs_hz[begin + (end - begin) / 2]),
                                shared_sym);
            // All worker storage is allocated here, once; the frequency
            // loop below is allocation-free in steady state.
            std::vector<cplx> staging(block * n, cplx{});
            std::vector<std::size_t> prev(block, no_prev);
            std::vector<const cplx*> cols(block);
            std::vector<cplx> xbuf(block * n);
            for (std::size_t fi = begin; fi < end; ++fi) {
                // The lookahead (warm_pipeline) stops at the chunk edge:
                // the next chunk's points belong to another worker.
                solver.factor(to_omega(freqs_hz[fi]),
                              fi + 1 < end ? to_omega(freqs_hz[fi + 1]) : 0.0);
                for (std::size_t r0 = 0; r0 < nrhs; r0 += block) {
                    const std::size_t bn = std::min(block, nrhs - r0);
                    for (std::size_t j = 0; j < bn; ++j)
                        cols[j] = bind_rhs(r0 + j, staging.data() + j * n, prev[j]);
                    solver.solve_batch(cols.data(), bn, xbuf.data());
                    for (std::size_t j = 0; j < bn; ++j)
                        out(fi, r0 + j, std::span<const cplx>(xbuf.data() + j * n, n));
                }
            }
        });
    }

} // namespace

void sweep_engine::run(const linearized_snapshot& snap, const std::vector<real>& freqs_hz,
                       const std::vector<std::vector<cplx>>& rhs_batch, const sink& out) const
{
    for (const std::vector<cplx>& rhs : rhs_batch)
        if (rhs.size() != snap.size())
            throw analysis_error("sweep engine: right-hand side has wrong length");
    run_chunks(snap, opt_, resolved_threads(), freqs_hz, rhs_batch.size(),
               [&rhs_batch](std::size_t ri, cplx*, std::size_t&) -> const cplx* {
                   return rhs_batch[ri].data();
               },
               out);
}

void sweep_engine::run_injections(const linearized_snapshot& snap,
                                  const std::vector<real>& freqs_hz,
                                  const std::vector<injection>& injections,
                                  const sink& out) const
{
    for (const injection& inj : injections)
        if (inj.index >= snap.size())
            throw analysis_error("sweep engine: injection index out of range");
    run_chunks(snap, opt_, resolved_threads(), freqs_hz, injections.size(),
               [&injections](std::size_t ri, cplx* slot, std::size_t& prev) -> const cplx* {
                   // The slot column is all-zero except for the previously
                   // staged injection: clear just that index instead of an
                   // O(n) fill per (frequency x injection).
                   const injection& inj = injections[ri];
                   if (prev != no_prev)
                       slot[prev] = cplx{};
                   slot[inj.index] = inj.value;
                   prev = inj.index;
                   return slot;
               },
               out);
}

void sweep_engine::for_each(std::size_t count, const std::function<void(std::size_t)>& fn) const
{
    thread_pool::shared().parallel_for(count, std::max<std::size_t>(1, resolved_threads()), fn);
}

} // namespace acstab::engine
