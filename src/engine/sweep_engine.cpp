#include "engine/sweep_engine.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/error.h"
#include "engine/thread_pool.h"
#include "numeric/lu.h"
#include "numeric/sparse_lu.h"

namespace acstab::engine {

namespace {

    /// Relative infinity-norm residual of Y x = b (0 when b is zero).
    real relative_residual(const numeric::csc_matrix<cplx>& y, const std::vector<cplx>& x,
                           const std::vector<cplx>& b)
    {
        const std::vector<cplx> yx = y.multiply(x);
        real rnorm = 0.0;
        real bnorm = 0.0;
        for (std::size_t i = 0; i < b.size(); ++i) {
            rnorm = std::max(rnorm, std::abs(yx[i] - b[i]));
            bnorm = std::max(bnorm, std::abs(b[i]));
        }
        return bnorm > 0.0 ? rnorm / bnorm : 0.0;
    }

    /// Per-worker solver state: a pattern workspace plus a factorization
    /// that is refactored in place frequency to frequency.
    class chunk_solver {
    public:
        /// omega_ref seeds the symbolic analysis and pivot order that
        /// refactor() reuses; the chunk's middle frequency serves both
        /// ends of a log-spaced range far better than its first point.
        chunk_solver(const linearized_snapshot& snap, const sweep_engine_options& opt,
                     real omega_ref)
            : snap_(snap), opt_(opt), work_(snap.make_workspace())
        {
            if (opt_.solver == spice::solver_kind::sparse) {
                snap_.assemble(omega_ref, work_);
                fresh_factor();
            }
        }

        /// Factor Y(j w); returns false only if the matrix is singular
        /// (which throws, matching the direct path).
        void factor(real omega)
        {
            snap_.assemble(omega, work_);
            if (opt_.solver == spice::solver_kind::dense) {
                dense_.emplace(work_.to_dense());
                return;
            }
            try {
                sparse_->refactor(work_);
                refactored_ = true;
            } catch (const numeric_error&) {
                // Zero pivot under the reused pivot order; fall back.
                fresh_factor();
            }
        }

        [[nodiscard]] std::vector<cplx> solve(const std::vector<cplx>& rhs)
        {
            if (dense_)
                return dense_->solve(rhs);
            std::vector<cplx> x = sparse_->solve(rhs);
            if (refactored_) {
                // Guard the reused pivots once per frequency: far from the
                // symbolic reference frequency they can lose accuracy.
                refactored_ = false;
                if (relative_residual(work_, x, rhs) > opt_.refactor_guard_tol) {
                    fresh_factor();
                    x = sparse_->solve(rhs);
                }
            }
            return x;
        }

    private:
        void fresh_factor()
        {
            numeric::sparse_lu<cplx>::options lu_opt;
            lu_opt.prepare_refactor = true;
            sparse_.emplace(work_, lu_opt);
            refactored_ = false;
        }

        const linearized_snapshot& snap_;
        const sweep_engine_options& opt_;
        numeric::csc_matrix<cplx> work_;
        std::optional<numeric::sparse_lu<cplx>> sparse_;
        std::optional<numeric::lu_decomposition<cplx>> dense_;
        bool refactored_ = false;
    };

} // namespace

sweep_engine::sweep_engine(sweep_engine_options opt) : opt_(opt) {}

std::size_t sweep_engine::resolved_threads() const noexcept
{
    return opt_.threads == 0 ? thread_pool::hardware_threads() : opt_.threads;
}

namespace {

    /// Shared chunked sweep: get_rhs(ri, scratch) returns right-hand side
    /// ri, materializing it into the worker-local scratch buffer only
    /// when it is not already stored densely.
    void run_chunks(const linearized_snapshot& snap, const sweep_engine_options& opt,
                    std::size_t threads, const std::vector<real>& freqs_hz, std::size_t nrhs,
                    const std::function<const std::vector<cplx>&(std::size_t,
                                                                 std::vector<cplx>&)>& get_rhs,
                    const sweep_engine::sink& out)
    {
        if (freqs_hz.empty())
            throw analysis_error("sweep engine: empty frequency list");
        for (const real f : freqs_hz)
            if (!(f > 0.0))
                throw analysis_error("sweep engine: frequencies must be positive");
        if (nrhs == 0)
            return;

        // Balanced contiguous partition: exactly `workers` chunks, sizes
        // differing by at most one (a ceil-sized chunk count would leave
        // part of the thread budget idle).
        const std::size_t nf = freqs_hz.size();
        const std::size_t workers = std::max<std::size_t>(1, std::min(threads, nf));
        const std::size_t base = nf / workers;
        const std::size_t rem = nf % workers;

        thread_pool::shared().parallel_for(workers, workers, [&](std::size_t w) {
            const std::size_t begin = w * base + std::min(w, rem);
            const std::size_t end = begin + base + (w < rem ? 1 : 0);
            chunk_solver solver(snap, opt, to_omega(freqs_hz[begin + (end - begin) / 2]));
            std::vector<cplx> scratch(snap.size());
            for (std::size_t fi = begin; fi < end; ++fi) {
                solver.factor(to_omega(freqs_hz[fi]));
                for (std::size_t ri = 0; ri < nrhs; ++ri)
                    out(fi, ri, solver.solve(get_rhs(ri, scratch)));
            }
        });
    }

} // namespace

void sweep_engine::run(const linearized_snapshot& snap, const std::vector<real>& freqs_hz,
                       const std::vector<std::vector<cplx>>& rhs_batch, const sink& out) const
{
    for (const std::vector<cplx>& rhs : rhs_batch)
        if (rhs.size() != snap.size())
            throw analysis_error("sweep engine: right-hand side has wrong length");
    run_chunks(snap, opt_, resolved_threads(), freqs_hz, rhs_batch.size(),
               [&rhs_batch](std::size_t ri, std::vector<cplx>&) -> const std::vector<cplx>& {
                   return rhs_batch[ri];
               },
               out);
}

void sweep_engine::run_injections(const linearized_snapshot& snap,
                                  const std::vector<real>& freqs_hz,
                                  const std::vector<injection>& injections,
                                  const sink& out) const
{
    for (const injection& inj : injections)
        if (inj.index >= snap.size())
            throw analysis_error("sweep engine: injection index out of range");
    run_chunks(snap, opt_, resolved_threads(), freqs_hz, injections.size(),
               [&injections](std::size_t ri,
                             std::vector<cplx>& scratch) -> const std::vector<cplx>& {
                   std::fill(scratch.begin(), scratch.end(), cplx{});
                   scratch[injections[ri].index] = injections[ri].value;
                   return scratch;
               },
               out);
}

void sweep_engine::for_each(std::size_t count, const std::function<void(std::size_t)>& fn) const
{
    thread_pool::shared().parallel_for(count, std::max<std::size_t>(1, resolved_threads()), fn);
}

} // namespace acstab::engine
