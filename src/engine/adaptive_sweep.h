// Adaptive frequency-grid driver: rational-interpolated sweeps that
// factor 5-10x fewer points than the fixed per-decade grid.
//
// The fixed-grid engine spends one LU factorization per grid point even
// where the response is flat. Frequency responses of lumped linear
// circuits are exactly rational and — for stable closed loops — of low
// visible order over any finite band (Cooman et al., "Model-Free
// Closed-Loop Stability Analysis"), so a barycentric rational model
// fitted to a few solved samples predicts the rest of the band. The
// driver exploits that:
//
//   anchor   solve a coarse log grid (~4 points/decade) through the
//            shared sweep engine (thread pool + shared symbolic LU);
//   fit      AAA-fit one shared-support rational model to the observable
//            channels (numeric/aaa.h), all right-hand sides at once;
//   refine   at each candidate midpoint of adjacent solved frequencies,
//            predict the FULL solution vector of every right-hand side
//            from the model's barycentric coefficients (common weights
//            make this a short linear combination of stored solutions)
//            and measure the backward error ||Y(jw) x - b|| with one
//            matrix assembly and one SpMV per RHS — no factorization.
//            Frequencies whose worst-RHS backward error exceeds fit_tol
//            are solved for real in one batched engine pass, and the
//            loop repeats (bisection) until every candidate passes or
//            the budget is exhausted;
//   evaluate the dense output grid is evaluated from the fitted model
//            (exact solved values where available), so downstream
//            consumers see the same dense, now mildly non-uniform grid
//            with 5-10x fewer factorizations behind it.
//
// Multi-RHS batches (all-nodes analysis, loop gain's two injections)
// refine on the worst error over all right-hand sides, so a single
// refined grid serves every RHS.
#ifndef ACSTAB_ENGINE_ADAPTIVE_SWEEP_H
#define ACSTAB_ENGINE_ADAPTIVE_SWEEP_H

#include <cstddef>
#include <vector>

#include "engine/linearized_snapshot.h"
#include "engine/sweep_engine.h"
#include "numeric/aaa.h"

namespace acstab::engine {

struct adaptive_sweep_options {
    real fstart = 1e3;
    real fstop = 1e9;
    /// Density of the coarse anchor grid that is always solved.
    std::size_t anchors_per_decade = 4;
    /// Density of the dense output grid evaluated from the model (the
    /// fixed path's points_per_decade equivalent).
    std::size_t output_points_per_decade = 40;
    /// Relative backward-error tolerance of the model's predicted
    /// solutions; candidates above it are solved for real. Responses of
    /// lumped circuits are exactly rational, so tightening this costs few
    /// extra solves while keeping margins within rounding of the dense
    /// sweep.
    real fit_tol = 1e-6;
    /// Refinement stops bisecting an interval once it is narrower than
    /// this many decades (0 = a quarter of an output-grid step).
    real min_spacing_decades = 0.0;
    /// Hard cap on solved frequencies (0 = the fixed output grid's size,
    /// i.e. adaptive never factors more than the grid it replaces).
    std::size_t max_solved_points = 0;
    /// Safety valve on fit/refine iterations.
    std::size_t max_rounds = 24;
    sweep_engine_options engine;
};

/// One scalar observable: entry `unknown` of right-hand side `rhs`'s
/// solution. The rational model is fitted to these channels.
struct adaptive_channel {
    std::size_t rhs = 0;
    std::size_t unknown = 0;
};

struct adaptive_sweep_result {
    /// Dense output grid: the log grid at output_points_per_decade merged
    /// with every solved frequency (sorted, near-duplicates removed) —
    /// mildly non-uniform by construction.
    std::vector<real> freq_hz;
    /// Channel values on freq_hz: exact solver output at solved
    /// frequencies, model evaluation elsewhere. [channel][freq index].
    std::vector<std::vector<cplx>> values;
    /// Frequencies actually factored and solved, ascending.
    std::vector<real> solved_freq_hz;
    /// LU factorizations performed (one per solved frequency; the fixed
    /// path's count is the full output grid size).
    std::size_t factorizations = 0;
    /// Support-point count of the final rational model.
    std::size_t model_order = 0;
    /// Scaled least-squares error of the final fit at solved samples.
    real model_fit_error = 0.0;
    /// The final fitted rational model itself (components in channel
    /// order). Downstream consumers evaluate it at arbitrary density, or
    /// extract its poles/level crossings as a low-order closed-loop
    /// estimate (the impedance-partition analysis does both).
    numeric::aaa_model model;
    /// False when the round or point budget ran out with candidates still
    /// failing the residual check (results are then best-effort).
    bool converged = true;
};

/// Derive band and output density from an existing log-sweep grid (the
/// consumers that historically took a realized frequency vector — loop
/// gain, Bode — reuse the grid's [front, back] range and per-decade
/// density as the adaptive output spec). The grid must be positive,
/// strictly ascending and hold at least 2 points.
[[nodiscard]] adaptive_sweep_options
adaptive_options_for_grid(const std::vector<real>& freqs_hz);

class adaptive_sweep {
public:
    explicit adaptive_sweep(adaptive_sweep_options opt = {});

    [[nodiscard]] const adaptive_sweep_options& options() const noexcept { return opt_; }

    /// Adaptive counterpart of sweep_engine::run_injections.
    [[nodiscard]] adaptive_sweep_result
    run_injections(const linearized_snapshot& snap,
                   const std::vector<sweep_engine::injection>& injections,
                   const std::vector<adaptive_channel>& channels) const;

    /// Adaptive counterpart of sweep_engine::run (dense right-hand sides).
    [[nodiscard]] adaptive_sweep_result run(const linearized_snapshot& snap,
                                            const std::vector<std::vector<cplx>>& rhs_batch,
                                            const std::vector<adaptive_channel>& channels) const;

private:
    adaptive_sweep_options opt_;
};

} // namespace acstab::engine

#endif // ACSTAB_ENGINE_ADAPTIVE_SWEEP_H
