// Persistent shared worker pool behind every parallel analysis.
//
// Workers are created once (lazily, on first use of the shared pool) and
// parked on a condition variable between jobs, replacing the
// spawn-and-join std::thread bands the analyses used to create per call.
// parallel_for is a blocking fork-join: the calling thread always
// participates in the index claim loop, and while waiting for its
// helpers it drains other queued tasks, so nested calls from inside a
// worker make progress even when every worker is blocked in an outer
// join (no deadlock; inner jobs just borrow the waiting threads).
#ifndef ACSTAB_ENGINE_THREAD_POOL_H
#define ACSTAB_ENGINE_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace acstab::engine {

class thread_pool {
public:
    /// Pool with a fixed worker count (0 = no workers; everything runs on
    /// the calling thread).
    explicit thread_pool(std::size_t workers);
    ~thread_pool();
    thread_pool(const thread_pool&) = delete;
    thread_pool& operator=(const thread_pool&) = delete;

    [[nodiscard]] std::size_t worker_count() const noexcept { return workers_.size(); }

    /// Run fn(0) ... fn(count - 1), with at most max_workers indices in
    /// flight at once. Blocks until every index has completed. Indices are
    /// claimed dynamically; the caller participates. The first exception
    /// thrown by any fn is rethrown here after all indices finish or are
    /// abandoned.
    void parallel_for(std::size_t count, std::size_t max_workers,
                      const std::function<void(std::size_t)>& fn);

    /// Enqueue a single fire-and-forget task for the next free worker and
    /// return immediately (runs inline when the pool has no workers). The
    /// caller owns completion tracking: a submitter that must wait should
    /// make the task claimable and run it inline itself if no worker has
    /// picked it up by then — the pool guarantees eventual execution but
    /// no latency (every worker may be blocked in a parallel_for join, in
    /// which case a waiting joiner will drain it). fn must not throw; it
    /// runs with no surrounding catch.
    void submit(std::function<void()> fn);

    /// Process-wide pool sized to the hardware concurrency, created on
    /// first use. All analyses share it.
    [[nodiscard]] static thread_pool& shared();

    /// Threads usable for compute on this machine (>= 1).
    [[nodiscard]] static std::size_t hardware_threads() noexcept;

private:
    void worker_loop();
    /// Pop and run one queued task on the calling thread; false when the
    /// queue is empty.
    bool run_one_queued_task();

    std::mutex mutex_;
    std::condition_variable wake_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    bool stopping_ = false;
};

} // namespace acstab::engine

#endif // ACSTAB_ENGINE_THREAD_POOL_H
