#include "engine/thread_pool.h"

#include <atomic>
#include <chrono>
#include <exception>

namespace acstab::engine {

thread_pool::thread_pool(std::size_t workers)
{
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

thread_pool::~thread_pool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread& t : workers_)
        t.join();
}

void thread_pool::worker_loop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

void thread_pool::parallel_for(std::size_t count, std::size_t max_workers,
                               const std::function<void(std::size_t)>& fn)
{
    if (count == 0)
        return;
    if (max_workers <= 1 || count == 1 || workers_.empty()) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    // Shared claim-loop state for this job, on the caller's stack.
    struct job_state {
        std::atomic<std::size_t> next{0};
        std::size_t count = 0;
        const std::function<void(std::size_t)>* fn = nullptr;
        std::atomic<bool> failed{false};
        std::mutex error_mutex;
        std::exception_ptr error;
        std::mutex done_mutex;
        std::condition_variable done_cv;
        std::size_t helpers_active = 0;
    };
    job_state job;
    job.count = count;
    job.fn = &fn;

    const auto claim_loop = [&job] {
        for (;;) {
            const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
            if (i >= job.count || job.failed.load(std::memory_order_relaxed))
                return;
            try {
                (*job.fn)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(job.error_mutex);
                if (!job.error)
                    job.error = std::current_exception();
                job.failed.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    const std::size_t helpers
        = std::min({max_workers - 1, workers_.size(), count - 1});
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job.helpers_active = helpers;
        for (std::size_t h = 0; h < helpers; ++h) {
            queue_.emplace_back([&job, claim_loop] {
                claim_loop();
                // Notify under the lock: `job` lives on the caller's
                // stack and is destroyed as soon as the caller observes
                // helpers_active == 0.
                std::lock_guard<std::mutex> done_lock(job.done_mutex);
                --job.helpers_active;
                job.done_cv.notify_one();
            });
        }
    }
    wake_.notify_all();

    claim_loop();

    // Wait for the helpers, draining queued pool tasks meanwhile: when
    // every worker is itself blocked inside a nested parallel_for, the
    // queued helper tasks would otherwise never be popped and all the
    // waiters would deadlock. Running other jobs' tasks here is exactly
    // what an idle worker would do.
    for (;;) {
        {
            std::unique_lock<std::mutex> done_lock(job.done_mutex);
            if (job.helpers_active == 0)
                break;
        }
        if (!run_one_queued_task()) {
            std::unique_lock<std::mutex> done_lock(job.done_mutex);
            if (job.done_cv.wait_for(done_lock, std::chrono::milliseconds(1),
                                     [&job] { return job.helpers_active == 0; }))
                break;
        }
    }
    if (job.error)
        std::rethrow_exception(job.error);
}

void thread_pool::submit(std::function<void()> fn)
{
    if (workers_.empty()) {
        fn();
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.emplace_back(std::move(fn));
    }
    wake_.notify_one();
}

bool thread_pool::run_one_queued_task()
{
    std::function<void()> task;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (queue_.empty())
            return false;
        task = std::move(queue_.front());
        queue_.pop_front();
    }
    task();
    return true;
}

thread_pool& thread_pool::shared()
{
    static thread_pool pool(hardware_threads());
    return pool;
}

std::size_t thread_pool::hardware_threads() noexcept
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

} // namespace acstab::engine
