// The unified small-signal sweep engine.
//
// One executor behind every frequency-domain analysis (ac, stability
// single-node and all-nodes, loop gain, in-tool parameter sweeps):
//
//   * the frequency grid is partitioned into contiguous chunks dispatched
//     on the shared thread_pool (deterministic partition for a given
//     thread count, so results are reproducible run to run);
//   * the symbolic LU (pivot order, L/U patterns) is computed ONCE per
//     snapshot at the grid's middle frequency and shared read-only by all
//     workers; per frequency each worker assembles the snapshot into its
//     CSC workspace and refactors numerically in place, with a dense-probe
//     residual guard that falls back to a fresh local factorization when
//     the reused pivot order degrades (or hits an exact zero pivot);
//   * right-hand sides are back-solved in batches: one traversal of L and
//     one of U per batch of up to rhs_block columns, with zero heap
//     allocations in the steady-state loop — the paper's one-stimulus-
//     per-node sweep becomes one refactorization plus one batched
//     back-solve per frequency.
//
// for_each() exposes the same pool for coarse-grained parameter-point
// dispatch (corner/TEMP sweeps), with results slotted by index so
// ordering stays deterministic regardless of scheduling.
#ifndef ACSTAB_ENGINE_SWEEP_ENGINE_H
#define ACSTAB_ENGINE_SWEEP_ENGINE_H

#include <atomic>
#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "engine/linearized_snapshot.h"
#include "numeric/sparse_factor.h"
#include "spice/mna.h"

namespace acstab::engine {

/// Sparse-solver tuning shared by every frequency-domain analysis (the
/// stability analyzer, loop gain, impedance partitions, spice::ac_sweep
/// and the farm executor all forward one of these into their engine
/// options; the CLI exposes it as --order / --no-simd / --warm).
struct solver_tuning {
    /// Fill-reducing column pre-ordering of the shared symbolic LU.
    /// Approximate minimum degree by default: fill within a few percent
    /// of exact minimum degree everywhere we measure, with an ordering
    /// cost that stays flat to hundreds of thousands of nodes. `amd`
    /// (exact) and the cheap `count`/`none` heuristics remain as escape
    /// hatches; the ordering never changes answers, only speed.
    numeric::column_ordering ordering = numeric::column_ordering::amd_approx;
    /// Vectorize the batched back-solve across the contiguous RHS block
    /// (numeric_lu's split real/imag SIMD kernel). Deterministic for a
    /// given batch shape, so thread count still never changes results;
    /// scalar and SIMD answers agree to rounding, not bit-for-bit.
    bool simd = true;
    /// Frequency-coherence warm start: keep the neighboring frequency
    /// point's numeric factors and iterate batched refinement against
    /// the freshly assembled Y(jw) instead of refactoring, falling back
    /// to a cold refactor through the two-tier guard (the free growth
    /// witness, then the per-right-hand-side backward-error contract of
    /// the refinement itself). Every accepted solve satisfies the same
    /// backward-error tolerance as the cold guard (refactor_guard_tol).
    /// Pays off once a factorization costs more than a handful of
    /// batched back-solves — large fill-heavy circuits (meshes), not
    /// near-tridiagonal ladders. OFF by default: the warm path makes a
    /// chunk's results depend on the frequencies it solved before, so
    /// results would vary with the thread count's chunk boundaries —
    /// opt in per run (bench harnesses, serial sweeps, --warm).
    bool warm_start = false;
    /// Supernodal/blocked numeric path: refactorization runs the blocked
    /// elimination over the symbolic supernode partition and the batched
    /// back-solve walks dense panels (numeric_lu::set_supernodal). ON by
    /// default — it is a pure speed knob; blocked and column answers
    /// agree to rounding (CI-guarded at 1e-12) exactly like the SIMD
    /// kernel. --no-supernodal is the escape hatch / ablation axis.
    bool supernodal = true;
    /// Pipelined warm start, the batched-regime variant of warm_start:
    /// while a worker back-solves one grid point's RHS batches, the NEXT
    /// point's matrix is assembled into a spare workspace and refactored
    /// concurrently on a shared-pool worker; reaching that point adopts
    /// the finished factors instead of refactoring on the critical path.
    /// The lookahead refactorization runs on the same assembled values a
    /// cold refactor would use and the adopted factors pass the cold
    /// path's growth/probe guard, so results are BIT-IDENTICAL to the
    /// cold path — unlike warm_start nothing is served stale and no
    /// refinement is involved. Wins when spare cores exist to overlap
    /// factor with solve; on a core-starved host the lookahead instead
    /// timeslices against the solves and doubles the live factor
    /// working set (~1.1-1.2x over cold at 8k unknowns, single-core).
    /// OFF by default because it spends a second core per worker —
    /// results do not depend on thread count or chunk boundaries
    /// (--warm-pipeline).
    bool warm_pipeline = false;
};

/// Live solver counters, aggregated across workers (relaxed atomics).
/// Attach via sweep_engine_options::stats to observe warm-start behavior
/// (the size-scaling bench reports these per configuration).
struct sweep_stats {
    std::atomic<std::size_t> cold_factors{0};   ///< full numeric refactorizations
    std::atomic<std::size_t> warm_accepts{0};   ///< warm: stale factors served; pipelined: lookahead factors adopted
    std::atomic<std::size_t> warm_fallbacks{0}; ///< warm attempts that went cold
    std::atomic<std::size_t> warm_refinements{0}; ///< batched refinement solves
};

struct sweep_engine_options {
    /// Worker threads (1 = serial on the calling thread, 0 = all hardware
    /// threads).
    std::size_t threads = 1;
    spice::solver_kind solver = spice::solver_kind::sparse;
    /// Relative residual above which a refactored system is re-factored
    /// from scratch (guards the reused pivot order far from the symbolic
    /// reference frequency).
    real refactor_guard_tol = 1e-10;
    /// Element growth (largest |L| entry of a refactorization) above
    /// which the residual guard actually runs its dense-probe check.
    /// Fresh threshold pivoting bounds growth by 1/pivot_tol = 10, so a
    /// modest limit keeps every frequency witnessed for free (growth is
    /// computed inside the refactor loop) while the probe solve + SpMV
    /// are only paid when the reused pivot order looks stale.
    real refactor_growth_limit = 1e4;
    /// Share one symbolic factorization (computed at the sweep's middle
    /// frequency, cached on the snapshot) across all workers. When false
    /// each chunk runs its own symbolic analysis, seeded at the chunk's
    /// middle frequency — kept as an ablation/bisection axis.
    bool shared_symbolic = true;
    /// Angular frequency at which the shared symbolic factorization is
    /// seeded. 0 (the default) uses the middle of each run's grid; the
    /// adaptive driver pins it to the band's midpoint so its many small
    /// refinement batches all hit the snapshot's cached symbolic object
    /// instead of re-running the symbolic analysis per batch.
    real symbolic_omega_ref = 0.0;
    /// Upper bound on right-hand sides per batched back-solve. Bounds the
    /// worker-local staging to O(rhs_block * n) while still amortizing
    /// each L/U traversal across the batch; 1 disables batching.
    std::size_t rhs_block = 32;
    /// Ordering / kernel / warm-start tuning (see solver_tuning).
    solver_tuning tuning;
    /// Largest frequency ratio between a candidate point and the last
    /// cold-factored point still eligible for a warm-started solve; the
    /// stale-factor refinement contracts the error by roughly that
    /// relative frequency step per iteration, so eligibility is capped
    /// where convergence to refactor_guard_tol stays cheaper than a
    /// refactor.
    real warm_ratio_limit = 1.1;
    /// Refinement iterations per right-hand side before a warm solve
    /// gives up and falls back to a cold refactor.
    std::size_t warm_max_refine = 8;
    /// Optional live counters (not owned; must outlive the run).
    sweep_stats* stats = nullptr;
};

class sweep_engine {
public:
    explicit sweep_engine(sweep_engine_options opt = {});

    [[nodiscard]] const sweep_engine_options& options() const noexcept { return opt_; }

    /// Threads this engine will actually use.
    [[nodiscard]] std::size_t resolved_threads() const noexcept;

    /// Called once per (frequency index, rhs index) pair with the solved
    /// unknown vector. May be invoked concurrently from pool workers, but
    /// each (fi, ri) slot exactly once — writing disjoint output slots
    /// needs no locking. The span borrows a worker buffer that is only
    /// valid for the duration of the call: copy out what you keep.
    using sink = std::function<void(std::size_t fi, std::size_t ri, std::span<const cplx> sol)>;

    /// Solve Y(j 2 pi f) x = rhs for every sweep frequency and every
    /// right-hand side in the batch.
    void run(const linearized_snapshot& snap, const std::vector<real>& freqs_hz,
             const std::vector<std::vector<cplx>>& rhs_batch, const sink& out) const;

    /// A single-entry right-hand side: `value` injected at one unknown
    /// (the stability sweeps' unit-current stimuli). Workers stage these
    /// into reused block columns — updated by clearing only the previously
    /// set index — so a batch of N injections costs O(rhs_block * n)
    /// memory and O(1) per-solve setup instead of the O(N * n) of dense
    /// rhs vectors.
    struct injection {
        std::size_t index = 0;
        cplx value{1.0, 0.0};
    };

    /// run() with one sparse injection per right-hand side.
    void run_injections(const linearized_snapshot& snap, const std::vector<real>& freqs_hz,
                        const std::vector<injection>& injections, const sink& out) const;

    /// Dispatch fn(0..count-1) on the shared pool (at most resolved_threads
    /// in flight). Used for parameter-point sweeps; fn must be thread-safe.
    void for_each(std::size_t count, const std::function<void(std::size_t)>& fn) const;

private:
    sweep_engine_options opt_;
};

} // namespace acstab::engine

#endif // ACSTAB_ENGINE_SWEEP_ENGINE_H
