// The unified small-signal sweep engine.
//
// One executor behind every frequency-domain analysis (ac, stability
// single-node and all-nodes, loop gain, in-tool parameter sweeps):
//
//   * the frequency grid is partitioned into contiguous chunks dispatched
//     on the shared thread_pool (deterministic partition for a given
//     thread count, so results are reproducible run to run);
//   * the symbolic LU (pivot order, L/U patterns) is computed ONCE per
//     snapshot at the grid's middle frequency and shared read-only by all
//     workers; per frequency each worker assembles the snapshot into its
//     CSC workspace and refactors numerically in place, with a dense-probe
//     residual guard that falls back to a fresh local factorization when
//     the reused pivot order degrades (or hits an exact zero pivot);
//   * right-hand sides are back-solved in batches: one traversal of L and
//     one of U per batch of up to rhs_block columns, with zero heap
//     allocations in the steady-state loop — the paper's one-stimulus-
//     per-node sweep becomes one refactorization plus one batched
//     back-solve per frequency.
//
// for_each() exposes the same pool for coarse-grained parameter-point
// dispatch (corner/TEMP sweeps), with results slotted by index so
// ordering stays deterministic regardless of scheduling.
#ifndef ACSTAB_ENGINE_SWEEP_ENGINE_H
#define ACSTAB_ENGINE_SWEEP_ENGINE_H

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "engine/linearized_snapshot.h"
#include "spice/mna.h"

namespace acstab::engine {

struct sweep_engine_options {
    /// Worker threads (1 = serial on the calling thread, 0 = all hardware
    /// threads).
    std::size_t threads = 1;
    spice::solver_kind solver = spice::solver_kind::sparse;
    /// Relative residual above which a refactored system is re-factored
    /// from scratch (guards the reused pivot order far from the symbolic
    /// reference frequency).
    real refactor_guard_tol = 1e-10;
    /// Element growth (largest |L| entry of a refactorization) above
    /// which the residual guard actually runs its dense-probe check.
    /// Fresh threshold pivoting bounds growth by 1/pivot_tol = 10, so a
    /// modest limit keeps every frequency witnessed for free (growth is
    /// computed inside the refactor loop) while the probe solve + SpMV
    /// are only paid when the reused pivot order looks stale.
    real refactor_growth_limit = 1e4;
    /// Share one symbolic factorization (computed at the sweep's middle
    /// frequency, cached on the snapshot) across all workers. When false
    /// each chunk runs its own symbolic analysis, seeded at the chunk's
    /// middle frequency — kept as an ablation/bisection axis.
    bool shared_symbolic = true;
    /// Angular frequency at which the shared symbolic factorization is
    /// seeded. 0 (the default) uses the middle of each run's grid; the
    /// adaptive driver pins it to the band's midpoint so its many small
    /// refinement batches all hit the snapshot's cached symbolic object
    /// instead of re-running the symbolic analysis per batch.
    real symbolic_omega_ref = 0.0;
    /// Upper bound on right-hand sides per batched back-solve. Bounds the
    /// worker-local staging to O(rhs_block * n) while still amortizing
    /// each L/U traversal across the batch; 1 disables batching.
    std::size_t rhs_block = 32;
};

class sweep_engine {
public:
    explicit sweep_engine(sweep_engine_options opt = {});

    [[nodiscard]] const sweep_engine_options& options() const noexcept { return opt_; }

    /// Threads this engine will actually use.
    [[nodiscard]] std::size_t resolved_threads() const noexcept;

    /// Called once per (frequency index, rhs index) pair with the solved
    /// unknown vector. May be invoked concurrently from pool workers, but
    /// each (fi, ri) slot exactly once — writing disjoint output slots
    /// needs no locking. The span borrows a worker buffer that is only
    /// valid for the duration of the call: copy out what you keep.
    using sink = std::function<void(std::size_t fi, std::size_t ri, std::span<const cplx> sol)>;

    /// Solve Y(j 2 pi f) x = rhs for every sweep frequency and every
    /// right-hand side in the batch.
    void run(const linearized_snapshot& snap, const std::vector<real>& freqs_hz,
             const std::vector<std::vector<cplx>>& rhs_batch, const sink& out) const;

    /// A single-entry right-hand side: `value` injected at one unknown
    /// (the stability sweeps' unit-current stimuli). Workers stage these
    /// into reused block columns — updated by clearing only the previously
    /// set index — so a batch of N injections costs O(rhs_block * n)
    /// memory and O(1) per-solve setup instead of the O(N * n) of dense
    /// rhs vectors.
    struct injection {
        std::size_t index = 0;
        cplx value{1.0, 0.0};
    };

    /// run() with one sparse injection per right-hand side.
    void run_injections(const linearized_snapshot& snap, const std::vector<real>& freqs_hz,
                        const std::vector<injection>& injections, const sink& out) const;

    /// Dispatch fn(0..count-1) on the shared pool (at most resolved_threads
    /// in flight). Used for parameter-point sweeps; fn must be thread-safe.
    void for_each(std::size_t count, const std::function<void(std::size_t)>& fn) const;

private:
    sweep_engine_options opt_;
};

} // namespace acstab::engine

#endif // ACSTAB_ENGINE_SWEEP_ENGINE_H
