// The unified small-signal sweep engine.
//
// One executor behind every frequency-domain analysis (ac, stability
// single-node and all-nodes, loop gain, in-tool parameter sweeps):
//
//   * the frequency grid is partitioned into contiguous chunks dispatched
//     on the shared thread_pool (deterministic partition for a given
//     thread count, so results are reproducible run to run);
//   * per frequency the linearized snapshot is assembled into a
//     worker-local CSC workspace and factored ONCE; the first frequency a
//     worker sees pays the full symbolic+numeric factorization, later
//     frequencies reuse the pattern through sparse_lu::refactor with a
//     residual guard that falls back to a fresh factorization;
//   * an arbitrary batch of right-hand sides is back-solved per point —
//     the paper's one-stimulus-per-node loop becomes one factorization
//     plus N back-solves.
//
// for_each() exposes the same pool for coarse-grained parameter-point
// dispatch (corner/TEMP sweeps), with results slotted by index so
// ordering stays deterministic regardless of scheduling.
#ifndef ACSTAB_ENGINE_SWEEP_ENGINE_H
#define ACSTAB_ENGINE_SWEEP_ENGINE_H

#include <cstddef>
#include <functional>
#include <vector>

#include "engine/linearized_snapshot.h"
#include "spice/mna.h"

namespace acstab::engine {

struct sweep_engine_options {
    /// Worker threads (1 = serial on the calling thread, 0 = all hardware
    /// threads).
    std::size_t threads = 1;
    spice::solver_kind solver = spice::solver_kind::sparse;
    /// Relative residual above which a refactored system is re-factored
    /// from scratch (guards the reused pivot order far from the symbolic
    /// reference frequency).
    real refactor_guard_tol = 1e-10;
};

class sweep_engine {
public:
    explicit sweep_engine(sweep_engine_options opt = {});

    [[nodiscard]] const sweep_engine_options& options() const noexcept { return opt_; }

    /// Threads this engine will actually use.
    [[nodiscard]] std::size_t resolved_threads() const noexcept;

    /// Called once per (frequency index, rhs index) pair with the solved
    /// unknown vector. May be invoked concurrently from pool workers, but
    /// each (fi, ri) slot exactly once — writing disjoint output slots
    /// needs no locking.
    using sink = std::function<void(std::size_t fi, std::size_t ri, std::vector<cplx>&& sol)>;

    /// Solve Y(j 2 pi f) x = rhs for every sweep frequency and every
    /// right-hand side in the batch.
    void run(const linearized_snapshot& snap, const std::vector<real>& freqs_hz,
             const std::vector<std::vector<cplx>>& rhs_batch, const sink& out) const;

    /// A single-entry right-hand side: `value` injected at one unknown
    /// (the stability sweeps' unit-current stimuli). Workers expand these
    /// into one reused buffer, so a batch of N injections costs O(n)
    /// memory instead of the O(N * n) of dense rhs vectors.
    struct injection {
        std::size_t index = 0;
        cplx value{1.0, 0.0};
    };

    /// run() with one sparse injection per right-hand side.
    void run_injections(const linearized_snapshot& snap, const std::vector<real>& freqs_hz,
                        const std::vector<injection>& injections, const sink& out) const;

    /// Dispatch fn(0..count-1) on the shared pool (at most resolved_threads
    /// in flight). Used for parameter-point sweeps; fn must be thread-safe.
    void for_each(std::size_t count, const std::function<void(std::size_t)>& fn) const;

private:
    sweep_engine_options opt_;
};

} // namespace acstab::engine

#endif // ACSTAB_ENGINE_SWEEP_ENGINE_H
