#include "engine/linearized_snapshot.h"

#include "common/error.h"
#include "spice/device.h"

namespace acstab::engine {

namespace {

    /// Stamp every device at one angular frequency.
    spice::system_builder<cplx> stamp_all(const spice::circuit& c, const std::vector<real>& op,
                                          real omega, const snapshot_options& opt)
    {
        spice::ac_params p;
        p.omega = omega;
        p.gmin = opt.gmin;
        p.exclusive_source = opt.exclusive_source;
        p.zero_all_sources = opt.zero_all_sources;

        spice::system_builder<cplx> b(c.unknown_count());
        for (const auto& dev : c.devices()) {
            if (opt.device_filter && !opt.device_filter(*dev)) {
                // Pin the excluded device's branch unknowns (current = 0)
                // so rows otherwise stamped only by it stay regular.
                for (std::size_t k = 0; k < dev->extra_unknown_count(); ++k)
                    b.add(dev->branch_unknown(k), dev->branch_unknown(k), cplx{1.0, 0.0});
                continue;
            }
            dev->stamp_ac(op, p, b);
        }
        if (opt.gshunt > 0.0)
            for (std::size_t i = 0; i < c.node_count(); ++i)
                b.add(static_cast<spice::node_id>(i), static_cast<spice::node_id>(i),
                      cplx{opt.gshunt, 0.0});
        return b;
    }

} // namespace

linearized_snapshot::linearized_snapshot(spice::circuit& c, const std::vector<real>& op,
                                         const snapshot_options& opt)
{
    c.finalize();
    if (op.size() != c.unknown_count())
        throw analysis_error("snapshot: operating point has wrong size");
    n_ = c.unknown_count();
    nodes_ = c.node_count();

    // Two stamp passes bracket the affine frequency dependence exactly:
    // Y(w) = Y0 + w * (Y1 - Y0) reproduces a + j w c entry-wise.
    const spice::system_builder<cplx> b0 = stamp_all(c, op, 0.0, opt);
    const spice::system_builder<cplx> b1 = stamp_all(c, op, 1.0, opt);
    rhs_ = b0.rhs();

    const numeric::csc_matrix<cplx> y0(b0.matrix());
    const numeric::csc_matrix<cplx> y1(b1.matrix());

    // Merge the two (sorted) patterns column by column; align both value
    // sets to the union so the per-frequency fill is a flat fused loop.
    col_ptr_.assign(n_ + 1, 0);
    row_idx_.reserve(y1.nnz());
    gvals_.reserve(y1.nnz());
    bvals_.reserve(y1.nnz());
    for (std::size_t col = 0; col < n_; ++col) {
        std::size_t p0 = y0.col_ptr()[col];
        const std::size_t e0 = y0.col_ptr()[col + 1];
        std::size_t p1 = y1.col_ptr()[col];
        const std::size_t e1 = y1.col_ptr()[col + 1];
        while (p0 < e0 || p1 < e1) {
            const std::size_t r0 = p0 < e0 ? y0.row_idx()[p0] : n_;
            const std::size_t r1 = p1 < e1 ? y1.row_idx()[p1] : n_;
            const std::size_t row = std::min(r0, r1);
            const cplx v0 = r0 == row ? y0.values()[p0++] : cplx{};
            const cplx v1 = r1 == row ? y1.values()[p1++] : cplx{};
            row_idx_.push_back(row);
            gvals_.push_back(v0);
            bvals_.push_back(v1 - v0);
        }
        col_ptr_[col + 1] = row_idx_.size();
    }
}

numeric::csc_matrix<cplx> linearized_snapshot::make_workspace() const
{
    return numeric::csc_matrix<cplx>(n_, n_, col_ptr_, row_idx_,
                                     std::vector<cplx>(row_idx_.size()));
}

void linearized_snapshot::assemble(real omega, numeric::csc_matrix<cplx>& out) const
{
    std::vector<cplx>& v = out.values_mut();
    if (v.size() != gvals_.size())
        throw analysis_error("snapshot: workspace does not match this snapshot");
    for (std::size_t k = 0; k < v.size(); ++k)
        v[k] = gvals_[k] + omega * bvals_[k];
}

std::shared_ptr<const numeric::symbolic_lu<cplx>>
linearized_snapshot::shared_symbolic(real omega_ref, numeric::column_ordering ordering) const
{
    const std::lock_guard<std::mutex> lock(symbolic_mutex_);
    if (symbolic_ == nullptr || symbolic_omega_ != omega_ref
        || symbolic_ordering_ != ordering) {
        numeric::csc_matrix<cplx> work = make_workspace();
        assemble(omega_ref, work);
        numeric::lu_options sopt;
        sopt.ordering = ordering;
        symbolic_ = std::make_shared<const numeric::symbolic_lu<cplx>>(work, sopt);
        symbolic_omega_ = omega_ref;
        symbolic_ordering_ = ordering;
    }
    return symbolic_;
}

} // namespace acstab::engine
