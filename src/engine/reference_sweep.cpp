#include "engine/reference_sweep.h"

namespace acstab::engine {

spice::ac_result reference_ac_sweep(spice::circuit& c, const std::vector<real>& freqs_hz,
                                    const std::vector<real>& op, const spice::ac_options& opt)
{
    c.finalize();
    if (freqs_hz.empty())
        throw analysis_error("ac sweep: empty frequency list");
    if (op.size() != c.unknown_count())
        throw analysis_error("ac sweep: operating point has wrong size");

    const std::size_t n = c.unknown_count();
    const std::size_t nodes = c.node_count();

    spice::ac_result res;
    res.freq_hz = freqs_hz;
    res.solution.reserve(freqs_hz.size());

    for (const real f : freqs_hz) {
        if (!(f > 0.0))
            throw analysis_error("ac sweep: frequencies must be positive");
        spice::ac_params p;
        p.omega = to_omega(f);
        p.gmin = opt.gmin;
        p.exclusive_source = opt.exclusive_source;

        spice::system_builder<cplx> b(n);
        for (const auto& dev : c.devices())
            dev->stamp_ac(op, p, b);
        if (opt.gshunt > 0.0)
            for (std::size_t i = 0; i < nodes; ++i)
                b.add(static_cast<spice::node_id>(i), static_cast<spice::node_id>(i),
                      cplx{opt.gshunt, 0.0});

        res.solution.push_back(solve_system(b, opt.solver));
    }
    return res;
}

} // namespace acstab::engine
