#include "analysis/transient_overshoot.h"

#include "common/error.h"
#include <cmath>

#include "spice/measure.h"

namespace acstab::analysis {

step_response_metrics measure_step_response(spice::circuit& c, const std::string& output_node,
                                            const step_options& opt)
{
    if (!(opt.tstop > 0.0))
        throw analysis_error("step response: tstop must be positive");

    spice::tran_options tran = opt.tran;
    tran.tstop = opt.tstop;
    tran.dt = opt.dt > 0.0 ? opt.dt : opt.tstop / 4000.0;

    step_response_metrics m;
    m.raw = spice::transient(c, tran);
    const std::vector<real> y = spice::node_waveform(c, m.raw, output_node);

    m.initial_value = y.front();
    m.final_value = spice::final_value(y);
    m.overshoot_pct = spice::overshoot_percent(y, m.initial_value, m.final_value);
    m.ringing_freq_hz = spice::ringing_frequency(m.raw.time, y, m.final_value);
    // Band relative to the step swing so small steps on a DC level work.
    m.settling_time_s = spice::settling_time_abs(
        m.raw.time, y, m.final_value, 0.02 * std::fabs(m.final_value - m.initial_value));
    return m;
}

} // namespace acstab::analysis
