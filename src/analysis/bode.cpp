#include "analysis/bode.h"

#include "common/error.h"
#include "engine/adaptive_sweep.h"
#include "engine/linearized_snapshot.h"
#include "spice/devices/sources.h"

namespace acstab::analysis {

frequency_response measure_response(spice::circuit& c, const std::string& source_name,
                                    const std::string& output_node,
                                    const std::vector<real>& freqs_hz, const bode_options& opt)
{
    spice::device* src = c.find_device(source_name);
    if (src == nullptr)
        throw analysis_error("bode: unknown source '" + source_name + "'");

    cplx stimulus{0.0, 0.0};
    if (const auto* vs = dynamic_cast<const spice::vsource*>(src))
        stimulus = vs->spec().ac_phasor();
    else if (const auto* is = dynamic_cast<const spice::isource*>(src))
        stimulus = is->spec().ac_phasor();
    else
        throw analysis_error("bode: device '" + source_name + "' is not an independent source");
    if (stimulus == cplx{0.0, 0.0})
        throw analysis_error("bode: source '" + source_name + "' has zero AC magnitude");

    spice::dc_options dc = opt.dc;
    dc.solver = opt.solver;
    dc.gmin = opt.gmin;
    const spice::dc_result op = spice::dc_operating_point(c, dc);

    frequency_response out;
    if (opt.adaptive) {
        const auto node = c.find_node(output_node);
        if (!node)
            throw analysis_error("bode: unknown node '" + output_node + "'");
        if (*node < 0)
            throw analysis_error("bode: cannot measure the ground node");
        c.finalize();
        engine::snapshot_options sopt;
        sopt.gmin = opt.gmin;
        sopt.gshunt = opt.gshunt;
        sopt.exclusive_source = src;
        const engine::linearized_snapshot snap(c, op.solution, sopt);

        engine::adaptive_sweep_options aopt = engine::adaptive_options_for_grid(freqs_hz);
        aopt.fit_tol = opt.fit_tol;
        aopt.anchors_per_decade = opt.anchors_per_decade;
        aopt.engine.threads = opt.threads;
        aopt.engine.solver = opt.solver;
        const engine::adaptive_sweep_result res = engine::adaptive_sweep(aopt).run(
            snap, {snap.stimulus_rhs()}, {{0, static_cast<std::size_t>(*node)}});
        out.freq_hz = res.freq_hz;
        out.factorizations = res.factorizations;
        out.h = res.values[0];
    } else {
        spice::ac_options ac;
        ac.solver = opt.solver;
        ac.gmin = opt.gmin;
        ac.gshunt = opt.gshunt;
        ac.exclusive_source = src;
        ac.threads = opt.threads;
        const spice::ac_result res = spice::ac_sweep(c, freqs_hz, op.solution, ac);
        out.freq_hz = freqs_hz;
        out.factorizations = freqs_hz.size();
        out.h = spice::node_response(c, res, output_node);
    }
    for (cplx& v : out.h)
        v /= stimulus;
    out.margins = spice::margins(out.freq_hz, out.h);
    return out;
}

} // namespace acstab::analysis
