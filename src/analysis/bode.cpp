#include "analysis/bode.h"

#include "common/error.h"
#include "spice/devices/sources.h"

namespace acstab::analysis {

frequency_response measure_response(spice::circuit& c, const std::string& source_name,
                                    const std::string& output_node,
                                    const std::vector<real>& freqs_hz, const bode_options& opt)
{
    spice::device* src = c.find_device(source_name);
    if (src == nullptr)
        throw analysis_error("bode: unknown source '" + source_name + "'");

    cplx stimulus{0.0, 0.0};
    if (const auto* vs = dynamic_cast<const spice::vsource*>(src))
        stimulus = vs->spec().ac_phasor();
    else if (const auto* is = dynamic_cast<const spice::isource*>(src))
        stimulus = is->spec().ac_phasor();
    else
        throw analysis_error("bode: device '" + source_name + "' is not an independent source");
    if (stimulus == cplx{0.0, 0.0})
        throw analysis_error("bode: source '" + source_name + "' has zero AC magnitude");

    spice::dc_options dc = opt.dc;
    dc.solver = opt.solver;
    dc.gmin = opt.gmin;
    const spice::dc_result op = spice::dc_operating_point(c, dc);

    spice::ac_options ac;
    ac.solver = opt.solver;
    ac.gmin = opt.gmin;
    ac.gshunt = opt.gshunt;
    ac.exclusive_source = src;
    const spice::ac_result res = spice::ac_sweep(c, freqs_hz, op.solution, ac);

    frequency_response out;
    out.freq_hz = freqs_hz;
    out.h = spice::node_response(c, res, output_node);
    for (cplx& v : out.h)
        v /= stimulus;
    out.margins = spice::margins(out.freq_hz, out.h);
    return out;
}

} // namespace acstab::analysis
