// Baseline 2 (paper Fig. 2): "node pulsing" — apply a small step through a
// named source, run a transient, and measure the classic step-response
// figures of merit at an output node.
#ifndef ACSTAB_ANALYSIS_TRANSIENT_OVERSHOOT_H
#define ACSTAB_ANALYSIS_TRANSIENT_OVERSHOOT_H

#include <string>

#include "spice/circuit.h"
#include "spice/tran_analysis.h"

namespace acstab::analysis {

struct step_response_metrics {
    real initial_value = 0.0;
    real final_value = 0.0;
    real overshoot_pct = 0.0;
    real ringing_freq_hz = 0.0; ///< from zero crossings about the final value
    real settling_time_s = 0.0; ///< 2 % band
    spice::tran_result raw;     ///< full waveform record
};

struct step_options {
    real tstop = 0.0;     ///< 0 selects 40 / f_estimate when given, else error
    real dt = 0.0;        ///< 0 selects tstop / 4000
    spice::tran_options tran; ///< further transient knobs (solver, tolerances)
};

/// The step must already be encoded in the named source's waveform (e.g.
/// waveform_spec::make_step). Measures V(output_node).
[[nodiscard]] step_response_metrics measure_step_response(spice::circuit& c,
                                                          const std::string& output_node,
                                                          const step_options& opt);

} // namespace acstab::analysis

#endif // ACSTAB_ANALYSIS_TRANSIENT_OVERSHOOT_H
