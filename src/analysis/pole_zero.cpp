#include "analysis/pole_zero.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "numeric/eig.h"
#include "numeric/lu.h"

namespace acstab::analysis {

namespace {

    /// Assemble the MNA pencil (G, C) at the operating point by splitting
    /// the complex stamps at w = 1 rad/s (real part = G, imaginary = C).
    void assemble_pencil(spice::circuit& c, const std::vector<real>& op,
                         const pole_zero_options& opt, numeric::dense_matrix<real>& g,
                         numeric::dense_matrix<real>& cap)
    {
        const std::size_t n = c.unknown_count();
        spice::ac_params p;
        p.omega = 1.0;
        p.gmin = opt.gmin;
        p.zero_all_sources = true;
        spice::system_builder<cplx> b(n);
        for (const auto& dev : c.devices())
            dev->stamp_ac(op, p, b);
        if (opt.gshunt > 0.0)
            for (std::size_t i = 0; i < c.node_count(); ++i)
                b.add(static_cast<spice::node_id>(i), static_cast<spice::node_id>(i),
                      cplx{opt.gshunt, 0.0});
        const numeric::dense_matrix<cplx> full = b.matrix().to_dense();
        g.resize_zero(n, n);
        cap.resize_zero(n, n);
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j < n; ++j) {
                g(i, j) = full(i, j).real();
                cap(i, j) = full(i, j).imag();
            }
    }

    /// Finite roots of det(G + sC) = 0 by shift-invert: with
    /// M = (G + sigma C)^{-1} C, every eigenvalue mu maps to
    /// s = sigma - 1/mu; mu ~ 0 corresponds to roots at infinity.
    [[nodiscard]] std::vector<pole> pencil_roots(const numeric::dense_matrix<real>& g,
                                                 const numeric::dense_matrix<real>& cap,
                                                 real sigma, const pole_zero_options& opt)
    {
        const std::size_t n = g.rows();
        numeric::dense_matrix<real> shifted = g;
        if (sigma != 0.0)
            for (std::size_t i = 0; i < n; ++i)
                for (std::size_t j = 0; j < n; ++j)
                    shifted(i, j) += sigma * cap(i, j);
        const numeric::lu_decomposition<real> lu(shifted);
        numeric::dense_matrix<real> m = lu.solve(cap);
        const std::vector<cplx> mu = numeric::eigenvalues(std::move(m));

        real mu_max = 0.0;
        for (const cplx& v : mu)
            mu_max = std::max(mu_max, std::abs(v));
        const real floor = mu_max * opt.mu_rel_floor;

        std::vector<pole> roots;
        for (const cplx& v : mu) {
            if (std::abs(v) <= floor)
                continue;
            pole pl;
            pl.s = sigma - 1.0 / v;
            const real mag = std::abs(pl.s);
            pl.freq_hz = mag / two_pi;
            pl.zeta = mag > 0.0 ? -pl.s.real() / mag : 1.0;
            pl.is_complex = std::fabs(pl.s.imag()) > 1e-9 * mag;
            roots.push_back(pl);
        }
        std::sort(roots.begin(), roots.end(),
                  [](const pole& a, const pole& b) { return a.freq_hz < b.freq_hz; });
        return roots;
    }

} // namespace

std::vector<pole> circuit_poles(spice::circuit& c, const std::vector<real>& op,
                                const pole_zero_options& opt)
{
    c.finalize();
    if (op.size() != c.unknown_count())
        throw analysis_error("pole analysis: operating point has wrong size");
    numeric::dense_matrix<real> g;
    numeric::dense_matrix<real> cap;
    assemble_pencil(c, op, opt, g, cap);
    return pencil_roots(g, cap, 0.0, opt);
}

std::vector<pole> impedance_zeros_at_node(spice::circuit& c, const std::vector<real>& op,
                                          const std::string& node,
                                          const pole_zero_options& opt)
{
    c.finalize();
    if (op.size() != c.unknown_count())
        throw analysis_error("zero analysis: operating point has wrong size");
    const auto id = c.find_node(node);
    if (!id || *id < 0)
        throw analysis_error("zero analysis: bad node '" + node + "'");

    numeric::dense_matrix<real> g;
    numeric::dense_matrix<real> cap;
    assemble_pencil(c, op, opt, g, cap);

    // Shorting the node to ground deletes its row and column from the
    // pencil; the reduced pencil's roots are Z_nn's zeros.
    const std::size_t n = g.rows();
    const std::size_t skip = static_cast<std::size_t>(*id);
    numeric::dense_matrix<real> gr(n - 1, n - 1);
    numeric::dense_matrix<real> cr(n - 1, n - 1);
    for (std::size_t i = 0, ir = 0; i < n; ++i) {
        if (i == skip)
            continue;
        for (std::size_t j = 0, jr = 0; j < n; ++j) {
            if (j == skip)
                continue;
            gr(ir, jr) = g(i, j);
            cr(ir, jr) = cap(i, j);
            ++jr;
        }
        ++ir;
    }
    // A nonzero shift keeps the solve regular when a zero sits at s = 0
    // (e.g. a series capacitor path).
    return pencil_roots(gr, cr, 1.0, opt);
}

bool dominant_complex_pole(const std::vector<pole>& poles, pole& out)
{
    bool found = false;
    for (const pole& p : poles) {
        if (!p.is_complex || p.s.imag() <= 0.0)
            continue;
        if (!found || p.zeta < out.zeta) {
            out = p;
            found = true;
        }
    }
    return found;
}

std::vector<pole> complex_pairs(const std::vector<pole>& poles)
{
    std::vector<pole> pairs;
    for (const pole& p : poles)
        if (p.is_complex && p.s.imag() > 0.0)
            pairs.push_back(p);
    return pairs;
}

} // namespace acstab::analysis
