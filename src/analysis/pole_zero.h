// Pole analysis of the linearized circuit from the MNA pencil (G, C):
// (G + sC) x = 0. Using the shift-invert transform M = G^{-1} C, every
// finite pole is s = -1/mu for a nonzero eigenvalue mu of M. Used as the
// ground truth the stability plot is validated against: a complex pole
// pair p gives a natural frequency |p|/2pi and damping -Re(p)/|p|.
#ifndef ACSTAB_ANALYSIS_POLE_ZERO_H
#define ACSTAB_ANALYSIS_POLE_ZERO_H

#include <string>
#include <vector>

#include "spice/circuit.h"
#include "spice/mna.h"

namespace acstab::analysis {

struct pole {
    cplx s;                ///< pole location [rad/s]
    real freq_hz = 0.0;    ///< |s| / 2 pi
    real zeta = 0.0;       ///< -Re(s)/|s| (1 for real poles)
    bool is_complex = false;
};

struct pole_zero_options {
    real gmin = 1e-12;
    real gshunt = 1e-9;
    /// Eigenvalues with |mu| below this (relative to the largest) are
    /// treated as poles at infinity and dropped.
    real mu_rel_floor = 1e-9;
};

/// All finite poles of the circuit linearized at the operating point.
[[nodiscard]] std::vector<pole> circuit_poles(spice::circuit& c, const std::vector<real>& op,
                                              const pole_zero_options& opt = {});

/// Zeros of the driving-point impedance Z_nn at a named node: the natural
/// frequencies of the circuit with that node shorted to ground (classic
/// network-theory identity). Useful to judge whether a complex zero seen
/// in a stability plot belongs to the probed node.
[[nodiscard]] std::vector<pole> impedance_zeros_at_node(spice::circuit& c,
                                                        const std::vector<real>& op,
                                                        const std::string& node,
                                                        const pole_zero_options& opt = {});

/// The dominant (least-damped) complex pole pair, if any: smallest zeta
/// among complex poles. Returns false when no complex pair exists.
[[nodiscard]] bool dominant_complex_pole(const std::vector<pole>& poles, pole& out);

/// Poles sorted by natural frequency, complex pairs reported once
/// (positive imaginary part representative).
[[nodiscard]] std::vector<pole> complex_pairs(const std::vector<pole>& poles);

} // namespace acstab::analysis

#endif // ACSTAB_ANALYSIS_POLE_ZERO_H
