// Impedance-partition stability analysis (Zhao & Jiang, "Revisiting
// Nyquist-Like Impedance-Based Criteria"; Middlebrook's minor-loop idea).
//
// The stability question asked at an internal node by the paper's
// stability plot can equivalently be asked at a PARTITION PORT: split the
// circuit at a node into a source side and a load side, extract each
// side's driving-point impedance Z_s(jw) / Z_l(jw), and apply a
// Nyquist-like test to the minor-loop gain L_m = Z_s / Z_l. The closed
// interconnection's natural frequencies are the zeros of Z_s + Z_l, so —
// with both sides individually stable — the interface is stable exactly
// when L_m does not encircle -1.
//
// Engine mapping: both sides are linearized ONCE about the full circuit's
// operating point (a snapshot_options::device_filter keeps only one
// side's stamps), and each side costs one batched unit-current RHS sweep
// against its snapshot — the same machinery as the stability plot, two
// more right-hand-side batches. The opt-in adaptive path reuses
// engine::adaptive_sweep per side (same backward-error acceptance
// contract) and AAA-fits the impedance ratio; the fitted model's -1 level
// crossings are reported as a low-order estimate of the closed-loop
// poles (Cooman et al.'s model-free view).
#ifndef ACSTAB_ANALYSIS_IMPEDANCE_H
#define ACSTAB_ANALYSIS_IMPEDANCE_H

#include <string>
#include <vector>

#include "analysis/pole_zero.h"
#include "engine/sweep_engine.h"
#include "spice/circuit.h"
#include "spice/dc_analysis.h"
#include "spice/measure.h"
#include "spice/mna.h"

namespace acstab::analysis {

struct impedance_options {
    real fstart = 1e3;
    real fstop = 1e9;
    std::size_t points_per_decade = 40;
    /// Worker threads for the two side sweeps (1 = serial, 0 = all cores).
    std::size_t threads = 1;
    /// Adaptive frequency grid per side (engine/adaptive_sweep) plus an
    /// AAA fit of the impedance ratio with closed-loop pole estimates.
    bool adaptive = false;
    real fit_tol = 1e-6;
    std::size_t anchors_per_decade = 4;
    spice::solver_kind solver = spice::solver_kind::sparse;
    real gmin = 1e-12;
    /// Node-to-ground regularization; also holds up the nodes a side
    /// snapshot loses to the excluded devices.
    real gshunt = 1e-9;
    /// Element names forced onto the source side. Needed when every
    /// element at the partition node shunts it straight to ground (an RLC
    /// tank), where connectivity alone cannot tell the sides apart.
    std::vector<std::string> source_elements;
    /// Sparse-solver tuning (ordering / SIMD kernel / warm start)
    /// forwarded to the sweep engine.
    engine::solver_tuning tuning;
    spice::dc_options dc;
};

/// The two device sets of a partition (every device lands in exactly one).
struct impedance_partition {
    std::string node;
    std::vector<std::string> source_devices;
    std::vector<std::string> load_devices;
};

/// Split the circuit at `node`: connected components of the device graph
/// with the partition node and ground removed become the sides. A
/// component is source-side when it contains an independent source or a
/// device named in `force_source`; everything else — including elements
/// shunting the partition node straight to ground — is load-side.
/// Throws analysis_error when either side ends up empty (the partition
/// is ambiguous; pass force_source) or the node is source-forced.
[[nodiscard]] impedance_partition
partition_at_node(spice::circuit& c, const std::string& node,
                  const std::vector<std::string>& force_source = {});

struct impedance_result {
    impedance_partition partition;
    std::vector<real> freq_hz;
    std::vector<cplx> z_source; ///< source-side driving-point impedance
    std::vector<cplx> z_load;   ///< load-side driving-point impedance
    std::vector<cplx> minor_loop; ///< L_m = Z_s / Z_l on freq_hz

    /// Gain/phase margins of the minor-loop gain.
    spice::bode_margins margins;
    /// Net clockwise encirclements of -1 by L_m on the swept contour
    /// (positive frequencies doubled by conjugate symmetry), counted from
    /// signed real-axis crossings left of -1. With individually stable
    /// sides this equals the closed interconnection's RHP pole count.
    int encirclements = 0;
    /// Closest approach of L_m to -1 and where it happens — the
    /// Nyquist-style robustness margin of the interface.
    real nyquist_margin = 0.0;
    real nyquist_margin_freq_hz = 0.0;
    /// The Nyquist-like verdict: no net encirclements of -1.
    bool stable = true;

    /// LU factorizations spent across both side sweeps.
    std::size_t factorizations = 0;

    // Populated on the adaptive path only: AAA model of L_m and the
    // closed-loop pole estimates from its -1 level crossings (s-plane,
    // conventions of analysis::pole).
    bool has_model = false;
    std::size_t model_order = 0;
    real model_fit_error = 0.0;
    std::vector<pole> closed_loop_poles;
};

/// Partition at `node` and run the Nyquist-like impedance-ratio analysis.
[[nodiscard]] impedance_result analyze_impedance(spice::circuit& c, const std::string& node,
                                                 const impedance_options& opt = {});

} // namespace acstab::analysis

#endif // ACSTAB_ANALYSIS_IMPEDANCE_H
