// Baseline 1 (paper Fig. 3): classic open-loop Bode analysis. The loop is
// broken by construction in the fixture circuit; this module measures the
// transfer function from a named source to a named node and extracts the
// gain/phase margins.
#ifndef ACSTAB_ANALYSIS_BODE_H
#define ACSTAB_ANALYSIS_BODE_H

#include <string>
#include <vector>

#include "spice/ac_analysis.h"
#include "spice/circuit.h"
#include "spice/measure.h"

namespace acstab::analysis {

struct frequency_response {
    std::vector<real> freq_hz;
    std::vector<cplx> h;            ///< V(node) / stimulus
    spice::bode_margins margins;    ///< unity/phase crossings
    /// LU factorizations behind the sweep (fixed grid: one per point).
    std::size_t factorizations = 0;
};

struct bode_options {
    spice::solver_kind solver = spice::solver_kind::sparse;
    real gmin = 1e-12;
    real gshunt = 0.0;
    /// Worker threads for the sweep (1 = serial, 0 = all hardware threads).
    std::size_t threads = 1;
    /// Adaptive frequency grid (engine/adaptive_sweep): the passed grid
    /// defines band and output density; only model-flagged frequencies
    /// are factored, the rest are evaluated from the rational model.
    bool adaptive = false;
    real fit_tol = 1e-6;
    std::size_t anchors_per_decade = 4;
    spice::dc_options dc;
};

/// Sweep the circuit and return V(output_node)/AC(source), with margins.
/// The named source must carry a nonzero AC magnitude; every other AC
/// stimulus is zeroed for the measurement.
[[nodiscard]] frequency_response measure_response(spice::circuit& c,
                                                  const std::string& source_name,
                                                  const std::string& output_node,
                                                  const std::vector<real>& freqs_hz,
                                                  const bode_options& opt = {});

} // namespace acstab::analysis

#endif // ACSTAB_ANALYSIS_BODE_H
