// Baseline 3: double-injection loop-gain probe (Middlebrook), the method
// commercial "stb" analyses build on. Like the paper's technique it does
// not break the loop; unlike it, it needs a designated probe element in
// the loop wire and two AC runs.
//
// Probe convention: a zero-volt vsource inserted in the loop wire with its
// PLUS terminal on the driving side (block A output, node x) and MINUS on
// the receiving side (block B input, node y).
//
//   Voltage injection: the probe's AC value is set to 1; for an ideal
//   unilateral loop v(x) - v(y) = 1 and the loop returns v(x) = -L v(y),
//   giving Tv = -v(x)/v(y) = L.
//   Current injection: 1 A AC is injected into node y; the probe branch
//   current i measures the A-side share and Ti = -i/(i + 1).
//   Middlebrook combination: T = (Tv*Ti - 1) / (Tv + Ti + 2), exact for
//   arbitrary port impedances when reverse transmission is negligible.
//
// Through the sweep engine both injections are just two right-hand sides
// of the same zero-stimulus linearized system, so the historical pair of
// full serial AC runs collapses into ONE pass: a single factorization and
// two back-solves per frequency, parallel over the grid.
#ifndef ACSTAB_ANALYSIS_LOOP_GAIN_H
#define ACSTAB_ANALYSIS_LOOP_GAIN_H

#include <string>
#include <vector>

#include "engine/sweep_engine.h"
#include "spice/circuit.h"
#include "spice/dc_analysis.h"
#include "spice/measure.h"
#include "spice/mna.h"

namespace acstab::analysis {

struct loop_gain_result {
    std::vector<real> freq_hz;
    std::vector<cplx> tv;   ///< voltage-injection partial loop gain
    std::vector<cplx> ti;   ///< current-injection partial loop gain
    std::vector<cplx> t;    ///< combined (Middlebrook) loop gain
    spice::bode_margins margins; ///< margins of the combined loop gain
    /// LU factorizations behind the sweep (fixed grid: one per point).
    std::size_t factorizations = 0;
};

struct loop_gain_options {
    spice::solver_kind solver = spice::solver_kind::sparse;
    real gmin = 1e-12;
    real gshunt = 0.0;
    /// Worker threads for the sweep (1 = serial, 0 = all hardware threads).
    std::size_t threads = 1;
    /// Adaptive frequency grid (engine/adaptive_sweep): the passed grid
    /// defines the band and output density; only model-flagged points are
    /// factored, the rest are evaluated from the fitted rational model.
    bool adaptive = false;
    real fit_tol = 1e-6;
    std::size_t anchors_per_decade = 4;
    /// Sparse-solver tuning (ordering / SIMD kernel / warm start)
    /// forwarded to the sweep engine.
    engine::solver_tuning tuning;
    spice::dc_options dc;
};

/// Measure loop gain through the named zero-volt probe vsource.
[[nodiscard]] loop_gain_result measure_loop_gain(spice::circuit& c,
                                                 const std::string& probe_vsource,
                                                 const std::vector<real>& freqs_hz,
                                                 const loop_gain_options& opt = {});

} // namespace acstab::analysis

#endif // ACSTAB_ANALYSIS_LOOP_GAIN_H
