#include "analysis/loop_gain.h"

#include "common/error.h"
#include "engine/adaptive_sweep.h"
#include "engine/linearized_snapshot.h"
#include "engine/sweep_engine.h"
#include "spice/devices/sources.h"

namespace acstab::analysis {

loop_gain_result measure_loop_gain(spice::circuit& c, const std::string& probe_vsource,
                                   const std::vector<real>& freqs_hz,
                                   const loop_gain_options& opt)
{
    auto* probe = dynamic_cast<spice::vsource*>(c.find_device(probe_vsource));
    if (probe == nullptr)
        throw analysis_error("loop gain: probe vsource '" + probe_vsource + "' not found");
    if (probe->spec().dc != 0.0)
        throw analysis_error("loop gain: probe '" + probe_vsource + "' must be a 0 V source");

    c.finalize();
    const spice::node_id node_x = probe->nodes()[0];
    const spice::node_id node_y = probe->nodes()[1];
    if (node_x < 0 || node_y < 0)
        throw analysis_error("loop gain: probe must not touch ground");

    spice::dc_options dc = opt.dc;
    dc.solver = opt.solver;
    dc.gmin = opt.gmin;
    const spice::dc_result op = spice::dc_operating_point(c, dc);

    // Both injections act on the same zero-stimulus linearized system and
    // differ only in the right-hand side, so one engine pass covers them:
    //   rhs 0 — voltage injection: 1 V AC on the probe's branch equation;
    //   rhs 1 — current injection: 1 A AC into the receiving node y.
    engine::snapshot_options sopt;
    sopt.gmin = opt.gmin;
    sopt.gshunt = opt.gshunt;
    sopt.zero_all_sources = true;
    const engine::linearized_snapshot snap(c, op.solution, sopt);

    const std::size_t branch = static_cast<std::size_t>(probe->branch());
    const std::vector<engine::sweep_engine::injection> injections{
        {branch, cplx{1.0, 0.0}}, {static_cast<std::size_t>(node_y), cplx{1.0, 0.0}}};

    loop_gain_result out;
    // Only three solution entries matter; extract them in the sink
    // instead of copying whole solution vectors out of the engine.
    std::vector<cplx> vx, vy, ii;
    if (opt.adaptive) {
        // The passed grid defines band and output density; both injections
        // refine on one shared grid (worst-channel error decides).
        engine::adaptive_sweep_options aopt = engine::adaptive_options_for_grid(freqs_hz);
        aopt.anchors_per_decade = opt.anchors_per_decade;
        aopt.fit_tol = opt.fit_tol;
        aopt.engine.threads = opt.threads;
        aopt.engine.solver = opt.solver;
        aopt.engine.tuning = opt.tuning;
        const engine::adaptive_sweep_result res = engine::adaptive_sweep(aopt).run_injections(
            snap, injections,
            {{0, static_cast<std::size_t>(node_x)}, {0, static_cast<std::size_t>(node_y)},
             {1, branch}});
        out.freq_hz = res.freq_hz;
        out.factorizations = res.factorizations;
        vx = res.values[0];
        vy = res.values[1];
        ii = res.values[2];
    } else {
        engine::sweep_engine_options eopt;
        eopt.threads = opt.threads;
        eopt.solver = opt.solver;
        eopt.tuning = opt.tuning;
        const engine::sweep_engine eng(eopt);
        out.freq_hz = freqs_hz;
        out.factorizations = freqs_hz.size();
        vx.resize(freqs_hz.size());
        vy.resize(freqs_hz.size());
        ii.resize(freqs_hz.size());
        eng.run_injections(snap, freqs_hz, injections,
                           [&vx, &vy, &ii, node_x, node_y, branch](std::size_t fi,
                                                                   std::size_t ri,
                                                                   std::span<const cplx> sol) {
                               if (ri == 0) {
                                   vx[fi] = sol[static_cast<std::size_t>(node_x)];
                                   vy[fi] = sol[static_cast<std::size_t>(node_y)];
                               } else {
                                   ii[fi] = sol[branch];
                               }
                           });
    }

    out.tv.resize(out.freq_hz.size());
    out.ti.resize(out.freq_hz.size());
    out.t.resize(out.freq_hz.size());
    for (std::size_t k = 0; k < out.freq_hz.size(); ++k) {
        const cplx tv = -vx[k] / vy[k];
        // Probe branch current flows plus(x) -> minus(y); with 1 A pushed
        // into y, the B-side current is i + 1.
        const cplx ti = -ii[k] / (ii[k] + cplx{1.0, 0.0});
        out.tv[k] = tv;
        out.ti[k] = ti;
        out.t[k] = (tv * ti - cplx{1.0, 0.0}) / (tv + ti + cplx{2.0, 0.0});
    }
    out.margins = spice::margins(out.freq_hz, out.t);
    return out;
}

} // namespace acstab::analysis
