#include "analysis/loop_gain.h"

#include "common/error.h"
#include "spice/ac_analysis.h"
#include "spice/devices/sources.h"

namespace acstab::analysis {

loop_gain_result measure_loop_gain(spice::circuit& c, const std::string& probe_vsource,
                                   const std::vector<real>& freqs_hz,
                                   const loop_gain_options& opt)
{
    auto* probe = dynamic_cast<spice::vsource*>(c.find_device(probe_vsource));
    if (probe == nullptr)
        throw analysis_error("loop gain: probe vsource '" + probe_vsource + "' not found");
    if (probe->spec().dc != 0.0)
        throw analysis_error("loop gain: probe '" + probe_vsource + "' must be a 0 V source");

    c.finalize();
    const spice::node_id node_x = probe->nodes()[0];
    const spice::node_id node_y = probe->nodes()[1];
    if (node_x < 0 || node_y < 0)
        throw analysis_error("loop gain: probe must not touch ground");

    spice::dc_options dc = opt.dc;
    dc.solver = opt.solver;
    dc.gmin = opt.gmin;
    const spice::dc_result op = spice::dc_operating_point(c, dc);

    spice::ac_options ac;
    ac.solver = opt.solver;
    ac.gmin = opt.gmin;
    ac.gshunt = opt.gshunt;
    ac.exclusive_source = probe;

    // Run 1: voltage injection through the probe itself.
    const spice::waveform_spec saved = probe->spec();
    probe->set_spec(spice::waveform_spec::make_ac(0.0, 1.0));
    spice::ac_result run_v;
    try {
        run_v = spice::ac_sweep(c, freqs_hz, op.solution, ac);
    } catch (...) {
        probe->set_spec(saved);
        throw;
    }
    probe->set_spec(saved);

    // Run 2: current injection into the receiving node y; the probe (back
    // to 0 V AC) measures the branch current on the driving side.
    const std::string inj_name = "iloop_inject__" + probe_vsource;
    auto& inj = c.add<spice::isource>(inj_name, spice::ground_node, node_y,
                                      spice::waveform_spec::make_ac(0.0, 1.0));
    spice::ac_result run_i;
    try {
        spice::ac_options ac_i = ac;
        ac_i.exclusive_source = &inj;
        run_i = spice::ac_sweep(c, freqs_hz, op.solution, ac_i);
    } catch (...) {
        c.remove_device(inj_name);
        throw;
    }
    c.remove_device(inj_name);

    const std::size_t branch = static_cast<std::size_t>(probe->branch());
    loop_gain_result out;
    out.freq_hz = freqs_hz;
    out.tv.resize(freqs_hz.size());
    out.ti.resize(freqs_hz.size());
    out.t.resize(freqs_hz.size());
    for (std::size_t k = 0; k < freqs_hz.size(); ++k) {
        const cplx vx = run_v.solution[k][static_cast<std::size_t>(node_x)];
        const cplx vy = run_v.solution[k][static_cast<std::size_t>(node_y)];
        const cplx tv = -vx / vy;
        // Probe branch current flows plus(x) -> minus(y); with 1 A pushed
        // into y, the B-side current is i + 1.
        const cplx i = run_i.solution[k][branch];
        const cplx ti = -i / (i + cplx{1.0, 0.0});
        out.tv[k] = tv;
        out.ti[k] = ti;
        out.t[k] = (tv * ti - cplx{1.0, 0.0}) / (tv + ti + cplx{2.0, 0.0});
    }
    out.margins = spice::margins(out.freq_hz, out.t);
    return out;
}

} // namespace acstab::analysis
