#include "analysis/impedance.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "common/error.h"
#include "engine/adaptive_sweep.h"
#include "engine/linearized_snapshot.h"
#include "engine/sweep_engine.h"
#include "numeric/aaa.h"
#include "numeric/interpolation.h"

namespace acstab::analysis {

namespace {

    /// Minimal union-find over node ids (path compression only; the node
    /// counts here are tiny).
    class components {
    public:
        explicit components(std::size_t n) : parent_(n)
        {
            for (std::size_t i = 0; i < n; ++i)
                parent_[i] = i;
        }

        std::size_t find(std::size_t a)
        {
            while (parent_[a] != a) {
                parent_[a] = parent_[parent_[a]];
                a = parent_[a];
            }
            return a;
        }

        void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

    private:
        std::vector<std::size_t> parent_;
    };

    [[nodiscard]] bool is_independent_source(const spice::device& dev)
    {
        const std::string_view t = dev.type_name();
        return t == "vsource" || t == "isource";
    }

    constexpr real same_freq_rtol = 1e-9;

    [[nodiscard]] bool same_freq(real a, real b)
    {
        return std::fabs(a - b) <= same_freq_rtol * std::max(std::fabs(a), std::fabs(b));
    }

} // namespace

impedance_partition partition_at_node(spice::circuit& c, const std::string& node,
                                      const std::vector<std::string>& force_source)
{
    const auto found = c.find_node(node);
    if (!found)
        throw analysis_error("impedance: unknown node '" + node + "'");
    if (*found < 0)
        throw analysis_error("impedance: cannot partition at the ground node");
    c.finalize();
    const std::size_t port = static_cast<std::size_t>(*found);
    if (c.source_forced_nodes()[port])
        throw analysis_error("impedance: node '" + node
                             + "' is forced by an ideal voltage source (its "
                               "driving-point impedances are degenerate)");

    std::unordered_set<std::string> forced;
    for (const std::string& name : force_source) {
        if (c.find_device(name) == nullptr)
            throw analysis_error("impedance: --source element '" + name
                                 + "' is not a device of this circuit");
        forced.insert(name);
    }

    // Connected components of the node graph with the partition node and
    // ground removed: the electrical "sides" of the cut.
    components comp(c.node_count());
    for (const auto& dev : c.devices()) {
        std::size_t first = c.node_count(); // invalid
        for (const spice::node_id n : dev->nodes()) {
            if (n < 0 || static_cast<std::size_t>(n) == port)
                continue;
            const std::size_t k = static_cast<std::size_t>(n);
            if (first == c.node_count())
                first = k;
            else
                comp.unite(first, k);
        }
    }

    // Classify each component: forced elements win, then any component
    // holding an independent source is source-side; everything else —
    // including the devices shunting the port straight to ground — is the
    // load. Components with no path to the port (disconnected bias
    // islands) ride along on the source side; they contribute to neither
    // driving-point impedance.
    enum class side { undecided, source, load };
    std::vector<side> comp_side(c.node_count(), side::undecided);
    std::vector<bool> comp_adjacent(c.node_count(), false);
    const auto component_of = [&](const spice::device& dev) -> std::size_t {
        for (const spice::node_id n : dev.nodes())
            if (n >= 0 && static_cast<std::size_t>(n) != port)
                return comp.find(static_cast<std::size_t>(n));
        return c.node_count(); // shunt: touches only port/ground
    };
    for (const auto& dev : c.devices()) {
        const std::size_t k = component_of(*dev);
        const bool touches_port = std::any_of(
            dev->nodes().begin(), dev->nodes().end(),
            [port](spice::node_id n) { return n >= 0 && static_cast<std::size_t>(n) == port; });
        if (k == c.node_count())
            continue;
        if (touches_port)
            comp_adjacent[k] = true;
        if (forced.contains(dev->name()))
            comp_side[k] = side::source;
        else if (comp_side[k] == side::undecided && is_independent_source(*dev))
            comp_side[k] = side::source;
    }

    impedance_partition part;
    part.node = node;
    for (const auto& dev : c.devices()) {
        const std::size_t k = component_of(*dev);
        bool source;
        if (k == c.node_count()) {
            // Port/ground shunt: source only when explicitly forced.
            source = forced.contains(dev->name());
        } else if (!comp_adjacent[k]) {
            source = true; // disconnected island
        } else {
            source = comp_side[k] == side::source;
        }
        (source ? part.source_devices : part.load_devices).push_back(dev->name());
    }

    if (part.source_devices.empty() || part.load_devices.empty())
        throw analysis_error(
            "impedance: cannot tell the sides of node '" + node
            + "' apart (every element shunts it to ground, or no side holds an "
              "independent source); name the source-side elements with --source");
    return part;
}

impedance_result analyze_impedance(spice::circuit& c, const std::string& node,
                                   const impedance_options& opt)
{
    impedance_result res;
    res.partition = partition_at_node(c, node, opt.source_elements);
    const std::size_t port = static_cast<std::size_t>(*c.find_node(node));

    spice::dc_options dc = opt.dc;
    dc.solver = opt.solver;
    dc.gmin = opt.gmin;
    const spice::dc_result op = spice::dc_operating_point(c, dc);

    // Both sides are linearized about the SAME full-circuit operating
    // point; the filter selects which side's small-signal stamps survive.
    const auto side_snapshot = [&](const std::vector<std::string>& names) {
        const std::unordered_set<std::string> keep(names.begin(), names.end());
        engine::snapshot_options sopt;
        sopt.gmin = opt.gmin;
        sopt.gshunt = opt.gshunt;
        sopt.zero_all_sources = true;
        sopt.device_filter
            = [keep](const spice::device& dev) { return keep.contains(dev.name()); };
        return engine::linearized_snapshot(c, op.solution, sopt);
    };
    const engine::linearized_snapshot snap_s = side_snapshot(res.partition.source_devices);
    const engine::linearized_snapshot snap_l = side_snapshot(res.partition.load_devices);

    // One unit-current injection at the port per side: V(port) IS the
    // side's driving-point impedance.
    const std::vector<engine::sweep_engine::injection> injections{{port, cplx{1.0, 0.0}}};

    if (opt.adaptive) {
        engine::adaptive_sweep_options aopt;
        aopt.fstart = opt.fstart;
        aopt.fstop = opt.fstop;
        aopt.output_points_per_decade = opt.points_per_decade;
        aopt.anchors_per_decade = opt.anchors_per_decade;
        aopt.fit_tol = opt.fit_tol;
        aopt.engine.threads = opt.threads;
        aopt.engine.solver = opt.solver;
        aopt.engine.tuning = opt.tuning;
        const engine::adaptive_sweep sweep(aopt);
        const engine::adaptive_sweep_result rs
            = sweep.run_injections(snap_s, injections, {{0, port}});
        const engine::adaptive_sweep_result rl
            = sweep.run_injections(snap_l, injections, {{0, port}});
        res.factorizations = rs.factorizations + rl.factorizations;

        // The two sides refine independently, so their output grids agree
        // on the dense log grid but differ at solved extras: evaluate both
        // on the union, exact where a side solved, model elsewhere.
        std::vector<real> merged;
        merged.reserve(rs.freq_hz.size() + rl.freq_hz.size());
        std::merge(rs.freq_hz.begin(), rs.freq_hz.end(), rl.freq_hz.begin(),
                   rl.freq_hz.end(), std::back_inserter(merged));
        res.freq_hz.reserve(merged.size());
        for (const real f : merged)
            if (res.freq_hz.empty() || !same_freq(res.freq_hz.back(), f))
                res.freq_hz.push_back(f);

        const auto side_values = [&](const engine::adaptive_sweep_result& r) {
            std::vector<cplx> out(res.freq_hz.size());
            std::size_t i = 0;
            for (std::size_t k = 0; k < res.freq_hz.size(); ++k) {
                const real f = res.freq_hz[k];
                while (i < r.freq_hz.size() && r.freq_hz[i] < f && !same_freq(r.freq_hz[i], f))
                    ++i;
                out[k] = i < r.freq_hz.size() && same_freq(r.freq_hz[i], f)
                    ? r.values[0][i]
                    : r.model.eval(0, f);
            }
            return out;
        };
        res.z_source = side_values(rs);
        res.z_load = side_values(rl);
    } else {
        res.freq_hz = numeric::log_grid(opt.fstart, opt.fstop, opt.points_per_decade);
        engine::sweep_engine_options eopt;
        eopt.threads = opt.threads;
        eopt.solver = opt.solver;
        eopt.tuning = opt.tuning;
        const engine::sweep_engine eng(eopt);
        res.z_source.resize(res.freq_hz.size());
        res.z_load.resize(res.freq_hz.size());
        const auto sweep_side
            = [&](const engine::linearized_snapshot& snap, std::vector<cplx>& out) {
                  eng.run_injections(snap, res.freq_hz, injections,
                                     [&out, port](std::size_t fi, std::size_t,
                                                  std::span<const cplx> sol) {
                                         out[fi] = sol[port];
                                     });
              };
        sweep_side(snap_s, res.z_source);
        sweep_side(snap_l, res.z_load);
        res.factorizations = 2 * res.freq_hz.size();
    }

    // Minor-loop gain and the Nyquist-like verdicts.
    const std::size_t nf = res.freq_hz.size();
    res.minor_loop.resize(nf);
    for (std::size_t i = 0; i < nf; ++i)
        res.minor_loop[i] = res.z_source[i] / res.z_load[i];

    res.margins = spice::margins(res.freq_hz, res.minor_loop);
    if (res.margins.has_unity_crossing) {
        // Impedance ratios cross unity with leading phase as often as
        // lagging (inductive source over capacitive load sits near +180
        // rather than -180); report the SYMMETRIC phase distance to the
        // critical ray, 180 - |phase|, which coincides with the classic
        // phase margin for lagging loops. The stability verdict itself
        // comes from the encirclement count, never from this margin.
        const real phase_wrapped = res.margins.phase_margin_deg - 180.0;
        res.margins.phase_margin_deg = 180.0 - std::fabs(
            phase_wrapped - 360.0 * std::round(phase_wrapped / 360.0));
    }

    // Closest approach to -1.
    res.nyquist_margin = std::numeric_limits<real>::infinity();
    for (std::size_t i = 0; i < nf; ++i) {
        const real d = std::abs(res.minor_loop[i] + cplx{1.0, 0.0});
        if (d < res.nyquist_margin) {
            res.nyquist_margin = d;
            res.nyquist_margin_freq_hz = res.freq_hz[i];
        }
    }

    // Net encirclements of -1 from signed real-axis crossings left of -1
    // (robust on a finite swept contour, where accumulating raw winding
    // angle is distorted by whatever the ratio does beyond the band). A
    // downward crossing (Im + -> -) of the ray (-inf, -1) adds one
    // COUNTER-clockwise turn; conjugate symmetry doubles the half-contour
    // count; clockwise encirclements are its negation.
    int ccw_half = 0;
    for (std::size_t i = 1; i < nf; ++i) {
        const real sa = res.minor_loop[i - 1].imag();
        const real sb = res.minor_loop[i].imag();
        if ((sa < 0.0) == (sb < 0.0) || sa == sb)
            continue;
        const real t = sa / (sa - sb);
        const real re = res.minor_loop[i - 1].real()
            + t * (res.minor_loop[i].real() - res.minor_loop[i - 1].real());
        if (re < -1.0)
            ccw_half += sa > 0.0 ? 1 : -1;
    }
    res.encirclements = -2 * ccw_half;
    res.stable = res.encirclements == 0;

    if (opt.adaptive) {
        // Low-order closed-loop estimate: AAA-fit the impedance ratio and
        // take the fitted model's -1 level crossings — the zeros of
        // 1 + L_m, i.e. the natural frequencies of the interconnection.
        numeric::aaa_options fopt;
        fopt.rel_tol = std::max(opt.fit_tol * 0.25, real{1e-13});
        fopt.max_support = 48;
        const numeric::aaa_model ratio_model
            = numeric::aaa_fit(res.freq_hz, {res.minor_loop}, fopt);
        res.has_model = true;
        res.model_order = ratio_model.support_count();
        res.model_fit_error = ratio_model.fit_error();
        // AAA fits place near-cancelling pole/zero doublets where the
        // data is noisy; inside such a doublet L_m sweeps through every
        // value, planting a spurious -1 crossing right next to a model
        // pole. Genuine closed-loop poles sit where L_m ~ -1 smoothly,
        // far from the model's own poles — drop crossings hugging one.
        const std::vector<cplx> ratio_poles = ratio_model.poles();
        std::vector<cplx> kept;
        for (const cplx x : ratio_model.level_crossings(0, cplx{-1.0, 0.0})) {
            // Fitted over real frequency x, the model's crossings sit at
            // x = s / (j 2 pi): stable poles have Im(x) > 0.
            const real mag = two_pi * std::abs(x);
            if (mag < to_omega(opt.fstart) / 10.0 || mag > to_omega(opt.fstop) * 10.0)
                continue; // far outside the evidence band: fit artifact
            if (x.real() < -1e-6 * std::abs(x))
                continue; // conjugate-pair mirror (negative frequency);
                          // report the positive-frequency representative
            bool doublet = false;
            for (const cplx& q : ratio_poles)
                doublet = doublet || std::abs(x - q) <= 3e-3 * (std::abs(x) + std::abs(q));
            bool duplicate = false;
            for (const cplx& k : kept)
                duplicate = duplicate || std::abs(x - k) <= 1e-3 * (std::abs(x) + std::abs(k));
            if (doublet || duplicate)
                continue;
            kept.push_back(x);
            const cplx s{-two_pi * x.imag(), two_pi * x.real()};
            pole p;
            p.s = s;
            p.freq_hz = mag / two_pi;
            p.is_complex = s.imag() != 0.0;
            p.zeta = mag > 0.0 ? -s.real() / mag : 1.0;
            res.closed_loop_poles.push_back(p);
        }
        std::sort(res.closed_loop_poles.begin(), res.closed_loop_poles.end(),
                  [](const pole& a, const pole& b) { return a.freq_hz < b.freq_hz; });
    }
    return res;
}

} // namespace acstab::analysis
