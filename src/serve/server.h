// `acstab serve`: a crash-only, overload-safe campaign service wrapped
// around the fault-tolerant farm orchestrator.
//
// One long-lived daemon accepts campaign plans as JSON-lines requests
// (serve/protocol.h) over a unix socket or stdio, executes each admitted
// request through exec_campaign() — work-stealing leases, worker
// processes, retries, quarantine, crash-safe shard streams — and streams
// incremental per-point records plus the final merged report back to the
// client. Reports are byte-identical to `acstab farm exec` for the same
// plan.
//
// Robustness surface (the point of this subsystem):
//   * malformed / over-deep / oversized frames -> one structured "error"
//     reply; the connection stays usable and the server never crashes;
//   * bounded admission: at most max_concurrent requests run, at most
//     queue_depth wait; beyond that the client gets an explicit
//     "overloaded" frame instead of unbounded latency;
//   * per-request deadline_s and mid-flight "cancel" frames stop exactly
//     that request's workers (lease state checkpoints; the request dir
//     remains resumable with `farm exec --resume`);
//   * a worker crash or stall inside a request is absorbed by the
//     orchestrator's retry/quarantine machinery — the server never dies
//     with a request;
//   * a client disconnect (or a slow reader overflowing its bounded
//     output buffer) cancels and reaps only that client's requests;
//   * SIGTERM/SIGINT (via serve_options::shutdown) -> graceful drain:
//     stop admitting, let in-flight requests finish — or checkpoint them
//     after drain_grace_s — then return with drained=true (exit 0).
//
// Each request runs in its own directory root_dir/req-<n>/ (plan.json,
// work/, report.json), so nothing any request does can corrupt another.
#ifndef ACSTAB_SERVE_SERVER_H
#define ACSTAB_SERVE_SERVER_H

#include <csignal>
#include <cstddef>
#include <string>

namespace acstab::serve {

struct serve_options {
    std::string socket_path; ///< unix socket to listen on (exclusive with stdio)
    bool stdio = false;      ///< single-client mode on stdin/stdout
    std::size_t max_concurrent = 2;  ///< requests executing at once
    std::size_t queue_depth = 4;     ///< admitted-but-waiting bound
    std::size_t max_frame_bytes = 1u << 20; ///< request line length cap
    /// Per-connection output buffer cap; a client that stops reading past
    /// this is dropped (its requests cancel) instead of growing the
    /// server without bound.
    std::size_t output_buffer_limit = 8u << 20;
    std::size_t workers = 2;       ///< orchestrator workers per request
    double point_timeout_s = 300.0;
    std::size_t max_attempts = 3;
    double backoff_s = 0.25;
    std::string root_dir;  ///< per-request dirs live here (required)
    std::string tool_path; ///< worker binary (empty = /proc/self/exe)
    double drain_grace_s = 10.0; ///< drain budget before checkpointing
    /// CLI signal flag: 0 = run, 1 = drain (finish in-flight), >=2 =
    /// checkpoint in-flight now. Monotonic; the server never resets it.
    const volatile std::sig_atomic_t* shutdown = nullptr;
    bool verbose = false; ///< request lifecycle lines on stderr
};

struct serve_summary {
    std::size_t accepted = 0;  ///< submits admitted (ran or queued)
    std::size_t completed = 0; ///< report frames delivered or stored
    std::size_t cancelled = 0; ///< client cancel / disconnect / deadline
    std::size_t failed = 0;    ///< requests that errored out
    std::size_t shed = 0;      ///< submits refused with "overloaded"
    std::size_t protocol_errors = 0; ///< malformed/oversized frames answered
    bool drained = false; ///< exited via the graceful shutdown path
};

/// Run the serve event loop until shutdown (or stdin EOF in stdio mode).
/// Throws analysis_error on setup errors (bad options, socket bind
/// failure); everything after the loop starts is absorbed per-connection
/// or per-request. All request threads and worker processes are joined/
/// reaped before returning.
serve_summary run_server(const serve_options& opt);

} // namespace acstab::serve

#endif // ACSTAB_SERVE_SERVER_H
