#include "serve/protocol.h"

#include <cctype>
#include <cstdlib>

#include "common/error.h"

namespace acstab::serve {

using farm::json_value;

namespace {

    /// JSON-escape a string through the canonical dumper so reply frames
    /// stay in the same dialect as every other acstab artifact.
    [[nodiscard]] std::string quoted(const std::string& s)
    {
        return json_value::str(s).dump();
    }

    [[nodiscard]] std::string num(std::size_t n)
    {
        return std::to_string(n);
    }

} // namespace

request_frame parse_request_frame(const std::string& line)
{
    const json_value doc = json_value::parse(line);
    if (doc.type() != json_value::kind::object)
        throw analysis_error("serve: request frame must be a JSON object");
    const json_value* op = doc.find("op");
    if (op == nullptr || op->type() != json_value::kind::string)
        throw analysis_error("serve: request frame has no \"op\" string "
                             "(want submit, cancel or ping)");
    request_frame out;
    const std::string& kind = op->as_string();
    if (kind == "ping") {
        out.kind = request_frame::op::ping;
        return out;
    }
    const json_value* id = doc.find("id");
    if (id == nullptr || id->type() != json_value::kind::string || id->as_string().empty())
        throw analysis_error("serve: \"" + kind
                             + "\" frame needs a non-empty string \"id\"");
    out.id = id->as_string();
    if (kind == "cancel") {
        out.kind = request_frame::op::cancel;
        return out;
    }
    if (kind != "submit")
        throw analysis_error("serve: unknown request op \"" + kind
                             + "\" (want submit, cancel or ping)");
    out.kind = request_frame::op::submit;
    const json_value* plan = doc.find("plan");
    if (plan == nullptr || plan->type() != json_value::kind::object)
        throw analysis_error("serve: submit frame needs a \"plan\" object "
                             "(an acstab farm campaign plan)");
    out.plan = *plan;
    if (const json_value* dl = doc.find("deadline_s")) {
        if (dl->type() != json_value::kind::number || !(dl->as_number() > 0))
            throw analysis_error("serve: \"deadline_s\" must be a positive number "
                                 "of seconds");
        out.has_deadline = true;
        out.deadline_s = dl->as_number();
    }
    if (const json_value* w = doc.find("workers")) {
        if (w->type() != json_value::kind::number || w->as_number() < 1)
            throw analysis_error("serve: \"workers\" must be a number >= 1");
        out.has_workers = true;
        out.workers = static_cast<std::size_t>(w->as_number());
    }
    return out;
}

long parse_offset_of(const std::string& what)
{
    const std::string needle = " at offset ";
    const std::size_t pos = what.rfind(needle);
    if (pos == std::string::npos)
        return -1;
    const char* digits = what.c_str() + pos + needle.size();
    if (std::isdigit(static_cast<unsigned char>(*digits)) == 0)
        return -1;
    return std::strtol(digits, nullptr, 10);
}

std::string ack_frame(const std::string& id, std::size_t points, std::size_t queued,
                      const std::string& dir)
{
    return "{\"frame\":\"ack\",\"id\":" + quoted(id) + ",\"points\":" + num(points)
        + ",\"queued\":" + num(queued) + ",\"dir\":" + quoted(dir) + "}\n";
}

std::string point_frame(const std::string& id, std::size_t index,
                        const std::string& record_json)
{
    return "{\"frame\":\"point\",\"id\":" + quoted(id) + ",\"index\":" + num(index)
        + ",\"record\":" + record_json + "}\n";
}

std::string report_frame(const std::string& id, std::size_t completed,
                         std::size_t quarantined, const std::string& report_json)
{
    return "{\"frame\":\"report\",\"id\":" + quoted(id) + ",\"completed\":"
        + num(completed) + ",\"quarantined\":" + num(quarantined)
        + ",\"report\":" + report_json + "}\n";
}

std::string error_frame(const std::string& id, const std::string& message, long offset)
{
    std::string out = "{\"frame\":\"error\"";
    if (!id.empty())
        out += ",\"id\":" + quoted(id);
    out += ",\"error\":" + quoted(message);
    if (offset >= 0)
        out += ",\"offset\":" + std::to_string(offset);
    return out + "}\n";
}

std::string overloaded_frame(const std::string& id, std::size_t running,
                             std::size_t queued)
{
    std::string out = "{\"frame\":\"overloaded\"";
    if (!id.empty())
        out += ",\"id\":" + quoted(id);
    return out + ",\"running\":" + num(running) + ",\"queued\":" + num(queued) + "}\n";
}

std::string pong_frame()
{
    return "{\"frame\":\"pong\"}\n";
}

} // namespace acstab::serve
