#include "serve/server.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <iterator>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.h"
#include "farm/campaign.h"
#include "farm/fault_inject.h"
#include "farm/orchestrator.h"
#include "farm/posix_io.h"
#include "serve/protocol.h"

namespace acstab::serve {

using farm::fault_directive;
using farm::json_value;
using steady_clock = std::chrono::steady_clock;

namespace {

    [[nodiscard]] std::string errno_text()
    {
        return std::strerror(errno);
    }

    /// One admitted submit: its identity, its isolated directory, the
    /// worker thread driving exec_campaign, and the reply frames that
    /// thread has produced but the event loop has not yet shipped.
    struct request_state {
        std::string id;           ///< client-chosen correlation id
        std::size_t conn_serial = 0;
        std::string dir;          ///< root_dir/req-<n>
        json_value plan;          ///< verbatim client plan document
        std::size_t points = 0;
        std::size_t workers = 0;
        bool has_deadline = false;
        double deadline_s = 0.0;
        steady_clock::time_point admitted{}; ///< deadline epoch (incl. queue time)

        std::atomic<bool> cancel{false};   ///< client cancel / disconnect
        std::atomic<bool> done{false};     ///< thread finished; joinable
        /// 1 = report delivered, 2 = cancelled/checkpointed, 3 = failed.
        std::atomic<int> outcome{0};
        std::thread thread;

        std::mutex mu;
        std::vector<std::string> frames; ///< reply frames awaiting the loop
    };

    /// One client. For sockets in_fd == out_fd; stdio splits them.
    struct connection {
        int in_fd = -1;
        int out_fd = -1;
        std::size_t serial = 0; ///< 1-based accept order (fault-injection key)
        bool is_stdio = false;
        bool dead = false;
        /// Input side closed (half-close). The client may still be
        /// reading: pending requests keep running and their frames keep
        /// flowing; the connection is reaped once nothing is owed to it.
        bool in_eof = false;
        std::string inbuf;
        std::string outbuf;
        bool skip_to_newline = false; ///< discarding an oversized frame
        bool no_drain = false;        ///< slow-reader fault: never flush
        std::size_t out_limit = 0;
    };

    void push_frame(request_state& rq, std::string frame, int wake_fd)
    {
        {
            const std::lock_guard<std::mutex> lock(rq.mu);
            rq.frames.push_back(std::move(frame));
        }
        // Wake the poll loop; a full (EAGAIN) pipe already guarantees a
        // pending wakeup, so a failed write is fine.
        const char byte = 1;
        (void)!farm::write_fully(wake_fd, &byte, 1);
    }

    [[nodiscard]] bool write_file(const std::string& path, const std::string& bytes)
    {
        std::FILE* f = std::fopen(path.c_str(), "wb");
        if (f == nullptr)
            return false;
        const bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size()
            && std::fflush(f) == 0;
        std::fclose(f);
        return ok;
    }

    /// Request worker thread: plan file -> exec_campaign -> report frame.
    /// Never throws out; every failure becomes a structured error frame.
    void run_request(request_state& rq, const serve_options& opt,
                     const std::atomic<bool>& hard_stop, int wake_fd)
    {
        const auto deadline_hit = [&] {
            return rq.has_deadline
                && steady_clock::now() - rq.admitted
                > std::chrono::microseconds(static_cast<long>(rq.deadline_s * 1e6));
        };
        try {
            const farm::campaign_spec spec = farm::campaign_from_json(rq.plan);
            if (::mkdir(rq.dir.c_str(), 0777) != 0 && errno != EEXIST)
                throw analysis_error("serve: cannot create request dir '" + rq.dir
                                     + "': " + errno_text());
            const std::string plan_path = rq.dir + "/plan.json";
            if (!write_file(plan_path, rq.plan.dump() + "\n"))
                throw analysis_error("serve: cannot write '" + plan_path
                                     + "': " + errno_text());

            farm::exec_options eopt;
            eopt.workers = rq.workers != 0 ? rq.workers : opt.workers;
            eopt.workdir = rq.dir + "/work";
            eopt.out = rq.dir + "/report.json";
            eopt.plan_path = plan_path;
            eopt.point_timeout_s = opt.point_timeout_s;
            eopt.max_attempts = opt.max_attempts;
            eopt.backoff_s = opt.backoff_s;
            eopt.tool_path = opt.tool_path;
            eopt.verbose = false; // stdout may BE the protocol stream
            eopt.cancelled = [&] {
                return rq.cancel.load(std::memory_order_relaxed)
                    || hard_stop.load(std::memory_order_relaxed) || deadline_hit();
            };
            eopt.on_point = [&](std::size_t index, const std::string& record) {
                push_frame(rq, point_frame(rq.id, index, record), wake_fd);
            };

            const farm::exec_summary sum = farm::exec_campaign(spec, eopt);
            if (sum.interrupted) {
                std::string why;
                if (rq.cancel.load())
                    why = "request cancelled";
                else if (deadline_hit())
                    why = "deadline_s exceeded after " + std::to_string(sum.completed)
                        + "/" + std::to_string(sum.total) + " points";
                else
                    why = "server draining; request checkpointed after "
                        + std::to_string(sum.completed) + "/" + std::to_string(sum.total)
                        + " points";
                rq.outcome.store(2);
                push_frame(rq,
                           error_frame(rq.id,
                                       why + " — completed records are safe in '"
                                           + eopt.workdir
                                           + "'; resume with: acstab farm exec "
                                           + plan_path + " --resume --dir "
                                           + eopt.workdir),
                           wake_fd);
            } else {
                std::ifstream in(eopt.out, std::ios::binary);
                std::string report((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
                if (report.empty())
                    throw analysis_error("serve: merged report '" + eopt.out
                                         + "' is unreadable");
                while (!report.empty() && report.back() == '\n')
                    report.pop_back();
                rq.outcome.store(1);
                push_frame(rq,
                           report_frame(rq.id, sum.completed, sum.quarantined.size(),
                                        report),
                           wake_fd);
            }
        } catch (const std::exception& e) {
            rq.outcome.store(3);
            push_frame(rq, error_frame(rq.id, e.what()), wake_fd);
        }
        rq.done.store(true);
        const char byte = 1;
        (void)!farm::write_fully(wake_fd, &byte, 1);
    }

} // namespace

serve_summary run_server(const serve_options& opt)
{
    if (opt.root_dir.empty())
        throw analysis_error("serve: no working root directory (--dir)");
    if (opt.stdio == !opt.socket_path.empty())
        throw analysis_error("serve: pass exactly one of --socket PATH or --stdio");
    if (opt.max_concurrent == 0)
        throw analysis_error("serve: --max-concurrent must be at least 1");
    if (opt.max_frame_bytes < 64)
        throw analysis_error("serve: --max-frame must be at least 64 bytes");

    // A client that vanishes mid-write must surface as EPIPE on its own
    // connection, never as a process-killing SIGPIPE.
    farm::ignore_sigpipe();

    if (::mkdir(opt.root_dir.c_str(), 0777) != 0 && errno != EEXIST)
        throw analysis_error("serve: cannot create root dir '" + opt.root_dir
                             + "': " + errno_text());

    // Serve-level fault injection (client-drop / slow-reader /
    // mid-frame-kill, keyed by connection serial). Worker/orchestrator
    // directives stay in the environment and flow into exec_campaign.
    std::vector<fault_directive> serve_faults;
    for (const fault_directive& d : farm::parse_fault_env()) {
        if (d.k == fault_directive::kind::client_drop
            || d.k == fault_directive::kind::slow_reader
            || d.k == fault_directive::kind::mid_frame_kill)
            serve_faults.push_back(d);
    }
    const auto fire_fault = [&](fault_directive::kind k, const char* name,
                                std::size_t serial) {
        for (const fault_directive& d : serve_faults)
            if (d.k == k && d.arg == serial
                && (d.always || farm::try_fire_marker(opt.root_dir, name, serial)))
                return true;
        return false;
    };

    int wake_pipe[2];
    if (::pipe(wake_pipe) != 0)
        throw analysis_error("serve: pipe: " + errno_text());
    farm::set_cloexec(wake_pipe[0]);
    farm::set_cloexec(wake_pipe[1]);
    (void)farm::set_nonblock(wake_pipe[0]);
    (void)farm::set_nonblock(wake_pipe[1]);

    int listen_fd = -1;
    if (!opt.stdio) {
        listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listen_fd < 0) {
            ::close(wake_pipe[0]);
            ::close(wake_pipe[1]);
            throw analysis_error("serve: socket: " + errno_text());
        }
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (opt.socket_path.size() >= sizeof addr.sun_path) {
            ::close(listen_fd);
            ::close(wake_pipe[0]);
            ::close(wake_pipe[1]);
            throw analysis_error("serve: socket path '" + opt.socket_path
                                 + "' is too long for a unix socket");
        }
        std::memcpy(addr.sun_path, opt.socket_path.c_str(), opt.socket_path.size() + 1);
        ::unlink(opt.socket_path.c_str()); // stale socket from a dead server
        if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0
            || ::listen(listen_fd, 16) != 0) {
            const std::string why = errno_text();
            ::close(listen_fd);
            ::close(wake_pipe[0]);
            ::close(wake_pipe[1]);
            throw analysis_error("serve: cannot listen on '" + opt.socket_path
                                 + "': " + why);
        }
        farm::set_cloexec(listen_fd);
        (void)farm::set_nonblock(listen_fd);
    }

    serve_summary summary;
    std::vector<std::unique_ptr<connection>> conns;
    std::vector<std::unique_ptr<request_state>> running;
    std::deque<std::unique_ptr<request_state>> queued;
    std::size_t next_conn_serial = 1;
    std::size_t next_req_seq = 1;
    std::atomic<bool> hard_stop{false};
    bool draining = false;
    steady_clock::time_point drain_start{};
    const auto verbose_note = [&](const char* fmt, const std::string& a) {
        if (opt.verbose) {
            std::fprintf(stderr, fmt, a.c_str());
            std::fflush(stderr);
        }
    };

    if (opt.stdio) {
        auto c = std::make_unique<connection>();
        c->in_fd = STDIN_FILENO;
        c->out_fd = STDOUT_FILENO;
        c->serial = next_conn_serial++;
        c->is_stdio = true;
        c->out_limit = opt.output_buffer_limit;
        (void)farm::set_nonblock(c->in_fd);
        conns.push_back(std::move(c));
    }

    const auto conn_by_serial = [&](std::size_t serial) -> connection* {
        for (auto& c : conns)
            if (c->serial == serial && !c->dead)
                return c.get();
        return nullptr;
    };

    /// Cancel everything a vanished client owns; queued entries are
    /// silently dropped (there is nobody left to reply to).
    const auto orphan_requests_of = [&](std::size_t serial) {
        for (auto& rq : running)
            if (rq->conn_serial == serial)
                rq->cancel.store(true);
        for (auto it = queued.begin(); it != queued.end();) {
            if ((*it)->conn_serial == serial) {
                ++summary.cancelled;
                it = queued.erase(it);
            } else {
                ++it;
            }
        }
    };

    const auto close_conn = [&](connection& c, const char* why) {
        if (c.dead)
            return;
        c.dead = true;
        verbose_note("serve: connection closed (%s)\n", why);
        if (!c.is_stdio) {
            ::close(c.in_fd);
            c.in_fd = c.out_fd = -1;
        }
        orphan_requests_of(c.serial);
    };

    const auto send_to_conn = [&](connection& c, std::string frame) {
        if (c.dead)
            return;
        c.outbuf += frame;
        if (c.outbuf.size() > c.out_limit) {
            // Bounded memory beats a hung client: drop the reader, which
            // cancels its in-flight work, instead of buffering forever.
            close_conn(c, "output buffer overflow (slow reader)");
        }
    };

    const auto start_request = [&](std::unique_ptr<request_state> rq) {
        request_state& ref = *rq;
        verbose_note("serve: starting request '%s'\n", ref.id);
        ref.thread = std::thread([&ref, &opt, &hard_stop, wfd = wake_pipe[1]] {
            run_request(ref, opt, hard_stop, wfd);
        });
        running.push_back(std::move(rq));
    };

    /// One complete request line from one connection.
    const auto handle_frame = [&](connection& c, const std::string& line) {
        if (line.empty())
            return;
        request_frame req;
        try {
            req = parse_request_frame(line);
        } catch (const std::exception& e) {
            ++summary.protocol_errors;
            send_to_conn(c, error_frame("", e.what(), parse_offset_of(e.what())));
            return;
        }
        switch (req.kind) {
        case request_frame::op::ping:
            send_to_conn(c, pong_frame());
            return;
        case request_frame::op::cancel: {
            for (auto it = queued.begin(); it != queued.end(); ++it) {
                if ((*it)->conn_serial == c.serial && (*it)->id == req.id) {
                    ++summary.cancelled;
                    send_to_conn(c, error_frame(req.id, "request cancelled before start"));
                    queued.erase(it);
                    return;
                }
            }
            for (auto& rq : running) {
                if (rq->conn_serial == c.serial && rq->id == req.id) {
                    rq->cancel.store(true);
                    return; // the request thread replies when it stops
                }
            }
            send_to_conn(c, error_frame(req.id, "cancel: no active request with this id"));
            return;
        }
        case request_frame::op::submit:
            break;
        }
        if (draining) {
            send_to_conn(c, error_frame(req.id,
                                        "server is draining; not accepting new requests"));
            return;
        }
        for (auto& rq : running)
            if (rq->conn_serial == c.serial && rq->id == req.id) {
                send_to_conn(c, error_frame(req.id, "a request with this id is already "
                                                    "running on this connection"));
                return;
            }
        for (auto& rq : queued)
            if (rq->conn_serial == c.serial && rq->id == req.id) {
                send_to_conn(c, error_frame(req.id, "a request with this id is already "
                                                    "queued on this connection"));
                return;
            }
        // Validate the plan at admission so a rejected submit costs the
        // client one round-trip, not a spawned request.
        std::size_t points = 0;
        try {
            points = farm::campaign_from_json(req.plan).grid.size();
        } catch (const std::exception& e) {
            ++summary.protocol_errors;
            send_to_conn(c, error_frame(req.id, e.what()));
            return;
        }
        if (running.size() >= opt.max_concurrent && queued.size() >= opt.queue_depth) {
            ++summary.shed;
            send_to_conn(c, overloaded_frame(req.id, running.size(), queued.size()));
            return;
        }
        auto rq = std::make_unique<request_state>();
        rq->id = req.id;
        rq->conn_serial = c.serial;
        rq->dir = opt.root_dir + "/req-" + std::to_string(next_req_seq++);
        rq->plan = std::move(req.plan);
        rq->points = points;
        rq->workers = req.has_workers ? req.workers : 0;
        rq->has_deadline = req.has_deadline;
        rq->deadline_s = req.deadline_s;
        rq->admitted = steady_clock::now();
        ++summary.accepted;
        const bool starts_now = running.size() < opt.max_concurrent;
        send_to_conn(c, ack_frame(rq->id, points, starts_now ? 0 : queued.size() + 1,
                                  rq->dir));
        if (starts_now)
            start_request(std::move(rq));
        else
            queued.push_back(std::move(rq));
    };

    const auto process_input = [&](connection& c) {
        std::size_t nl;
        while (!c.dead && (nl = c.inbuf.find('\n')) != std::string::npos) {
            std::string line = c.inbuf.substr(0, nl);
            c.inbuf.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (c.skip_to_newline) {
                c.skip_to_newline = false; // tail of the oversized frame
                continue;
            }
            if (line.size() > opt.max_frame_bytes) {
                ++summary.protocol_errors;
                send_to_conn(c, error_frame("",
                                            "request frame exceeds "
                                                + std::to_string(opt.max_frame_bytes)
                                                + " bytes",
                                            static_cast<long>(opt.max_frame_bytes)));
                continue;
            }
            handle_frame(c, line);
        }
        if (!c.dead && !c.skip_to_newline && c.inbuf.size() > opt.max_frame_bytes) {
            // Newline never arrived: reply now, then discard bytes until
            // the frame finally ends (the connection stays usable).
            ++summary.protocol_errors;
            send_to_conn(c, error_frame("",
                                        "request frame exceeds "
                                            + std::to_string(opt.max_frame_bytes)
                                            + " bytes",
                                        static_cast<long>(opt.max_frame_bytes)));
            c.skip_to_newline = true;
            c.inbuf.clear();
        }
        if (!c.dead && c.skip_to_newline)
            c.inbuf.clear(); // still inside the oversized frame: discard
        if (!c.dead && !c.inbuf.empty()
            && fire_fault(fault_directive::kind::mid_frame_kill, "mid-frame-kill",
                          c.serial))
            close_conn(c, "fault injection: mid-frame-kill");
    };

    try {
        while (true) {
            // --- shutdown / drain ladder ---
            const int level = opt.shutdown != nullptr ? *opt.shutdown : 0;
            if (level >= 1 && !draining) {
                draining = true;
                drain_start = steady_clock::now();
                summary.drained = true;
                verbose_note("serve: draining%s\n", "");
                for (auto& rq : queued) {
                    if (connection* c = conn_by_serial(rq->conn_serial))
                        send_to_conn(*c,
                                     error_frame(rq->id, "server is draining; request "
                                                         "dropped before start"));
                    ++summary.cancelled;
                }
                queued.clear();
            }
            if (draining && !hard_stop.load()
                && (level >= 2
                    || steady_clock::now() - drain_start
                        > std::chrono::microseconds(
                            static_cast<long>(opt.drain_grace_s * 1e6))))
                hard_stop.store(true);

            // --- admit queued work into free slots ---
            while (!draining && !queued.empty()
                   && running.size() < opt.max_concurrent) {
                auto rq = std::move(queued.front());
                queued.pop_front();
                start_request(std::move(rq));
            }

            // --- exit conditions ---
            const bool any_conn_alive = std::any_of(
                conns.begin(), conns.end(), [](const auto& c) { return !c->dead; });
            if (running.empty() && queued.empty()) {
                if (draining)
                    break;
                if (opt.stdio && !any_conn_alive)
                    break; // single client hung up; nothing left to do
            }

            // --- poll ---
            std::vector<pollfd> fds;
            fds.push_back({wake_pipe[0], POLLIN, 0});
            if (listen_fd >= 0 && !draining)
                fds.push_back({listen_fd, POLLIN, 0});
            for (auto& c : conns) {
                if (c->dead)
                    continue;
                const bool want_write = !c->outbuf.empty() && !c->no_drain;
                short events = c->in_eof ? 0 : POLLIN;
                if (want_write && c->out_fd == c->in_fd)
                    events |= POLLOUT;
                // Keep half-closed sockets in the poll set with events=0:
                // POLLHUP/POLLERR are reported regardless, and they are
                // the only way to tell a full disconnect from a polite
                // shutdown(WR) while a request is still owed frames.
                if (events != 0 || !c->is_stdio)
                    fds.push_back({c->in_fd, events, 0});
                if (c->out_fd != c->in_fd && want_write)
                    fds.push_back({c->out_fd, POLLOUT, 0});
            }
            const int rc = ::poll(fds.data(), fds.size(), 200);
            if (rc < 0 && errno != EINTR)
                throw analysis_error("serve: poll: " + errno_text());

            { // drain wakeup bytes
                char buf[256];
                while (farm::read_retry(wake_pipe[0], buf, sizeof buf) > 0) { }
            }

            // --- accept new clients ---
            if (listen_fd >= 0 && !draining) {
                while (true) {
                    const int fd = ::accept(listen_fd, nullptr, nullptr);
                    if (fd < 0) {
                        if (errno == EINTR)
                            continue;
                        break; // EAGAIN or transient accept error
                    }
                    farm::set_cloexec(fd);
                    (void)farm::set_nonblock(fd);
                    auto c = std::make_unique<connection>();
                    c->in_fd = c->out_fd = fd;
                    c->serial = next_conn_serial++;
                    c->out_limit = opt.output_buffer_limit;
                    if (fire_fault(fault_directive::kind::slow_reader, "slow-reader",
                                   c->serial)) {
                        c->no_drain = true;
                        c->out_limit = 4096;
                    }
                    verbose_note("serve: connection %s accepted\n",
                                 std::to_string(c->serial));
                    conns.push_back(std::move(c));
                }
            }

            // --- read client input ---
            const auto revents_of = [&](int fd) -> short {
                for (const pollfd& p : fds)
                    if (p.fd == fd)
                        return p.revents;
                return 0;
            };
            for (auto& c : conns) {
                if (c->dead)
                    continue;
                // POLLHUP = the peer closed the whole socket (a plain
                // shutdown(WR) half-close only reads as EOF). Noted
                // before reading, acted on after, so a "cancel" sent
                // just before the close still lands. Stdio is exempt: a
                // closed stdin pipe raises POLLHUP too, but the client
                // may well still be reading stdout.
                const bool hung_up = !c->is_stdio
                    && (revents_of(c->in_fd) & (POLLHUP | POLLERR)) != 0;
                if (c->in_eof) {
                    if (hung_up)
                        close_conn(*c, "client disconnected");
                    continue;
                }
                char buf[65536];
                while (true) {
                    const ssize_t n = farm::read_retry(c->in_fd, buf, sizeof buf);
                    if (n > 0) {
                        c->inbuf.append(buf, static_cast<std::size_t>(n));
                        if (c->inbuf.size() > opt.max_frame_bytes * 2 + sizeof buf)
                            break; // let frame processing shed the backlog
                        continue;
                    }
                    if (n < 0 && errno == EAGAIN)
                        break;
                    if (n == 0) {
                        // Half-close: the client is done talking but may
                        // still be reading; finish what it already sent.
                        c->in_eof = true;
                    } else {
                        close_conn(*c, "read error");
                    }
                    break;
                }
                if (!c->dead)
                    process_input(*c);
                if (!c->dead && hung_up)
                    close_conn(*c, "client disconnected");
            }

            // --- ship frames produced by request threads ---
            for (auto& rq : running) {
                std::vector<std::string> frames;
                {
                    const std::lock_guard<std::mutex> lock(rq->mu);
                    frames.swap(rq->frames);
                }
                if (frames.empty())
                    continue;
                connection* c = conn_by_serial(rq->conn_serial);
                if (c == nullptr) {
                    rq->cancel.store(true); // client gone; stop computing
                    continue;
                }
                for (std::string& f : frames) {
                    const bool is_point = f.rfind("{\"frame\":\"point\"", 0) == 0;
                    send_to_conn(*c, std::move(f));
                    if (is_point
                        && fire_fault(fault_directive::kind::client_drop, "client-drop",
                                      c->serial)) {
                        close_conn(*c, "fault injection: client-drop");
                        break;
                    }
                }
            }

            // --- reap finished requests ---
            for (auto it = running.begin(); it != running.end();) {
                if (!(*it)->done.load()) {
                    ++it;
                    continue;
                }
                (*it)->thread.join();
                // Ship any frames the thread pushed after the drain above.
                {
                    std::vector<std::string> frames;
                    {
                        const std::lock_guard<std::mutex> lock((*it)->mu);
                        frames.swap((*it)->frames);
                    }
                    if (connection* c = conn_by_serial((*it)->conn_serial))
                        for (std::string& f : frames)
                            send_to_conn(*c, std::move(f));
                }
                switch ((*it)->outcome.load()) {
                case 1: ++summary.completed; break;
                case 2: ++summary.cancelled; break;
                default: ++summary.failed; break;
                }
                verbose_note("serve: request '%s' finished\n", (*it)->id);
                it = running.erase(it);
            }

            // --- flush client output buffers ---
            for (auto& c : conns) {
                if (c->dead || c->outbuf.empty() || c->no_drain)
                    continue;
                while (!c->outbuf.empty()) {
                    const ssize_t n
                        = ::write(c->out_fd, c->outbuf.data(), c->outbuf.size());
                    if (n > 0) {
                        c->outbuf.erase(0, static_cast<std::size_t>(n));
                        continue;
                    }
                    if (n < 0 && errno == EINTR)
                        continue;
                    if (n < 0 && errno == EAGAIN)
                        break;
                    close_conn(*c, "write error (client gone)");
                    break;
                }
            }
            // A half-closed connection is reaped once nothing more is
            // owed to it: no request of its still runs or waits, and its
            // output buffer has been flushed.
            for (auto& c : conns) {
                if (c->dead || !c->in_eof || !c->outbuf.empty() || !c->inbuf.empty())
                    continue;
                const auto owns = [&](const auto& rq) {
                    return rq->conn_serial == c->serial;
                };
                if (!std::any_of(running.begin(), running.end(), owns)
                    && !std::any_of(queued.begin(), queued.end(), owns))
                    close_conn(*c, "client EOF");
            }
            conns.erase(std::remove_if(conns.begin(), conns.end(),
                                       [](const auto& c) { return c->dead; }),
                        conns.end());
        }
    } catch (...) {
        // Crash-only discipline: even an unexpected loop error must not
        // leak request threads (each would leave worker processes).
        hard_stop.store(true);
        for (auto& rq : running) {
            rq->cancel.store(true);
            if (rq->thread.joinable())
                rq->thread.join();
        }
        if (listen_fd >= 0) {
            ::close(listen_fd);
            ::unlink(opt.socket_path.c_str());
        }
        ::close(wake_pipe[0]);
        ::close(wake_pipe[1]);
        throw;
    }

    // Final flush so terminal frames (reports, drain errors) reach
    // still-connected clients before the fds go away.
    for (auto& c : conns) {
        if (c->dead || c->outbuf.empty() || c->no_drain)
            continue;
        (void)farm::write_fully(c->out_fd, c->outbuf.data(), c->outbuf.size());
    }
    for (auto& c : conns)
        if (!c->dead && !c->is_stdio)
            ::close(c->in_fd);
    if (listen_fd >= 0) {
        ::close(listen_fd);
        ::unlink(opt.socket_path.c_str());
    }
    ::close(wake_pipe[0]);
    ::close(wake_pipe[1]);
    return summary;
}

} // namespace acstab::serve
