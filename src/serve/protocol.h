// Wire protocol for `acstab serve`: newline-delimited JSON frames.
//
// The daemon speaks JSON-lines in both directions — one frame per line,
// using the same byte-stable farm/json.h dialect as every other acstab
// artifact (insertion-ordered objects, shortest round-trip numbers,
// non-finite values as the strings "nan"/"inf"/"-inf", parser depth
// capped at 128 nesting levels).
//
// Client -> server (request frames, keyed by "op"):
//   {"op":"submit","id":"<client-chosen>","plan":{...campaign plan...},
//    "deadline_s":<seconds>?, "workers":<n>?}
//   {"op":"cancel","id":"<id of an earlier submit>"}
//   {"op":"ping"}
//
// Server -> client (reply frames, keyed by "frame"):
//   {"frame":"ack","id":...,"points":N,"queued":B,"dir":"<request dir>"}
//   {"frame":"point","id":...,"index":I,"record":{...}}     (streamed)
//   {"frame":"report","id":...,"completed":N,"quarantined":Q,
//    "report":{...merged report...}}                        (terminal)
//   {"frame":"error","id":...?,"error":"<message>","offset":N?}
//   {"frame":"overloaded","id":...,"running":M,"queued":B}  (terminal)
//   {"frame":"pong"}
//
// Robustness contract: a malformed, over-deep, or oversized request line
// yields exactly one "error" frame (with the parser's byte offset when
// known) and the connection stays usable; it never kills the server or
// the connection. "point" and "report" frames splice the orchestrator's
// canonical record/report bytes verbatim, so a served report is
// byte-identical to `acstab farm exec` output for the same plan.
#ifndef ACSTAB_SERVE_PROTOCOL_H
#define ACSTAB_SERVE_PROTOCOL_H

#include <cstddef>
#include <string>

#include "farm/json.h"

namespace acstab::serve {

struct request_frame {
    enum class op { submit, cancel, ping };
    op kind = op::ping;
    std::string id;             ///< client-chosen correlation id (submit/cancel)
    farm::json_value plan;      ///< campaign plan (submit only)
    bool has_deadline = false;  ///< deadline_s present on submit
    double deadline_s = 0.0;    ///< wall-clock budget from admission
    bool has_workers = false;   ///< workers present on submit
    std::size_t workers = 0;    ///< per-request worker override
};

/// Parse one request line. Throws parse_error on malformed JSON (message
/// carries "at offset N") and analysis_error on structurally valid JSON
/// that is not a known request frame. Never returns a half-filled frame.
[[nodiscard]] request_frame parse_request_frame(const std::string& line);

/// Best-effort extraction of the trailing "at offset N" from a parser
/// message; -1 when absent. Lets error frames point at the offending
/// byte of the client's own line.
[[nodiscard]] long parse_offset_of(const std::string& what);

// ----- reply frame builders (each returns one full line incl. '\n') -----
// `record_json` / `report_json` are spliced as raw bytes: they are
// already canonical farm/json.h output, and re-parsing them here would
// only risk perturbing the byte-identical-report guarantee.

[[nodiscard]] std::string ack_frame(const std::string& id, std::size_t points,
                                    std::size_t queued, const std::string& dir);
[[nodiscard]] std::string point_frame(const std::string& id, std::size_t index,
                                      const std::string& record_json);
[[nodiscard]] std::string report_frame(const std::string& id, std::size_t completed,
                                       std::size_t quarantined,
                                       const std::string& report_json);
[[nodiscard]] std::string error_frame(const std::string& id, const std::string& message,
                                      long offset = -1);
[[nodiscard]] std::string overloaded_frame(const std::string& id, std::size_t running,
                                           std::size_t queued);
[[nodiscard]] std::string pong_frame();

} // namespace acstab::serve

#endif // ACSTAB_SERVE_PROTOCOL_H
