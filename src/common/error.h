// Typed error hierarchy shared by all acstab libraries.
//
// Recoverable failures (bad input, non-convergence, singular systems) are
// reported as exceptions derived from acstab::error so callers can
// distinguish the failing subsystem; internal invariants use assert().
#ifndef ACSTAB_COMMON_ERROR_H
#define ACSTAB_COMMON_ERROR_H

#include <stdexcept>
#include <string>

namespace acstab {

/// Base class of every exception thrown by acstab.
class error : public std::runtime_error {
public:
    explicit error(const std::string& what) : std::runtime_error(what) {}
};

/// Numerical kernel failure (singular matrix, eigeniteration stall, ...).
class numeric_error : public error {
public:
    explicit numeric_error(const std::string& what) : error("numeric: " + what) {}
};

/// Iterative analysis failed to converge (DC Newton, transient step, ...).
class convergence_error : public error {
public:
    explicit convergence_error(const std::string& what) : error("convergence: " + what) {}
};

/// Ill-formed circuit (unknown node, dangling device, duplicate name, ...).
class circuit_error : public error {
public:
    explicit circuit_error(const std::string& what) : error("circuit: " + what) {}
};

/// Netlist text could not be parsed; carries a line number when known.
class parse_error : public error {
public:
    explicit parse_error(const std::string& what) : error("parse: " + what) {}
    parse_error(const std::string& what, int line)
        : error("parse: line " + std::to_string(line) + ": " + what), line_(line) {}

    /// 1-based netlist line, or -1 when unknown.
    [[nodiscard]] int line() const noexcept { return line_; }

private:
    int line_ = -1;
};

/// High-level analysis misuse (empty sweep, unknown probe node, ...).
class analysis_error : public error {
public:
    explicit analysis_error(const std::string& what) : error("analysis: " + what) {}
};

} // namespace acstab

#endif // ACSTAB_COMMON_ERROR_H
