// Scalar type aliases and a few universal constants.
#ifndef ACSTAB_COMMON_TYPES_H
#define ACSTAB_COMMON_TYPES_H

#include <complex>

namespace acstab {

using real = double;
using cplx = std::complex<double>;

inline constexpr real pi = 3.14159265358979323846;
inline constexpr real two_pi = 2.0 * pi;

/// Convert a frequency in Hz to angular frequency in rad/s.
[[nodiscard]] constexpr real to_omega(real hz) noexcept { return two_pi * hz; }

/// Convert an angular frequency in rad/s to a frequency in Hz.
[[nodiscard]] constexpr real to_hertz(real omega) noexcept { return omega / two_pi; }

} // namespace acstab

#endif // ACSTAB_COMMON_TYPES_H
