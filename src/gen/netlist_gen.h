// Parameterized stress-netlist generators (`acstab gen`).
//
// Nothing shipped in netlists/ is larger than a few dozen unknowns, so
// the solver's large-circuit behavior (fill-in under different column
// orderings, SIMD batch kernels, warm-started refactorization) had no
// in-tree workload to measure against. These emitters produce valid,
// deterministic netlist text from tens to tens of thousands of nodes —
// in the spirit of the FPGA SPICE testbench generators ROADMAP cites —
// for the size-scaling bench ablation, the CI smoke job and manual
// experiments:
//
//   ladder  a driven uniform RC ladder: tridiagonal MNA pattern, the
//           best case for any ordering (near-zero fill), so it isolates
//           kernel/warm-start effects from fill effects;
//   rcmesh  a k x k 2-D RC grid (k = round(sqrt(size))): the classic
//           fill stress. The count heuristic degenerates to the natural
//           order here (every interior column has equal degree) and
//           fills like n * k; minimum degree stays near n * log n.
//
// Each netlist carries a .stability card probing a representative node,
// so generated files work directly with `acstab run`, `acstab farm plan`
// and every single-analysis command.
#ifndef ACSTAB_GEN_NETLIST_GEN_H
#define ACSTAB_GEN_NETLIST_GEN_H

#include <cstddef>
#include <string>

#include "common/types.h"

namespace acstab::gen {

struct gen_options {
    /// Target circuit node count (the realized count may differ by a few
    /// nodes: the ladder adds its drive node, the mesh rounds to k^2).
    std::size_t size = 100;
    /// Per-section resistance [ohm] and capacitance [F].
    real r = 1e3;
    real c = 1e-9;
    /// Band of the emitted .stability card.
    real fstart = 1e3;
    real fstop = 1e9;
    std::size_t points_per_decade = 20;
};

/// Driven uniform RC ladder with `size` ladder nodes.
[[nodiscard]] std::string ladder_netlist(const gen_options& opt = {});

/// Driven k x k RC mesh, k = round(sqrt(size)) (at least 2).
[[nodiscard]] std::string rcmesh_netlist(const gen_options& opt = {});

/// Dispatch by kind ("ladder" | "rcmesh"); throws analysis_error on an
/// unknown kind.
[[nodiscard]] std::string generate_netlist(const std::string& kind,
                                           const gen_options& opt = {});

} // namespace acstab::gen

#endif // ACSTAB_GEN_NETLIST_GEN_H
