#include "gen/netlist_gen.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "common/error.h"

namespace acstab::gen {

namespace {

    void append_value(std::string& out, real v)
    {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%g", v);
        out += buf;
    }

    void append_stability_card(std::string& out, const std::string& probe,
                               const gen_options& opt)
    {
        out += ".stability " + probe + " ";
        append_value(out, opt.fstart);
        out += " ";
        append_value(out, opt.fstop);
        out += " " + std::to_string(opt.points_per_decade) + "\n.end\n";
    }

    /// Hard ceiling on generated node counts. Far above anything the
    /// bench sweeps (the largest CI size is 8k; manual runs go to a few
    /// hundred thousand) but low enough that every index/size product
    /// below stays comfortably inside std::size_t on 32- and 64-bit.
    constexpr std::size_t max_gen_nodes = std::size_t{1} << 26; // ~67M

    void check(const gen_options& opt)
    {
        if (opt.size == 0)
            throw analysis_error("gen: size must be at least 1");
        if (opt.size > max_gen_nodes)
            throw analysis_error("gen: size " + std::to_string(opt.size)
                                 + " exceeds the generator ceiling of "
                                 + std::to_string(max_gen_nodes) + " nodes");
        if (!(opt.r > 0.0) || !(opt.c > 0.0))
            throw analysis_error("gen: r and c must be positive");
        if (!(opt.fstart > 0.0) || !(opt.fstop > opt.fstart))
            throw analysis_error("gen: need 0 < fstart < fstop");
    }

    /// Rounded integer square root: exact integer arithmetic, no
    /// double round-trip (lround(sqrt(double)) silently loses precision
    /// past 2^53 and its long return truncates on LLP64), no overflow:
    /// the Newton iterate stays within ~2*sqrt(n) for n <= max_gen_nodes.
    [[nodiscard]] std::size_t isqrt_round(std::size_t n)
    {
        if (n == 0)
            return 0;
        std::size_t x = n;
        std::size_t y = (x + 1) / 2;
        while (y < x) {
            x = y;
            y = (x + n / x) / 2;
        }
        // x = floor(sqrt(n)); round to nearest by comparing remainders.
        // n - x^2 > (x+1)^2 - n  <=>  n > x^2 + x (all well in range).
        return n - x * x > x ? x + 1 : x;
    }

    /// reserve() with saturating size arithmetic: the estimate is only a
    /// growth hint, so on (32-bit) overflow we clamp instead of wrapping
    /// to a tiny — or absurd — request.
    void reserve_estimate(std::string& out, std::size_t count, std::size_t bytes_per,
                          std::size_t slack)
    {
        constexpr std::size_t cap = std::numeric_limits<std::size_t>::max() / 2;
        const std::size_t est = count > cap / bytes_per ? cap : count * bytes_per;
        out.reserve(est > cap - slack ? cap : est + slack);
    }

} // namespace

std::string ladder_netlist(const gen_options& opt)
{
    check(opt);
    const std::size_t n = opt.size;
    std::string out;
    reserve_estimate(out, n, 64, 256);
    out += "* generated RC ladder, " + std::to_string(n) + " sections (acstab gen ladder)\n";
    out += "vin in 0 1 ac 1\n";
    for (std::size_t k = 1; k <= n; ++k) {
        const std::string prev = k == 1 ? std::string("in") : "n" + std::to_string(k - 1);
        const std::string node = "n" + std::to_string(k);
        out += "r" + std::to_string(k) + " " + prev + " " + node + " ";
        append_value(out, opt.r);
        out += "\nc" + std::to_string(k) + " " + node + " 0 ";
        append_value(out, opt.c);
        out += "\n";
    }
    append_stability_card(out, "n" + std::to_string((n + 1) / 2), opt);
    return out;
}

std::string rcmesh_netlist(const gen_options& opt)
{
    check(opt);
    const std::size_t k = std::max<std::size_t>(2, isqrt_round(opt.size));
    const auto node = [](std::size_t i, std::size_t j) {
        return "n" + std::to_string(i) + "_" + std::to_string(j);
    };
    std::string out;
    reserve_estimate(out, k * k, 96, 256);
    out += "* generated " + std::to_string(k) + "x" + std::to_string(k)
        + " RC mesh (acstab gen rcmesh)\n";
    out += "vin src 0 1 ac 1\n";
    out += "rdrv src " + node(0, 0) + " ";
    append_value(out, opt.r);
    out += "\n";
    std::size_t re = 0;
    std::size_t ce = 0;
    for (std::size_t i = 0; i < k; ++i) {
        for (std::size_t j = 0; j < k; ++j) {
            if (j + 1 < k) {
                out += "rh" + std::to_string(re++) + " " + node(i, j) + " " + node(i, j + 1)
                    + " ";
                append_value(out, opt.r);
                out += "\n";
            }
            if (i + 1 < k) {
                out += "rv" + std::to_string(re++) + " " + node(i, j) + " " + node(i + 1, j)
                    + " ";
                append_value(out, opt.r);
                out += "\n";
            }
            out += "c" + std::to_string(ce++) + " " + node(i, j) + " 0 ";
            append_value(out, opt.c);
            out += "\n";
        }
    }
    append_stability_card(out, node(k / 2, k / 2), opt);
    return out;
}

std::string generate_netlist(const std::string& kind, const gen_options& opt)
{
    if (kind == "ladder")
        return ladder_netlist(opt);
    if (kind == "rcmesh")
        return rcmesh_netlist(opt);
    throw analysis_error("gen: unknown netlist kind '" + kind + "' (ladder | rcmesh)");
}

} // namespace acstab::gen
