#include "core/analyzer.h"

#include <algorithm>
#include <cmath>

#include "core/second_order.h"
#include "engine/adaptive_sweep.h"
#include "engine/linearized_snapshot.h"
#include "engine/sweep_engine.h"

namespace acstab::core {

namespace {

    /// Snapshot with every AC stimulus zeroed: the stability sweeps inject
    /// their own unit-current right-hand sides.
    engine::linearized_snapshot make_injection_snapshot(spice::circuit& c,
                                                        const std::vector<real>& op,
                                                        const stability_options& opt)
    {
        engine::snapshot_options sopt;
        sopt.gmin = opt.gmin;
        sopt.gshunt = opt.gshunt;
        sopt.zero_all_sources = true;
        return engine::linearized_snapshot(c, op, sopt);
    }

    engine::sweep_engine make_engine(const stability_options& opt)
    {
        engine::sweep_engine_options eopt;
        eopt.threads = opt.threads;
        eopt.solver = opt.solver;
        eopt.tuning = opt.tuning;
        return engine::sweep_engine(eopt);
    }

    engine::adaptive_sweep make_adaptive(const stability_options& opt)
    {
        engine::adaptive_sweep_options aopt;
        aopt.fstart = opt.sweep.fstart;
        aopt.fstop = opt.sweep.fstop;
        aopt.output_points_per_decade = opt.sweep.points_per_decade;
        aopt.anchors_per_decade = opt.anchors_per_decade;
        aopt.fit_tol = opt.fit_tol;
        aopt.engine.threads = opt.threads;
        aopt.engine.solver = opt.solver;
        aopt.engine.tuning = opt.tuning;
        return engine::adaptive_sweep(aopt);
    }

} // namespace

stability_analyzer::stability_analyzer(spice::circuit& c, stability_options opt)
    : circuit_(c), opt_(std::move(opt))
{
}

const std::vector<real>& stability_analyzer::operating_point()
{
    if (!op_) {
        spice::dc_options dc = opt_.dc;
        dc.gmin = opt_.gmin;
        dc.solver = opt_.solver;
        op_ = spice::dc_operating_point(circuit_, dc);
    }
    return op_->solution;
}

node_stability stability_analyzer::make_node_result(std::string node_name,
                                                    std::vector<real> freqs,
                                                    std::vector<real> magnitude) const
{
    node_stability ns;
    ns.node = std::move(node_name);
    ns.plot = compute_stability_plot(freqs, magnitude, opt_.plot);
    if (const stability_peak* peak = ns.plot.dominant_pole(); peak != nullptr) {
        ns.has_peak = true;
        ns.dominant = *peak;
        if (peak->value < 0.0) {
            ns.zeta = zeta_from_performance_index(peak->value);
            ns.phase_margin_est_deg = std::min(phase_margin_rule_deg(ns.zeta), 90.0);
            ns.overshoot_est_pct = overshoot_percent(ns.zeta);
            ns.is_underdamped = peak->flag == peak_flag::normal && ns.zeta < 1.0;
        }
    }
    return ns;
}

node_stability stability_analyzer::analyze_node(const std::string& node_name)
{
    const auto node = circuit_.find_node(node_name);
    if (!node)
        throw analysis_error("stability: unknown node '" + node_name + "'");
    if (*node < 0)
        throw analysis_error("stability: cannot analyze the ground node");

    const std::vector<real>& op = operating_point();

    // The paper attaches an AC current stimulus to the node with every
    // other AC source zeroed; in engine terms that is a single injected
    // right-hand side against the zero-stimulus snapshot.
    const engine::linearized_snapshot snap = make_injection_snapshot(circuit_, op, opt_);
    const std::size_t k = static_cast<std::size_t>(*node);
    const std::vector<engine::sweep_engine::injection> injections{
        {k, cplx{opt_.stimulus_amps, 0.0}}};

    if (opt_.adaptive) {
        const engine::adaptive_sweep_result res
            = make_adaptive(opt_).run_injections(snap, injections, {{0, k}});
        std::vector<real> magnitude(res.freq_hz.size());
        for (std::size_t i = 0; i < magnitude.size(); ++i)
            magnitude[i] = std::abs(res.values[0][i]) / opt_.stimulus_amps;
        return make_node_result(node_name, res.freq_hz, std::move(magnitude));
    }

    const std::vector<real> freqs = opt_.sweep.frequencies();
    std::vector<real> magnitude(freqs.size(), 0.0);
    make_engine(opt_).run_injections(
        snap, freqs, injections,
        [&magnitude, k, this](std::size_t fi, std::size_t, std::span<const cplx> sol) {
            // Normalize to impedance.
            magnitude[fi] = std::abs(sol[k]) / opt_.stimulus_amps;
        });

    return make_node_result(node_name, freqs, std::move(magnitude));
}

stability_report stability_analyzer::analyze_all_nodes()
{
    const std::vector<real>& op = operating_point();
    circuit_.finalize();

    const std::size_t node_count = circuit_.node_count();
    const std::vector<real> freqs = opt_.sweep.frequencies();
    const std::size_t nf = freqs.size();

    std::vector<bool> forced(node_count, false);
    if (opt_.skip_forced_nodes)
        forced = circuit_.source_forced_nodes();

    // One unit-current right-hand side per analyzable node: the engine
    // factors Y(jw) once per frequency and back-solves the whole batch
    // (algebraically identical to the paper's one-simulation-per-node
    // loop, orders of magnitude faster), parallel over frequencies on the
    // shared pool.
    const engine::linearized_snapshot snap = make_injection_snapshot(circuit_, op, opt_);
    std::vector<engine::sweep_engine::injection> injections;
    for (std::size_t k = 0; k < node_count; ++k)
        if (!forced[k])
            injections.push_back({k, cplx{1.0, 0.0}}); // unit current into node k

    stability_report report;
    std::vector<real> grid = freqs;
    // magnitude[node][freq]
    std::vector<std::vector<real>> magnitude(node_count);
    if (opt_.adaptive && !injections.empty()) {
        // One channel per injection (each node observes its own driving-
        // point response); the adaptive driver refines on the worst node
        // so a single solved grid serves every right-hand side.
        std::vector<engine::adaptive_channel> channels(injections.size());
        for (std::size_t ri = 0; ri < injections.size(); ++ri)
            channels[ri] = {ri, injections[ri].index};
        const engine::adaptive_sweep_result res
            = make_adaptive(opt_).run_injections(snap, injections, channels);
        grid = res.freq_hz;
        report.factorizations = res.factorizations;
        for (std::size_t ri = 0; ri < injections.size(); ++ri) {
            std::vector<real>& mag = magnitude[injections[ri].index];
            mag.resize(grid.size());
            for (std::size_t fi = 0; fi < grid.size(); ++fi)
                mag[fi] = std::abs(res.values[ri][fi]);
        }
    } else {
        for (std::size_t k = 0; k < node_count; ++k)
            magnitude[k].assign(nf, 0.0);
        report.factorizations = nf;
        make_engine(opt_).run_injections(
            snap, freqs, injections,
            [&magnitude, &injections](std::size_t fi, std::size_t ri,
                                      std::span<const cplx> sol) {
                const std::size_t k = injections[ri].index;
                magnitude[k][fi] = std::abs(sol[k]);
            });
    }

    for (std::size_t k = 0; k < node_count; ++k) {
        const std::string& name = circuit_.node_name(static_cast<spice::node_id>(k));
        if (forced[k]) {
            report.skipped_nodes.push_back(name);
            continue;
        }
        report.nodes.push_back(make_node_result(name, grid, std::move(magnitude[k])));
    }

    std::sort(report.nodes.begin(), report.nodes.end(),
              [](const node_stability& a, const node_stability& b) {
                  if (a.has_peak != b.has_peak)
                      return a.has_peak;
                  if (!a.has_peak)
                      return a.node < b.node;
                  if (a.dominant.freq_hz != b.dominant.freq_hz)
                      return a.dominant.freq_hz < b.dominant.freq_hz;
                  return a.node < b.node;
              });
    report.loops = group_loops(report.nodes, opt_.group_rel_tol);
    return report;
}

std::vector<loop_group> group_loops(const std::vector<node_stability>& nodes, real rel_tol)
{
    std::vector<loop_group> loops;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (!nodes[i].has_peak)
            continue;
        const real f = nodes[i].dominant.freq_hz;
        if (!loops.empty()) {
            loop_group& last = loops.back();
            if (std::fabs(f - last.freq_hz) <= rel_tol * last.freq_hz) {
                last.members.push_back(i);
                continue;
            }
        }
        loop_group g;
        g.freq_hz = f;
        g.members.push_back(i);
        loops.push_back(std::move(g));
    }
    // Representative frequency: strongest member's natural frequency.
    for (loop_group& g : loops) {
        real best = 0.0;
        for (const std::size_t idx : g.members) {
            const node_stability& ns = nodes[idx];
            if (ns.dominant.value < best) {
                best = ns.dominant.value;
                g.freq_hz = ns.dominant.freq_hz;
            }
        }
    }
    return loops;
}

} // namespace acstab::core
