#include "core/analyzer.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "core/second_order.h"
#include "spice/ac_analysis.h"
#include "spice/devices/sources.h"

namespace acstab::core {

stability_analyzer::stability_analyzer(spice::circuit& c, stability_options opt)
    : circuit_(c), opt_(std::move(opt))
{
}

const std::vector<real>& stability_analyzer::operating_point()
{
    if (!op_) {
        spice::dc_options dc = opt_.dc;
        dc.gmin = opt_.gmin;
        dc.solver = opt_.solver;
        op_ = spice::dc_operating_point(circuit_, dc);
    }
    return op_->solution;
}

node_stability stability_analyzer::make_node_result(std::string node_name,
                                                    std::vector<real> freqs,
                                                    std::vector<real> magnitude) const
{
    node_stability ns;
    ns.node = std::move(node_name);
    ns.plot = compute_stability_plot(freqs, magnitude, opt_.plot);
    if (const stability_peak* peak = ns.plot.dominant_pole(); peak != nullptr) {
        ns.has_peak = true;
        ns.dominant = *peak;
        if (peak->value < 0.0) {
            ns.zeta = zeta_from_performance_index(peak->value);
            ns.phase_margin_est_deg = std::min(phase_margin_rule_deg(ns.zeta), 90.0);
            ns.overshoot_est_pct = overshoot_percent(ns.zeta);
            ns.is_underdamped = peak->flag == peak_flag::normal && ns.zeta < 1.0;
        }
    }
    return ns;
}

node_stability stability_analyzer::analyze_node(const std::string& node_name)
{
    const auto node = circuit_.find_node(node_name);
    if (!node)
        throw analysis_error("stability: unknown node '" + node_name + "'");
    if (*node < 0)
        throw analysis_error("stability: cannot analyze the ground node");

    const std::vector<real>& op = operating_point();
    const std::vector<real> freqs = opt_.sweep.frequencies();

    // Attach the AC current stimulus to the node (paper section 6), run
    // the sweep with every other AC source zeroed, then detach.
    const std::string probe_name = "istab_probe__" + node_name;
    auto& probe = circuit_.add<spice::isource>(
        probe_name, spice::ground_node, *node,
        spice::waveform_spec::make_ac(0.0, opt_.stimulus_amps));
    std::vector<real> magnitude;
    try {
        spice::ac_options ac;
        ac.solver = opt_.solver;
        ac.gmin = opt_.gmin;
        ac.gshunt = opt_.gshunt;
        ac.exclusive_source = &probe;
        const spice::ac_result res = spice::ac_sweep(circuit_, freqs, op, ac);
        magnitude = res.unknown_magnitude(static_cast<std::size_t>(*node));
        for (real& m : magnitude)
            m /= opt_.stimulus_amps; // normalize to impedance
    } catch (...) {
        circuit_.remove_device(probe_name);
        throw;
    }
    circuit_.remove_device(probe_name);

    return make_node_result(node_name, freqs, std::move(magnitude));
}

stability_report stability_analyzer::analyze_all_nodes()
{
    const std::vector<real>& op = operating_point();
    circuit_.finalize();

    const std::size_t node_count = circuit_.node_count();
    const std::size_t unknowns = circuit_.unknown_count();
    const std::vector<real> freqs = opt_.sweep.frequencies();
    const std::size_t nf = freqs.size();

    std::vector<bool> forced(node_count, false);
    if (opt_.skip_forced_nodes)
        forced = circuit_.source_forced_nodes();

    // magnitude[node][freq]
    std::vector<std::vector<real>> magnitude(node_count, std::vector<real>(nf, 0.0));

    const auto solve_band = [&](std::size_t begin, std::size_t end) {
        std::vector<cplx> rhs(unknowns, cplx{});
        for (std::size_t fi = begin; fi < end; ++fi) {
            spice::ac_params p;
            p.omega = to_omega(freqs[fi]);
            p.gmin = opt_.gmin;
            p.zero_all_sources = true;

            spice::system_builder<cplx> b(unknowns);
            for (const auto& dev : circuit_.devices())
                dev->stamp_ac(op, p, b);
            if (opt_.gshunt > 0.0)
                for (std::size_t i = 0; i < node_count; ++i)
                    b.add(static_cast<spice::node_id>(i), static_cast<spice::node_id>(i),
                          cplx{opt_.gshunt, 0.0});

            const spice::factored_system<cplx> fact(b, opt_.solver);
            for (std::size_t k = 0; k < node_count; ++k) {
                if (forced[k])
                    continue;
                std::fill(rhs.begin(), rhs.end(), cplx{});
                rhs[k] = cplx{1.0, 0.0}; // unit current injected into node k
                const std::vector<cplx> sol = fact.solve(rhs);
                magnitude[k][fi] = std::abs(sol[k]);
            }
        }
    };

    const std::size_t workers = std::max<std::size_t>(1, std::min(opt_.threads, nf));
    if (workers == 1) {
        solve_band(0, nf);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        const std::size_t chunk = (nf + workers - 1) / workers;
        for (std::size_t w = 0; w < workers; ++w) {
            const std::size_t begin = w * chunk;
            const std::size_t end = std::min(nf, begin + chunk);
            if (begin >= end)
                break;
            pool.emplace_back(solve_band, begin, end);
        }
        for (auto& th : pool)
            th.join();
    }

    stability_report report;
    for (std::size_t k = 0; k < node_count; ++k) {
        const std::string& name = circuit_.node_name(static_cast<spice::node_id>(k));
        if (forced[k]) {
            report.skipped_nodes.push_back(name);
            continue;
        }
        report.nodes.push_back(make_node_result(name, freqs, std::move(magnitude[k])));
    }

    std::sort(report.nodes.begin(), report.nodes.end(),
              [](const node_stability& a, const node_stability& b) {
                  if (a.has_peak != b.has_peak)
                      return a.has_peak;
                  if (!a.has_peak)
                      return a.node < b.node;
                  if (a.dominant.freq_hz != b.dominant.freq_hz)
                      return a.dominant.freq_hz < b.dominant.freq_hz;
                  return a.node < b.node;
              });
    report.loops = group_loops(report.nodes, opt_.group_rel_tol);
    return report;
}

std::vector<loop_group> group_loops(const std::vector<node_stability>& nodes, real rel_tol)
{
    std::vector<loop_group> loops;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (!nodes[i].has_peak)
            continue;
        const real f = nodes[i].dominant.freq_hz;
        if (!loops.empty()) {
            loop_group& last = loops.back();
            if (std::fabs(f - last.freq_hz) <= rel_tol * last.freq_hz) {
                last.members.push_back(i);
                continue;
            }
        }
        loop_group g;
        g.freq_hz = f;
        g.members.push_back(i);
        loops.push_back(std::move(g));
    }
    // Representative frequency: strongest member's natural frequency.
    for (loop_group& g : loops) {
        real best = 0.0;
        for (const std::size_t idx : g.members) {
            const node_stability& ns = nodes[idx];
            if (ns.dominant.value < best) {
                best = ns.dominant.value;
                g.freq_hz = ns.dominant.freq_hz;
            }
        }
    }
    return loops;
}

} // namespace acstab::core
