#include "core/param_grid.h"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "common/error.h"

namespace acstab::core {

namespace {

    [[nodiscard]] std::string format_value(real v)
    {
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.6g", v);
        return buf;
    }

} // namespace

std::string grid_point::label() const
{
    std::string out;
    if (temp_celsius) {
        out += "T=";
        out += format_value(*temp_celsius);
    }
    if (!corner.empty()) {
        if (!out.empty())
            out += ' ';
        out += "corner=";
        out += corner;
    }
    // The override map is unordered; sort the names so the label is
    // stable across runs and processes.
    std::vector<std::string> names;
    names.reserve(overrides.size());
    for (const auto& [name, v] : overrides)
        names.push_back(name);
    std::sort(names.begin(), names.end());
    for (const std::string& name : names) {
        if (!out.empty())
            out += ' ';
        out += name;
        out += '=';
        out += format_value(overrides.at(name));
    }
    return out.empty() ? "nominal" : out;
}

spice::parse_options grid_point::parse_options() const
{
    spice::parse_options popt;
    popt.param_overrides = overrides;
    popt.temp_celsius = temp_celsius;
    return popt;
}

std::size_t param_grid::size() const
{
    std::unordered_set<std::string> seen;
    for (const corner_def& c : corners) {
        if (c.name.empty())
            throw analysis_error("param grid: corner with an empty name");
        if (!seen.insert(c.name).second)
            throw analysis_error("param grid: duplicate corner '" + c.name + "'");
    }
    seen.clear();
    std::size_t total = std::max<std::size_t>(1, temps.size())
        * std::max<std::size_t>(1, corners.size());
    for (const param_axis& axis : axes) {
        if (axis.name.empty())
            throw analysis_error("param grid: axis with an empty name");
        if (axis.values.empty())
            throw analysis_error("param grid: axis '" + axis.name + "' has no values");
        if (!seen.insert(axis.name).second)
            throw analysis_error("param grid: duplicate axis '" + axis.name + "'");
        total *= axis.values.size();
    }
    return total;
}

grid_point param_grid::point(std::size_t index) const
{
    const std::size_t total = size(); // also validates the axes
    if (index >= total)
        throw analysis_error("param grid: point index " + std::to_string(index)
                             + " out of range (grid has " + std::to_string(total)
                             + " points)");

    grid_point pt;
    pt.index = index;

    // Row-major decode, last axis fastest: peel the param axes from the
    // back, then the corner digit, then TEMP.
    std::size_t rest = index;
    std::vector<std::size_t> axis_digit(axes.size(), 0);
    for (std::size_t a = axes.size(); a-- > 0;) {
        axis_digit[a] = rest % axes[a].values.size();
        rest /= axes[a].values.size();
    }
    const std::size_t ncorner = std::max<std::size_t>(1, corners.size());
    const std::size_t corner_digit = rest % ncorner;
    rest /= ncorner;

    if (!temps.empty())
        pt.temp_celsius = temps[rest];
    if (!corners.empty()) {
        pt.corner = corners[corner_digit].name;
        pt.overrides = corners[corner_digit].overrides;
    }
    // Axis values override a same-named corner parameter (finer knob).
    for (std::size_t a = 0; a < axes.size(); ++a)
        pt.overrides[axes[a].name] = axes[a].values[axis_digit[a]];
    return pt;
}

spice::parsed_netlist circuit_template::build(const grid_point& pt) const
{
    const spice::parse_options popt = pt.parse_options();
    if (!text.empty())
        return spice::parse_netlist(text, popt);
    if (path.empty())
        throw analysis_error("circuit template: neither netlist path nor text set");
    return spice::parse_netlist_file(path, popt);
}

param_grid grid_from_netlist_cards(const spice::parsed_netlist& net)
{
    param_grid grid;
    grid.temps = net.temp_values;
    for (const spice::corner_card& c : net.corners)
        grid.corners.push_back({c.name, c.overrides});
    return grid;
}

lease_ledger::lease_ledger(std::size_t total)
    : state_(total, point_state::pending), attempts_(total, 0), pending_(total)
{
}

void lease_ledger::check_index(std::size_t index) const
{
    if (index >= state_.size())
        throw analysis_error("lease ledger: point index " + std::to_string(index)
                             + " out of range (grid has " + std::to_string(state_.size())
                             + " points)");
}

std::size_t& lease_ledger::bucket(point_state s)
{
    switch (s) {
    case point_state::pending: return pending_;
    case point_state::leased: return leased_;
    case point_state::cooling: return cooling_;
    case point_state::done: return done_;
    case point_state::quarantined: return quarantined_;
    }
    return pending_; // unreachable
}

void lease_ledger::move(std::size_t index, point_state to)
{
    --bucket(state_[index]);
    state_[index] = to;
    ++bucket(to);
}

std::optional<point_lease> lease_ledger::grant(std::size_t limit)
{
    if (pending_ == 0 || limit == 0)
        return std::nullopt;
    while (cursor_ < state_.size() && state_[cursor_] != point_state::pending)
        ++cursor_;
    std::size_t begin = cursor_;
    if (begin == state_.size()) {
        // A released (retry) point sits below the cursor; scan for it.
        begin = 0;
        while (state_[begin] != point_state::pending)
            ++begin;
    }
    std::size_t end = begin;
    while (end < state_.size() && end - begin < limit
           && state_[end] == point_state::pending) {
        move(end, point_state::leased);
        ++end;
    }
    if (begin == cursor_)
        cursor_ = end;
    return point_lease{begin, end};
}

void lease_ledger::complete(std::size_t index)
{
    check_index(index);
    if (state_[index] == point_state::done)
        return;
    if (state_[index] == point_state::quarantined)
        throw analysis_error("lease ledger: point " + std::to_string(index)
                             + " completed after quarantine");
    move(index, point_state::done);
}

std::size_t lease_ledger::fail(std::size_t index)
{
    check_index(index);
    if (state_[index] != point_state::leased)
        throw analysis_error("lease ledger: failure reported for unleased point "
                             + std::to_string(index));
    move(index, point_state::cooling);
    return ++attempts_[index];
}

void lease_ledger::release(std::size_t index)
{
    check_index(index);
    if (state_[index] != point_state::cooling)
        throw analysis_error("lease ledger: release of a point that is not cooling: "
                             + std::to_string(index));
    move(index, point_state::pending);
    cursor_ = std::min(cursor_, index);
}

void lease_ledger::requeue(std::size_t index)
{
    check_index(index);
    if (state_[index] != point_state::leased)
        throw analysis_error("lease ledger: requeue of a point that is not leased: "
                             + std::to_string(index));
    move(index, point_state::pending);
    cursor_ = std::min(cursor_, index);
}

void lease_ledger::quarantine(std::size_t index)
{
    check_index(index);
    if (state_[index] == point_state::done)
        throw analysis_error("lease ledger: quarantine of a completed point "
                             + std::to_string(index));
    if (state_[index] == point_state::quarantined)
        return;
    move(index, point_state::quarantined);
}

void lease_ledger::reset_quarantined()
{
    for (std::size_t i = 0; i < state_.size(); ++i) {
        if (state_[i] != point_state::quarantined)
            continue;
        attempts_[i] = 0;
        move(i, point_state::pending);
        cursor_ = std::min(cursor_, i);
    }
}

std::size_t lease_ledger::attempts(std::size_t index) const
{
    check_index(index);
    return attempts_[index];
}

bool lease_ledger::is_done(std::size_t index) const
{
    check_index(index);
    return state_[index] == point_state::done;
}

bool lease_ledger::is_quarantined(std::size_t index) const
{
    check_index(index);
    return state_[index] == point_state::quarantined;
}

} // namespace acstab::core
