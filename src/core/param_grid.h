// Declarative parameter grids for corner/TEMP campaigns (the paper's
// "computer farm run capability").
//
// A param_grid is the cartesian product TEMP x corner x named `.param`
// axes; a grid_point is one fully decoded cell of that product, carrying
// everything needed to rebuild the circuit — a temperature override, a
// corner name and the merged `.param` override map. Both are plain value
// types: unlike the closure factories of the historical sweep API they
// serialize, so a campaign planned in one process can be executed shard
// by shard on independent processes (src/farm/) and merged
// deterministically by each point's stable global index.
#ifndef ACSTAB_CORE_PARAM_GRID_H
#define ACSTAB_CORE_PARAM_GRID_H

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "spice/parser/netlist_parser.h"

namespace acstab::core {

/// A named `.param` override set ("fast", "slow", "hot_weak", ...).
struct corner_def {
    std::string name;
    spice::parameter_table overrides;
};

/// One numeric `.param` axis of the grid.
struct param_axis {
    std::string name;
    std::vector<real> values;
};

/// One decoded grid cell. `index` is the point's stable global position
/// in the grid's row-major order; shard executors key their result
/// records on it so a merge reassembles the campaign deterministically.
struct grid_point {
    std::size_t index = 0;
    std::optional<real> temp_celsius;
    std::string corner; ///< empty = nominal (no corner axis)
    /// Merged overrides: corner values first, then param axes (an axis
    /// sharing a corner's parameter name wins — it is the finer knob).
    spice::parameter_table overrides;

    /// Human-readable cell descriptor ("T=27 corner=fast rload=1000").
    [[nodiscard]] std::string label() const;

    /// The parser-facing form of this point.
    [[nodiscard]] spice::parse_options parse_options() const;
};

/// Cartesian TEMP x corner x `.param` grid. Empty axes contribute a
/// single nominal value, so an all-empty grid has exactly one point.
/// Decode order is row-major with TEMP slowest, then corner, then the
/// param axes in declaration order (last axis fastest) — the global
/// point indices this defines are the contract shards and merges rely on.
struct param_grid {
    std::vector<real> temps;
    std::vector<corner_def> corners;
    std::vector<param_axis> axes;

    /// Number of grid points (>= 1; throws analysis_error on an axis with
    /// no values or a duplicate axis/corner name).
    [[nodiscard]] std::size_t size() const;

    /// Decode global point `index` into its cell.
    [[nodiscard]] grid_point point(std::size_t index) const;
};

/// A circuit rebuildable from a netlist plus a grid point: the value-typed
/// replacement for the closure factories (closures cannot cross process
/// boundaries; a path + override map can). Exactly one of `path` / `text`
/// is used: `text` when non-empty (hermetic tests), else `path`.
struct circuit_template {
    std::string path;
    std::string text;

    /// Parse the netlist with the point's overrides applied.
    [[nodiscard]] spice::parsed_netlist build(const grid_point& pt) const;
};

/// Build a param_grid from a parsed netlist's `.temp` / `.corner`
/// campaign cards (no param axes; add those from CLI flags).
[[nodiscard]] param_grid grid_from_netlist_cards(const spice::parsed_netlist& net);

/// A contiguous run of global point indices handed to one worker.
struct point_lease {
    std::size_t begin = 0;
    std::size_t end = 0; ///< exclusive
    [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
};

/// Work-stealing lease accounting over a grid's [0, total) index space.
///
/// The farm orchestrator grants small contiguous leases to whichever
/// worker is idle (adaptive points have wildly uneven cost, so fixed
/// contiguous slices strand slow shards behind fast ones) and feeds the
/// outcome of every point back in. The ledger is a pure state machine —
/// no clocks, no I/O — so retry backoff and journal persistence stay in
/// the orchestrator and the transition rules are unit-testable:
///
///   pending --grant--> leased --complete--> done
///                      leased --fail------> cooling (attempt recorded)
///                      cooling --release--> pending   (backoff expired)
///                      leased/cooling --quarantine--> quarantined
///
/// complete() is also accepted from the pending/cooling states so a
/// resume scan (or a record appended by a worker that died before its
/// acknowledgment arrived) can mark recovered work finished.
class lease_ledger {
public:
    explicit lease_ledger(std::size_t total);

    /// Lease up to `limit` contiguous pending points starting at the
    /// lowest pending index; nullopt when nothing is pending.
    [[nodiscard]] std::optional<point_lease> grant(std::size_t limit);

    /// Point finished (record durably appended). Allowed from any
    /// non-quarantined state; idempotent when already done.
    void complete(std::size_t index);
    /// Attempt failed (worker crash / timeout); moves the point to
    /// cooling and returns its cumulative attempt count.
    std::size_t fail(std::size_t index);
    /// Backoff expired: cooling -> pending, eligible for grant() again.
    void release(std::size_t index);
    /// A dead worker's lease points that it never started: leased ->
    /// pending with no attempt penalty (only the in-flight point fails).
    void requeue(std::size_t index);
    /// Retry budget exhausted; terminal until reset_quarantined().
    void quarantine(std::size_t index);
    /// Resume gives quarantined points a fresh chance: quarantined ->
    /// pending with the attempt counter cleared.
    void reset_quarantined();

    [[nodiscard]] std::size_t total() const noexcept { return state_.size(); }
    [[nodiscard]] std::size_t pending() const noexcept { return pending_; }
    [[nodiscard]] std::size_t leased() const noexcept { return leased_; }
    [[nodiscard]] std::size_t cooling() const noexcept { return cooling_; }
    [[nodiscard]] std::size_t done() const noexcept { return done_; }
    [[nodiscard]] std::size_t quarantined() const noexcept { return quarantined_; }
    /// Points not yet resolved (pending + leased + cooling).
    [[nodiscard]] std::size_t unresolved() const noexcept
    {
        return state_.size() - done_ - quarantined_;
    }
    [[nodiscard]] std::size_t attempts(std::size_t index) const;
    [[nodiscard]] bool is_done(std::size_t index) const;
    [[nodiscard]] bool is_quarantined(std::size_t index) const;

private:
    enum class point_state : unsigned char { pending, leased, cooling, done, quarantined };

    void check_index(std::size_t index) const;
    void move(std::size_t index, point_state to);
    [[nodiscard]] std::size_t& bucket(point_state s);

    std::vector<point_state> state_;
    std::vector<unsigned> attempts_;
    std::size_t cursor_ = 0; ///< lowest index that might still be pending
    std::size_t pending_ = 0;
    std::size_t leased_ = 0;
    std::size_t cooling_ = 0;
    std::size_t done_ = 0;
    std::size_t quarantined_ = 0;
};

} // namespace acstab::core

#endif // ACSTAB_CORE_PARAM_GRID_H
