#include "core/stability_plot.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "numeric/differentiation.h"
#include "numeric/interpolation.h"

namespace acstab::core {

std::vector<real> sweep_spec::frequencies() const
{
    if (!(fstart > 0.0) || !(fstop > fstart))
        throw analysis_error("sweep: need 0 < fstart < fstop");
    if (points_per_decade < 4)
        throw analysis_error("sweep: need at least 4 points per decade");
    // The canonical grid shared with the CLI and the adaptive driver's
    // anchor/output grids (numeric/interpolation.h).
    return numeric::log_grid(fstart, fstop, points_per_decade, 8);
}

const stability_peak* stability_plot::dominant_pole() const noexcept
{
    const stability_peak* best = nullptr;
    // Prefer normal peaks; fall back to flagged ones.
    for (const auto& pk : peaks) {
        if (pk.kind != peak_kind::complex_pole)
            continue;
        if (best == nullptr) {
            best = &pk;
            continue;
        }
        const bool best_normal = best->flag == peak_flag::normal;
        const bool pk_normal = pk.flag == peak_flag::normal;
        if (pk_normal != best_normal) {
            if (pk_normal)
                best = &pk;
            continue;
        }
        if (pk.value < best->value)
            best = &pk;
    }
    return best;
}

stability_plot compute_stability_plot(std::span<const real> freq_hz,
                                      std::span<const real> magnitude,
                                      const plot_options& opt)
{
    if (freq_hz.size() != magnitude.size())
        throw analysis_error("stability plot: frequency/magnitude size mismatch");
    if (freq_hz.size() < 8)
        throw analysis_error("stability plot: need at least 8 sweep points");
    for (std::size_t i = 1; i < freq_hz.size(); ++i)
        if (!(freq_hz[i] > freq_hz[i - 1]))
            throw analysis_error("stability plot: frequencies must be strictly increasing");

    stability_plot plot;
    // Coalesce near-duplicate frequencies before differentiating: the
    // curvature stencils divide by the squared spacing, so two samples a
    // hair apart (an adaptive union grid's output point brushing a solved
    // point) would turn last-ulp magnitude differences into huge spurious
    // P excursions. Uniform sweeps are orders of magnitude coarser than
    // the threshold and pass through untouched.
    const real min_sep = opt.min_separation_decades * std::log(real{10.0});
    plot.freq_hz.reserve(freq_hz.size());
    plot.magnitude.reserve(freq_hz.size());
    plot.freq_hz.push_back(freq_hz[0]);
    plot.magnitude.push_back(magnitude[0]);
    for (std::size_t i = 1; i < freq_hz.size(); ++i) {
        if (std::log(freq_hz[i] / plot.freq_hz.back()) < min_sep)
            continue;
        plot.freq_hz.push_back(freq_hz[i]);
        plot.magnitude.push_back(magnitude[i]);
    }
    if (plot.freq_hz.size() < 8)
        throw analysis_error("stability plot: need at least 8 distinct sweep points");

    plot.p = opt.use_direct_formula
        ? numeric::stability_function_direct(plot.freq_hz, plot.magnitude)
        : numeric::log_log_curvature(plot.freq_hz, plot.magnitude);

    const std::vector<real>& f = plot.freq_hz;
    const std::vector<real>& p = plot.p;
    const std::size_t n = p.size();
    // Boundary samples of the second derivative are copies; treat the two
    // points at each end as the boundary region.
    const std::size_t lo = 2;
    const std::size_t hi = n - 3;

    // Parabolic-refinement bracket around extremum i. On uniform grids
    // this is the classic (i-1, i, i+1); on non-uniform grids a neighbour
    // may sit far closer on one side (a refined cluster next to coarse
    // anchors), and a parabola through such lopsided arms locates the
    // extremum poorly — walk outward until the arms are within 4:1 in
    // log-frequency.
    const auto bracket = [&f, n](std::size_t i, std::size_t& il, std::size_t& ir) {
        il = i - 1;
        ir = i + 1;
        const auto lf = [&f](std::size_t j) { return std::log(f[j]); };
        // Iterate to a fixpoint: widening one arm can re-break the other
        // arm's 4:1 condition (e.g. a cluster on one side of a big gap).
        // il/ir move monotonically toward the ends, so this terminates.
        bool changed = true;
        while (changed) {
            changed = false;
            while (il > 0 && lf(i) - lf(il) < 0.25 * (lf(ir) - lf(i))) {
                --il;
                changed = true;
            }
            while (ir + 1 < n && lf(ir) - lf(i) < 0.25 * (lf(i) - lf(il))) {
                ++ir;
                changed = true;
            }
        }
    };

    bool found_pole = false;
    for (std::size_t i = lo; i <= hi; ++i) {
        const bool is_min = p[i] < p[i - 1] && p[i] <= p[i + 1];
        const bool is_max = p[i] > p[i - 1] && p[i] >= p[i + 1];
        if (!is_min && !is_max)
            continue;
        if ((is_min && p[i] < -opt.min_peak) || (is_max && p[i] > opt.min_peak)) {
            std::size_t il = 0;
            std::size_t ir = 0;
            bracket(i, il, ir);
            const auto ref = numeric::refine_extremum(std::log(f[il]), p[il], std::log(f[i]),
                                                      p[i], std::log(f[ir]), p[ir]);
            const peak_kind kind = is_min ? peak_kind::complex_pole : peak_kind::complex_zero;
            plot.peaks.push_back({kind, peak_flag::normal, std::exp(ref.x), ref.y, i});
            found_pole = found_pole || is_min;
        }
    }

    // Special cases (paper: "end-of-range" and "min/max" notices). When no
    // proper pole peak exists, report the most negative sample, flagged.
    if (!found_pole) {
        const auto it = std::min_element(p.begin(), p.end());
        const std::size_t i = static_cast<std::size_t>(it - p.begin());
        if (*it < -opt.min_peak) {
            const peak_flag flag
                = (i < lo || i > hi) ? peak_flag::end_of_range : peak_flag::min_max;
            plot.peaks.push_back({peak_kind::complex_pole, flag, f[i], *it, i});
        }
    }

    if (opt.suppress_pole_shoulders) {
        // A strong extremum of either sign is flanked by genuine opposite-
        // sign shoulders of its own curvature; drop the weak neighbours so
        // shoulders are not mis-reported as independent roots.
        std::vector<stability_peak> kept;
        kept.reserve(plot.peaks.size());
        for (const stability_peak& pk : plot.peaks) {
            bool shadowed = false;
            for (const stability_peak& other : plot.peaks) {
                if (other.kind == pk.kind)
                    continue;
                const real ratio = pk.freq_hz / other.freq_hz;
                if (ratio < 1.0 / opt.shoulder_span || ratio > opt.shoulder_span)
                    continue;
                if (std::fabs(other.value) >= opt.shoulder_ratio * std::fabs(pk.value)) {
                    shadowed = true;
                    break;
                }
            }
            if (!shadowed)
                kept.push_back(pk);
        }
        plot.peaks = std::move(kept);
    }

    std::sort(plot.peaks.begin(), plot.peaks.end(),
              [](const stability_peak& a, const stability_peak& b) {
                  return a.freq_hz < b.freq_hz;
              });
    return plot;
}

} // namespace acstab::core
