#include "core/stability_plot.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "numeric/differentiation.h"
#include "numeric/interpolation.h"

namespace acstab::core {

std::vector<real> sweep_spec::frequencies() const
{
    if (!(fstart > 0.0) || !(fstop > fstart))
        throw analysis_error("sweep: need 0 < fstart < fstop");
    if (points_per_decade < 4)
        throw analysis_error("sweep: need at least 4 points per decade");
    const real decades = std::log10(fstop / fstart);
    const std::size_t n = std::max<std::size_t>(
        8, static_cast<std::size_t>(std::ceil(decades * static_cast<real>(points_per_decade)))
            + 1);
    return numeric::log_space(fstart, fstop, n);
}

const stability_peak* stability_plot::dominant_pole() const noexcept
{
    const stability_peak* best = nullptr;
    // Prefer normal peaks; fall back to flagged ones.
    for (const auto& pk : peaks) {
        if (pk.kind != peak_kind::complex_pole)
            continue;
        if (best == nullptr) {
            best = &pk;
            continue;
        }
        const bool best_normal = best->flag == peak_flag::normal;
        const bool pk_normal = pk.flag == peak_flag::normal;
        if (pk_normal != best_normal) {
            if (pk_normal)
                best = &pk;
            continue;
        }
        if (pk.value < best->value)
            best = &pk;
    }
    return best;
}

stability_plot compute_stability_plot(std::span<const real> freq_hz,
                                      std::span<const real> magnitude,
                                      const plot_options& opt)
{
    if (freq_hz.size() != magnitude.size())
        throw analysis_error("stability plot: frequency/magnitude size mismatch");
    if (freq_hz.size() < 8)
        throw analysis_error("stability plot: need at least 8 sweep points");

    stability_plot plot;
    plot.freq_hz.assign(freq_hz.begin(), freq_hz.end());
    plot.magnitude.assign(magnitude.begin(), magnitude.end());
    plot.p = opt.use_direct_formula
        ? numeric::stability_function_direct(freq_hz, magnitude)
        : numeric::log_log_curvature(freq_hz, magnitude);

    const std::vector<real>& p = plot.p;
    const std::size_t n = p.size();
    // Boundary samples of the second derivative are copies; treat the two
    // points at each end as the boundary region.
    const std::size_t lo = 2;
    const std::size_t hi = n - 3;

    bool found_pole = false;
    for (std::size_t i = lo; i <= hi; ++i) {
        const bool is_min = p[i] < p[i - 1] && p[i] <= p[i + 1];
        const bool is_max = p[i] > p[i - 1] && p[i] >= p[i + 1];
        if (!is_min && !is_max)
            continue;
        if (is_min && p[i] < -opt.min_peak) {
            const auto ref = numeric::refine_extremum(
                std::log(freq_hz[i - 1]), p[i - 1], std::log(freq_hz[i]), p[i],
                std::log(freq_hz[i + 1]), p[i + 1]);
            plot.peaks.push_back({peak_kind::complex_pole, peak_flag::normal,
                                  std::exp(ref.x), ref.y, i});
            found_pole = true;
        } else if (is_max && p[i] > opt.min_peak) {
            const auto ref = numeric::refine_extremum(
                std::log(freq_hz[i - 1]), p[i - 1], std::log(freq_hz[i]), p[i],
                std::log(freq_hz[i + 1]), p[i + 1]);
            plot.peaks.push_back({peak_kind::complex_zero, peak_flag::normal,
                                  std::exp(ref.x), ref.y, i});
        }
    }

    // Special cases (paper: "end-of-range" and "min/max" notices). When no
    // proper pole peak exists, report the most negative sample, flagged.
    if (!found_pole) {
        const auto it = std::min_element(p.begin(), p.end());
        const std::size_t i = static_cast<std::size_t>(it - p.begin());
        if (*it < -opt.min_peak) {
            const peak_flag flag
                = (i < lo || i > hi) ? peak_flag::end_of_range : peak_flag::min_max;
            plot.peaks.push_back({peak_kind::complex_pole, flag, freq_hz[i], *it, i});
        }
    }

    if (opt.suppress_pole_shoulders) {
        // A strong extremum of either sign is flanked by genuine opposite-
        // sign shoulders of its own curvature; drop the weak neighbours so
        // shoulders are not mis-reported as independent roots.
        std::vector<stability_peak> kept;
        kept.reserve(plot.peaks.size());
        for (const stability_peak& pk : plot.peaks) {
            bool shadowed = false;
            for (const stability_peak& other : plot.peaks) {
                if (other.kind == pk.kind)
                    continue;
                const real ratio = pk.freq_hz / other.freq_hz;
                if (ratio < 1.0 / opt.shoulder_span || ratio > opt.shoulder_span)
                    continue;
                if (std::fabs(other.value) >= opt.shoulder_ratio * std::fabs(pk.value)) {
                    shadowed = true;
                    break;
                }
            }
            if (!shadowed)
                kept.push_back(pk);
        }
        plot.peaks = std::move(kept);
    }

    std::sort(plot.peaks.begin(), plot.peaks.end(),
              [](const stability_peak& a, const stability_peak& b) {
                  return a.freq_hz < b.freq_hz;
              });
    return plot;
}

} // namespace acstab::core
