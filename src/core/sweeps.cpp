#include "core/sweeps.h"

#include <cstdio>
#include <sstream>

#include "engine/sweep_engine.h"
#include "spice/units.h"

namespace acstab::core {

std::vector<grid_point_result>
sweep_stability_grid(const grid_circuit_factory& factory, const param_grid& grid,
                     std::size_t begin, std::size_t end, const stability_options& opt)
{
    const std::size_t total = grid.size();
    if (begin > end || end > total)
        throw analysis_error("sweep grid: bad point range [" + std::to_string(begin) + ", "
                             + std::to_string(end) + ") of " + std::to_string(total));

    // Points run concurrently on the shared pool; the per-point analysis
    // is forced serial so a corner farm of cheap points does not fight
    // the frequency-level parallelism for cores.
    stability_options point_opt = opt;
    point_opt.threads = 1;

    std::vector<grid_point_result> out(end - begin);
    engine::sweep_engine_options eopt;
    eopt.threads = opt.threads;
    const engine::sweep_engine eng(eopt);
    eng.for_each(end - begin, [&](std::size_t i) {
        grid_point_result& res = out[i];
        res.point = grid.point(begin + i);
        spice::circuit c;
        std::string node;
        try {
            node = factory(c, res.point);
            res.node.node = node;
            stability_analyzer an(c, point_opt);
            res.node = an.analyze_node(node);
        } catch (const convergence_error& e) {
            res.status = point_status::dc_failed;
            res.error = e.what();
            res.node = node_stability{};
            res.node.node = node;
        } catch (const error& e) {
            // Any other per-point failure — a singular matrix at a
            // pathological corner, a parse error from an override — is
            // recorded so the rest of the campaign survives.
            res.status = point_status::analysis_failed;
            res.error = e.what();
            res.node = node_stability{};
            res.node.node = node;
        }
    });
    return out;
}

std::vector<grid_point_result> sweep_stability_grid(const grid_circuit_factory& factory,
                                                    const param_grid& grid,
                                                    const stability_options& opt)
{
    return sweep_stability_grid(factory, grid, 0, grid.size(), opt);
}

std::vector<grid_point_result> sweep_stability_grid(const circuit_template& tmpl,
                                                    const std::string& node,
                                                    const param_grid& grid,
                                                    const stability_options& opt)
{
    return sweep_stability_grid(
        [&tmpl, &node](spice::circuit& c, const grid_point& pt) {
            c = std::move(tmpl.build(pt).ckt);
            return node;
        },
        grid, opt);
}

std::vector<sweep_point_result>
sweep_stability(const std::function<std::string(spice::circuit&, real)>& factory,
                const std::vector<real>& parameter_values, const stability_options& opt)
{
    if (parameter_values.empty())
        return {};

    // The swept values become a single anonymous grid axis; the grid
    // runner supplies the per-point dispatch and error capture.
    param_grid grid;
    grid.axes.push_back({"value", parameter_values});
    const std::vector<grid_point_result> res = sweep_stability_grid(
        [&factory](spice::circuit& c, const grid_point& pt) {
            return factory(c, pt.overrides.at("value"));
        },
        grid, opt);

    std::vector<sweep_point_result> out(res.size());
    for (std::size_t i = 0; i < res.size(); ++i) {
        out[i].parameter = parameter_values[i];
        out[i].node = res[i].node;
        out[i].status = res[i].status;
        out[i].error = res[i].error;
        out[i].dc_converged = res[i].status != point_status::dc_failed;
    }
    return out;
}

std::string format_sweep(const std::vector<sweep_point_result>& points,
                         const std::string& parameter_name)
{
    std::ostringstream os;
    os << parameter_name << "        fn            peak        zeta     est. PM\n";
    os << "------------------------------------------------------------------\n";
    for (const sweep_point_result& p : points) {
        char line[200];
        if (p.status == point_status::dc_failed) {
            std::snprintf(line, sizeof line, "%-12.4g (DC did not converge)\n", p.parameter);
        } else if (p.status == point_status::analysis_failed) {
            std::snprintf(line, sizeof line, "%-12.4g (analysis failed: %.120s)\n",
                          p.parameter, p.error.c_str());
        } else if (p.status == point_status::quarantined) {
            std::snprintf(line, sizeof line, "%-12.4g (quarantined: %.120s)\n",
                          p.parameter, p.error.c_str());
        } else if (!p.node.has_peak) {
            std::snprintf(line, sizeof line, "%-12.4g (no complex-pole peak)\n", p.parameter);
        } else {
            std::snprintf(line, sizeof line, "%-12.4g %-12s %10.3f  %7.3f  %7.1f deg\n",
                          p.parameter,
                          spice::format_frequency(p.node.dominant.freq_hz).c_str(),
                          p.node.dominant.value, p.node.zeta, p.node.phase_margin_est_deg);
        }
        os << line;
    }
    return os.str();
}

} // namespace acstab::core
