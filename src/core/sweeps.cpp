#include "core/sweeps.h"

#include <cstdio>
#include <sstream>

#include "engine/sweep_engine.h"
#include "spice/units.h"

namespace acstab::core {

std::vector<sweep_point_result>
sweep_stability(const std::function<std::string(spice::circuit&, real)>& factory,
                const std::vector<real>& parameter_values, const stability_options& opt)
{
    // Points run concurrently on the shared pool; the per-point analysis
    // is forced serial so a corner farm of cheap points does not fight
    // the frequency-level parallelism for cores.
    stability_options point_opt = opt;
    point_opt.threads = 1;

    std::vector<sweep_point_result> out(parameter_values.size());
    engine::sweep_engine_options eopt;
    eopt.threads = opt.threads;
    const engine::sweep_engine eng(eopt);
    eng.for_each(parameter_values.size(), [&](std::size_t i) {
        sweep_point_result& point = out[i];
        point.parameter = parameter_values[i];
        spice::circuit c;
        const std::string node = factory(c, parameter_values[i]);
        try {
            stability_analyzer an(c, point_opt);
            point.node = an.analyze_node(node);
        } catch (const convergence_error&) {
            point.dc_converged = false;
            point.node.node = node;
        }
    });
    return out;
}

std::string format_sweep(const std::vector<sweep_point_result>& points,
                         const std::string& parameter_name)
{
    std::ostringstream os;
    os << parameter_name << "        fn            peak        zeta     est. PM\n";
    os << "------------------------------------------------------------------\n";
    for (const sweep_point_result& p : points) {
        char line[160];
        if (!p.dc_converged) {
            std::snprintf(line, sizeof line, "%-12.4g (DC did not converge)\n", p.parameter);
        } else if (!p.node.has_peak) {
            std::snprintf(line, sizeof line, "%-12.4g (no complex-pole peak)\n", p.parameter);
        } else {
            std::snprintf(line, sizeof line, "%-12.4g %-12s %10.3f  %7.3f  %7.1f deg\n",
                          p.parameter,
                          spice::format_frequency(p.node.dominant.freq_hz).c_str(),
                          p.node.dominant.value, p.node.zeta, p.node.phase_margin_est_deg);
        }
        os << line;
    }
    return os.str();
}

} // namespace acstab::core
