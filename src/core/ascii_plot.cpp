#include "core/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <vector>

#include "common/error.h"

namespace acstab::core {

std::string ascii_plot(std::span<const real> x, std::span<const real> y,
                       const ascii_plot_options& opt)
{
    if (x.size() != y.size() || x.size() < 2)
        throw analysis_error("ascii_plot: need matching series of >= 2 points");
    const int w = std::max(16, opt.width);
    const int h = std::max(6, opt.height);

    std::vector<real> xs(x.begin(), x.end());
    if (opt.log_x)
        for (real& v : xs) {
            if (!(v > 0.0))
                throw analysis_error("ascii_plot: log axis needs positive x");
            v = std::log10(v);
        }

    const real xmin = *std::min_element(xs.begin(), xs.end());
    const real xmax = *std::max_element(xs.begin(), xs.end());
    real ymin = *std::min_element(y.begin(), y.end());
    real ymax = *std::max_element(y.begin(), y.end());
    if (ymax == ymin) {
        ymax += 1.0;
        ymin -= 1.0;
    }
    const real xspan = xmax > xmin ? xmax - xmin : 1.0;
    const real yspan = ymax - ymin;

    std::vector<std::string> grid(static_cast<std::size_t>(h),
                                  std::string(static_cast<std::size_t>(w), ' '));
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const int col = static_cast<int>(std::lround((xs[i] - xmin) / xspan
                                                     * static_cast<real>(w - 1)));
        const int row = static_cast<int>(std::lround((y[i] - ymin) / yspan
                                                     * static_cast<real>(h - 1)));
        grid[static_cast<std::size_t>(h - 1 - row)][static_cast<std::size_t>(col)] = '*';
    }

    std::ostringstream os;
    if (!opt.title.empty())
        os << opt.title << '\n';
    char label[32];
    for (int r = 0; r < h; ++r) {
        if (r == 0)
            std::snprintf(label, sizeof label, "%10.3g |", ymax);
        else if (r == h - 1)
            std::snprintf(label, sizeof label, "%10.3g |", ymin);
        else
            std::snprintf(label, sizeof label, "%10s |", "");
        os << label << grid[static_cast<std::size_t>(r)] << '\n';
    }
    os << std::string(11, ' ') << '+' << std::string(static_cast<std::size_t>(w), '-') << '\n';
    std::snprintf(label, sizeof label, "%.3g", opt.log_x ? std::pow(10.0, xmin) : xmin);
    std::string footer = std::string(12, ' ') + label;
    std::snprintf(label, sizeof label, "%.3g", opt.log_x ? std::pow(10.0, xmax) : xmax);
    const std::string right(label);
    const std::size_t pad = 12 + static_cast<std::size_t>(w) > footer.size() + right.size()
        ? 12 + static_cast<std::size_t>(w) - footer.size() - right.size()
        : 1;
    footer += std::string(pad, ' ') + right;
    os << footer << '\n';
    return os.str();
}

} // namespace acstab::core
