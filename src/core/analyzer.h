// The stability analysis tool (paper sections 2, 4, 6).
//
// Single-node mode attaches an AC current stimulus to the selected node —
// without modifying anything else — sweeps it over frequency, and builds
// the node's stability plot with an estimated phase margin.
//
// All-nodes mode evaluates every circuit node. Both modes run through the
// unified sweep engine (src/engine/): devices are linearized once into a
// G + jwC snapshot, the complex MNA matrix is factored once per frequency
// and back-solved with one unit-current right-hand side per node — which
// is algebraically identical to the paper's one-simulation-per-node loop
// but orders of magnitude faster — and frequencies are distributed over
// the shared persistent thread pool (the paper lists "computer farm run
// capability" as future work).
#ifndef ACSTAB_CORE_ANALYZER_H
#define ACSTAB_CORE_ANALYZER_H

#include <optional>
#include <string>
#include <vector>

#include "core/stability_plot.h"
#include "engine/sweep_engine.h"
#include "spice/circuit.h"
#include "spice/dc_analysis.h"
#include "spice/mna.h"

namespace acstab::core {

struct stability_options {
    sweep_spec sweep;
    plot_options plot;
    /// AC stimulus magnitude [A]. The analysis is linear, so this only
    /// scales the response; 1 A keeps |V| = |Z| directly.
    real stimulus_amps = 1.0;
    spice::solver_kind solver = spice::solver_kind::sparse;
    real gmin = 1e-12;
    /// Node-to-ground regularization so driving-point impedances of
    /// capacitively floating nodes stay finite.
    real gshunt = 1e-9;
    /// Worker threads for the frequency sweeps (1 = serial, 0 = all
    /// hardware threads).
    std::size_t threads = 1;
    /// Adaptive frequency grid (engine/adaptive_sweep): solve a coarse
    /// anchor grid, fit a barycentric rational model, factor-and-solve
    /// only where the model fails a backward-error check, and evaluate
    /// the dense output grid from the model. Margins stay within
    /// tolerance of the dense sweep at a fraction of the factorizations.
    bool adaptive = false;
    /// Relative backward-error tolerance of the adaptive model.
    real fit_tol = 1e-6;
    /// Anchor density of the adaptive sweep's always-solved coarse grid.
    std::size_t anchors_per_decade = 4;
    /// Skip nodes held by ideal voltage sources (their impedance is 0).
    bool skip_forced_nodes = true;
    /// Relative natural-frequency tolerance when grouping nodes into loops.
    real group_rel_tol = 0.12;
    /// Sparse-solver tuning (column ordering, SIMD batch kernel,
    /// warm-started refactorization) forwarded to the sweep engine.
    engine::solver_tuning tuning;
    /// Options for the underlying operating-point solve.
    spice::dc_options dc;
};

/// Stability result for one node.
struct node_stability {
    std::string node;
    stability_plot plot;
    bool has_peak = false;       ///< a complex-pole signature was found
    stability_peak dominant;     ///< valid when has_peak
    /// True when the dominant peak is a proper under-damped complex-pole
    /// signature (normal flag, |P| > 1 i.e. zeta < 1); only then are the
    /// margin estimates below meaningful.
    bool is_underdamped = false;
    real zeta = 0.0;             ///< damping ratio from eq. (1.4)
    real phase_margin_est_deg = 0.0; ///< paper's rule-of-thumb estimate
    real overshoot_est_pct = 0.0;    ///< equivalent step overshoot
};

/// Nodes clustered by natural frequency ("Loop at 3.3 MHz", Table 2).
struct loop_group {
    real freq_hz = 0.0;               ///< representative natural frequency
    std::vector<std::size_t> members; ///< indices into stability_report::nodes
};

struct stability_report {
    std::vector<node_stability> nodes; ///< sorted by natural frequency
    std::vector<loop_group> loops;
    std::vector<std::string> skipped_nodes; ///< source-forced, not analyzed
    /// LU factorizations the sweep performed (the fixed grid factors one
    /// per grid point; the adaptive path usually far fewer).
    std::size_t factorizations = 0;
};

class stability_analyzer {
public:
    explicit stability_analyzer(spice::circuit& c, stability_options opt = {});

    [[nodiscard]] const stability_options& options() const noexcept { return opt_; }
    [[nodiscard]] spice::circuit& circuit() noexcept { return circuit_; }

    /// DC operating point, solved once and cached.
    const std::vector<real>& operating_point();

    /// "Single Node" run mode: stimulus attached to the named node.
    [[nodiscard]] node_stability analyze_node(const std::string& node_name);

    /// "All Nodes" run mode with loop grouping.
    [[nodiscard]] stability_report analyze_all_nodes();

    /// Invalidate the cached operating point after circuit edits.
    void invalidate_operating_point() noexcept { op_.reset(); }

private:
    [[nodiscard]] node_stability make_node_result(std::string node_name,
                                                  std::vector<real> freqs,
                                                  std::vector<real> magnitude) const;

    spice::circuit& circuit_;
    stability_options opt_;
    std::optional<spice::dc_result> op_;
};

/// Group nodes with pole peaks into loops by natural-frequency proximity.
[[nodiscard]] std::vector<loop_group> group_loops(const std::vector<node_stability>& nodes,
                                                  real rel_tol);

} // namespace acstab::core

#endif // ACSTAB_CORE_ANALYZER_H
