#include "core/tran_stability.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "analysis/transient_overshoot.h"
#include "common/error.h"
#include "core/second_order.h"
#include "spice/devices/sources.h"
#include "spice/measure.h"
#include "spice/waveform_spec.h"

namespace acstab::core {

namespace {

    constexpr const char* injection_name = "tran_stability_injection";

    /// Indices of the alternating ring extrema of d(t) = y - final after
    /// the step onset.
    [[nodiscard]] std::vector<std::size_t> ring_extrema(const std::vector<real>& t,
                                                        const std::vector<real>& y,
                                                        real final_v, real t_on)
    {
        std::vector<std::size_t> ext;
        for (std::size_t i = 1; i + 1 < y.size(); ++i) {
            if (t[i] <= t_on)
                continue;
            const real d0 = y[i - 1] - final_v;
            const real d1 = y[i] - final_v;
            const real d2 = y[i + 1] - final_v;
            const bool max_above = d1 > 0.0 && d1 >= d0 && d1 >= d2;
            const bool min_below = d1 < 0.0 && d1 <= d0 && d1 <= d2;
            if ((max_above || min_below) && (ext.empty() || ext.back() + 1 < i))
                ext.push_back(i);
        }
        return ext;
    }

    /// Mean logarithmic decrement over same-side extrema pairs (one full
    /// ring period apart); nullopt when no usable pair exists.
    [[nodiscard]] std::optional<real> log_decrement(const std::vector<std::size_t>& ext,
                                                    const std::vector<real>& y, real final_v,
                                                    real floor_abs)
    {
        real sum = 0.0;
        std::size_t count = 0;
        for (std::size_t k = 0; k + 2 < ext.size(); ++k) {
            const real a = std::fabs(y[ext[k]] - final_v);
            const real b = std::fabs(y[ext[k + 2]] - final_v);
            if (a <= floor_abs || b <= floor_abs)
                continue;
            sum += std::log(a / b);
            ++count;
        }
        if (count == 0)
            return std::nullopt;
        return sum / static_cast<real>(count);
    }

} // namespace

tran_stability_result measure_tran_stability(spice::circuit& c, const std::string& node,
                                             const tran_stability_options& opt)
{
    if (!(opt.tstop > 0.0))
        throw analysis_error("transient stability: tstop must be positive");
    c.finalize();
    if (!c.find_node(node))
        throw analysis_error("transient stability: unknown node '" + node + "'");

    const real dt_eff = opt.dt > 0.0 ? opt.dt : opt.tstop / 4000.0;
    const real delay = opt.step_delay > 0.0 ? opt.step_delay : opt.tstop / 20.0;
    const real rise = dt_eff;

    // Install the stimulus: pulse the named element, or inject a current
    // step into the watched node (the time-domain analog of the AC
    // analysis' per-node stimulus) when none is named.
    spice::vsource* vs = nullptr;
    spice::isource* is = nullptr;
    std::optional<spice::waveform_spec> saved;
    if (!opt.source.empty()) {
        spice::device* dev = c.find_device(opt.source);
        if (!dev)
            throw analysis_error("transient stability: unknown source element '" + opt.source
                                 + "'");
        vs = dynamic_cast<spice::vsource*>(dev);
        is = dynamic_cast<spice::isource*>(dev);
        if (!vs && !is)
            throw analysis_error("transient stability: element '" + opt.source
                                 + "' is not a voltage or current source");
        saved = vs ? vs->spec() : is->spec();
        const auto step
            = spice::waveform_spec::make_step(saved->dc, saved->dc + opt.step_size, delay, rise);
        if (vs)
            vs->set_spec(step);
        else
            is->set_spec(step);
    } else {
        if (c.find_device(injection_name))
            throw analysis_error(std::string("transient stability: element name '")
                                 + injection_name + "' is already taken");
        const spice::node_id target = c.node(node);
        c.add<spice::isource>(injection_name, spice::ground_node, target,
                              spice::waveform_spec::make_step(0.0, opt.step_size, delay, rise));
    }
    const auto restore = [&] {
        if (saved) {
            if (vs)
                vs->set_spec(*saved);
            else
                is->set_spec(*saved);
        } else {
            c.remove_device(injection_name);
        }
    };

    analysis::step_response_metrics m;
    try {
        analysis::step_options sopt;
        sopt.tstop = opt.tstop;
        sopt.dt = dt_eff;
        sopt.tran = opt.tran;
        m = analysis::measure_step_response(c, node, sopt);
    } catch (...) {
        restore();
        throw;
    }
    restore();

    const std::vector<real> y = spice::node_waveform(c, m.raw, node);
    const std::vector<real>& tv = m.raw.time;

    tran_stability_result r;
    r.overshoot_pct = m.overshoot_pct;
    r.ringing_freq_hz = m.ringing_freq_hz;
    r.settling_time_s = m.settling_time_s;
    r.final_value = m.final_value;
    r.solver = m.raw.solver;
    r.ringing = m.ringing_freq_hz > 0.0;

    bool finite = true;
    for (const real v : y)
        if (!std::isfinite(v))
            finite = false;

    // Envelope statistics of the post-step deviation.
    const real swing = m.final_value - m.initial_value;
    const real t_tail = opt.tstop - 0.25 * (opt.tstop - delay);
    real dev_max = 0.0;
    real tail_max = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) {
        if (tv[i] <= delay)
            continue;
        const real d = std::fabs(y[i] - m.final_value);
        dev_max = std::max(dev_max, d);
        if (tv[i] >= t_tail)
            tail_max = std::max(tail_max, d);
    }
    const real ref = std::max(std::fabs(swing), dev_max);

    // Damping estimate: overshoot inversion when the step has usable
    // swing, logarithmic decrement of the ring envelope otherwise. The
    // swing must carry the response (a band-pass node — e.g. an inductor
    // shorting the step at DC — settles back to its start, leaving a
    // numerically tiny swing that would turn the overshoot ratio into
    // noise), so it is measured against the deviation envelope.
    const bool swing_usable = std::fabs(swing) > 0.05 * dev_max;
    if (finite) {
        if (swing_usable && m.overshoot_pct > 0.1) {
            r.zeta = zeta_from_overshoot(m.overshoot_pct);
        } else if (r.ringing) {
            const auto ext = ring_extrema(tv, y, m.final_value, delay);
            const auto delta = log_decrement(ext, y, m.final_value, 1e-3 * dev_max);
            if (delta)
                r.zeta = zeta_from_log_decrement(*delta);
            else
                r.zeta = tail_max <= 0.5 * dev_max ? 1.0 : 0.0;
        }
    } else {
        r.zeta = 0.0;
    }
    r.equiv_pm_deg = std::min(phase_margin_rule_deg(r.zeta), 90.0);

    r.stable = finite
        && (dev_max == 0.0 || tail_max <= std::max(0.5 * dev_max, 0.02 * ref));

    // Decimated waveform for farm records.
    const std::size_t n = tv.size();
    if (n > 0) {
        const std::size_t stride
            = n <= opt.max_points ? 1 : (n + opt.max_points - 1) / opt.max_points;
        for (std::size_t i = 0; i < n; i += stride) {
            r.time.push_back(tv[i]);
            r.value.push_back(y[i]);
        }
        if (r.time.back() != tv.back()) {
            r.time.push_back(tv.back());
            r.value.push_back(y.back());
        }
    }
    return r;
}

} // namespace acstab::core
