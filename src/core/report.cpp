#include "core/report.h"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <unordered_map>

#include "spice/units.h"

namespace acstab::core {

namespace {

    [[nodiscard]] const char* flag_note(peak_flag flag)
    {
        switch (flag) {
        case peak_flag::normal: return "";
        case peak_flag::end_of_range: return "  [end-of-range: widen sweep]";
        case peak_flag::min_max: return "  [min/max: no bracketed peak]";
        }
        return "";
    }

} // namespace

std::string format_all_nodes_report(const stability_report& report)
{
    std::ostringstream os;
    os << "Stability Plot peak values for all circuit nodes sorted by loop's "
          "natural frequency\n";
    os << "---------------------------------------------------------------"
          "---------------\n";
    os << "Node              Stability Peak    Natural Frequency    Est. PM\n";

    for (const loop_group& loop : report.loops) {
        os << "-- Loop at " << spice::format_frequency(loop.freq_hz) << " --\n";
        for (const std::size_t idx : loop.members) {
            const node_stability& ns = report.nodes[idx];
            char pm[32];
            if (ns.is_underdamped)
                std::snprintf(pm, sizeof pm, "%5.1f deg", ns.phase_margin_est_deg);
            else
                std::snprintf(pm, sizeof pm, "%8s", "-");
            char line[160];
            std::snprintf(line, sizeof line, "%-18s%-18.6f%-21s%s%s\n", ns.node.c_str(),
                          std::fabs(ns.dominant.value),
                          spice::format_frequency(ns.dominant.freq_hz).c_str(), pm,
                          flag_note(ns.dominant.flag));
            os << line;
        }
    }

    bool header_done = false;
    for (const node_stability& ns : report.nodes) {
        if (ns.has_peak)
            continue;
        if (!header_done) {
            os << "-- Nodes without complex-pole signature --\n";
            header_done = true;
        }
        os << ns.node << '\n';
    }
    if (!report.skipped_nodes.empty()) {
        os << "-- Skipped (voltage-source forced) --\n";
        for (const std::string& n : report.skipped_nodes)
            os << n << '\n';
    }
    return os.str();
}

std::string format_node_summary(const node_stability& ns)
{
    std::ostringstream os;
    os << "Node " << ns.node << ":\n";
    if (!ns.has_peak) {
        os << "  no complex-pole signature found in the sweep range\n";
        return os.str();
    }
    os << "  performance index : " << ns.dominant.value << flag_note(ns.dominant.flag) << "\n";
    os << "  natural frequency : " << spice::format_frequency(ns.dominant.freq_hz) << "\n";
    os << "  damping ratio     : " << ns.zeta << "\n";
    os << "  est. phase margin : " << ns.phase_margin_est_deg << " deg\n";
    os << "  est. overshoot    : " << ns.overshoot_est_pct << " %\n";
    if (ns.plot.peaks.size() > 1) {
        os << "  all peaks:\n";
        for (const stability_peak& pk : ns.plot.peaks) {
            os << "    " << (pk.kind == peak_kind::complex_pole ? "pole" : "zero") << " at "
               << spice::format_frequency(pk.freq_hz) << "  P = " << pk.value
               << flag_note(pk.flag) << "\n";
        }
    }
    return os.str();
}

std::string format_csv(const stability_report& report)
{
    std::ostringstream os;
    os << "node,peak,natural_frequency_hz,zeta,phase_margin_deg,overshoot_pct,flag\n";
    for (const node_stability& ns : report.nodes) {
        if (!ns.has_peak) {
            os << ns.node << ",,,,,,none\n";
            continue;
        }
        const char* flag = ns.dominant.flag == peak_flag::normal
            ? "normal"
            : (ns.dominant.flag == peak_flag::end_of_range ? "end-of-range" : "min-max");
        os << ns.node << ',' << ns.dominant.value << ',' << ns.dominant.freq_hz << ','
           << ns.zeta << ',' << ns.phase_margin_est_deg << ',' << ns.overshoot_est_pct << ','
           << flag << '\n';
    }
    return os.str();
}

std::string annotate_circuit(const spice::circuit& c, const stability_report& report)
{
    std::unordered_map<std::string, const node_stability*> by_node;
    for (const node_stability& ns : report.nodes)
        by_node.emplace(ns.node, &ns);

    std::ostringstream os;
    os << "Annotated circuit (stability values at each node)\n";
    for (const auto& dev : c.devices()) {
        os << dev->type_name() << ' ' << dev->name() << " (";
        bool first = true;
        for (const spice::node_id n : dev->nodes()) {
            if (!first)
                os << ", ";
            first = false;
            const std::string& name = c.node_name(n);
            os << name;
            const auto it = by_node.find(name);
            if (it != by_node.end() && it->second->has_peak) {
                os << "[P=" << it->second->dominant.value << " @ "
                   << spice::format_frequency(it->second->dominant.freq_hz) << "]";
            }
        }
        os << ")\n";
    }
    return os.str();
}

std::string format_impedance_summary(const analysis::impedance_result& res)
{
    std::ostringstream os;
    const auto list = [&os](const std::vector<std::string>& names) {
        for (std::size_t i = 0; i < names.size(); ++i)
            os << (i == 0 ? "" : " ") << names[i];
    };
    os << "Impedance partition at node '" << res.partition.node << "'\n";
    os << "  source side       : ";
    list(res.partition.source_devices);
    os << "\n  load side         : ";
    list(res.partition.load_devices);
    os << "\n  minor-loop gain   : L_m = Z_source / Z_load over "
       << spice::format_frequency(res.freq_hz.front()) << " .. "
       << spice::format_frequency(res.freq_hz.back()) << " (" << res.freq_hz.size()
       << " points, " << res.factorizations << " factorizations)\n";
    os << "  encirclements of -1 : " << res.encirclements << "\n";
    os << "  closest approach    : |1 + L_m| = " << res.nyquist_margin << " at "
       << spice::format_frequency(res.nyquist_margin_freq_hz) << "\n";
    if (res.margins.has_unity_crossing)
        os << "  minor-loop margin   : " << res.margins.phase_margin_deg
           << " deg of phase at |L_m| = 1 ("
           << spice::format_frequency(res.margins.unity_freq_hz) << ")\n";
    else
        os << "  minor-loop margin   : |L_m| never crosses 1\n";
    if (res.margins.has_phase_crossing)
        os << "  minor-loop gain margin : " << res.margins.gain_margin_db << " dB at "
           << spice::format_frequency(res.margins.phase_cross_freq_hz) << "\n";
    os << "  verdict             : "
       << (res.stable ? "STABLE (no encirclements)" : "UNSTABLE (net encirclements of -1)")
       << "\n";
    if (res.has_model) {
        os << "  rational model      : order " << res.model_order << ", fit error "
           << res.model_fit_error << "\n";
        if (res.closed_loop_poles.empty()) {
            os << "  closed-loop estimate: no poles resolved inside the band\n";
        } else {
            os << "  closed-loop pole estimates (from the fitted L_m):\n";
            for (const analysis::pole& p : res.closed_loop_poles) {
                char line[160];
                std::snprintf(line, sizeof line,
                              "    f = %-12s zeta = %8.4f  %s\n",
                              spice::format_frequency(p.freq_hz).c_str(), p.zeta,
                              p.zeta < 0.0 ? "(RIGHT half plane)" : "");
                os << line;
            }
        }
    }
    return os.str();
}

std::string format_impedance_crosscheck(const analysis::impedance_result& res,
                                        bool reference_stable,
                                        const std::string& reference_name)
{
    std::ostringstream os;
    os << "Cross-check: " << reference_name << " says "
       << (reference_stable ? "STABLE" : "UNSTABLE") << "; impedance criterion "
       << (res.stable == reference_stable ? "AGREES" : "DISAGREES") << ".\n";
    return os.str();
}

} // namespace acstab::core
