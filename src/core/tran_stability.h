// Time-domain stability measurement — the transient side of the paper's
// Fig. 2 cross-check.
//
// Drives a small step stimulus (through a named source element, or as a
// current step injected into the watched node when the netlist has no
// source — the transient analog of the AC analysis' nodal stimulus),
// runs the shared-solver transient, and maps the measured step response
// back onto second-order theory:
//
//   * a response with usable step swing uses the overshoot inversion
//     zeta = L / sqrt(pi^2 + L^2), L = ln(100/OS) (Table 1 read
//     backwards);
//   * a zero-swing response (driving-point injection into a bandpass
//     node, e.g. an LC tank) uses the logarithmic decrement of
//     successive same-side ring peaks instead;
//   * the equivalent phase margin applies the same rule-of-thumb mapping
//     the AC analyzer reports, min(100 * zeta, 90) degrees, so the two
//     verdicts compare like for like.
//
// The stability verdict is envelope-based: the response must stay finite
// and its ring must decay (peak deviation over the last quarter of the
// record at most half the overall peak deviation, or within 2 % of the
// reference amplitude). A sustained or growing oscillation is unstable.
#ifndef ACSTAB_CORE_TRAN_STABILITY_H
#define ACSTAB_CORE_TRAN_STABILITY_H

#include <cstddef>
#include <string>
#include <vector>

#include "spice/circuit.h"
#include "spice/tran_analysis.h"

namespace acstab::core {

struct tran_stability_options {
    /// Element to pulse (vsource or isource): a step of `step_size` is
    /// superimposed on its DC value. Empty selects the nodal stimulus: a
    /// current step injected into the watched node through a temporary
    /// isource (added for the run, removed afterwards).
    std::string source;
    /// Step amplitude: volts on a voltage source, amps on a current
    /// source or nodal injection. Small by default so nonlinear circuits
    /// stay near the operating point the AC verdict linearized around.
    real step_size = 0.01;
    real tstop = 0.0; ///< required, > 0
    real dt = 0.0;    ///< 0 selects tstop / 4000
    /// Step onset; 0 selects tstop / 20 (a settled pre-step baseline).
    real step_delay = 0.0;
    /// Decimated-waveform cap for farm records (the full record stays in
    /// metrics.raw).
    std::size_t max_points = 257;
    /// Transient engine knobs (solver path, tolerances). tstop/dt inside
    /// are overridden by the fields above.
    spice::tran_options tran;
};

struct tran_stability_result {
    bool stable = true;
    bool ringing = false;        ///< ring detected (zero crossings about the final value)
    real overshoot_pct = 0.0;    ///< percent of the step swing (0 when swing is zero)
    real ringing_freq_hz = 0.0;
    real settling_time_s = 0.0;  ///< 2 % band entry time
    real final_value = 0.0;
    real zeta = 1.0;             ///< damping estimate (overshoot or log-decrement)
    real equiv_pm_deg = 90.0;    ///< min(100 * zeta, 90) — the AC analyzer's mapping
    spice::tran_solver_stats solver; ///< shared-path counters for the run
    std::vector<real> time;      ///< decimated step response
    std::vector<real> value;
};

/// Measure the step-response stability of `node`. Finalizes the circuit,
/// installs the stimulus, runs the transient and restores the circuit
/// (the original source spec is reinstated / the injection element is
/// removed) even on failure. Throws analysis_error for unknown nodes or
/// elements and propagates convergence_error from the transient engine.
[[nodiscard]] tran_stability_result measure_tran_stability(spice::circuit& c,
                                                           const std::string& node,
                                                           const tran_stability_options& opt);

} // namespace acstab::core

#endif // ACSTAB_CORE_TRAN_STABILITY_H
