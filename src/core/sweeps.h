// Parameterized re-analysis ("in-tool sweeps", paper section 4.2): run the
// stability analysis across a parameter grid — temperature, corners,
// named `.param` values — rebuilding the circuit per point.
//
// The declarative entry points take a core::param_grid plus either a
// circuit_template (netlist + per-point overrides; value-typed, so the
// same description drives the distributed farm in src/farm/) or a
// builder callback. Every per-point failure is RECORDED, never thrown:
// a pathological corner (singular matrix, non-convergent DC) must not
// kill the other points of a campaign. The original closure-factory
// sweep_stability() survives as a thin compatibility wrapper over the
// grid API.
#ifndef ACSTAB_CORE_SWEEPS_H
#define ACSTAB_CORE_SWEEPS_H

#include <functional>
#include <string>
#include <vector>

#include "core/analyzer.h"
#include "core/param_grid.h"

namespace acstab::core {

/// Per-point outcome classification. Anything but `ok` leaves the
/// point's node result empty and its `error` text set.
enum class point_status {
    ok,              ///< analysis completed (node may still have no peak)
    dc_failed,       ///< DC operating point did not converge
    analysis_failed, ///< any other analysis error (singular matrix, ...)
    /// The farm orchestrator exhausted the point's retry budget (worker
    /// crash or wall-clock timeout on every attempt). Never produced by
    /// the in-process sweep API — an in-process failure is classified as
    /// one of the two statuses above.
    quarantined
};

/// One grid point's outcome for the watched node.
struct grid_point_result {
    grid_point point;
    node_stability node;
    point_status status = point_status::ok;
    std::string error; ///< diagnostic when status != ok
};

/// Build the circuit for a grid point into `c` and return the name of the
/// node to watch. Must be thread-safe when opt.threads != 1.
using grid_circuit_factory = std::function<std::string(spice::circuit&, const grid_point&)>;

/// Analyze every grid point in [begin, end) (global indices; pass 0 and
/// grid.size() for the whole grid — this is the farm's shard entry).
/// Results keep grid order; failures are recorded per point. Points are
/// dispatched onto the shared sweep-engine pool (opt.threads workers;
/// each point's inner frequency sweep runs serially to avoid
/// oversubscription), and results are slotted by index, so ordering and
/// values are deterministic regardless of scheduling.
[[nodiscard]] std::vector<grid_point_result>
sweep_stability_grid(const grid_circuit_factory& factory, const param_grid& grid,
                     std::size_t begin, std::size_t end, const stability_options& opt = {});

/// Whole-grid convenience overload.
[[nodiscard]] std::vector<grid_point_result>
sweep_stability_grid(const grid_circuit_factory& factory, const param_grid& grid,
                     const stability_options& opt = {});

/// Declarative form: rebuild from a netlist template at each point and
/// watch `node` everywhere.
[[nodiscard]] std::vector<grid_point_result>
sweep_stability_grid(const circuit_template& tmpl, const std::string& node,
                     const param_grid& grid, const stability_options& opt = {});

/// One sweep point's outcome for a watched node (legacy closure API).
struct sweep_point_result {
    real parameter = 0.0;
    node_stability node;
    /// Kept in sync with status (legacy flag; false iff status == dc_failed).
    bool dc_converged = true;
    point_status status = point_status::ok;
    std::string error; ///< diagnostic when status != ok
};

/// Build-and-analyze at each parameter value (compatibility wrapper over
/// the grid API: the values become a single anonymous axis). The factory
/// receives the parameter value and must populate a fresh circuit,
/// returning the name of the node to watch. Per-point failures — DC
/// non-convergence and any other analysis error — are recorded, not
/// thrown. The factory must be thread-safe when opt.threads != 1.
[[nodiscard]] std::vector<sweep_point_result>
sweep_stability(const std::function<std::string(spice::circuit&, real)>& factory,
                const std::vector<real>& parameter_values, const stability_options& opt = {});

/// Render a compact text table of a sweep (parameter, fn, peak, zeta, PM);
/// failed points render their status instead of numbers.
[[nodiscard]] std::string format_sweep(const std::vector<sweep_point_result>& points,
                                       const std::string& parameter_name);

} // namespace acstab::core

#endif // ACSTAB_CORE_SWEEPS_H
