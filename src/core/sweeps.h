// Parameterized re-analysis ("in-tool sweeps", paper section 4.2): run the
// stability analysis across a swept parameter — temperature, a component
// value, a bias level — by rebuilding the circuit per point through a
// caller-supplied factory. The paper lists TEMP sweeps and corner runs as
// in-development features of the original tool.
#ifndef ACSTAB_CORE_SWEEPS_H
#define ACSTAB_CORE_SWEEPS_H

#include <functional>
#include <string>
#include <vector>

#include "core/analyzer.h"

namespace acstab::core {

/// One sweep point's outcome for a watched node.
struct sweep_point_result {
    real parameter = 0.0;
    node_stability node;
    bool dc_converged = true;
};

/// Build-and-analyze at each parameter value. The factory receives the
/// parameter value and must populate a fresh circuit, returning the name
/// of the node to watch. DC non-convergence is recorded, not thrown.
///
/// Parameter points are dispatched onto the shared sweep-engine pool
/// (opt.threads workers; each point's inner frequency sweep then runs
/// serially to avoid oversubscription). Results are slotted by index, so
/// ordering is deterministic regardless of scheduling. The factory must
/// be thread-safe when opt.threads != 1.
[[nodiscard]] std::vector<sweep_point_result>
sweep_stability(const std::function<std::string(spice::circuit&, real)>& factory,
                const std::vector<real>& parameter_values, const stability_options& opt = {});

/// Render a compact text table of a sweep (parameter, fn, peak, zeta, PM).
[[nodiscard]] std::string format_sweep(const std::vector<sweep_point_result>& points,
                                       const std::string& parameter_name);

} // namespace acstab::core

#endif // ACSTAB_CORE_SWEEPS_H
