// Text outputs of the stability tool: the all-nodes report (paper
// Table 2), single-node summaries, CSV export and netlist annotation (our
// substitute for the paper's on-schematic annotation).
#ifndef ACSTAB_CORE_REPORT_H
#define ACSTAB_CORE_REPORT_H

#include <string>

#include "analysis/impedance.h"
#include "core/analyzer.h"

namespace acstab::core {

/// All-nodes report grouped by loop, sorted by natural frequency —
/// the paper's Table 2 format, plus special-case notices.
[[nodiscard]] std::string format_all_nodes_report(const stability_report& report);

/// Detailed single-node summary: peak, natural frequency, damping ratio,
/// estimated phase margin and equivalent step overshoot.
[[nodiscard]] std::string format_node_summary(const node_stability& ns);

/// Machine-readable CSV: node, peak, natural frequency, zeta, pm, flags.
[[nodiscard]] std::string format_csv(const stability_report& report);

/// Per-device annotation: each device listed with the stability values of
/// the nodes it touches (Fig. 5's annotated-schematic equivalent).
[[nodiscard]] std::string annotate_circuit(const spice::circuit& c,
                                           const stability_report& report);

/// Impedance-partition summary: the two device sides, the Nyquist-like
/// verdict of the minor-loop gain (encirclements, closest approach to -1,
/// minor-loop margins) and — on the adaptive path — the fitted model's
/// closed-loop pole estimates.
[[nodiscard]] std::string format_impedance_summary(const analysis::impedance_result& res);

/// One-line agreement check of the impedance-ratio verdict against a
/// reference stability classification (e.g. the MNA pencil poles).
[[nodiscard]] std::string format_impedance_crosscheck(const analysis::impedance_result& res,
                                                      bool reference_stable,
                                                      const std::string& reference_name);

} // namespace acstab::core

#endif // ACSTAB_CORE_REPORT_H
