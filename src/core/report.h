// Text outputs of the stability tool: the all-nodes report (paper
// Table 2), single-node summaries, CSV export and netlist annotation (our
// substitute for the paper's on-schematic annotation).
#ifndef ACSTAB_CORE_REPORT_H
#define ACSTAB_CORE_REPORT_H

#include <string>

#include "core/analyzer.h"

namespace acstab::core {

/// All-nodes report grouped by loop, sorted by natural frequency —
/// the paper's Table 2 format, plus special-case notices.
[[nodiscard]] std::string format_all_nodes_report(const stability_report& report);

/// Detailed single-node summary: peak, natural frequency, damping ratio,
/// estimated phase margin and equivalent step overshoot.
[[nodiscard]] std::string format_node_summary(const node_stability& ns);

/// Machine-readable CSV: node, peak, natural frequency, zeta, pm, flags.
[[nodiscard]] std::string format_csv(const stability_report& report);

/// Per-device annotation: each device listed with the stability values of
/// the nodes it touches (Fig. 5's annotated-schematic equivalent).
[[nodiscard]] std::string annotate_circuit(const spice::circuit& c,
                                           const stability_report& report);

} // namespace acstab::core

#endif // ACSTAB_CORE_REPORT_H
