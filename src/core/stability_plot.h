// The paper's stability plot (eq. 1.3) and its peak analysis.
//
// Given the magnitude of a node's AC response over a log-frequency sweep,
// compute P(w) = d/dw[(d|T|/dw) w/|T|] w  ==  d^2 ln|T| / d(ln w)^2 and
// locate its extrema: a negative peak marks a complex-pole pair (a loop)
// at its natural frequency, a positive peak a complex-zero pair. Peak
// value -1/zeta^2 encodes the loop's damping ratio (eq. 1.4).
#ifndef ACSTAB_CORE_STABILITY_PLOT_H
#define ACSTAB_CORE_STABILITY_PLOT_H

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.h"

namespace acstab::core {

/// Logarithmic frequency sweep description.
struct sweep_spec {
    real fstart = 1e3;
    real fstop = 1e9;
    std::size_t points_per_decade = 40;

    /// The realized log-spaced grid (includes both endpoints).
    [[nodiscard]] std::vector<real> frequencies() const;
};

enum class peak_kind {
    complex_pole, ///< negative peak: a loop's dominant root
    complex_zero  ///< positive peak: complex zero pair
};

/// Special-case classification from the paper's all-nodes report.
enum class peak_flag {
    normal,       ///< proper interior extremum
    end_of_range, ///< extremum at the sweep boundary: widen the sweep
    min_max       ///< no bracketed extremum; global min/max reported
};

struct stability_peak {
    peak_kind kind = peak_kind::complex_pole;
    peak_flag flag = peak_flag::normal;
    real freq_hz = 0.0;     ///< natural frequency (parabolic-refined)
    real value = 0.0;       ///< performance index (negative for poles)
    /// Index of the extreme sample into the plot's freq_hz/p arrays
    /// (which may be a coalesced subset of the input grid; see
    /// plot_options::min_separation_decades).
    std::size_t index = 0;
};

struct plot_options {
    /// Minimum |P| for a peak to be reported.
    real min_peak = 0.05;
    /// Grid points closer than this (in decades) are coalesced before
    /// differentiation. Non-uniform grids — the adaptive sweep's union of
    /// dense output and solved refinement points — can carry
    /// near-duplicate frequencies whose tiny spacing amplifies rounding
    /// noise catastrophically in the second-derivative stencils; uniform
    /// sweeps at any practical density are far coarser than this and are
    /// unaffected.
    real min_separation_decades = 1e-4;
    /// Use the direct eq.-(1.3) discretization instead of the log-log
    /// curvature form (ablation A3; results agree to discretization error).
    bool use_direct_formula = false;
    /// A complex-pole dip is flanked by genuine positive shoulders of its
    /// own curvature; suppress positive peaks that sit within
    /// shoulder_span of a much stronger pole peak so they are not
    /// mis-reported as complex zeros.
    bool suppress_pole_shoulders = true;
    real shoulder_span = 2.5;  ///< frequency ratio counted as "adjacent"
    real shoulder_ratio = 2.0; ///< pole must dominate the zero by this factor
};

struct stability_plot {
    std::vector<real> freq_hz;
    std::vector<real> magnitude;
    std::vector<real> p; ///< stability function samples
    std::vector<stability_peak> peaks; ///< sorted by frequency

    /// The most negative complex-pole peak (normal first, then flagged),
    /// or nullptr when the plot shows no pole signature.
    [[nodiscard]] const stability_peak* dominant_pole() const noexcept;
};

/// Compute the stability plot from sampled |T(j 2 pi f)|.
[[nodiscard]] stability_plot compute_stability_plot(std::span<const real> freq_hz,
                                                    std::span<const real> magnitude,
                                                    const plot_options& opt = {});

} // namespace acstab::core

#endif // ACSTAB_CORE_STABILITY_PLOT_H
