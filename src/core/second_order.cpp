#include "core/second_order.h"

#include <cmath>
#include <limits>

#include "common/error.h"

namespace acstab::core {

real overshoot_percent(real zeta)
{
    if (zeta >= 1.0)
        return 0.0;
    if (zeta <= 0.0)
        return 100.0;
    return 100.0 * std::exp(-pi * zeta / std::sqrt(1.0 - zeta * zeta));
}

real phase_margin_exact_deg(real zeta)
{
    if (zeta <= 0.0)
        return 0.0;
    const real z2 = zeta * zeta;
    const real inner = std::sqrt(std::sqrt(1.0 + 4.0 * z2 * z2) - 2.0 * z2);
    return std::atan2(2.0 * zeta, inner) * 180.0 / pi;
}

real phase_margin_rule_deg(real zeta)
{
    return 100.0 * zeta;
}

real peak_magnitude(real zeta)
{
    if (zeta <= 0.0)
        return std::numeric_limits<real>::infinity();
    if (zeta >= 1.0 / std::sqrt(2.0))
        return 1.0;
    return 1.0 / (2.0 * zeta * std::sqrt(1.0 - zeta * zeta));
}

real performance_index(real zeta)
{
    if (zeta <= 0.0)
        return -std::numeric_limits<real>::infinity();
    return -1.0 / (zeta * zeta);
}

real zeta_from_performance_index(real p)
{
    if (!(p < 0.0))
        throw analysis_error("zeta_from_performance_index: index must be negative "
                             "(complex-pole peak)");
    return std::sqrt(-1.0 / p);
}

real resonant_frequency(real zeta)
{
    const real arg = 1.0 - 2.0 * zeta * zeta;
    return arg > 0.0 ? std::sqrt(arg) : 0.0;
}

real zeta_from_overshoot(real overshoot_pct)
{
    if (!(overshoot_pct > 0.0))
        return 1.0;
    if (overshoot_pct >= 100.0)
        return 0.0;
    const real l = std::log(100.0 / overshoot_pct);
    return l / std::sqrt(pi * pi + l * l);
}

real zeta_from_log_decrement(real delta)
{
    if (!(delta > 0.0))
        return 0.0;
    return delta / std::sqrt(4.0 * pi * pi + delta * delta);
}

real analytic_stability_function(real zeta, real omega)
{
    // With u = ln w and x = w^2, ln|T| = -0.5 ln D(x),
    // D = (1-x)^2 + 4 z^2 x, and P = 2x (N'D - N D') / D^2 where
    // N = -2x^2 + (2 - 4 z^2) x is the numerator of d ln|T| / du.
    const real z2 = zeta * zeta;
    const real x = omega * omega;
    const real d = (1.0 - x) * (1.0 - x) + 4.0 * z2 * x;
    const real n = -2.0 * x * x + (2.0 - 4.0 * z2) * x;
    const real dn = -4.0 * x + 2.0 - 4.0 * z2;
    const real dd = 2.0 * x - 2.0 + 4.0 * z2;
    return 2.0 * x * (dn * d - n * dd) / (d * d);
}

std::vector<table1_row> table1()
{
    std::vector<table1_row> rows;
    rows.reserve(11);
    for (int k = 10; k >= 0; --k) {
        const real zeta = 0.1 * static_cast<real>(k);
        table1_row row;
        row.zeta = zeta;
        row.overshoot_pct = overshoot_percent(zeta);
        row.phase_margin_deg = phase_margin_rule_deg(zeta);
        row.max_magnitude = peak_magnitude(zeta);
        row.perf_index = performance_index(zeta);
        rows.push_back(row);
    }
    return rows;
}

numeric::rational transfer_function(real zeta, real omega_n)
{
    return numeric::rational::second_order_lowpass(zeta, omega_n);
}

} // namespace acstab::core
