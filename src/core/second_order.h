// Second-order dominant-root theory (paper section 1.2 and Table 1).
//
// The normalized prototype is T(s) = 1 / (s^2 + 2 zeta s + 1). All the
// correspondences the tool uses to translate a measured performance index
// into damping ratio, phase margin and expected step overshoot live here.
#ifndef ACSTAB_CORE_SECOND_ORDER_H
#define ACSTAB_CORE_SECOND_ORDER_H

#include <vector>

#include "common/types.h"
#include "numeric/rational.h"

namespace acstab::core {

/// Percent step-response overshoot of a second-order system,
/// 100 * exp(-pi zeta / sqrt(1 - zeta^2)); zero for zeta >= 1.
[[nodiscard]] real overshoot_percent(real zeta);

/// Exact unity-feedback phase margin of the prototype:
/// atan(2 zeta / sqrt(sqrt(1 + 4 zeta^4) - 2 zeta^2)) in degrees.
[[nodiscard]] real phase_margin_exact_deg(real zeta);

/// The Dorf & Bishop rule of thumb PM ~= 100 * zeta used by the paper's
/// Table 1 (valid for zeta <= 0.7).
[[nodiscard]] real phase_margin_rule_deg(real zeta);

/// Peak closed-loop magnitude Mp = 1 / (2 zeta sqrt(1 - zeta^2)) for
/// zeta < 1/sqrt(2); returns 1 above that (no resonant peak).
[[nodiscard]] real peak_magnitude(real zeta);

/// The paper's performance index (eq. 1.4): P(w_n) = -1 / zeta^2.
[[nodiscard]] real performance_index(real zeta);

/// Inverse of eq. 1.4 for a measured negative peak: zeta = sqrt(-1/P).
/// Throws analysis_error for non-negative P.
[[nodiscard]] real zeta_from_performance_index(real p);

/// Frequency (rad/s, normalized to wn=1) at which the magnitude response
/// peaks: sqrt(1 - 2 zeta^2) for zeta < 1/sqrt(2).
[[nodiscard]] real resonant_frequency(real zeta);

/// Inverse of overshoot_percent: damping ratio from a measured percent
/// step overshoot, zeta = L / sqrt(pi^2 + L^2) with L = ln(100 / OS).
/// Clamps to 1 for OS <= 0 and to 0 for OS >= 100. The transient
/// cross-check uses this to map a time-domain measurement back onto the
/// paper's Table 1 alongside the AC analyzer's peak-based estimate.
[[nodiscard]] real zeta_from_overshoot(real overshoot_pct);

/// Damping ratio from a measured logarithmic decrement delta =
/// ln(d_k / d_{k+1}) of successive same-side peak deviations (one full
/// ringing period apart): zeta = delta / sqrt(4 pi^2 + delta^2). Covers
/// responses with no step swing — driving-point/bandpass responses that
/// ring about zero — where percent overshoot is undefined. Returns 0
/// for delta <= 0 (non-decaying envelope).
[[nodiscard]] real zeta_from_log_decrement(real delta);

/// Analytic stability-plot value P(w) = d^2 ln|T| / d(ln w)^2 of the
/// normalized prototype at angular frequency w (closed form; used to
/// validate the numerical differentiation).
[[nodiscard]] real analytic_stability_function(real zeta, real omega);

/// One row of the paper's Table 1.
struct table1_row {
    real zeta = 0.0;
    real overshoot_pct = 0.0;
    real phase_margin_deg = 0.0; ///< rule-of-thumb value the paper lists
    real max_magnitude = 0.0;
    real perf_index = 0.0;
};

/// The paper's Table 1: zeta from 1.0 down to 0.0 in steps of 0.1.
[[nodiscard]] std::vector<table1_row> table1();

/// T(s) with natural frequency wn [rad/s]: wn^2/(s^2 + 2 zeta wn s + wn^2).
[[nodiscard]] numeric::rational transfer_function(real zeta, real omega_n = 1.0);

} // namespace acstab::core

#endif // ACSTAB_CORE_SECOND_ORDER_H
