// Minimal ASCII rendering of (x, y) series for terminal reports — the
// CLI-era stand-in for the paper's waveform windows.
#ifndef ACSTAB_CORE_ASCII_PLOT_H
#define ACSTAB_CORE_ASCII_PLOT_H

#include <span>
#include <string>

#include "common/types.h"

namespace acstab::core {

struct ascii_plot_options {
    int width = 72;
    int height = 20;
    bool log_x = true;
    std::string title;
};

/// Render y(x) as an ASCII chart with axis labels.
[[nodiscard]] std::string ascii_plot(std::span<const real> x, std::span<const real> y,
                                     const ascii_plot_options& opt = {});

} // namespace acstab::core

#endif // ACSTAB_CORE_ASCII_PLOT_H
