// acstab — the push-button AC-stability analysis tool (paper section 4),
// reimplemented as a command-line program over the library:
//
//   acstab op        <netlist>                         DC operating point
//   acstab ac        <netlist> --node N [sweep opts]   AC magnitude/phase
//   acstab tran      <netlist> --node N --tstop T      transient waveform
//   acstab stability <netlist> [--node N | --all] ...  the paper's method
//   acstab impedance <netlist> --node N [--source e,..] Nyquist-like source/
//                                                      load impedance-ratio
//                                                      criterion at a port
//   acstab pz        <netlist>                         (G,C) pencil poles
//   acstab loopgain  <netlist> --probe V               double-injection probe
//   acstab run       <netlist>                         execute .op/.ac/.tran/
//                                                      .stability cards
//   acstab farm plan|run|merge ...                     corner-farm campaigns
//                                                      (plan once, execute
//                                                      shards anywhere, merge
//                                                      deterministically)
#include <cctype>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/impedance.h"
#include "analysis/loop_gain.h"
#include "analysis/pole_zero.h"
#include "core/analyzer.h"
#include "engine/adaptive_sweep.h"
#include "engine/linearized_snapshot.h"
#include "core/ascii_plot.h"
#include "core/param_grid.h"
#include "core/report.h"
#include "farm/campaign.h"
#include "farm/executor.h"
#include "farm/orchestrator.h"
#include "farm/shard_store.h"
#include "serve/server.h"
#include "gen/netlist_gen.h"
#include "numeric/interpolation.h"
#include "spice/ac_analysis.h"
#include "spice/dc_analysis.h"
#include "spice/devices/sources.h"
#include "spice/measure.h"
#include "spice/parser/netlist_parser.h"
#include "spice/tran_analysis.h"
#include "spice/units.h"
#include "tool/options.h"

namespace {

using namespace acstab;
using namespace acstab::tool;

/// --order/--no-simd/--warm/--no-supernodal/--warm-pipeline -> the
/// sparse-solver tuning every frequency-domain command threads down to
/// the sweep engine.
[[nodiscard]] engine::solver_tuning tuning_from_cli(const cli_options& opt)
{
    engine::solver_tuning tuning;
    if (opt.order == "amd-approx" || opt.order.empty())
        tuning.ordering = numeric::column_ordering::amd_approx;
    else if (opt.order == "amd")
        tuning.ordering = numeric::column_ordering::amd;
    else if (opt.order == "count")
        tuning.ordering = numeric::column_ordering::count;
    else if (opt.order == "none")
        tuning.ordering = numeric::column_ordering::none;
    else
        throw analysis_error("--order must be amd-approx, amd, count or none, got '"
                             + opt.order + "'");
    tuning.simd = !opt.no_simd;
    tuning.warm_start = opt.warm;
    tuning.supernodal = !opt.no_supernodal;
    tuning.warm_pipeline = opt.warm_pipeline;
    return tuning;
}

int cmd_op(spice::circuit& c, const cli_options&)
{
    const spice::dc_result op = spice::dc_operating_point(c);
    std::printf("operating point (%d Newton iterations%s%s):\n", op.iterations,
                op.used_gmin_stepping ? ", gmin stepping" : "",
                op.used_source_stepping ? ", source stepping" : "");
    for (std::size_t i = 0; i < c.node_count(); ++i)
        std::printf("  V(%-12s) = %12.6g V\n",
                    c.node_name(static_cast<spice::node_id>(i)).c_str(), op.solution[i]);
    return 0;
}

int cmd_ac(spice::circuit& c, const cli_options& opt)
{
    if (opt.node.empty())
        throw analysis_error("ac: --node is required");
    const spice::dc_result op = spice::dc_operating_point(c);
    // One shared path for both grids: ac_sweep's adaptive branch fits a
    // per-unknown rational model over the whole solution vector, so the
    // node is selected after the sweep — exactly like the fixed grid.
    const std::vector<real> grid = numeric::log_grid(opt.fstart, opt.fstop, opt.ppd);
    spice::ac_options aopt;
    aopt.threads = opt.threads;
    aopt.adaptive = opt.adaptive;
    aopt.fit_tol = opt.fit_tol;
    aopt.anchors_per_decade = opt.anchors_per_decade;
    aopt.tuning = tuning_from_cli(opt);
    const spice::ac_result res = spice::ac_sweep(c, grid, op.solution, aopt);
    const std::vector<real>& freqs = res.freq_hz;
    const std::vector<cplx> h = spice::node_response(c, res, opt.node);
    const std::vector<real> mag_db = spice::db20(h);
    const std::vector<real> phase = spice::phase_deg_unwrapped(h);

    if (opt.csv) {
        std::puts("freq_hz,mag_db,phase_deg");
        for (std::size_t i = 0; i < freqs.size(); ++i)
            std::printf("%.8g,%.8g,%.8g\n", freqs[i], mag_db[i], phase[i]);
        return 0;
    }
    core::ascii_plot_options po;
    po.title = "|V(" + opt.node + ")| [dB]";
    std::fputs(core::ascii_plot(freqs, mag_db, po).c_str(), stdout);
    po.title = "phase(V(" + opt.node + ")) [deg]";
    std::fputs(core::ascii_plot(freqs, phase, po).c_str(), stdout);
    return 0;
}

int cmd_tran(spice::circuit& c, const cli_options& opt)
{
    if (opt.node.empty())
        throw analysis_error("tran: --node is required");
    if (!(opt.tstop > 0.0))
        throw analysis_error("tran: --tstop is required");
    spice::tran_options topt;
    topt.tstop = opt.tstop;
    topt.dt = opt.dt;
    topt.shared_solver = !opt.oneshot;
    const engine::solver_tuning tuning = tuning_from_cli(opt);
    topt.tuning.ordering = tuning.ordering;
    topt.tuning.supernodal = tuning.supernodal;
    topt.tuning.simd = tuning.simd;
    const spice::tran_result res = spice::transient(c, topt);
    const std::vector<real> v = spice::node_waveform(c, res, opt.node);
    if (opt.solver_stats)
        std::fprintf(stderr,
                     "solver: %zu solves, %zu symbolic builds, %zu pattern rebuilds, "
                     "%zu guard probes, %zu guard rebuilds\n",
                     res.solver.solves, res.solver.symbolic_builds,
                     res.solver.pattern_rebuilds, res.solver.guard_probes,
                     res.solver.guard_rebuilds);
    if (opt.csv) {
        std::puts("time_s,volts");
        for (std::size_t i = 0; i < res.time.size(); ++i)
            std::printf("%.8g,%.8g\n", res.time[i], v[i]);
        return 0;
    }
    core::ascii_plot_options po;
    po.log_x = false;
    po.title = "V(" + opt.node + ") vs time";
    std::fputs(core::ascii_plot(res.time, v, po).c_str(), stdout);
    return 0;
}

int cmd_stability(spice::circuit& c, const cli_options& opt)
{
    core::stability_options sopt;
    sopt.sweep.fstart = opt.fstart;
    sopt.sweep.fstop = opt.fstop;
    sopt.sweep.points_per_decade = opt.ppd;
    sopt.threads = opt.threads;
    sopt.adaptive = opt.adaptive;
    sopt.fit_tol = opt.fit_tol;
    sopt.anchors_per_decade = opt.anchors_per_decade;
    sopt.tuning = tuning_from_cli(opt);
    core::stability_analyzer an(c, sopt);

    if (!opt.node.empty()) {
        const core::node_stability ns = an.analyze_node(opt.node);
        std::fputs(core::format_node_summary(ns).c_str(), stdout);
        if (!opt.csv) {
            core::ascii_plot_options po;
            po.title = "stability plot P(f) at " + opt.node;
            std::fputs(core::ascii_plot(ns.plot.freq_hz, ns.plot.p, po).c_str(), stdout);
        }
        return 0;
    }
    const core::stability_report rep = an.analyze_all_nodes();
    if (opt.csv)
        std::fputs(core::format_csv(rep).c_str(), stdout);
    else
        std::fputs(core::format_all_nodes_report(rep).c_str(), stdout);
    if (opt.annotate)
        std::fputs(core::annotate_circuit(c, rep).c_str(), stdout);
    return 0;
}

int cmd_impedance(spice::circuit& c, const cli_options& opt)
{
    if (opt.node.empty())
        throw analysis_error("impedance: --node is required");
    analysis::impedance_options iopt;
    iopt.fstart = opt.fstart;
    iopt.fstop = opt.fstop;
    iopt.points_per_decade = opt.ppd;
    iopt.threads = opt.threads;
    iopt.adaptive = opt.adaptive;
    iopt.fit_tol = opt.fit_tol;
    iopt.anchors_per_decade = opt.anchors_per_decade;
    iopt.tuning = tuning_from_cli(opt);
    if (!opt.source.empty())
        iopt.source_elements = parse_name_list(opt.source);
    const analysis::impedance_result res = analysis::analyze_impedance(c, opt.node, iopt);

    if (opt.csv) {
        std::puts("freq_hz,zs_mag,zl_mag,lm_mag_db,lm_phase_deg");
        const std::vector<real> db = spice::db20(res.minor_loop);
        const std::vector<real> ph = spice::phase_deg_unwrapped(res.minor_loop);
        for (std::size_t i = 0; i < res.freq_hz.size(); ++i)
            std::printf("%.8g,%.8g,%.8g,%.8g,%.8g\n", res.freq_hz[i],
                        std::abs(res.z_source[i]), std::abs(res.z_load[i]), db[i], ph[i]);
        return 0;
    }

    std::fputs(core::format_impedance_summary(res).c_str(), stdout);
    core::ascii_plot_options po;
    po.title = "minor-loop gain |Z_s/Z_l| [dB] at " + opt.node;
    std::fputs(core::ascii_plot(res.freq_hz, spice::db20(res.minor_loop), po).c_str(),
               stdout);

    // Cross-check: the paper's stability plot at the same node, plus the
    // pencil-pole ground truth, so the two methodologies vet each other.
    core::stability_options sopt;
    sopt.sweep.fstart = opt.fstart;
    sopt.sweep.fstop = opt.fstop;
    sopt.sweep.points_per_decade = opt.ppd;
    sopt.threads = opt.threads;
    sopt.adaptive = opt.adaptive;
    sopt.fit_tol = opt.fit_tol;
    sopt.anchors_per_decade = opt.anchors_per_decade;
    sopt.tuning = tuning_from_cli(opt);
    core::stability_analyzer an(c, sopt);
    std::fputs(core::format_node_summary(an.analyze_node(opt.node)).c_str(), stdout);

    bool poles_stable = true;
    for (const analysis::pole& p : analysis::circuit_poles(c, an.operating_point()))
        if (p.s.real() > 1e-6 * std::abs(p.s))
            poles_stable = false;
    std::fputs(core::format_impedance_crosscheck(res, poles_stable, "pencil pole analysis")
                   .c_str(),
               stdout);
    return 0;
}

int cmd_pz(spice::circuit& c, const cli_options& opt)
{
    core::stability_analyzer an(c);
    const auto print = [](const std::vector<analysis::pole>& roots) {
        for (const auto& p : roots) {
            if (p.is_complex && p.s.imag() < 0.0)
                continue; // print each conjugate pair once
            std::printf("  s = %12.5g %+12.5gj rad/s   f = %-12s zeta = %.4f%s\n", p.s.real(),
                        p.s.imag(), spice::format_frequency(p.freq_hz).c_str(), p.zeta,
                        p.is_complex ? "  (complex pair)" : "");
        }
    };
    std::puts("finite poles of the linearized circuit:");
    print(analysis::circuit_poles(c, an.operating_point()));
    if (!opt.node.empty()) {
        std::printf("\nzeros of the driving-point impedance at node '%s':\n",
                    opt.node.c_str());
        print(analysis::impedance_zeros_at_node(c, an.operating_point(), opt.node));
    }
    return 0;
}

int cmd_loopgain(spice::circuit& c, const cli_options& opt)
{
    if (opt.probe.empty())
        throw analysis_error("loopgain: --probe <vsource> is required");
    const std::vector<real> freqs = numeric::log_grid(opt.fstart, opt.fstop, opt.ppd);
    analysis::loop_gain_options lopt;
    lopt.threads = opt.threads;
    lopt.adaptive = opt.adaptive;
    lopt.fit_tol = opt.fit_tol;
    lopt.anchors_per_decade = opt.anchors_per_decade;
    lopt.tuning = tuning_from_cli(opt);
    const analysis::loop_gain_result lg
        = analysis::measure_loop_gain(c, opt.probe, freqs, lopt);
    if (opt.csv) {
        std::puts("freq_hz,t_mag_db,t_phase_deg");
        const std::vector<real> db = spice::db20(lg.t);
        const std::vector<real> ph = spice::phase_deg_unwrapped(lg.t);
        for (std::size_t i = 0; i < lg.freq_hz.size(); ++i)
            std::printf("%.8g,%.8g,%.8g\n", lg.freq_hz[i], db[i], ph[i]);
        return 0;
    }
    core::ascii_plot_options po;
    po.title = "loop gain |T| [dB] via probe " + opt.probe;
    std::fputs(core::ascii_plot(lg.freq_hz, spice::db20(lg.t), po).c_str(), stdout);
    if (lg.margins.has_unity_crossing) {
        std::printf("\n0 dB crossover : %s\n",
                    spice::format_frequency(lg.margins.unity_freq_hz).c_str());
        std::printf("phase margin   : %.1f deg\n", lg.margins.phase_margin_deg);
    } else {
        std::puts("\nloop gain never reaches 0 dB");
    }
    return 0;
}

int cmd_run(spice::parsed_netlist& net, const cli_options& base)
{
    if (net.analyses.empty()) {
        std::puts("netlist contains no analysis cards; try 'acstab stability <netlist> --all'");
        return 1;
    }
    for (const spice::analysis_card& card : net.analyses) {
        cli_options opt = base;
        opt.fstart = card.fstart;
        opt.fstop = card.fstop;
        opt.ppd = card.points_per_decade;
        opt.tstop = card.tstop;
        opt.dt = card.dt;
        switch (card.kind) {
        case spice::analysis_kind::op:
            std::puts("== .op ==");
            cmd_op(net.ckt, opt);
            break;
        case spice::analysis_kind::ac:
            std::puts("== .ac ==");
            opt.node = base.node;
            if (opt.node.empty())
                std::puts("(skipped: pass --node to select the AC output)");
            else
                cmd_ac(net.ckt, opt);
            break;
        case spice::analysis_kind::tran:
            std::puts("== .tran ==");
            opt.node = base.node;
            if (opt.node.empty())
                std::puts("(skipped: pass --node to select the transient output)");
            else
                cmd_tran(net.ckt, opt);
            break;
        case spice::analysis_kind::stability_node:
            std::puts("== .stability (single node) ==");
            opt.node = card.node;
            cmd_stability(net.ckt, opt);
            break;
        case spice::analysis_kind::stability_all:
            std::puts("== .stability all ==");
            opt.node.clear();
            cmd_stability(net.ckt, opt);
            break;
        }
    }
    return 0;
}

/// Write a whole text file atomically: temp file + rename, so consumers
/// never observe a half-written document. Every file the tool emits
/// (plans, shards, reports, generated netlists) goes through here — a
/// crashed or ENOSPC'd writer must not leave a truncated file that
/// poisons a later farm merge.
void write_text_atomic(const std::string& text, const std::string& out_path)
{
    const std::string tmp = out_path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary);
        if (!out)
            throw analysis_error("cannot write file '" + tmp
                                 + "': " + std::strerror(errno));
        out << text;
        out.flush();
        if (!out) {
            const std::string why = std::strerror(errno);
            std::remove(tmp.c_str());
            throw analysis_error("write to '" + tmp + "' failed: " + why);
        }
    }
    if (std::rename(tmp.c_str(), out_path.c_str()) != 0) {
        const std::string why = std::strerror(errno);
        std::remove(tmp.c_str());
        throw analysis_error("cannot finalize '" + out_path + "': " + why
                             + " (rename from temp failed)");
    }
}

/// acstab gen ladder|rcmesh --size N [--out FILE] [band opts]: emit a
/// generated stress netlist (the size-scaling bench corpus) to --out or
/// stdout. Takes no input netlist, so it dispatches before the loader.
int cmd_gen(int argc, char** argv)
{
    const cli_options opt = parse_cli_options(argc - 2, argv + 2,
                                              /*allow_positionals=*/true);
    if (opt.positionals.size() != 1)
        throw analysis_error("gen: usage: acstab gen ladder|rcmesh --size N [--out FILE]");
    gen::gen_options gopt;
    if (opt.size != 0)
        gopt.size = opt.size;
    if (opt.fstart_set)
        gopt.fstart = opt.fstart;
    if (opt.fstop_set)
        gopt.fstop = opt.fstop;
    if (opt.ppd_set)
        gopt.points_per_decade = opt.ppd;
    const std::string text = gen::generate_netlist(opt.positionals[0], gopt);
    if (opt.out.empty()) {
        std::fputs(text.c_str(), stdout);
        return 0;
    }
    write_text_atomic(text, opt.out);
    std::printf("wrote %s netlist (%zu target nodes) -> %s\n", opt.positionals[0].c_str(),
                gopt.size, opt.out.c_str());
    return 0;
}

/// Read a whole file (farm plan / shard documents).
[[nodiscard]] std::string read_file(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw analysis_error("cannot open file '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/// Emit a farm JSON document to --out (file) or stdout.
void write_document(const farm::json_value& doc, const std::string& out_path)
{
    const std::string text = doc.dump() + "\n";
    if (out_path.empty()) {
        std::fputs(text.c_str(), stdout);
        return;
    }
    write_text_atomic(text, out_path);
}

/// Read + parse one farm JSON file with the actionable corrupt-file
/// diagnostic (file name, byte offset, crashed-writer hint).
[[nodiscard]] farm::json_value parse_document_file(const std::string& path)
{
    return farm::parse_shard_document(read_file(path), path);
}

int cmd_farm_plan(const std::string& netlist_path, const cli_options& opt)
{
    spice::parsed_netlist net = spice::parse_netlist_file(netlist_path);

    farm::campaign_spec spec;
    spec.netlist = netlist_path;
    spec.adaptive = opt.adaptive;
    spec.fit_tol = opt.fit_tol;
    spec.anchors_per_decade = opt.anchors_per_decade;
    spec.tuning = tuning_from_cli(opt);
    if (opt.analysis == "impedance")
        spec.analysis = farm::campaign_analysis::impedance;
    else if (opt.analysis == "transient")
        spec.analysis = farm::campaign_analysis::transient;
    else if (!opt.analysis.empty() && opt.analysis != "stability")
        throw analysis_error("farm plan: --analysis must be stability, impedance or "
                             "transient, got '" + opt.analysis + "'");
    if (!opt.source.empty()) {
        if (spec.analysis == farm::campaign_analysis::impedance) {
            spec.source_elements = parse_name_list(opt.source);
        } else if (spec.analysis == farm::campaign_analysis::transient) {
            // Transient campaigns step exactly one source; with no
            // --source, the executor injects a current step at the node.
            const std::vector<std::string> names = parse_name_list(opt.source);
            if (names.size() != 1)
                throw analysis_error("farm plan: transient campaigns step one source, "
                                     "got " + std::to_string(names.size()));
            spec.tran_source = names.front();
        } else {
            throw analysis_error("farm plan: --source only applies to "
                                 "--analysis impedance or transient campaigns");
        }
    }

    // Node and band default from the netlist's .stability card (if any);
    // explicit flags win.
    spec.node = opt.node;
    spec.fstart = opt.fstart;
    spec.fstop = opt.fstop;
    spec.points_per_decade = opt.ppd;
    for (const spice::analysis_card& card : net.analyses) {
        if (card.kind != spice::analysis_kind::stability_node
            && card.kind != spice::analysis_kind::stability_all)
            continue;
        if (spec.node.empty() && card.kind == spice::analysis_kind::stability_node)
            spec.node = card.node;
        if (!opt.fstart_set)
            spec.fstart = card.fstart;
        if (!opt.fstop_set)
            spec.fstop = card.fstop;
        if (!opt.ppd_set)
            spec.points_per_decade = card.points_per_decade;
        break;
    }
    if (spec.node.empty())
        throw analysis_error("farm plan: no watched node (pass --node or add a "
                             "'.stability <node>' card)");
    if (!net.ckt.find_node(spec.node))
        throw analysis_error("farm plan: unknown node '" + spec.node + "'");
    if (spec.analysis == farm::campaign_analysis::impedance) {
        // Fail ambiguous partitions at plan time, on the nominal circuit,
        // instead of at every grid point of every shard.
        (void)analysis::partition_at_node(net.ckt, spec.node, spec.source_elements);
    }
    if (spec.analysis == farm::campaign_analysis::transient) {
        // Time window: explicit flags win, the netlist's .tran card is the
        // fallback — same precedence as the stability band above.
        spec.tran_step = opt.step;
        spec.tran_tstop = opt.tstop;
        spec.tran_dt = opt.dt;
        for (const spice::analysis_card& card : net.analyses) {
            if (card.kind != spice::analysis_kind::tran)
                continue;
            if (!(spec.tran_tstop > 0.0))
                spec.tran_tstop = card.tstop;
            if (!(spec.tran_dt > 0.0))
                spec.tran_dt = card.dt;
            break;
        }
        if (!(spec.tran_tstop > 0.0))
            throw analysis_error("farm plan: transient campaigns need a time window "
                                 "(pass --tstop or add a '.tran <dt> <tstop>' card)");
        if (!spec.tran_source.empty()) {
            // Fail a bad source name at plan time, on the nominal circuit.
            spice::device* dev = net.ckt.find_device(spec.tran_source);
            if (dev == nullptr)
                throw analysis_error("farm plan: unknown source element '"
                                     + spec.tran_source + "'");
            if (dynamic_cast<spice::vsource*>(dev) == nullptr
                && dynamic_cast<spice::isource*>(dev) == nullptr)
                throw analysis_error("farm plan: '" + spec.tran_source
                                     + "' is not a voltage or current source");
        }
    }

    // Grid: netlist .temp/.corner campaign cards seed the axes; explicit
    // flags replace them axis by axis. --param axes are flag-only.
    spec.grid = core::grid_from_netlist_cards(net);
    if (!opt.temps.empty())
        spec.grid.temps = parse_value_list(opt.temps);
    if (!opt.corners.empty()) {
        spec.grid.corners.clear();
        for (const std::string& text : opt.corners)
            spec.grid.corners.push_back(parse_corner_spec(text));
    }
    for (const std::string& text : opt.params)
        spec.grid.axes.push_back(parse_param_axis(text));

    // A typo'd override name would be a silent no-op at every grid point
    // (the parser seeds it, nothing reads it): since the nominal parse
    // above succeeded, every parameter the netlist references is in
    // net.parameters, so any override name absent from that table can
    // never take effect — reject it at plan time.
    const auto check_param = [&net](const std::string& name, const std::string& where) {
        std::string key = name;
        for (char& ch : key)
            ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
        if (net.parameters.find(key) == net.parameters.end())
            throw analysis_error("farm plan: " + where + " overrides parameter '" + name
                                 + "', which the netlist never uses (typo?)");
    };
    for (const core::corner_def& corner : spec.grid.corners)
        for (const auto& [name, v] : corner.overrides)
            check_param(name, "corner '" + corner.name + "'");
    for (const core::param_axis& axis : spec.grid.axes)
        check_param(axis.name, "axis '" + axis.name + "'");

    const std::size_t points = spec.grid.size(); // validates the axes
    write_document(farm::to_json(spec), opt.out);
    if (!opt.out.empty())
        std::printf("planned %zu-point campaign on %s (node %s) -> %s\n", points,
                    netlist_path.c_str(), spec.node.c_str(), opt.out.c_str());
    return 0;
}

int cmd_farm_run(const std::string& plan_path, const cli_options& opt)
{
    const farm::campaign_spec spec
        = farm::campaign_from_json(parse_document_file(plan_path));
    shard_spec sh;
    if (!opt.shard.empty())
        sh = parse_shard_spec(opt.shard);
    const std::vector<farm::point_record> records
        = farm::run_shard(spec, sh.index, sh.count, opt.threads);
    write_document(farm::shard_to_json(spec, sh.index, sh.count, records), opt.out);
    if (!opt.out.empty())
        std::printf("ran shard %zu/%zu: %zu points -> %s\n", sh.index + 1, sh.count,
                    records.size(), opt.out.c_str());
    return 0;
}

int cmd_farm_merge(const std::string& plan_path, const cli_options& opt)
{
    if (opt.positionals.empty())
        throw analysis_error("farm merge: pass at least one shard result file");
    const farm::campaign_spec spec
        = farm::campaign_from_json(parse_document_file(plan_path));

    // `farm run` emits whole-document shards; `farm exec` workers emit
    // JSONL shard streams. Sniff which one we were handed.
    std::size_t streams = 0;
    for (const std::string& path : opt.positionals)
        streams += farm::is_shard_stream_file(path) ? 1 : 0;
    if (streams != 0 && streams != opt.positionals.size())
        throw analysis_error("farm merge: cannot mix JSONL shard streams and shard "
                             "documents in one merge");
    if (streams != 0) {
        // Streaming path: O(1) resident records regardless of campaign
        // size. --table needs the parsed report, so it rides through a
        // temp file when no --out was asked for.
        const std::string out_path = !opt.out.empty()
            ? opt.out
            : (opt.table ? opt.positionals[0] + ".merged.tmp.json" : std::string());
        const farm::stream_merge_result merged
            = farm::merge_shard_streams(spec, opt.positionals, {}, out_path);
        if (opt.table) {
            const farm::json_value report = parse_document_file(out_path);
            if (opt.out.empty())
                std::remove(out_path.c_str());
            std::fputs(farm::format_report(report).c_str(), stdout);
            return 0;
        }
        if (!opt.out.empty())
            std::printf("merged %zu shard stream(s), %zu points -> %s\n",
                        opt.positionals.size(), merged.points, opt.out.c_str());
        return 0;
    }

    std::vector<farm::json_value> shards;
    shards.reserve(opt.positionals.size());
    for (const std::string& path : opt.positionals)
        shards.push_back(parse_document_file(path));
    const farm::json_value report = farm::merge_shards(spec, shards);
    if (opt.table) {
        std::fputs(farm::format_report(report).c_str(), stdout);
        return 0;
    }
    write_document(report, opt.out);
    if (!opt.out.empty())
        std::printf("merged %zu shard file(s), %zu points -> %s\n", opt.positionals.size(),
                    report.at("records").items().size(), opt.out.c_str());
    return 0;
}

/// SIGINT/SIGTERM flag for `farm exec`: the handler only sets the flag;
/// the orchestrator polls it, stops the workers, flushes the journal and
/// returns, so the process exits through the normal path with the
/// campaign resumable.
volatile std::sig_atomic_t g_farm_interrupt = 0;

extern "C" void farm_interrupt_handler(int)
{
    g_farm_interrupt = 1;
}

int cmd_farm_exec(const std::string& plan_path, const cli_options& opt)
{
    const farm::campaign_spec spec
        = farm::campaign_from_json(parse_document_file(plan_path));

    farm::exec_options eopt;
    eopt.workers = opt.workers;
    eopt.workdir = opt.dir.empty() ? plan_path + ".work" : opt.dir;
    eopt.out = opt.out.empty() ? plan_path + ".report.json" : opt.out;
    eopt.plan_path = plan_path;
    eopt.resume = opt.resume;
    eopt.point_timeout_s = opt.point_timeout;
    eopt.max_attempts = opt.retries;
    eopt.verbose = !opt.quiet;
    eopt.interrupt = &g_farm_interrupt;

    // No SA_RESTART: the signal must interrupt the orchestrator's poll()
    // so the flag is noticed immediately.
    struct sigaction sa {};
    sa.sa_handler = farm_interrupt_handler;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);

    const farm::exec_summary sum = farm::exec_campaign(spec, eopt);
    if (sum.interrupted) {
        std::fprintf(stderr,
                     "farm exec: interrupted; %zu/%zu points finished; resume with: "
                     "acstab farm exec %s --dir %s --out %s --resume\n",
                     sum.completed, sum.total, plan_path.c_str(), eopt.workdir.c_str(),
                     eopt.out.c_str());
        return 130;
    }
    std::printf("farm exec: %zu/%zu points ok -> %s\n", sum.completed, sum.total,
                eopt.out.c_str());
    if (!sum.quarantined.empty()) {
        // Quarantined points are listed explicitly (they are also in the
        // report as status "quarantined" records) and flagged with a
        // distinct exit code so farm drivers can tell "done" from "done
        // with holes".
        std::printf("farm exec: %zu point(s) quarantined:\n", sum.quarantined.size());
        for (const auto& [idx, err] : sum.quarantined)
            std::printf("  point %zu: %s\n", idx, err.c_str());
        std::printf("farm exec: re-run with --resume to retry quarantined points\n");
        return 3;
    }
    return 0;
}

/// Internal: the worker half of `farm exec` (spawned by the
/// orchestrator, not meant for direct use).
int cmd_farm_worker(const std::string& plan_path, const cli_options& opt)
{
    if (opt.shard_file.empty())
        throw analysis_error("farm worker: --shard-file is required (internal command "
                             "spawned by 'farm exec')");
    const farm::campaign_spec spec
        = farm::campaign_from_json(parse_document_file(plan_path));
    return farm::run_worker(spec, opt.shard_file, opt.worker_id);
}

/// Shutdown ladder for `acstab serve`: first SIGTERM/SIGINT = drain
/// (finish in-flight requests), second = checkpoint them now. The
/// handler only bumps the flag; the server polls it.
volatile std::sig_atomic_t g_serve_shutdown = 0;

extern "C" void serve_shutdown_handler(int)
{
    if (g_serve_shutdown < 2)
        ++g_serve_shutdown;
}

/// acstab serve [--socket PATH | --stdio] [--max-concurrent M] ...: the
/// long-lived campaign service (serve/server.h).
int cmd_serve(int argc, char** argv)
{
    const cli_options opt = parse_cli_options(argc - 2, argv + 2);
    serve::serve_options sopt;
    sopt.socket_path = opt.socket_path;
    sopt.stdio = opt.stdio;
    sopt.max_concurrent = opt.max_concurrent;
    sopt.queue_depth = opt.queue_depth;
    sopt.max_frame_bytes = opt.max_frame;
    sopt.workers = opt.workers;
    sopt.point_timeout_s = opt.point_timeout;
    sopt.max_attempts = opt.retries;
    sopt.root_dir = opt.dir.empty() ? "acstab-serve.work" : opt.dir;
    sopt.drain_grace_s = opt.drain_grace;
    sopt.shutdown = &g_serve_shutdown;
    sopt.verbose = !opt.quiet;

    // No SA_RESTART: the signal must interrupt the server's poll() so
    // the drain starts immediately.
    struct sigaction sa {};
    sa.sa_handler = serve_shutdown_handler;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);

    const serve::serve_summary sum = serve::run_server(sopt);
    std::fprintf(stderr,
                 "serve: %s; %zu accepted, %zu completed, %zu cancelled, %zu failed, "
                 "%zu shed, %zu protocol errors\n",
                 sum.drained ? "drained" : "idle exit", sum.accepted, sum.completed,
                 sum.cancelled, sum.failed, sum.shed, sum.protocol_errors);
    return 0;
}

/// acstab farm plan <netlist> | run <plan.json> | exec <plan.json> |
///        merge <plan.json> <shard>...
int cmd_farm(int argc, char** argv)
{
    if (argc < 4)
        throw analysis_error(
            "farm: usage: acstab farm plan|run|exec|merge <file> [options]");
    const std::string sub = argv[2];
    const std::string file = argv[3];
    const cli_options opt = parse_cli_options(argc - 4, argv + 4,
                                              /*allow_positionals=*/true);
    if (sub == "plan")
        return cmd_farm_plan(file, opt);
    if (sub == "run")
        return cmd_farm_run(file, opt);
    if (sub == "exec")
        return cmd_farm_exec(file, opt);
    if (sub == "worker")
        return cmd_farm_worker(file, opt);
    if (sub == "merge")
        return cmd_farm_merge(file, opt);
    throw analysis_error("farm: unknown subcommand '" + sub
                         + "' (plan|run|exec|merge)");
}

void print_usage()
{
    std::puts("acstab — AC-stability analysis of continuous-time closed-loop circuits");
    std::puts("usage: acstab <command> <netlist> [options]");
    std::puts("       acstab farm plan <netlist> | run <plan.json> | merge <plan.json> <shard>...");
    std::puts("commands:");
    std::puts("  op          DC operating point");
    std::puts("  ac          AC sweep          (--node N)");
    std::puts("  tran        transient         (--node N --tstop T [--dt D]");
    std::puts("              [--solver-stats] [--oneshot: per-iteration refactorization,");
    std::puts("              the pre-shared-solver baseline])");
    std::puts("  stability   stability plots   (--node N | --all)");
    std::puts("  impedance   source/load impedance-ratio (Nyquist-like) criterion at a");
    std::puts("              partition node    (--node N [--source e1,e2,..]); reports");
    std::puts("              encirclements of -1, minor-loop margins, closest approach");
    std::puts("              to -1, and (with --adaptive) closed-loop pole estimates");
    std::puts("              from the AAA fit of Z_s/Z_l, cross-checked against the");
    std::puts("              stability plot and the pencil poles");
    std::puts("  pz          poles of the linearized circuit");
    std::puts("  loopgain    loop-gain probe   (--probe VSOURCE)");
    std::puts("  run         execute the netlist's .op/.ac/.tran/.stability cards;");
    std::puts("              .ac/.tran cards need --node to pick the plotted output,");
    std::puts("              and sweep options below apply per card");
    std::puts("  gen         emit a generated stress netlist to --out or stdout:");
    std::puts("              gen ladder|rcmesh --size N [--fstart/--fstop/--ppd]");
    std::puts("  farm        corner/TEMP campaigns, shardable across processes:");
    std::puts("              plan  <netlist> --node N [--temps T,..] [--corner n:p=v,..]*");
    std::puts("                    [--param p=v1,v2,..]* [sweep opts] [--out plan.json]");
    std::puts("                    [--analysis stability|impedance [--source e1,..]");
    std::puts("                     |transient [--source ELEM] [--tstop/--dt] [--step A]]");
    std::puts("                    (.temp / .corner / .tran netlist cards seed the grid)");
    std::puts("              run   <plan.json> [--shard k/N] [--threads N] [--out f.json]");
    std::puts("              exec  <plan.json> [--workers N] [--dir D] [--out f.json]");
    std::puts("                    [--point-timeout S] [--retries N] [--resume] [--quiet]");
    std::puts("                    fault-tolerant multi-process run: work-stealing leases,");
    std::puts("                    per-point timeout, retry + quarantine, crash-safe JSONL");
    std::puts("                    shards, SIGINT-resumable (exit 0 ok, 3 = quarantined");
    std::puts("                    points, 130 = interrupted/resumable)");
    std::puts("              merge <plan.json> <shard.json|worker.jsonl>...");
    std::puts("                    [--out f.json | --table] (streams JSONL shards with");
    std::puts("                    O(1) resident records)");
    std::puts("  serve       long-lived campaign service (JSON-lines protocol; see");
    std::puts("              README \"Serving\"): accepts plans as submit frames, runs");
    std::puts("              them through the fault-tolerant orchestrator, streams");
    std::puts("              per-point records + the merged report back:");
    std::puts("              serve --socket PATH | --stdio  [--dir ROOT] [--workers N]");
    std::puts("                    [--max-concurrent M] [--queue-depth Q] [--max-frame B]");
    std::puts("                    [--point-timeout S] [--retries N] [--drain-grace S]");
    std::puts("                    [--quiet]; SIGTERM drains gracefully (exit 0), a second");
    std::puts("                    SIGTERM checkpoints in-flight requests immediately");
    std::puts("options:");
    std::puts("  --node NAME --all --probe NAME --source ELEM,.. --fstart HZ --fstop HZ");
    std::puts("  --ppd N");
    std::puts("  --tstop S --dt S --threads N (0 = all cores) --csv --annotate");
    std::puts("  --adaptive (rational-fit adaptive grid: factor 5-10x fewer points)");
    std::puts("  --fit-tol TOL --anchors-per-decade N (adaptive sweep tuning)");
    std::puts("  --order amd-approx|amd|count|none (column pre-ordering; default amd-approx)");
    std::puts("  --no-simd (scalar batched solves) --warm (warm-started refactorization)");
    std::puts("  --no-supernodal (column-at-a-time numeric path; supernodal is default)");
    std::puts("  --warm-pipeline (overlap next-point refactorization with batched solves)");
    std::puts("  --temps/--corner/--param (campaign grid) --shard k/N --out FILE --table");
}

} // namespace

int main(int argc, char** argv)
{
    try {
        if (argc < 2) {
            print_usage();
            return 1;
        }
        const std::string command = argv[1];
        if (command == "--help" || command == "-h") {
            print_usage();
            return 0;
        }
        if (command == "farm")
            return cmd_farm(argc, argv);
        if (command == "serve")
            return cmd_serve(argc, argv);
        if (command == "gen")
            return cmd_gen(argc, argv);
        // The netlist is the command's one free positional, so flags may
        // come before or after it; a second bare token is still an error
        // (mistyped flag values must not silently become netlist paths).
        const cli_options opt = parse_cli_options(argc - 2, argv + 2,
                                                  /*allow_positionals=*/true);
        if (opt.positionals.empty()) {
            print_usage();
            return 1;
        }
        if (opt.positionals.size() > 1)
            throw analysis_error(command + ": expected one netlist path, got '"
                                 + opt.positionals[0] + "' and '" + opt.positionals[1]
                                 + "'");
        const std::string& netlist_path = opt.positionals[0];

        spice::parsed_netlist net = spice::parse_netlist_file(netlist_path);
        if (!net.title.empty())
            std::printf("netlist: %s\n", net.title.c_str());

        if (command == "op")
            return cmd_op(net.ckt, opt);
        if (command == "ac")
            return cmd_ac(net.ckt, opt);
        if (command == "tran")
            return cmd_tran(net.ckt, opt);
        if (command == "stability")
            return cmd_stability(net.ckt, opt);
        if (command == "impedance")
            return cmd_impedance(net.ckt, opt);
        if (command == "pz")
            return cmd_pz(net.ckt, opt);
        if (command == "loopgain")
            return cmd_loopgain(net.ckt, opt);
        if (command == "run")
            return cmd_run(net, opt);
        print_usage();
        return 1;
    } catch (const acstab::error& e) {
        std::fprintf(stderr, "acstab: %s\n", e.what());
        return 1;
    }
}
