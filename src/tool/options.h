// CLI option parsing for the acstab tool.
#ifndef ACSTAB_TOOL_OPTIONS_H
#define ACSTAB_TOOL_OPTIONS_H

#include <cstddef>
#include <string>

#include "common/types.h"

namespace acstab::tool {

struct cli_options {
    std::string node;
    std::string probe;
    real fstart = 1e3;
    real fstop = 1e9;
    std::size_t ppd = 50;
    real tstop = 0.0;
    real dt = 0.0;
    /// Worker threads for frequency-domain sweeps (1 = serial, 0 = all
    /// hardware threads).
    std::size_t threads = 1;
    /// Adaptive frequency grid: solve coarse anchors, fit a rational
    /// model, factor only where the model fails its residual check.
    bool adaptive = false;
    /// Relative model tolerance of the adaptive sweep (--fit-tol).
    real fit_tol = 1e-6;
    /// Anchor density of the adaptive sweep (--anchors-per-decade).
    std::size_t anchors_per_decade = 4;
    bool csv = false;
    bool annotate = false;
    bool all_nodes = false;
};

/// Parse "--key value" style options; throws analysis_error on unknown
/// keys or malformed values.
[[nodiscard]] cli_options parse_cli_options(int argc, char** argv);

/// Number of log-sweep points covering [fstart, fstop] at ppd density.
[[nodiscard]] std::size_t sweep_point_count(real fstart, real fstop, std::size_t ppd);

} // namespace acstab::tool

#endif // ACSTAB_TOOL_OPTIONS_H
