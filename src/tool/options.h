// CLI option parsing for the acstab tool.
#ifndef ACSTAB_TOOL_OPTIONS_H
#define ACSTAB_TOOL_OPTIONS_H

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/param_grid.h"

namespace acstab::tool {

struct cli_options {
    std::string node;
    std::string probe;
    real fstart = 1e3;
    real fstop = 1e9;
    std::size_t ppd = 50;
    real tstop = 0.0;
    real dt = 0.0;
    /// Worker threads for frequency-domain sweeps (1 = serial, 0 = all
    /// hardware threads).
    std::size_t threads = 1;
    /// Adaptive frequency grid: solve coarse anchors, fit a rational
    /// model, factor only where the model fails its residual check.
    bool adaptive = false;
    /// Relative model tolerance of the adaptive sweep (--fit-tol).
    real fit_tol = 1e-6;
    /// Anchor density of the adaptive sweep (--anchors-per-decade).
    std::size_t anchors_per_decade = 4;
    bool csv = false;
    bool annotate = false;
    bool all_nodes = false;
    /// Sparse-solver tuning: --order amd-approx|amd|count|none column
    /// pre-ordering (empty = the default, amd-approx), --no-simd scalar
    /// batch kernel, --warm frequency-coherence warm-started
    /// refactorization, --no-supernodal column-at-a-time numeric path
    /// (ablation; supernodal is the default), --warm-pipeline pipelined
    /// warm start (refactor the next frequency point concurrently with
    /// this point's batched solves; results bit-identical to cold).
    std::string order;
    bool no_simd = false;
    bool warm = false;
    bool no_supernodal = false;
    bool warm_pipeline = false;
    /// Target circuit node count for `acstab gen` (--size).
    std::size_t size = 0;
    /// `acstab tran`: print the shared transient solver's counters
    /// (solves, symbolic builds, pattern rebuilds, guard activity).
    bool solver_stats = false;
    /// `acstab tran`: run the seed one-shot solve path (fresh
    /// factorization per Newton iteration) instead of the shared
    /// symbolic path — the ablation/equivalence baseline.
    bool oneshot = false;
    /// Step amplitude for transient campaigns (--step; volts on a pulsed
    /// source, amps for nodal injection).
    real step = 0.01;
    /// Whether the band/density flags were given explicitly (campaign
    /// planning falls back to the netlist's .stability card otherwise).
    bool fstart_set = false;
    bool fstop_set = false;
    bool ppd_set = false;

    /// --source e1,e2: elements forced onto the impedance partition's
    /// source side (`acstab impedance`, `acstab farm plan --analysis
    /// impedance`).
    std::string source;

    // Corner-farm campaign flags (`acstab farm ...`).
    std::string analysis;              ///< --analysis stability|impedance|transient
    std::string temps;                 ///< --temps -40,27,125
    std::vector<std::string> corners;  ///< --corner name:p=v,... (repeatable)
    std::vector<std::string> params;   ///< --param name=v1,v2,... (repeatable)
    std::string shard;                 ///< --shard k/N (1-based k)
    std::string out;                   ///< --out FILE (default: stdout)
    bool table = false;                ///< --table (merge: text table, not JSON)

    // Fault-tolerant orchestrator flags (`acstab farm exec`).
    std::size_t workers = 2;           ///< --workers N (worker processes)
    std::string dir;                   ///< --dir D (journal + shard streams)
    bool resume = false;               ///< --resume (continue an interrupted exec)
    real point_timeout = 300.0;        ///< --point-timeout SECONDS (per point)
    std::size_t retries = 3;           ///< --retries N (attempts before quarantine)
    bool quiet = false;                ///< --quiet (no per-point progress lines)
    std::string shard_file;            ///< --shard-file F (internal: farm worker)
    std::size_t worker_id = 0;         ///< --worker-id K (internal: farm worker)

    // Campaign service flags (`acstab serve`).
    std::string socket_path;           ///< --socket PATH (unix listen socket)
    bool stdio = false;                ///< --stdio (single client on stdin/stdout)
    std::size_t max_concurrent = 2;    ///< --max-concurrent M (parallel requests)
    std::size_t queue_depth = 4;       ///< --queue-depth Q (admitted waiters)
    std::size_t max_frame = 1u << 20;  ///< --max-frame BYTES (request line cap)
    real drain_grace = 10.0;           ///< --drain-grace SECONDS (SIGTERM budget)
    /// Non-flag arguments after the command's own positionals (the merge
    /// step's shard files).
    std::vector<std::string> positionals;
};

/// Parse "--key value" style options; throws analysis_error on unknown
/// keys or malformed values. With allow_positionals (the farm commands:
/// merge takes shard files), bare non-"--" tokens are collected into
/// `positionals`; otherwise they are errors, as before.
[[nodiscard]] cli_options parse_cli_options(int argc, char** argv,
                                            bool allow_positionals = false);

/// Number of log-sweep points covering [fstart, fstop] at ppd density.
[[nodiscard]] std::size_t sweep_point_count(real fstart, real fstop, std::size_t ppd);

/// "a,b,c" -> values (SPICE number syntax per element).
[[nodiscard]] std::vector<real> parse_value_list(const std::string& text);

/// "a,b,c" -> names (the --source element list; empty fields rejected).
[[nodiscard]] std::vector<std::string> parse_name_list(const std::string& text);

/// "--corner name:p1=v1,p2=v2" payload -> corner_def (overrides optional).
[[nodiscard]] core::corner_def parse_corner_spec(const std::string& text);

/// "--param name=v1,v2,..." payload -> param_axis.
[[nodiscard]] core::param_axis parse_param_axis(const std::string& text);

/// "--shard k/N" payload (1-based k) -> {0-based index, count}.
struct shard_spec {
    std::size_t index = 0;
    std::size_t count = 1;
};
[[nodiscard]] shard_spec parse_shard_spec(const std::string& text);

} // namespace acstab::tool

#endif // ACSTAB_TOOL_OPTIONS_H
