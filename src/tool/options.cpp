#include "tool/options.h"

#include <cmath>
#include <string_view>

#include "common/error.h"
#include "numeric/interpolation.h"
#include "spice/units.h"

namespace acstab::tool {

cli_options parse_cli_options(int argc, char** argv)
{
    cli_options opt;
    int i = 0;
    const auto need_value = [&](std::string_view key) -> std::string {
        if (i + 1 >= argc)
            throw analysis_error(std::string(key) + " needs a value");
        return argv[++i];
    };
    for (; i < argc; ++i) {
        const std::string_view key = argv[i];
        if (key == "--node")
            opt.node = need_value(key);
        else if (key == "--probe")
            opt.probe = need_value(key);
        else if (key == "--fstart")
            opt.fstart = spice::parse_spice_number(need_value(key));
        else if (key == "--fstop")
            opt.fstop = spice::parse_spice_number(need_value(key));
        else if (key == "--ppd")
            opt.ppd = static_cast<std::size_t>(spice::parse_spice_number(need_value(key)));
        else if (key == "--tstop")
            opt.tstop = spice::parse_spice_number(need_value(key));
        else if (key == "--dt")
            opt.dt = spice::parse_spice_number(need_value(key));
        else if (key == "--threads")
            opt.threads = static_cast<std::size_t>(spice::parse_spice_number(need_value(key)));
        else if (key == "--adaptive")
            opt.adaptive = true;
        else if (key == "--fit-tol")
            opt.fit_tol = spice::parse_spice_number(need_value(key));
        else if (key == "--anchors-per-decade")
            opt.anchors_per_decade
                = static_cast<std::size_t>(spice::parse_spice_number(need_value(key)));
        else if (key == "--csv")
            opt.csv = true;
        else if (key == "--annotate")
            opt.annotate = true;
        else if (key == "--all")
            opt.all_nodes = true;
        else
            throw analysis_error("unknown option '" + std::string(key) + "'");
    }
    return opt;
}

std::size_t sweep_point_count(real fstart, real fstop, std::size_t ppd)
{
    if (!(fstart > 0.0) || !(fstop > fstart))
        throw analysis_error("sweep: need 0 < fstart < fstop");
    // Delegate to the one shared grid helper so the CLI, core::sweep_spec
    // and the adaptive driver always realize identical grids.
    return numeric::log_grid(fstart, fstop, ppd).size();
}

} // namespace acstab::tool
