#include "tool/options.h"

#include <cmath>
#include <string_view>

#include "common/error.h"
#include "numeric/interpolation.h"
#include "spice/units.h"

namespace acstab::tool {

cli_options parse_cli_options(int argc, char** argv, bool allow_positionals)
{
    cli_options opt;
    int i = 0;
    const auto need_value = [&](std::string_view key) -> std::string {
        if (i + 1 >= argc)
            throw analysis_error(std::string(key) + " needs a value");
        return argv[++i];
    };
    for (; i < argc; ++i) {
        const std::string_view key = argv[i];
        if (key == "--node")
            opt.node = need_value(key);
        else if (key == "--probe")
            opt.probe = need_value(key);
        else if (key == "--fstart") {
            opt.fstart = spice::parse_spice_number(need_value(key));
            opt.fstart_set = true;
        } else if (key == "--fstop") {
            opt.fstop = spice::parse_spice_number(need_value(key));
            opt.fstop_set = true;
        } else if (key == "--ppd") {
            opt.ppd = static_cast<std::size_t>(spice::parse_spice_number(need_value(key)));
            opt.ppd_set = true;
        }
        else if (key == "--tstop")
            opt.tstop = spice::parse_spice_number(need_value(key));
        else if (key == "--dt")
            opt.dt = spice::parse_spice_number(need_value(key));
        else if (key == "--threads")
            opt.threads = static_cast<std::size_t>(spice::parse_spice_number(need_value(key)));
        else if (key == "--adaptive")
            opt.adaptive = true;
        else if (key == "--fit-tol")
            opt.fit_tol = spice::parse_spice_number(need_value(key));
        else if (key == "--anchors-per-decade")
            opt.anchors_per_decade
                = static_cast<std::size_t>(spice::parse_spice_number(need_value(key)));
        else if (key == "--order")
            opt.order = need_value(key);
        else if (key == "--no-simd")
            opt.no_simd = true;
        else if (key == "--warm")
            opt.warm = true;
        else if (key == "--no-supernodal")
            opt.no_supernodal = true;
        else if (key == "--warm-pipeline")
            opt.warm_pipeline = true;
        else if (key == "--size")
            opt.size = static_cast<std::size_t>(spice::parse_spice_number(need_value(key)));
        else if (key == "--solver-stats")
            opt.solver_stats = true;
        else if (key == "--oneshot")
            opt.oneshot = true;
        else if (key == "--step")
            opt.step = spice::parse_spice_number(need_value(key));
        else if (key == "--csv")
            opt.csv = true;
        else if (key == "--annotate")
            opt.annotate = true;
        else if (key == "--all")
            opt.all_nodes = true;
        else if (key == "--source")
            opt.source = need_value(key);
        else if (key == "--analysis")
            opt.analysis = need_value(key);
        else if (key == "--temps")
            opt.temps = need_value(key);
        else if (key == "--corner")
            opt.corners.push_back(need_value(key));
        else if (key == "--param")
            opt.params.push_back(need_value(key));
        else if (key == "--shard")
            opt.shard = need_value(key);
        else if (key == "--out")
            opt.out = need_value(key);
        else if (key == "--table")
            opt.table = true;
        else if (key == "--workers")
            opt.workers = static_cast<std::size_t>(spice::parse_spice_number(need_value(key)));
        else if (key == "--dir")
            opt.dir = need_value(key);
        else if (key == "--resume")
            opt.resume = true;
        else if (key == "--point-timeout")
            opt.point_timeout = spice::parse_spice_number(need_value(key));
        else if (key == "--retries")
            opt.retries = static_cast<std::size_t>(spice::parse_spice_number(need_value(key)));
        else if (key == "--quiet")
            opt.quiet = true;
        else if (key == "--shard-file")
            opt.shard_file = need_value(key);
        else if (key == "--socket")
            opt.socket_path = need_value(key);
        else if (key == "--stdio")
            opt.stdio = true;
        else if (key == "--max-concurrent")
            opt.max_concurrent
                = static_cast<std::size_t>(spice::parse_spice_number(need_value(key)));
        else if (key == "--queue-depth")
            opt.queue_depth
                = static_cast<std::size_t>(spice::parse_spice_number(need_value(key)));
        else if (key == "--max-frame")
            opt.max_frame
                = static_cast<std::size_t>(spice::parse_spice_number(need_value(key)));
        else if (key == "--drain-grace")
            opt.drain_grace = spice::parse_spice_number(need_value(key));
        else if (key == "--worker-id")
            opt.worker_id
                = static_cast<std::size_t>(spice::parse_spice_number(need_value(key)));
        else if (allow_positionals && !key.empty() && key.substr(0, 2) != "--")
            opt.positionals.emplace_back(key);
        else
            throw analysis_error("unknown option '" + std::string(key) + "'");
    }
    return opt;
}

namespace {

    /// Split on a separator, keeping empty fields as errors at the call
    /// sites (every grammar here forbids them).
    [[nodiscard]] std::vector<std::string> split(const std::string& text, char sep)
    {
        std::vector<std::string> out;
        std::size_t start = 0;
        while (true) {
            const std::size_t pos = text.find(sep, start);
            out.push_back(text.substr(start, pos - start));
            if (pos == std::string::npos)
                return out;
            start = pos + 1;
        }
    }

} // namespace

std::vector<real> parse_value_list(const std::string& text)
{
    if (text.empty())
        throw analysis_error("expected a comma-separated value list");
    std::vector<real> values;
    for (const std::string& field : split(text, ','))
        values.push_back(spice::parse_spice_number(field));
    return values;
}

std::vector<std::string> parse_name_list(const std::string& text)
{
    if (text.empty())
        throw analysis_error("expected a comma-separated name list");
    std::vector<std::string> names = split(text, ',');
    for (const std::string& name : names)
        if (name.empty())
            throw analysis_error("empty name in list '" + text + "'");
    return names;
}

core::corner_def parse_corner_spec(const std::string& text)
{
    core::corner_def corner;
    const std::size_t colon = text.find(':');
    corner.name = text.substr(0, colon);
    if (corner.name.empty())
        throw analysis_error("corner spec needs a name ('name:p=v,...'), got '" + text + "'");
    if (colon == std::string::npos)
        return corner;
    const std::string payload = text.substr(colon + 1);
    if (payload.empty())
        throw analysis_error("corner '" + corner.name + "' has an empty override list");
    for (const std::string& field : split(payload, ',')) {
        const std::size_t eq = field.find('=');
        if (eq == 0 || eq == std::string::npos || eq + 1 == field.size())
            throw analysis_error("corner override must be p=value, got '" + field + "'");
        corner.overrides[field.substr(0, eq)]
            = spice::parse_spice_number(field.substr(eq + 1));
    }
    return corner;
}

core::param_axis parse_param_axis(const std::string& text)
{
    const std::size_t eq = text.find('=');
    if (eq == 0 || eq == std::string::npos || eq + 1 == text.size())
        throw analysis_error("param axis must be name=v1,v2,..., got '" + text + "'");
    core::param_axis axis;
    axis.name = text.substr(0, eq);
    axis.values = parse_value_list(text.substr(eq + 1));
    return axis;
}

shard_spec parse_shard_spec(const std::string& text)
{
    const std::size_t slash = text.find('/');
    if (slash == 0 || slash == std::string::npos || slash + 1 == text.size())
        throw analysis_error("shard must be k/N (1-based), got '" + text + "'");
    shard_spec spec;
    const real k = spice::parse_spice_number(text.substr(0, slash));
    const real n = spice::parse_spice_number(text.substr(slash + 1));
    if (!(k >= 1.0) || !(n >= 1.0) || k != std::floor(k) || n != std::floor(n) || k > n)
        throw analysis_error("shard must satisfy 1 <= k <= N, got '" + text + "'");
    spec.index = static_cast<std::size_t>(k) - 1;
    spec.count = static_cast<std::size_t>(n);
    return spec;
}

std::size_t sweep_point_count(real fstart, real fstop, std::size_t ppd)
{
    if (!(fstart > 0.0) || !(fstop > fstart))
        throw analysis_error("sweep: need 0 < fstart < fstop");
    // Delegate to the one shared grid helper so the CLI, core::sweep_spec
    // and the adaptive driver always realize identical grids.
    return numeric::log_grid(fstart, fstop, ppd).size();
}

} // namespace acstab::tool
