#include "numeric/aaa.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.h"
#include "numeric/dense_matrix.h"
#include "numeric/eig.h"
#include "numeric/lu.h"

namespace acstab::numeric {

namespace {

    /// Smallest-eigenpair right vector of the Hermitian positive
    /// semi-definite normal matrix M = A^H A by shifted inverse iteration.
    /// M is tiny (support_count squared), so a dense LU per call is cheap;
    /// the ridge keeps the factorization well posed when the smallest
    /// eigenvalue is (numerically) zero — which is exactly the interesting
    /// case, where any vector of the near-null space is a valid weight
    /// vector.
    std::vector<cplx> smallest_eigenvector(const dense_matrix<cplx>& m)
    {
        const std::size_t n = m.rows();
        real trace = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            trace += m(i, i).real();
        const real ridge0 = std::max(trace / static_cast<real>(n), real{1.0})
            * std::numeric_limits<real>::epsilon();

        for (real ridge = ridge0; ridge <= 1e33; ridge *= 1e3) {
            dense_matrix<cplx> shifted = m;
            for (std::size_t i = 0; i < n; ++i)
                shifted(i, i) += cplx{ridge, 0.0};
            std::vector<cplx> v(n, cplx{1.0, 0.0});
            bool ok = true;
            try {
                const lu_decomposition<cplx> lu(std::move(shifted));
                for (int it = 0; it < 24 && ok; ++it) {
                    v = lu.solve(v);
                    real norm = 0.0;
                    for (const cplx& e : v)
                        norm += std::norm(e);
                    norm = std::sqrt(norm);
                    // Overflow/underflow mid-iteration means the shift is
                    // too light for this conditioning, not that the
                    // current (garbage) iterate is an answer.
                    ok = norm > 0.0 && std::isfinite(norm);
                    if (ok)
                        for (cplx& e : v)
                            e /= norm;
                }
            } catch (const numeric_error&) {
                ok = false;
            }
            if (ok)
                return v;
            // Retry with a heavier ridge; M is PSD so this terminates.
        }
        throw numeric_error("aaa: weight eigen-solve failed to converge");
    }

} // namespace

cplx aaa_model::eval(std::size_t c, real x) const
{
    return eval_with(coeffs_at(x), c);
}

cplx aaa_model::eval_with(const barycentric_coeffs& bc, std::size_t c) const
{
    if (c >= support_f_.size())
        throw numeric_error("aaa: component index out of range");
    if (bc.exact_hit)
        return support_f_[c][bc.hit];
    cplx acc{};
    for (std::size_t j = 0; j < bc.coeff.size(); ++j)
        acc += bc.coeff[j] * support_f_[c][j];
    return acc;
}

barycentric_coeffs aaa_model::coeffs_at(real x) const
{
    if (support_x_.empty())
        throw numeric_error("aaa: empty model");
    barycentric_coeffs bc;
    // An evaluation point indistinguishable from a support point makes the
    // naive form 0/0; return the interpolated (stored) value instead.
    for (std::size_t j = 0; j < support_x_.size(); ++j) {
        if (x == support_x_[j]
            || std::fabs(x - support_x_[j]) < 1e-14 * std::fabs(support_x_[j])) {
            bc.exact_hit = true;
            bc.hit = j;
            return bc;
        }
    }
    bc.coeff.resize(support_x_.size());
    cplx den{};
    real den_mass = 0.0;
    for (std::size_t j = 0; j < support_x_.size(); ++j) {
        const cplx term = weights_[j] / cplx{x - support_x_[j], 0.0};
        bc.coeff[j] = term;
        den += term;
        den_mass += std::abs(term);
    }
    if (den == cplx{})
        throw numeric_error("aaa: degenerate barycentric denominator");
    bc.denom_health = den_mass > 0.0 ? std::abs(den) / den_mass : 1.0;
    for (cplx& e : bc.coeff)
        e /= den;
    return bc;
}

aaa_model aaa_fit(std::span<const real> x, const std::vector<std::vector<cplx>>& f,
                  const aaa_options& opt)
{
    const std::size_t n = x.size();
    if (n < 3)
        throw numeric_error("aaa: need at least 3 samples");
    if (f.empty())
        throw numeric_error("aaa: need at least one component");
    for (const std::vector<cplx>& fc : f)
        if (fc.size() != n)
            throw numeric_error("aaa: component/abscissa length mismatch");
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j)
            if (x[i] == x[j])
                throw numeric_error("aaa: abscissae must be distinct");

    const std::size_t nc = f.size();
    // Pointwise-relative error weights: downstream consumers differentiate
    // ln|f|, so the fit must be accurate relative to each SAMPLE's own
    // magnitude, not the channel's peak (a response spanning decades would
    // otherwise be fitted sloppily at its small end, exactly where the
    // log-curvature is just as sensitive). The floor keeps near-zero
    // samples from demanding noise-level accuracy.
    std::vector<std::vector<real>> wgt(nc, std::vector<real>(n));
    for (std::size_t c = 0; c < nc; ++c) {
        real s = 0.0;
        for (const cplx& v : f[c])
            s = std::max(s, std::abs(v));
        const real floor = std::max(s * 1e-9, std::numeric_limits<real>::min());
        for (std::size_t i = 0; i < n; ++i)
            wgt[c][i] = 1.0 / std::max(std::abs(f[c][i]), floor);
    }

    // Running approximation at every sample; seeded with the per-component
    // mean so the first support point is the sample farthest from it.
    std::vector<std::vector<cplx>> r(nc, std::vector<cplx>(n));
    for (std::size_t c = 0; c < nc; ++c) {
        cplx mean{};
        for (const cplx& v : f[c])
            mean += v;
        mean /= static_cast<real>(n);
        std::fill(r[c].begin(), r[c].end(), mean);
    }

    aaa_model model;
    std::vector<bool> is_support(n, false);
    const std::size_t max_support = std::min(opt.max_support, n - 1);
    real err = std::numeric_limits<real>::infinity();

    // Warm-start seeds: sanitized (in range, unique, within budget) and
    // promoted before any greedy step, with the weight solve deferred to
    // the last seed — see aaa_options::seed_support.
    std::vector<std::size_t> seeds;
    seeds.reserve(opt.seed_support.size());
    for (const std::size_t s : opt.seed_support) {
        if (s >= n || seeds.size() >= max_support)
            continue;
        bool dup = false;
        for (const std::size_t prev : seeds)
            dup = dup || prev == s;
        if (!dup)
            seeds.push_back(s);
    }
    std::size_t seed_pos = 0;

    // The Loewner matrix A — one row per (sample, component), one column
    // per support point, support rows zeroed — is kept explicitly so the
    // normal matrix M = A^H A can be updated INCREMENTALLY per greedy
    // step (subtract the promoted sample's row contributions, append the
    // new column's inner products) instead of being rebuilt from scratch:
    // O(n nc m) per step rather than O(n nc m^2).
    std::vector<std::vector<cplx>> acols;
    dense_matrix<cplx> gram(max_support, max_support);

    while (model.support_x_.size() < max_support) {
        std::size_t worst = n;
        if (seed_pos < seeds.size()) {
            // Adopt the next warm-start seed instead of searching.
            worst = seeds[seed_pos++];
        } else {
            // Greedy step: promote the worst non-support sample.
            real worst_err = -1.0;
            for (std::size_t i = 0; i < n; ++i) {
                if (is_support[i])
                    continue;
                real e = 0.0;
                for (std::size_t c = 0; c < nc; ++c)
                    e = std::max(e, std::abs(f[c][i] - r[c][i]) * wgt[c][i]);
                if (e > worst_err) {
                    worst_err = e;
                    worst = i;
                }
            }
        }
        if (worst == n)
            break;
        is_support[worst] = true;
        model.support_x_.push_back(x[worst]);
        model.support_idx_.push_back(worst);

        const std::size_t m = model.support_x_.size();

        // Weights: least-squares null vector of the Loewner matrix with one
        // row per (non-support sample, component), each row scaled by that
        // sample's relative-error weight:
        //   A[(i,c)][j] = wgt_c(i) * (f_c(x_i) - f_c(x_j)) / (x_i - x_j).
        // m is small, so the normal matrix M = A^H A plus inverse iteration
        // is cheaper and simpler than a rectangular SVD; the squared
        // conditioning costs a few digits we can spare at the fit
        // tolerances the adaptive sweep uses.
        //
        // Promoting sample `worst` removes its rows from every existing
        // inner product...
        for (std::size_t a = 0; a + 1 < m; ++a)
            for (std::size_t b = 0; b + 1 < m; ++b)
                for (std::size_t c = 0; c < nc; ++c)
                    gram(a, b) -= std::conj(acols[a][worst * nc + c])
                        * acols[b][worst * nc + c];
        for (std::vector<cplx>& col : acols)
            for (std::size_t c = 0; c < nc; ++c)
                col[worst * nc + c] = cplx{};
        // ...and contributes a fresh column of difference quotients.
        std::vector<cplx> newcol(n * nc, cplx{});
        for (std::size_t i = 0; i < n; ++i) {
            if (is_support[i])
                continue;
            for (std::size_t c = 0; c < nc; ++c)
                newcol[i * nc + c] = (f[c][i] - f[c][worst]) * wgt[c][i]
                    / cplx{x[i] - x[worst], 0.0};
        }
        for (std::size_t j = 0; j + 1 < m; ++j) {
            cplx dot{};
            for (std::size_t k = 0; k < n * nc; ++k)
                dot += std::conj(acols[j][k]) * newcol[k];
            gram(j, m - 1) = dot;
            gram(m - 1, j) = std::conj(dot);
        }
        real nn = 0.0;
        for (const cplx& v : newcol)
            nn += std::norm(v);
        gram(m - 1, m - 1) = cplx{nn, 0.0};
        acols.push_back(std::move(newcol));

        // While seeds remain, the weight solve is deferred: the next
        // iteration promotes another seed anyway, so intermediate weights
        // would be discarded unread. One eigen-solve covers the batch.
        if (seed_pos < seeds.size())
            continue;

        if (m == 1) {
            model.weights_ = {cplx{1.0, 0.0}};
        } else {
            dense_matrix<cplx> normal(m, m);
            for (std::size_t a = 0; a < m; ++a)
                for (std::size_t b = 0; b < m; ++b)
                    normal(a, b) = gram(a, b);
            // Jacobi equilibration before the eigen solve: support points
            // spread over decades give Loewner columns of wildly different
            // scale, and the normal matrix squares that spread — without
            // rescaling the null vector drowns in rounding noise. Scaling
            // column j by 1/sqrt(M_jj) (and back-scaling the result)
            // preserves the exact null space while taming the conditioning.
            std::vector<real> colscale(m, 1.0);
            for (std::size_t j = 0; j < m; ++j)
                if (normal(j, j).real() > 0.0)
                    colscale[j] = 1.0 / std::sqrt(normal(j, j).real());
            for (std::size_t a = 0; a < m; ++a)
                for (std::size_t b = 0; b < m; ++b)
                    normal(a, b) *= colscale[a] * colscale[b];
            model.weights_ = smallest_eigenvector(normal);
            real wnorm = 0.0;
            for (std::size_t j = 0; j < m; ++j) {
                model.weights_[j] *= colscale[j];
                wnorm += std::norm(model.weights_[j]);
            }
            wnorm = std::sqrt(wnorm);
            if (wnorm > 0.0)
                for (cplx& w : model.weights_)
                    w /= wnorm;
        }

        // Update the running approximation and measure the fit.
        err = 0.0;
        std::vector<cplx> terms(m);
        for (std::size_t i = 0; i < n; ++i) {
            if (is_support[i])
                continue;
            cplx den{};
            for (std::size_t j = 0; j < m; ++j) {
                terms[j] = model.weights_[j] / cplx{x[i] - model.support_x_[j], 0.0};
                den += terms[j];
            }
            for (std::size_t c = 0; c < nc; ++c) {
                cplx num{};
                for (std::size_t j = 0; j < m; ++j)
                    num += terms[j] * f[c][model.support_idx_[j]];
                r[c][i] = den == cplx{} ? f[c][i] : num / den;
                err = std::max(err, std::abs(f[c][i] - r[c][i]) * wgt[c][i]);
            }
        }
        if (err <= opt.rel_tol)
            break;
    }

    model.support_f_.resize(nc);
    for (std::size_t c = 0; c < nc; ++c) {
        model.support_f_[c].resize(model.support_idx_.size());
        for (std::size_t j = 0; j < model.support_idx_.size(); ++j)
            model.support_f_[c][j] = f[c][model.support_idx_[j]];
    }
    model.fit_error_ = err;
    return model;
}

namespace {

    /// N(x) = S + sum_j v[j]/(x - z[j]) together with a cancellation-aware
    /// relative residual (|N| over the sum of term magnitudes): a true
    /// root shows near-total cancellation, the real-embedding's conjugate
    /// mirror of a root does not.
    struct nodal_eval {
        cplx value{};
        cplx derivative{};
        real rel_residual = 0.0;
    };

    [[nodiscard]] nodal_eval eval_nodal(cplx s_const, std::span<const real> z,
                                        std::span<const cplx> v, cplx x)
    {
        nodal_eval e;
        e.value = s_const;
        real scale = std::abs(s_const);
        for (std::size_t j = 0; j < z.size(); ++j) {
            const cplx d = x - z[j];
            if (d == cplx{}) {
                e.rel_residual = 1.0;
                return e; // exactly on a node: a pole of N, never a root
            }
            const cplx term = v[j] / d;
            e.value += term;
            e.derivative -= term / d;
            scale += std::abs(term);
        }
        e.rel_residual = scale > 0.0 ? std::abs(e.value) / scale : 1.0;
        return e;
    }

} // namespace

std::vector<cplx> barycentric_nodal_roots(std::span<const real> nodes,
                                          std::span<const cplx> values)
{
    if (nodes.size() != values.size())
        throw numeric_error("nodal roots: nodes/values size mismatch");

    // Deflate: multiplying N by (x - z_r) folds node r away and leaves
    // the secular form S + sum u_j/(x - z_j) with the same roots
    // (constant S = sum v_j). A vanishing S means the degree dropped —
    // one root moved to infinity — so deflate again.
    std::vector<real> z(nodes.begin(), nodes.end());
    std::vector<cplx> v(values.begin(), values.end());
    cplx s_const{};
    while (true) {
        if (z.size() < 2)
            return {};
        real vmax = 0.0;
        for (const cplx& vj : v)
            vmax = std::max(vmax, std::abs(vj));
        if (vmax == 0.0)
            return {};
        const cplx s = std::accumulate(v.begin(), v.end(), cplx{});
        const real zr = z.back();
        z.pop_back();
        v.pop_back();
        for (std::size_t j = 0; j < z.size(); ++j)
            v[j] *= cplx{z[j] - zr, 0.0};
        if (std::abs(s) > 1e-13 * vmax) {
            s_const = s;
            break;
        }
        // s ~ 0: the product is (numerically) homogeneous again with the
        // scaled values; loop and fold away another node.
    }

    // Secular roots = eigenvalues of C = diag(z) - (1/S) u 1^T. The
    // complex matrix is embedded as the real [[A, -B], [B, A]] whose
    // spectrum is eig(C) together with its conjugate mirror.
    const std::size_t m = z.size();
    dense_matrix<real> em(2 * m, 2 * m);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < m; ++j) {
            const cplx cij = (i == j ? cplx{z[i], 0.0} : cplx{}) - v[i] / s_const;
            em(i, j) = cij.real();
            em(i, m + j) = -cij.imag();
            em(m + i, j) = cij.imag();
            em(m + i, m + j) = cij.real();
        }
    }
    const std::vector<cplx> candidates = eigenvalues(std::move(em));

    // Newton-polish every candidate on N itself, then keep converged
    // roots with a genuinely cancelling residual, deduplicated.
    real span = 0.0;
    for (const real zj : z)
        for (const real zk : z)
            span = std::max(span, std::fabs(zj - zk));
    if (span == 0.0)
        span = std::fabs(z.front()) + 1.0;

    std::vector<cplx> roots;
    for (cplx x : candidates) {
        bool converged = false;
        for (int it = 0; it < 24; ++it) {
            const nodal_eval e = eval_nodal(s_const, z, v, x);
            if (e.rel_residual < 1e-9) {
                converged = true;
                break;
            }
            if (e.derivative == cplx{})
                break;
            const cplx step = e.value / e.derivative;
            if (!(std::isfinite(step.real()) && std::isfinite(step.imag())))
                break;
            x -= step;
            if (std::abs(step) <= 1e-14 * (std::abs(x) + span)) {
                converged = eval_nodal(s_const, z, v, x).rel_residual < 1e-7;
                break;
            }
        }
        if (!converged)
            continue;
        bool duplicate = false;
        for (const cplx& r : roots)
            duplicate = duplicate || std::abs(r - x) <= 1e-8 * (std::abs(x) + 1e-3 * span);
        if (!duplicate)
            roots.push_back(x);
    }
    std::sort(roots.begin(), roots.end(), [](const cplx& a, const cplx& b) {
        if (a.real() != b.real())
            return a.real() < b.real();
        return a.imag() < b.imag();
    });
    return roots;
}

std::vector<cplx> aaa_model::poles() const
{
    return barycentric_nodal_roots(support_x_, weights_);
}

std::vector<cplx> aaa_model::level_crossings(std::size_t c, cplx level) const
{
    if (c >= support_f_.size())
        throw numeric_error("level_crossings: component out of range");
    std::vector<cplx> v(weights_.size());
    for (std::size_t j = 0; j < v.size(); ++j)
        v[j] = weights_[j] * (support_f_[c][j] - level);
    return barycentric_nodal_roots(support_x_, v);
}

} // namespace acstab::numeric
