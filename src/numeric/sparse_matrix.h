// Sparse matrix in triplet (assembly) and compressed-sparse-column
// (factorization) forms, templated over the scalar.
//
// MNA stamps accumulate into the triplet form; duplicate coordinates sum,
// as SPICE stamping requires.
#ifndef ACSTAB_NUMERIC_SPARSE_MATRIX_H
#define ACSTAB_NUMERIC_SPARSE_MATRIX_H

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/error.h"
#include "numeric/dense_matrix.h"

namespace acstab::numeric {

/// Coordinate-format accumulator for matrix assembly.
template <class T>
class triplet_matrix {
public:
    triplet_matrix() = default;
    triplet_matrix(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {}

    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
    [[nodiscard]] std::size_t entry_count() const noexcept { return entries_.size(); }

    /// Accumulate value at (r, c); duplicates are summed on compression.
    void add(std::size_t r, std::size_t c, T value)
    {
        if (r >= rows_ || c >= cols_)
            throw numeric_error("triplet: index out of range");
        if (value == T{})
            return;
        entries_.push_back({r, c, value});
    }

    void clear_values_keep_capacity()
    {
        entries_.clear();
    }

    struct entry {
        std::size_t row;
        std::size_t col;
        T value;
    };

    [[nodiscard]] const std::vector<entry>& entries() const noexcept { return entries_; }

    [[nodiscard]] dense_matrix<T> to_dense() const
    {
        dense_matrix<T> d(rows_, cols_);
        for (const entry& e : entries_)
            d(e.row, e.col) += e.value;
        return d;
    }

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<entry> entries_;
};

/// Compressed-sparse-column matrix with summed duplicates.
template <class T>
class csc_matrix {
public:
    csc_matrix() = default;

    explicit csc_matrix(const triplet_matrix<T>& t)
        : rows_(t.rows()), cols_(t.cols()), col_ptr_(t.cols() + 1, 0)
    {
        using entry = typename triplet_matrix<T>::entry;
        std::vector<entry> sorted(t.entries().begin(), t.entries().end());
        std::sort(sorted.begin(), sorted.end(), [](const entry& a, const entry& b) {
            return a.col != b.col ? a.col < b.col : a.row < b.row;
        });
        for (std::size_t k = 0; k < sorted.size(); ++k) {
            if (k > 0 && sorted[k].col == sorted[k - 1].col && sorted[k].row == sorted[k - 1].row) {
                values_.back() += sorted[k].value;
                continue;
            }
            row_idx_.push_back(sorted[k].row);
            values_.push_back(sorted[k].value);
            ++col_ptr_[sorted[k].col + 1];
        }
        for (std::size_t c = 0; c < cols_; ++c)
            col_ptr_[c + 1] += col_ptr_[c];
    }

    /// Assemble directly from a known sparsity pattern and aligned values
    /// (the sweep engine refills one shared pattern at every frequency).
    csc_matrix(std::size_t rows, std::size_t cols, std::vector<std::size_t> col_ptr,
               std::vector<std::size_t> row_idx, std::vector<T> values)
        : rows_(rows), cols_(cols), col_ptr_(std::move(col_ptr)), row_idx_(std::move(row_idx)),
          values_(std::move(values))
    {
        if (col_ptr_.size() != cols_ + 1 || row_idx_.size() != values_.size()
            || col_ptr_.back() != values_.size())
            throw numeric_error("csc: inconsistent pattern arrays");
    }

    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
    [[nodiscard]] std::size_t nnz() const noexcept { return values_.size(); }

    [[nodiscard]] const std::vector<std::size_t>& col_ptr() const noexcept { return col_ptr_; }
    [[nodiscard]] const std::vector<std::size_t>& row_idx() const noexcept { return row_idx_; }
    [[nodiscard]] const std::vector<T>& values() const noexcept { return values_; }

    /// Mutable value storage for in-place refills of a fixed pattern.
    [[nodiscard]] std::vector<T>& values_mut() noexcept { return values_; }

    [[nodiscard]] dense_matrix<T> to_dense() const
    {
        dense_matrix<T> d(rows_, cols_);
        for (std::size_t c = 0; c < cols_; ++c)
            for (std::size_t k = col_ptr_[c]; k < col_ptr_[c + 1]; ++k)
                d(row_idx_[k], c) += values_[k];
        return d;
    }

    [[nodiscard]] std::vector<T> multiply(const std::vector<T>& x) const
    {
        std::vector<T> y(rows_);
        multiply_into(x, y);
        return y;
    }

    /// y = A x into a caller-owned buffer (the sweep engine's residual
    /// guard runs one SpMV per frequency and must not allocate).
    void multiply_into(const std::vector<T>& x, std::vector<T>& y) const
    {
        if (x.size() != cols_ || y.size() != rows_)
            throw numeric_error("csc: vector length mismatch");
        multiply_into(x.data(), y.data());
    }

    /// Pointer form of the same SpMV, for callers whose vectors live in
    /// larger staging blocks (the warm-start refinement measures one
    /// residual per batched right-hand-side column). x and y must not
    /// alias and must hold cols()/rows() elements.
    void multiply_into(const T* x, T* y) const
    {
        std::fill(y, y + rows_, T{});
        for (std::size_t c = 0; c < cols_; ++c)
            for (std::size_t k = col_ptr_[c]; k < col_ptr_[c + 1]; ++k)
                y[row_idx_[k]] += values_[k] * x[c];
    }

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<std::size_t> col_ptr_;
    std::vector<std::size_t> row_idx_;
    std::vector<T> values_;
};

} // namespace acstab::numeric

#endif // ACSTAB_NUMERIC_SPARSE_MATRIX_H
