// AVX2+FMA bodies for the supernodal vector kernels. This translation
// unit is compiled with -mavx2 -mfma when the compiler accepts them
// (CMakeLists); everything here stays behind the runtime cpuid gate in
// available(), so linking these bodies into a baseline binary is safe.
#include "numeric/sn_kernels.h"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define ACSTAB_SNK_VEC 1
#else
#define ACSTAB_SNK_VEC 0
#endif

namespace acstab::numeric::snk {

bool available() noexcept
{
#if ACSTAB_SNK_VEC && (defined(__x86_64__) || defined(__i386__))
    static const bool ok = __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    return ok;
#else
    return false;
#endif
}

#if ACSTAB_SNK_VEC

namespace {

    /// res = l * u for two interleaved complex lanes per vector:
    /// [lr*ur - li*ui, lr*ui + li*ur] via one mul and one fmaddsub
    /// (even lanes subtract, odd lanes add).
    inline __m256d cmul2(__m256d l, __m256d vre, __m256d vim) noexcept
    {
        const __m256d lswap = _mm256_permute_pd(l, 0x5); // [li, lr] pairs
        return _mm256_fmaddsub_pd(l, vre, _mm256_mul_pd(lswap, vim));
    }

} // namespace

// AVX-512 widenings of the same kernels, selected per call for runs of 8+
// complex elements when the CPU has AVX512F (the per-function target
// attribute keeps the rest of the TU at AVX2, so one binary carries both
// and cpuid picks at runtime). The vector bodies compute the identical
// expressions with the same FMA contraction — lane width changes nothing
// about per-element rounding — and tails are handled with masked ops.
#if defined(__x86_64__)
#define ACSTAB_SNK_512 1

namespace {

    bool wide512() noexcept
    {
        static const bool ok = __builtin_cpu_supports("avx512f");
        return ok;
    }

    __attribute__((target("avx512f"))) inline __m512d cmul4(__m512d l, __m512d vre,
                                                            __m512d vim) noexcept
    {
        const __m512d lswap = _mm512_permute_pd(l, 0x55); // [li, lr] pairs
        return _mm512_fmaddsub_pd(l, vre, _mm512_mul_pd(lswap, vim));
    }

    __attribute__((target("avx512f"))) void cax_sub_512(double* y, const double* l,
                                                        double ur, double ui,
                                                        std::size_t end) noexcept
    {
        const __m512d vre = _mm512_set1_pd(ur);
        const __m512d vim = _mm512_set1_pd(ui);
        std::size_t d = 0;
        for (; d + 8 <= end; d += 8) {
            const __m512d yv = _mm512_loadu_pd(y + d);
            const __m512d lv = _mm512_loadu_pd(l + d);
            _mm512_storeu_pd(y + d, _mm512_sub_pd(yv, cmul4(lv, vre, vim)));
        }
        if (d < end) {
            const __mmask8 k = static_cast<__mmask8>((1u << (end - d)) - 1);
            const __m512d yv = _mm512_maskz_loadu_pd(k, y + d);
            const __m512d lv = _mm512_maskz_loadu_pd(k, l + d);
            _mm512_mask_storeu_pd(y + d, k, _mm512_sub_pd(yv, cmul4(lv, vre, vim)));
        }
    }

    __attribute__((target("avx512f"))) void cax_set2_512(double* y, const double* l0,
                                                         double u0r, double u0i,
                                                         const double* l1, double u1r,
                                                         double u1i, std::size_t end) noexcept
    {
        const __m512d v0re = _mm512_set1_pd(u0r);
        const __m512d v0im = _mm512_set1_pd(u0i);
        const __m512d v1re = _mm512_set1_pd(u1r);
        const __m512d v1im = _mm512_set1_pd(u1i);
        std::size_t d = 0;
        for (; d + 8 <= end; d += 8) {
            const __m512d p0 = cmul4(_mm512_loadu_pd(l0 + d), v0re, v0im);
            const __m512d p1 = cmul4(_mm512_loadu_pd(l1 + d), v1re, v1im);
            _mm512_storeu_pd(y + d, _mm512_add_pd(p0, p1));
        }
        if (d < end) {
            const __mmask8 k = static_cast<__mmask8>((1u << (end - d)) - 1);
            const __m512d p0 = cmul4(_mm512_maskz_loadu_pd(k, l0 + d), v0re, v0im);
            const __m512d p1 = cmul4(_mm512_maskz_loadu_pd(k, l1 + d), v1re, v1im);
            _mm512_mask_storeu_pd(y + d, k, _mm512_add_pd(p0, p1));
        }
    }

    __attribute__((target("avx512f"))) void cax_add2_512(double* y, const double* l0,
                                                         double u0r, double u0i,
                                                         const double* l1, double u1r,
                                                         double u1i, std::size_t end) noexcept
    {
        const __m512d v0re = _mm512_set1_pd(u0r);
        const __m512d v0im = _mm512_set1_pd(u0i);
        const __m512d v1re = _mm512_set1_pd(u1r);
        const __m512d v1im = _mm512_set1_pd(u1i);
        std::size_t d = 0;
        for (; d + 8 <= end; d += 8) {
            const __m512d p0 = cmul4(_mm512_loadu_pd(l0 + d), v0re, v0im);
            const __m512d p1 = cmul4(_mm512_loadu_pd(l1 + d), v1re, v1im);
            _mm512_storeu_pd(y + d,
                             _mm512_add_pd(_mm512_loadu_pd(y + d), _mm512_add_pd(p0, p1)));
        }
        if (d < end) {
            const __mmask8 k = static_cast<__mmask8>((1u << (end - d)) - 1);
            const __m512d p0 = cmul4(_mm512_maskz_loadu_pd(k, l0 + d), v0re, v0im);
            const __m512d p1 = cmul4(_mm512_maskz_loadu_pd(k, l1 + d), v1re, v1im);
            const __m512d yv = _mm512_maskz_loadu_pd(k, y + d);
            _mm512_mask_storeu_pd(y + d, k, _mm512_add_pd(yv, _mm512_add_pd(p0, p1)));
        }
    }

    __attribute__((target("avx512f"))) void cax_sub2_512(double* y, const double* l0,
                                                         double u0r, double u0i,
                                                         const double* l1, double u1r,
                                                         double u1i, std::size_t end) noexcept
    {
        const __m512d v0re = _mm512_set1_pd(u0r);
        const __m512d v0im = _mm512_set1_pd(u0i);
        const __m512d v1re = _mm512_set1_pd(u1r);
        const __m512d v1im = _mm512_set1_pd(u1i);
        std::size_t d = 0;
        for (; d + 8 <= end; d += 8) {
            const __m512d p0 = cmul4(_mm512_loadu_pd(l0 + d), v0re, v0im);
            const __m512d p1 = cmul4(_mm512_loadu_pd(l1 + d), v1re, v1im);
            _mm512_storeu_pd(y + d,
                             _mm512_sub_pd(_mm512_loadu_pd(y + d), _mm512_add_pd(p0, p1)));
        }
        if (d < end) {
            const __mmask8 k = static_cast<__mmask8>((1u << (end - d)) - 1);
            const __m512d p0 = cmul4(_mm512_maskz_loadu_pd(k, l0 + d), v0re, v0im);
            const __m512d p1 = cmul4(_mm512_maskz_loadu_pd(k, l1 + d), v1re, v1im);
            const __m512d yv = _mm512_maskz_loadu_pd(k, y + d);
            _mm512_mask_storeu_pd(y + d, k, _mm512_sub_pd(yv, _mm512_add_pd(p0, p1)));
        }
    }

    __attribute__((target("avx512f"))) void plane_sub_512(double* yr, double* yi,
                                                          const double* xr, const double* xi,
                                                          double lr, double li,
                                                          std::size_t m) noexcept
    {
        const __m512d vlr = _mm512_set1_pd(lr);
        const __m512d vli = _mm512_set1_pd(li);
        std::size_t r = 0;
        for (; r + 8 <= m; r += 8) {
            const __m512d ar = _mm512_loadu_pd(xr + r);
            const __m512d ai = _mm512_loadu_pd(xi + r);
            const __m512d tr = _mm512_fmsub_pd(vlr, ar, _mm512_mul_pd(vli, ai));
            const __m512d ti = _mm512_fmadd_pd(vlr, ai, _mm512_mul_pd(vli, ar));
            _mm512_storeu_pd(yr + r, _mm512_sub_pd(_mm512_loadu_pd(yr + r), tr));
            _mm512_storeu_pd(yi + r, _mm512_sub_pd(_mm512_loadu_pd(yi + r), ti));
        }
        if (r < m) {
            const __mmask8 k = static_cast<__mmask8>((1u << (m - r)) - 1);
            const __m512d ar = _mm512_maskz_loadu_pd(k, xr + r);
            const __m512d ai = _mm512_maskz_loadu_pd(k, xi + r);
            const __m512d tr = _mm512_fmsub_pd(vlr, ar, _mm512_mul_pd(vli, ai));
            const __m512d ti = _mm512_fmadd_pd(vlr, ai, _mm512_mul_pd(vli, ar));
            const __m512d yrv = _mm512_maskz_loadu_pd(k, yr + r);
            const __m512d yiv = _mm512_maskz_loadu_pd(k, yi + r);
            _mm512_mask_storeu_pd(yr + r, k, _mm512_sub_pd(yrv, tr));
            _mm512_mask_storeu_pd(yi + r, k, _mm512_sub_pd(yiv, ti));
        }
    }

    __attribute__((target("avx512f"))) void plane_add_512(double* yr, double* yi,
                                                          const double* xr, const double* xi,
                                                          double lr, double li,
                                                          std::size_t m) noexcept
    {
        const __m512d vlr = _mm512_set1_pd(lr);
        const __m512d vli = _mm512_set1_pd(li);
        std::size_t r = 0;
        for (; r + 8 <= m; r += 8) {
            const __m512d ar = _mm512_loadu_pd(xr + r);
            const __m512d ai = _mm512_loadu_pd(xi + r);
            const __m512d tr = _mm512_fmsub_pd(vlr, ar, _mm512_mul_pd(vli, ai));
            const __m512d ti = _mm512_fmadd_pd(vlr, ai, _mm512_mul_pd(vli, ar));
            _mm512_storeu_pd(yr + r, _mm512_add_pd(_mm512_loadu_pd(yr + r), tr));
            _mm512_storeu_pd(yi + r, _mm512_add_pd(_mm512_loadu_pd(yi + r), ti));
        }
        if (r < m) {
            const __mmask8 k = static_cast<__mmask8>((1u << (m - r)) - 1);
            const __m512d ar = _mm512_maskz_loadu_pd(k, xr + r);
            const __m512d ai = _mm512_maskz_loadu_pd(k, xi + r);
            const __m512d tr = _mm512_fmsub_pd(vlr, ar, _mm512_mul_pd(vli, ai));
            const __m512d ti = _mm512_fmadd_pd(vlr, ai, _mm512_mul_pd(vli, ar));
            const __m512d yrv = _mm512_maskz_loadu_pd(k, yr + r);
            const __m512d yiv = _mm512_maskz_loadu_pd(k, yi + r);
            _mm512_mask_storeu_pd(yr + r, k, _mm512_add_pd(yrv, tr));
            _mm512_mask_storeu_pd(yi + r, k, _mm512_add_pd(yiv, ti));
        }
    }

} // namespace

#else
#define ACSTAB_SNK_512 0
#endif // __x86_64__

void cax_sub(double* y, const double* l, double ur, double ui, std::size_t m) noexcept
{
#if ACSTAB_SNK_512
    if (m >= 8 && wide512())
        return cax_sub_512(y, l, ur, ui, 2 * m);
#endif
    const __m256d vre = _mm256_set1_pd(ur);
    const __m256d vim = _mm256_set1_pd(ui);
    std::size_t d = 0;
    const std::size_t end = 2 * m;
    for (; d + 4 <= end; d += 4) {
        const __m256d yv = _mm256_loadu_pd(y + d);
        const __m256d lv = _mm256_loadu_pd(l + d);
        _mm256_storeu_pd(y + d, _mm256_sub_pd(yv, cmul2(lv, vre, vim)));
    }
    for (; d < end; d += 2) {
        const double lr = l[d];
        const double li = l[d + 1];
        y[d] -= lr * ur - li * ui;
        y[d + 1] -= lr * ui + li * ur;
    }
}

void cax_set(double* y, const double* l, double ur, double ui, std::size_t m) noexcept
{
    const __m256d vre = _mm256_set1_pd(ur);
    const __m256d vim = _mm256_set1_pd(ui);
    std::size_t d = 0;
    const std::size_t end = 2 * m;
    for (; d + 4 <= end; d += 4)
        _mm256_storeu_pd(y + d, cmul2(_mm256_loadu_pd(l + d), vre, vim));
    for (; d < end; d += 2) {
        const double lr = l[d];
        const double li = l[d + 1];
        y[d] = lr * ur - li * ui;
        y[d + 1] = lr * ui + li * ur;
    }
}

void cax_add(double* y, const double* l, double ur, double ui, std::size_t m) noexcept
{
    const __m256d vre = _mm256_set1_pd(ur);
    const __m256d vim = _mm256_set1_pd(ui);
    std::size_t d = 0;
    const std::size_t end = 2 * m;
    for (; d + 4 <= end; d += 4) {
        const __m256d yv = _mm256_loadu_pd(y + d);
        const __m256d lv = _mm256_loadu_pd(l + d);
        _mm256_storeu_pd(y + d, _mm256_add_pd(yv, cmul2(lv, vre, vim)));
    }
    for (; d < end; d += 2) {
        const double lr = l[d];
        const double li = l[d + 1];
        y[d] += lr * ur - li * ui;
        y[d + 1] += lr * ui + li * ur;
    }
}

void cax_set2(double* y, const double* l0, double u0r, double u0i, const double* l1,
              double u1r, double u1i, std::size_t m) noexcept
{
#if ACSTAB_SNK_512
    if (m >= 8 && wide512())
        return cax_set2_512(y, l0, u0r, u0i, l1, u1r, u1i, 2 * m);
#endif
    const __m256d v0re = _mm256_set1_pd(u0r);
    const __m256d v0im = _mm256_set1_pd(u0i);
    const __m256d v1re = _mm256_set1_pd(u1r);
    const __m256d v1im = _mm256_set1_pd(u1i);
    std::size_t d = 0;
    const std::size_t end = 2 * m;
    for (; d + 4 <= end; d += 4) {
        const __m256d p0 = cmul2(_mm256_loadu_pd(l0 + d), v0re, v0im);
        const __m256d p1 = cmul2(_mm256_loadu_pd(l1 + d), v1re, v1im);
        _mm256_storeu_pd(y + d, _mm256_add_pd(p0, p1));
    }
    for (; d < end; d += 2) {
        const double l0r = l0[d];
        const double l0i = l0[d + 1];
        const double l1r = l1[d];
        const double l1i = l1[d + 1];
        y[d] = (l0r * u0r - l0i * u0i) + (l1r * u1r - l1i * u1i);
        y[d + 1] = (l0r * u0i + l0i * u0r) + (l1r * u1i + l1i * u1r);
    }
}

void cax_add2(double* y, const double* l0, double u0r, double u0i, const double* l1,
              double u1r, double u1i, std::size_t m) noexcept
{
#if ACSTAB_SNK_512
    if (m >= 8 && wide512())
        return cax_add2_512(y, l0, u0r, u0i, l1, u1r, u1i, 2 * m);
#endif
    const __m256d v0re = _mm256_set1_pd(u0r);
    const __m256d v0im = _mm256_set1_pd(u0i);
    const __m256d v1re = _mm256_set1_pd(u1r);
    const __m256d v1im = _mm256_set1_pd(u1i);
    std::size_t d = 0;
    const std::size_t end = 2 * m;
    for (; d + 4 <= end; d += 4) {
        const __m256d p0 = cmul2(_mm256_loadu_pd(l0 + d), v0re, v0im);
        const __m256d p1 = cmul2(_mm256_loadu_pd(l1 + d), v1re, v1im);
        _mm256_storeu_pd(y + d,
                         _mm256_add_pd(_mm256_loadu_pd(y + d), _mm256_add_pd(p0, p1)));
    }
    for (; d < end; d += 2) {
        const double l0r = l0[d];
        const double l0i = l0[d + 1];
        const double l1r = l1[d];
        const double l1i = l1[d + 1];
        y[d] += (l0r * u0r - l0i * u0i) + (l1r * u1r - l1i * u1i);
        y[d + 1] += (l0r * u0i + l0i * u0r) + (l1r * u1i + l1i * u1r);
    }
}

void cax_sub2(double* y, const double* l0, double u0r, double u0i, const double* l1,
              double u1r, double u1i, std::size_t m) noexcept
{
#if ACSTAB_SNK_512
    if (m >= 8 && wide512())
        return cax_sub2_512(y, l0, u0r, u0i, l1, u1r, u1i, 2 * m);
#endif
    const __m256d v0re = _mm256_set1_pd(u0r);
    const __m256d v0im = _mm256_set1_pd(u0i);
    const __m256d v1re = _mm256_set1_pd(u1r);
    const __m256d v1im = _mm256_set1_pd(u1i);
    std::size_t d = 0;
    const std::size_t end = 2 * m;
    for (; d + 4 <= end; d += 4) {
        const __m256d p0 = cmul2(_mm256_loadu_pd(l0 + d), v0re, v0im);
        const __m256d p1 = cmul2(_mm256_loadu_pd(l1 + d), v1re, v1im);
        _mm256_storeu_pd(y + d,
                         _mm256_sub_pd(_mm256_loadu_pd(y + d), _mm256_add_pd(p0, p1)));
    }
    for (; d < end; d += 2) {
        const double l0r = l0[d];
        const double l0i = l0[d + 1];
        const double l1r = l1[d];
        const double l1i = l1[d + 1];
        y[d] -= (l0r * u0r - l0i * u0i) + (l1r * u1r - l1i * u1i);
        y[d + 1] -= (l0r * u0i + l0i * u0r) + (l1r * u1i + l1i * u1r);
    }
}

void plane_sub(double* yr, double* yi, const double* xr, const double* xi, double lr,
               double li, std::size_t m) noexcept
{
#if ACSTAB_SNK_512
    if (m >= 8 && wide512())
        return plane_sub_512(yr, yi, xr, xi, lr, li, m);
#endif
    const __m256d vlr = _mm256_set1_pd(lr);
    const __m256d vli = _mm256_set1_pd(li);
    std::size_t r = 0;
    for (; r + 4 <= m; r += 4) {
        const __m256d ar = _mm256_loadu_pd(xr + r);
        const __m256d ai = _mm256_loadu_pd(xi + r);
        // yr -= lr*ar - li*ai ; yi -= lr*ai + li*ar
        __m256d tr = _mm256_fmsub_pd(vlr, ar, _mm256_mul_pd(vli, ai));
        __m256d ti = _mm256_fmadd_pd(vlr, ai, _mm256_mul_pd(vli, ar));
        _mm256_storeu_pd(yr + r, _mm256_sub_pd(_mm256_loadu_pd(yr + r), tr));
        _mm256_storeu_pd(yi + r, _mm256_sub_pd(_mm256_loadu_pd(yi + r), ti));
    }
    for (; r < m; ++r) {
        const double ar = xr[r];
        const double ai = xi[r];
        yr[r] -= lr * ar - li * ai;
        yi[r] -= lr * ai + li * ar;
    }
}

void plane_add(double* yr, double* yi, const double* xr, const double* xi, double lr,
               double li, std::size_t m) noexcept
{
#if ACSTAB_SNK_512
    if (m >= 8 && wide512())
        return plane_add_512(yr, yi, xr, xi, lr, li, m);
#endif
    const __m256d vlr = _mm256_set1_pd(lr);
    const __m256d vli = _mm256_set1_pd(li);
    std::size_t r = 0;
    for (; r + 4 <= m; r += 4) {
        const __m256d ar = _mm256_loadu_pd(xr + r);
        const __m256d ai = _mm256_loadu_pd(xi + r);
        __m256d tr = _mm256_fmsub_pd(vlr, ar, _mm256_mul_pd(vli, ai));
        __m256d ti = _mm256_fmadd_pd(vlr, ai, _mm256_mul_pd(vli, ar));
        _mm256_storeu_pd(yr + r, _mm256_add_pd(_mm256_loadu_pd(yr + r), tr));
        _mm256_storeu_pd(yi + r, _mm256_add_pd(_mm256_loadu_pd(yi + r), ti));
    }
    for (; r < m; ++r) {
        const double ar = xr[r];
        const double ai = xi[r];
        yr[r] += lr * ar - li * ai;
        yi[r] += lr * ai + li * ar;
    }
}

bool plane_scale(double* xr, double* xi, double dr, double di, std::size_t m) noexcept
{
    const __m256d vdr = _mm256_set1_pd(dr);
    const __m256d vdi = _mm256_set1_pd(di);
    __m256d nz = _mm256_setzero_pd();
    std::size_t r = 0;
    for (; r + 4 <= m; r += 4) {
        const __m256d ar = _mm256_loadu_pd(xr + r);
        const __m256d ai = _mm256_loadu_pd(xi + r);
        const __m256d vr = _mm256_fmsub_pd(vdr, ar, _mm256_mul_pd(vdi, ai));
        const __m256d vi = _mm256_fmadd_pd(vdr, ai, _mm256_mul_pd(vdi, ar));
        _mm256_storeu_pd(xr + r, vr);
        _mm256_storeu_pd(xi + r, vi);
        // Accumulate |vr| | |vi| bit patterns; any nonzero lane leaves a
        // set bit (signed zeros OR to zero, matching v != 0.0).
        nz = _mm256_or_pd(nz, _mm256_or_pd(_mm256_andnot_pd(_mm256_set1_pd(-0.0), vr),
                                           _mm256_andnot_pd(_mm256_set1_pd(-0.0), vi)));
    }
    bool any = _mm256_movemask_pd(_mm256_cmp_pd(nz, _mm256_setzero_pd(), _CMP_NEQ_UQ)) != 0;
    for (; r < m; ++r) {
        const double ar = xr[r];
        const double ai = xi[r];
        const double vr = dr * ar - di * ai;
        const double vi = dr * ai + di * ar;
        xr[r] = vr;
        xi[r] = vi;
        any = any || vr != 0.0 || vi != 0.0;
    }
    return any;
}

#else // !ACSTAB_SNK_VEC — portable bodies, never selected (available() is false)

void cax_sub(double* y, const double* l, double ur, double ui, std::size_t m) noexcept
{
    for (std::size_t d = 0; d < 2 * m; d += 2) {
        const double lr = l[d];
        const double li = l[d + 1];
        y[d] -= lr * ur - li * ui;
        y[d + 1] -= lr * ui + li * ur;
    }
}

void cax_set(double* y, const double* l, double ur, double ui, std::size_t m) noexcept
{
    for (std::size_t d = 0; d < 2 * m; d += 2) {
        const double lr = l[d];
        const double li = l[d + 1];
        y[d] = lr * ur - li * ui;
        y[d + 1] = lr * ui + li * ur;
    }
}

void cax_add(double* y, const double* l, double ur, double ui, std::size_t m) noexcept
{
    for (std::size_t d = 0; d < 2 * m; d += 2) {
        const double lr = l[d];
        const double li = l[d + 1];
        y[d] += lr * ur - li * ui;
        y[d + 1] += lr * ui + li * ur;
    }
}

void cax_set2(double* y, const double* l0, double u0r, double u0i, const double* l1,
              double u1r, double u1i, std::size_t m) noexcept
{
    for (std::size_t d = 0; d < 2 * m; d += 2) {
        const double l0r = l0[d];
        const double l0i = l0[d + 1];
        const double l1r = l1[d];
        const double l1i = l1[d + 1];
        y[d] = (l0r * u0r - l0i * u0i) + (l1r * u1r - l1i * u1i);
        y[d + 1] = (l0r * u0i + l0i * u0r) + (l1r * u1i + l1i * u1r);
    }
}

void cax_add2(double* y, const double* l0, double u0r, double u0i, const double* l1,
              double u1r, double u1i, std::size_t m) noexcept
{
    for (std::size_t d = 0; d < 2 * m; d += 2) {
        const double l0r = l0[d];
        const double l0i = l0[d + 1];
        const double l1r = l1[d];
        const double l1i = l1[d + 1];
        y[d] += (l0r * u0r - l0i * u0i) + (l1r * u1r - l1i * u1i);
        y[d + 1] += (l0r * u0i + l0i * u0r) + (l1r * u1i + l1i * u1r);
    }
}

void cax_sub2(double* y, const double* l0, double u0r, double u0i, const double* l1,
              double u1r, double u1i, std::size_t m) noexcept
{
    for (std::size_t d = 0; d < 2 * m; d += 2) {
        const double l0r = l0[d];
        const double l0i = l0[d + 1];
        const double l1r = l1[d];
        const double l1i = l1[d + 1];
        y[d] -= (l0r * u0r - l0i * u0i) + (l1r * u1r - l1i * u1i);
        y[d + 1] -= (l0r * u0i + l0i * u0r) + (l1r * u1i + l1i * u1r);
    }
}

void plane_sub(double* yr, double* yi, const double* xr, const double* xi, double lr,
               double li, std::size_t m) noexcept
{
    for (std::size_t r = 0; r < m; ++r) {
        const double ar = xr[r];
        const double ai = xi[r];
        yr[r] -= lr * ar - li * ai;
        yi[r] -= lr * ai + li * ar;
    }
}

void plane_add(double* yr, double* yi, const double* xr, const double* xi, double lr,
               double li, std::size_t m) noexcept
{
    for (std::size_t r = 0; r < m; ++r) {
        const double ar = xr[r];
        const double ai = xi[r];
        yr[r] += lr * ar - li * ai;
        yi[r] += lr * ai + li * ar;
    }
}

bool plane_scale(double* xr, double* xi, double dr, double di, std::size_t m) noexcept
{
    bool any = false;
    for (std::size_t r = 0; r < m; ++r) {
        const double ar = xr[r];
        const double ai = xi[r];
        const double vr = dr * ar - di * ai;
        const double vi = dr * ai + di * ar;
        xr[r] = vr;
        xi[r] = vi;
        any = any || vr != 0.0 || vi != 0.0;
    }
    return any;
}

#endif // ACSTAB_SNK_VEC

} // namespace acstab::numeric::snk
