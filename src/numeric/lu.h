// Dense LU factorization with partial pivoting.
//
// Works for real and complex scalars; this is the reference solver behind
// the MNA analyses (the sparse path in sparse_lu.h is the production one,
// selectable per analysis).
#ifndef ACSTAB_NUMERIC_LU_H
#define ACSTAB_NUMERIC_LU_H

#include <cmath>
#include <cstddef>
#include <numeric>
#include <vector>

#include "common/error.h"
#include "numeric/dense_matrix.h"

namespace acstab::numeric {

/// LU factorization PA = LU with row partial pivoting.
template <class T>
class lu_decomposition {
public:
    /// Factor a square matrix; throws numeric_error when singular.
    explicit lu_decomposition(dense_matrix<T> a) : lu_(std::move(a))
    {
        const std::size_t n = lu_.rows();
        if (n != lu_.cols())
            throw numeric_error("lu: matrix must be square");
        perm_.resize(n);
        std::iota(perm_.begin(), perm_.end(), std::size_t{0});

        for (std::size_t k = 0; k < n; ++k) {
            // Pick the pivot row by largest absolute value in column k.
            std::size_t pivot = k;
            double pivot_mag = std::abs(lu_(k, k));
            for (std::size_t i = k + 1; i < n; ++i) {
                const double mag = std::abs(lu_(i, k));
                if (mag > pivot_mag) {
                    pivot_mag = mag;
                    pivot = i;
                }
            }
            if (pivot_mag == 0.0)
                throw numeric_error("lu: singular matrix (zero pivot in column "
                                    + std::to_string(k) + ")");
            if (pivot != k) {
                swap_rows(k, pivot);
                std::swap(perm_[k], perm_[pivot]);
                sign_ = -sign_;
            }
            const T inv_pivot = T{1} / lu_(k, k);
            for (std::size_t i = k + 1; i < n; ++i) {
                const T factor = lu_(i, k) * inv_pivot;
                lu_(i, k) = factor;
                if (factor == T{})
                    continue;
                for (std::size_t j = k + 1; j < n; ++j)
                    lu_(i, j) -= factor * lu_(k, j);
            }
        }
    }

    [[nodiscard]] std::size_t size() const noexcept { return lu_.rows(); }

    /// Solve A x = b for one right-hand side.
    [[nodiscard]] std::vector<T> solve(const std::vector<T>& b) const
    {
        const std::size_t n = size();
        if (b.size() != n)
            throw numeric_error("lu: right-hand side has wrong length");
        std::vector<T> x(n);
        for (std::size_t i = 0; i < n; ++i)
            x[i] = b[perm_[i]];
        // Forward substitution with unit lower triangle.
        for (std::size_t i = 1; i < n; ++i) {
            T acc = x[i];
            for (std::size_t j = 0; j < i; ++j)
                acc -= lu_(i, j) * x[j];
            x[i] = acc;
        }
        // Back substitution with upper triangle.
        for (std::size_t ii = n; ii-- > 0;) {
            T acc = x[ii];
            for (std::size_t j = ii + 1; j < n; ++j)
                acc -= lu_(ii, j) * x[j];
            x[ii] = acc / lu_(ii, ii);
        }
        return x;
    }

    /// Solve A X = B column by column.
    [[nodiscard]] dense_matrix<T> solve(const dense_matrix<T>& b) const
    {
        const std::size_t n = size();
        if (b.rows() != n)
            throw numeric_error("lu: right-hand side has wrong row count");
        dense_matrix<T> x(n, b.cols());
        std::vector<T> col(n);
        for (std::size_t j = 0; j < b.cols(); ++j) {
            for (std::size_t i = 0; i < n; ++i)
                col[i] = b(i, j);
            const std::vector<T> sol = solve(col);
            for (std::size_t i = 0; i < n; ++i)
                x(i, j) = sol[i];
        }
        return x;
    }

    [[nodiscard]] T determinant() const
    {
        T det = static_cast<T>(sign_);
        for (std::size_t i = 0; i < size(); ++i)
            det *= lu_(i, i);
        return det;
    }

private:
    void swap_rows(std::size_t a, std::size_t b)
    {
        for (std::size_t j = 0; j < lu_.cols(); ++j)
            std::swap(lu_(a, j), lu_(b, j));
    }

    dense_matrix<T> lu_;
    std::vector<std::size_t> perm_;
    int sign_ = 1;
};

/// Convenience one-shot solve of A x = b.
template <class T>
[[nodiscard]] std::vector<T> solve_dense(dense_matrix<T> a, const std::vector<T>& b)
{
    return lu_decomposition<T>(std::move(a)).solve(b);
}

} // namespace acstab::numeric

#endif // ACSTAB_NUMERIC_LU_H
