// Interpolation helpers: linear interpolation on tabulated data, inverse
// interpolation for level crossings, and parabolic refinement of extrema
// (used to place stability-plot peaks between sweep points).
#ifndef ACSTAB_NUMERIC_INTERPOLATION_H
#define ACSTAB_NUMERIC_INTERPOLATION_H

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace acstab::numeric {

/// Piecewise-linear interpolation of y(x) at xq; x must be strictly
/// increasing. Query points outside the range clamp to the end values.
[[nodiscard]] inline real interp_linear(std::span<const real> x, std::span<const real> y, real xq)
{
    if (x.size() != y.size() || x.size() < 2)
        throw numeric_error("interp_linear: need matching arrays of >= 2 points");
    if (xq <= x.front())
        return y.front();
    if (xq >= x.back())
        return y.back();
    const auto it = std::upper_bound(x.begin(), x.end(), xq);
    const std::size_t hi = static_cast<std::size_t>(it - x.begin());
    const std::size_t lo = hi - 1;
    const real t = (xq - x[lo]) / (x[hi] - x[lo]);
    return y[lo] + t * (y[hi] - y[lo]);
}

/// First x where y crosses `level`, scanning left to right with linear
/// inverse interpolation. Returns false when no crossing exists.
[[nodiscard]] inline bool find_crossing(std::span<const real> x, std::span<const real> y,
                                        real level, real& x_cross)
{
    if (x.size() != y.size() || x.size() < 2)
        throw numeric_error("find_crossing: need matching arrays of >= 2 points");
    for (std::size_t i = 1; i < x.size(); ++i) {
        const real a = y[i - 1] - level;
        const real b = y[i] - level;
        if (a == 0.0) {
            x_cross = x[i - 1];
            return true;
        }
        if ((a < 0.0) != (b < 0.0)) {
            const real t = a / (a - b);
            x_cross = x[i - 1] + t * (x[i] - x[i - 1]);
            return true;
        }
    }
    if (y.back() == level) {
        x_cross = x.back();
        return true;
    }
    return false;
}

/// Result of fitting a parabola through three samples around an extremum.
struct parabolic_extremum {
    real x = 0.0; ///< refined extremum abscissa
    real y = 0.0; ///< refined extremum value
};

/// Refine an extremum bracketed by (x0,y0),(x1,y1),(x2,y2) where y1 is the
/// extreme sample. Falls back to the middle sample for degenerate fits.
[[nodiscard]] inline parabolic_extremum refine_extremum(real x0, real y0, real x1, real y1,
                                                        real x2, real y2)
{
    // Lagrange parabola y(x) = a x^2 + b x + c through the three samples.
    const real d0 = (x0 - x1) * (x0 - x2);
    const real d1 = (x1 - x0) * (x1 - x2);
    const real d2 = (x2 - x0) * (x2 - x1);
    const real a = y0 / d0 + y1 / d1 + y2 / d2;
    const real b = -(y0 * (x1 + x2) / d0 + y1 * (x0 + x2) / d1 + y2 * (x0 + x1) / d2);
    if (a == 0.0)
        return {x1, y1};
    const real xv = -b / (2.0 * a);
    if (xv < std::min({x0, x1, x2}) || xv > std::max({x0, x1, x2}))
        return {x1, y1};
    const real c = y0 - a * x0 * x0 - b * x0;
    return {xv, a * xv * xv + b * xv + c};
}

/// Logarithmically spaced grid from lo to hi inclusive (n >= 2 points).
[[nodiscard]] inline std::vector<real> log_space(real lo, real hi, std::size_t n)
{
    if (!(lo > 0.0) || !(hi > lo))
        throw numeric_error("log_space: need 0 < lo < hi");
    if (n < 2)
        throw numeric_error("log_space: need at least 2 points");
    std::vector<real> g(n);
    const real llo = std::log(lo);
    const real lhi = std::log(hi);
    for (std::size_t i = 0; i < n; ++i)
        g[i] = std::exp(llo + (lhi - llo) * static_cast<real>(i) / static_cast<real>(n - 1));
    g.front() = lo;
    g.back() = hi;
    return g;
}

/// The canonical log-frequency sweep grid: `ppd` points per decade over
/// [lo, hi], both endpoints included, never fewer than `min_points`.
/// Shared by the fixed sweep (core::sweep_spec), the CLI grids and the
/// adaptive driver's anchor/output grids so every path realizes the same
/// frequencies for the same (lo, hi, ppd).
[[nodiscard]] inline std::vector<real> log_grid(real lo, real hi, std::size_t ppd,
                                                std::size_t min_points = 2)
{
    if (!(lo > 0.0) || !(hi > lo))
        throw numeric_error("log_grid: need 0 < lo < hi");
    if (ppd == 0)
        throw numeric_error("log_grid: need at least 1 point per decade");
    const real decades = std::log10(hi / lo);
    const std::size_t n = std::max<std::size_t>(
        std::max<std::size_t>(min_points, 2),
        static_cast<std::size_t>(std::ceil(decades * static_cast<real>(ppd))) + 1);
    return log_space(lo, hi, n);
}

/// Linearly spaced grid from lo to hi inclusive (n >= 2 points).
[[nodiscard]] inline std::vector<real> lin_space(real lo, real hi, std::size_t n)
{
    if (n < 2)
        throw numeric_error("lin_space: need at least 2 points");
    std::vector<real> g(n);
    for (std::size_t i = 0; i < n; ++i)
        g[i] = lo + (hi - lo) * static_cast<real>(i) / static_cast<real>(n - 1);
    return g;
}

} // namespace acstab::numeric

#endif // ACSTAB_NUMERIC_INTERPOLATION_H
