// AAA-style barycentric rational approximation of sampled frequency
// responses (Nakatsukasa, Sete, Trefethen; applied to closed-loop
// responses as in Cooman et al.'s model-free stability analysis).
//
// The fit is VECTOR-valued: all components share one set of support
// points x_j and one weight vector w, so the same barycentric
// coefficients that reproduce the fitted channels also interpolate any
// other quantity sampled at the same frequencies (the adaptive sweep
// driver exploits this to predict full MNA solution vectors from a model
// fitted only to a handful of observables). Support points are chosen
// greedily at the worst-error sample; the weights minimize the linearized
// residual over the non-support samples (smallest singular vector of the
// stacked Loewner matrix, computed via inverse iteration on the small
// Hermitian normal matrix).
#ifndef ACSTAB_NUMERIC_AAA_H
#define ACSTAB_NUMERIC_AAA_H

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.h"

namespace acstab::numeric {

struct aaa_options {
    /// Stop once the worst scaled fit error over non-support samples
    /// drops below this (each component is scaled by its own max
    /// magnitude, so channels of very different size converge together).
    real rel_tol = 1e-9;
    /// Upper bound on support points (the barycentric degree + 1). The
    /// fit also never uses more than sample_count - 1 support points, so
    /// at least one sample always constrains the weights.
    std::size_t max_support = 48;
    /// Warm start: sample indices promoted to support up front, before
    /// any greedy selection. They are adopted in one batch with a SINGLE
    /// weight solve at the end of seeding (the per-step eigen-solve is
    /// the refit's dominant cost), so re-fitting after new samples arrive
    /// — the adaptive sweep's per-round refit — pays one weight solve per
    /// NEW support point instead of one per support point. Out-of-range
    /// and duplicate entries are ignored; entries beyond the support
    /// budget are dropped.
    std::vector<std::size_t> seed_support;
};

/// Barycentric coefficients of one evaluation point: either an exact hit
/// on support point `hit` or a dense coefficient vector over the support
/// (summing to 1) such that r_c(x) = sum_j coeff[j] * f_c(support[j]).
struct barycentric_coeffs {
    bool exact_hit = false;
    std::size_t hit = 0;
    std::vector<cplx> coeff;
    /// |sum w_j/(x-x_j)| / sum |w_j/(x-x_j)|: near-total cancellation
    /// (values << 1) marks a model pole close to x — the only way a
    /// rational model can spike between validated frequencies. 1 for
    /// exact hits.
    real denom_health = 1.0;
};

class aaa_model {
public:
    aaa_model() = default;

    [[nodiscard]] std::size_t support_count() const noexcept { return support_x_.size(); }
    [[nodiscard]] std::size_t component_count() const noexcept { return support_f_.size(); }
    /// Support abscissae, in the order they were selected.
    [[nodiscard]] const std::vector<real>& support() const noexcept { return support_x_; }
    /// Index of each support point into the original sample arrays.
    [[nodiscard]] const std::vector<std::size_t>& support_samples() const noexcept
    {
        return support_idx_;
    }
    [[nodiscard]] const std::vector<cplx>& weights() const noexcept { return weights_; }
    /// Worst scaled error over the non-support samples of the final fit.
    [[nodiscard]] real fit_error() const noexcept { return fit_error_; }

    /// Evaluate component c at x. Exact at support points (barycentric
    /// interpolation), smooth rational elsewhere.
    [[nodiscard]] cplx eval(std::size_t c, real x) const;

    /// The barycentric combination coefficients at x, usable to predict
    /// any vector quantity sampled at the support frequencies.
    [[nodiscard]] barycentric_coeffs coeffs_at(real x) const;

    /// Evaluate component c with coefficients already computed by
    /// coeffs_at — the shared-support form makes one coefficient set
    /// serve every component of a multi-channel evaluation.
    [[nodiscard]] cplx eval_with(const barycentric_coeffs& bc, std::size_t c) const;

    /// Poles of the fitted rational model: complex abscissae where the
    /// barycentric denominator sum_j w_j/(x - x_j) vanishes. Fitted
    /// frequency responses H(s = j 2 pi f) sampled over real f have their
    /// x-plane poles at x = s_p/(j 2 pi), so Im(x) > 0 marks a stable
    /// (left-half-plane) pole — Cooman et al.'s model-free estimate.
    [[nodiscard]] std::vector<cplx> poles() const;

    /// Abscissae where component c of the model equals `level` — the
    /// zeros of r_c(x) - level. With a fitted loop-gain ratio, level = -1
    /// yields the zeros of 1 + L, i.e. the model's estimate of the
    /// closed-loop poles.
    [[nodiscard]] std::vector<cplx> level_crossings(std::size_t c, cplx level) const;

    friend aaa_model aaa_fit(std::span<const real> x,
                             const std::vector<std::vector<cplx>>& f, const aaa_options& opt);

private:
    std::vector<real> support_x_;
    std::vector<std::size_t> support_idx_;
    std::vector<cplx> weights_;
    std::vector<std::vector<cplx>> support_f_; ///< [component][support index]
    real fit_error_ = 0.0;
};

/// Fit a shared-support barycentric rational model to f[c][i] sampled at
/// distinct abscissae x[i]. Every component array must have x.size()
/// entries; at least 3 samples are required.
[[nodiscard]] aaa_model aaa_fit(std::span<const real> x,
                                const std::vector<std::vector<cplx>>& f,
                                const aaa_options& opt = {});

/// Roots of the barycentric nodal function N(x) = sum_j v[j]/(x - nodes[j])
/// (model poles use v = w; level crossings use v_j = w_j (f_j - level)).
/// Solved by deflating to the secular form 1 + sum u_j/(x - z_j) = 0,
/// whose roots are eigenvalues of diag(z) - u 1^T — computed through the
/// real 2m-embedding of that complex matrix, then Newton-polished on N
/// directly and filtered by residual (the embedding's spurious conjugate
/// mirrors do not survive the polish). Root count is at most
/// nodes.size() - 1; roots lost to degree drop are omitted.
[[nodiscard]] std::vector<cplx> barycentric_nodal_roots(std::span<const real> nodes,
                                                        std::span<const cplx> values);

} // namespace acstab::numeric

#endif // ACSTAB_NUMERIC_AAA_H
