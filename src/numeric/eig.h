// Eigenvalues of a general real matrix.
//
// Pipeline: diagonal balancing (EISPACK balanc) -> Householder reduction to
// upper Hessenberg form -> Francis implicit double-shift QR with deflation.
// Eigenvalues only (no vectors) — that is all pole/zero analysis needs.
#ifndef ACSTAB_NUMERIC_EIG_H
#define ACSTAB_NUMERIC_EIG_H

#include <vector>

#include "common/types.h"
#include "numeric/dense_matrix.h"

namespace acstab::numeric {

/// In-place similarity scaling that reduces the matrix norm; eigenvalues
/// are preserved. Dramatically improves QR accuracy on circuit matrices
/// whose entries span many decades.
void balance(dense_matrix<real>& a);

/// In-place Householder reduction to upper Hessenberg form (entries below
/// the first subdiagonal are zeroed; eigenvalues are preserved).
void hessenberg(dense_matrix<real>& a);

/// Eigenvalues of an upper Hessenberg matrix by Francis double-shift QR.
/// The matrix is destroyed. Throws numeric_error if an eigenvalue fails to
/// converge within the iteration budget.
[[nodiscard]] std::vector<cplx> hessenberg_eigenvalues(dense_matrix<real>& h);

/// Eigenvalues of a general real square matrix (balances + reduces + QR).
[[nodiscard]] std::vector<cplx> eigenvalues(dense_matrix<real> a);

} // namespace acstab::numeric

#endif // ACSTAB_NUMERIC_EIG_H
