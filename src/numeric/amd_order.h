// Fill-reducing column pre-ordering for the sparse LU: minimum external
// degree on the symmetrized pattern A + A^T (the AMD family).
//
// The seed's ascending-nonzero-count heuristic orders columns once by
// their input degree and never looks at the elimination again; on banded
// or 2-D-mesh-like MNA matrices (every interior node has the same
// degree) it degenerates to the natural order and fill grows like
// n * bandwidth. Minimum degree re-ranks the remaining columns after
// every elimination step using a quotient graph — eliminated pivots
// become *elements* whose adjacency is stored once instead of being
// scattered into every neighbor's list — which is the classical route to
// near-nested-dissection fill on meshes at a tiny analysis cost.
//
// Scope notes, deliberate simplifications vs full AMD:
//   * exact external degrees (no Amestoy approximate-degree bound):
//     the ordering runs once per symbolic analysis, which itself already
//     performs a full numeric elimination, so the tighter bound's speed
//     advantage is irrelevant here while exactness keeps behavior easy
//     to reason about;
//   * element absorption but no supervariable detection: indistinguish-
//     able-node merging mostly accelerates the dense trailing submatrix,
//     which circuit matrices reach only in their last few columns.
//
// Deterministic by construction: ties in degree break on the smallest
// original index, so a given pattern always yields the same permutation
// on every platform (the farm's byte-identical merges depend on this).
//
// The LU pivots rows within the reach of each ordered column (threshold
// preference for the structural diagonal), so an ordering computed on
// the symmetric pattern stays valid for the mildly unsymmetric MNA case:
// it steers fill, never correctness.
#ifndef ACSTAB_NUMERIC_AMD_ORDER_H
#define ACSTAB_NUMERIC_AMD_ORDER_H

#include <cstddef>
#include <queue>
#include <utility>
#include <vector>

namespace acstab::numeric {

/// Minimum-degree permutation of an n x n pattern given in CSC arrays:
/// returns q with q[k] = the column to eliminate at step k. Only the
/// pattern is read; values and numerical pivoting are untouched.
[[nodiscard]] inline std::vector<std::size_t>
minimum_degree_order(std::size_t n, const std::vector<std::size_t>& col_ptr,
                     const std::vector<std::size_t>& row_idx)
{
    // Symmetrize: undirected adjacency of A + A^T without the diagonal.
    std::vector<std::vector<std::size_t>> adj(n);
    for (std::size_t c = 0; c < n; ++c) {
        for (std::size_t p = col_ptr[c]; p < col_ptr[c + 1]; ++p) {
            const std::size_t r = row_idx[p];
            if (r == c)
                continue;
            adj[c].push_back(r);
            adj[r].push_back(c);
        }
    }
    std::vector<std::size_t> stamp(n, 0);
    std::size_t clock = 0;
    const auto dedup = [&](std::vector<std::size_t>& list) {
        ++clock;
        std::size_t keep = 0;
        for (const std::size_t v : list) {
            if (stamp[v] == clock)
                continue;
            stamp[v] = clock;
            list[keep++] = v;
        }
        list.resize(keep);
    };
    for (auto& list : adj)
        dedup(list);

    // Quotient graph: per variable, the still-uneliminated direct
    // neighbors plus the elements (cliques of past pivots) it touches.
    std::vector<std::vector<std::size_t>> adjel(n);
    std::vector<std::vector<std::size_t>> elem_vars; // element id -> members
    std::vector<bool> absorbed;                      // element id -> dead
    std::vector<bool> eliminated(n, false);
    std::vector<std::size_t> degree(n, 0);

    // Exact external degree: |adj(v) ∪ (∪ elements of v) \ {v}|.
    std::vector<std::size_t> reach;
    const auto external_degree = [&](std::size_t v) {
        ++clock;
        stamp[v] = clock;
        std::size_t deg = 0;
        for (const std::size_t u : adj[v])
            if (!eliminated[u] && stamp[u] != clock) {
                stamp[u] = clock;
                ++deg;
            }
        for (const std::size_t e : adjel[v]) {
            if (absorbed[e])
                continue;
            for (const std::size_t u : elem_vars[e])
                if (!eliminated[u] && stamp[u] != clock) {
                    stamp[u] = clock;
                    ++deg;
                }
        }
        return deg;
    };

    // Min-heap on (degree, index) with lazy invalidation: stale entries
    // are skipped when their recorded degree no longer matches.
    using entry = std::pair<std::size_t, std::size_t>;
    std::priority_queue<entry, std::vector<entry>, std::greater<entry>> heap;
    for (std::size_t v = 0; v < n; ++v) {
        degree[v] = adj[v].size();
        heap.push({degree[v], v});
    }

    std::vector<std::size_t> order;
    order.reserve(n);
    while (order.size() < n) {
        const auto [deg, p] = heap.top();
        heap.pop();
        if (eliminated[p] || deg != degree[p])
            continue;
        eliminated[p] = true;
        order.push_back(p);

        // Reach set of the pivot = members of the new element.
        ++clock;
        stamp[p] = clock;
        reach.clear();
        for (const std::size_t u : adj[p])
            if (!eliminated[u] && stamp[u] != clock) {
                stamp[u] = clock;
                reach.push_back(u);
            }
        for (const std::size_t e : adjel[p]) {
            if (absorbed[e])
                continue;
            for (const std::size_t u : elem_vars[e])
                if (!eliminated[u] && stamp[u] != clock) {
                    stamp[u] = clock;
                    reach.push_back(u);
                }
            absorbed[e] = true; // absorbed into the pivot's element
        }
        if (reach.empty())
            continue;

        const std::size_t eid = elem_vars.size();
        elem_vars.push_back(reach);
        absorbed.push_back(false);

        // Every reached variable now sees the new element; its direct
        // edges into the element (and dead neighbors) are redundant and
        // pruned so list sizes track the quotient graph, not the fill.
        // (Two passes: external_degree below reuses the stamp array, so
        // all pruning happens while the reach stamp is still valid.)
        ++clock;
        const std::size_t reach_clock = clock;
        for (const std::size_t u : reach)
            stamp[u] = reach_clock;
        for (const std::size_t v : reach) {
            std::size_t keep = 0;
            for (const std::size_t u : adj[v])
                if (!eliminated[u] && stamp[u] != reach_clock)
                    adj[v][keep++] = u;
            adj[v].resize(keep);
            std::size_t ekeep = 0;
            for (const std::size_t e : adjel[v])
                if (!absorbed[e])
                    adjel[v][ekeep++] = e;
            adjel[v].resize(ekeep);
            adjel[v].push_back(eid);
        }
        for (const std::size_t v : reach) {
            degree[v] = external_degree(v);
            heap.push({degree[v], v});
        }
    }
    return order;
}

} // namespace acstab::numeric

#endif // ACSTAB_NUMERIC_AMD_ORDER_H
