// Fill-reducing column pre-ordering for the sparse LU: minimum external
// degree on the symmetrized pattern A + A^T (the AMD family).
//
// The seed's ascending-nonzero-count heuristic orders columns once by
// their input degree and never looks at the elimination again; on banded
// or 2-D-mesh-like MNA matrices (every interior node has the same
// degree) it degenerates to the natural order and fill grows like
// n * bandwidth. Minimum degree re-ranks the remaining columns after
// every elimination step using a quotient graph — eliminated pivots
// become *elements* whose adjacency is stored once instead of being
// scattered into every neighbor's list — which is the classical route to
// near-nested-dissection fill on meshes at a tiny analysis cost.
//
// Two variants share this header:
//   * minimum_degree_order — exact external degrees, element absorption,
//     no supervariables. Simple to reason about, still O(n * reach) per
//     pivot in its degree updates, which shows up in profiles once
//     circuits pass ~100k nodes.
//   * approx_minimum_degree_order — the production AMD shape (Amestoy,
//     Davis & Duff): supervariables (indistinguishable columns merged by
//     adjacency hashing and eliminated together, i.e. multiple original
//     columns per pivot step), the approximate external-degree bound
//     (each element's contribution is measured once per pivot instead of
//     once per reached variable), and aggressive element absorption.
//     Fill is within a few percent of the exact variant on meshes while
//     the ordering itself scales to hundreds of thousands of nodes.
//
// Deterministic by construction: ties in degree break on the smallest
// original index, so a given pattern always yields the same permutation
// on every platform (the farm's byte-identical merges depend on this).
//
// The LU pivots rows within the reach of each ordered column (threshold
// preference for the structural diagonal), so an ordering computed on
// the symmetric pattern stays valid for the mildly unsymmetric MNA case:
// it steers fill, never correctness.
#ifndef ACSTAB_NUMERIC_AMD_ORDER_H
#define ACSTAB_NUMERIC_AMD_ORDER_H

#include <cstddef>
#include <queue>
#include <utility>
#include <vector>

namespace acstab::numeric {

/// Minimum-degree permutation of an n x n pattern given in CSC arrays:
/// returns q with q[k] = the column to eliminate at step k. Only the
/// pattern is read; values and numerical pivoting are untouched.
[[nodiscard]] inline std::vector<std::size_t>
minimum_degree_order(std::size_t n, const std::vector<std::size_t>& col_ptr,
                     const std::vector<std::size_t>& row_idx)
{
    // Symmetrize: undirected adjacency of A + A^T without the diagonal.
    std::vector<std::vector<std::size_t>> adj(n);
    for (std::size_t c = 0; c < n; ++c) {
        for (std::size_t p = col_ptr[c]; p < col_ptr[c + 1]; ++p) {
            const std::size_t r = row_idx[p];
            if (r == c)
                continue;
            adj[c].push_back(r);
            adj[r].push_back(c);
        }
    }
    std::vector<std::size_t> stamp(n, 0);
    std::size_t clock = 0;
    const auto dedup = [&](std::vector<std::size_t>& list) {
        ++clock;
        std::size_t keep = 0;
        for (const std::size_t v : list) {
            if (stamp[v] == clock)
                continue;
            stamp[v] = clock;
            list[keep++] = v;
        }
        list.resize(keep);
    };
    for (auto& list : adj)
        dedup(list);

    // Quotient graph: per variable, the still-uneliminated direct
    // neighbors plus the elements (cliques of past pivots) it touches.
    std::vector<std::vector<std::size_t>> adjel(n);
    std::vector<std::vector<std::size_t>> elem_vars; // element id -> members
    std::vector<bool> absorbed;                      // element id -> dead
    std::vector<bool> eliminated(n, false);
    std::vector<std::size_t> degree(n, 0);

    // Exact external degree: |adj(v) ∪ (∪ elements of v) \ {v}|.
    std::vector<std::size_t> reach;
    const auto external_degree = [&](std::size_t v) {
        ++clock;
        stamp[v] = clock;
        std::size_t deg = 0;
        for (const std::size_t u : adj[v])
            if (!eliminated[u] && stamp[u] != clock) {
                stamp[u] = clock;
                ++deg;
            }
        for (const std::size_t e : adjel[v]) {
            if (absorbed[e])
                continue;
            for (const std::size_t u : elem_vars[e])
                if (!eliminated[u] && stamp[u] != clock) {
                    stamp[u] = clock;
                    ++deg;
                }
        }
        return deg;
    };

    // Min-heap on (degree, index) with lazy invalidation: stale entries
    // are skipped when their recorded degree no longer matches.
    using entry = std::pair<std::size_t, std::size_t>;
    std::priority_queue<entry, std::vector<entry>, std::greater<entry>> heap;
    for (std::size_t v = 0; v < n; ++v) {
        degree[v] = adj[v].size();
        heap.push({degree[v], v});
    }

    std::vector<std::size_t> order;
    order.reserve(n);
    while (order.size() < n) {
        const auto [deg, p] = heap.top();
        heap.pop();
        if (eliminated[p] || deg != degree[p])
            continue;
        eliminated[p] = true;
        order.push_back(p);

        // Reach set of the pivot = members of the new element.
        ++clock;
        stamp[p] = clock;
        reach.clear();
        for (const std::size_t u : adj[p])
            if (!eliminated[u] && stamp[u] != clock) {
                stamp[u] = clock;
                reach.push_back(u);
            }
        for (const std::size_t e : adjel[p]) {
            if (absorbed[e])
                continue;
            for (const std::size_t u : elem_vars[e])
                if (!eliminated[u] && stamp[u] != clock) {
                    stamp[u] = clock;
                    reach.push_back(u);
                }
            absorbed[e] = true; // absorbed into the pivot's element
        }
        if (reach.empty())
            continue;

        const std::size_t eid = elem_vars.size();
        elem_vars.push_back(reach);
        absorbed.push_back(false);

        // Every reached variable now sees the new element; its direct
        // edges into the element (and dead neighbors) are redundant and
        // pruned so list sizes track the quotient graph, not the fill.
        // (Two passes: external_degree below reuses the stamp array, so
        // all pruning happens while the reach stamp is still valid.)
        ++clock;
        const std::size_t reach_clock = clock;
        for (const std::size_t u : reach)
            stamp[u] = reach_clock;
        for (const std::size_t v : reach) {
            std::size_t keep = 0;
            for (const std::size_t u : adj[v])
                if (!eliminated[u] && stamp[u] != reach_clock)
                    adj[v][keep++] = u;
            adj[v].resize(keep);
            std::size_t ekeep = 0;
            for (const std::size_t e : adjel[v])
                if (!absorbed[e])
                    adjel[v][ekeep++] = e;
            adjel[v].resize(ekeep);
            adjel[v].push_back(eid);
        }
        for (const std::size_t v : reach) {
            degree[v] = external_degree(v);
            heap.push({degree[v], v});
        }
    }
    return order;
}

/// Approximate-minimum-degree permutation (AMD): supervariable merging
/// via adjacency hashing, the Amestoy/Davis/Duff approximate external
/// degree bound, and aggressive element absorption. Returns q with
/// q[k] = the column to eliminate at step k; merged columns are emitted
/// consecutively with their supervariable's principal. Deterministic:
/// degree ties break on the smallest original index and a merge always
/// keeps the smaller index as principal.
[[nodiscard]] inline std::vector<std::size_t>
approx_minimum_degree_order(std::size_t n, const std::vector<std::size_t>& col_ptr,
                            const std::vector<std::size_t>& row_idx)
{
    // Symmetrize: undirected adjacency of A + A^T without the diagonal.
    std::vector<std::vector<std::size_t>> adj(n);
    for (std::size_t c = 0; c < n; ++c) {
        for (std::size_t p = col_ptr[c]; p < col_ptr[c + 1]; ++p) {
            const std::size_t r = row_idx[p];
            if (r == c)
                continue;
            adj[c].push_back(r);
            adj[r].push_back(c);
        }
    }
    std::vector<std::size_t> stamp(n, 0);
    std::size_t clock = 0;
    for (auto& list : adj) {
        ++clock;
        std::size_t keep = 0;
        for (const std::size_t v : list) {
            if (stamp[v] == clock)
                continue;
            stamp[v] = clock;
            list[keep++] = v;
        }
        list.resize(keep);
    }

    // Supervariables: nv[v] original columns folded into principal v
    // (0 once v itself has been merged away); members chained through
    // mem_next/mem_tail and emitted together when the principal is
    // eliminated — the "multiple elimination" that makes one pivot step
    // retire a whole block of indistinguishable columns.
    constexpr std::size_t none = static_cast<std::size_t>(-1);
    std::vector<std::size_t> nv(n, 1);
    std::vector<std::size_t> mem_next(n, none);
    std::vector<std::size_t> mem_tail(n);
    for (std::size_t v = 0; v < n; ++v)
        mem_tail[v] = v;
    std::vector<bool> eliminated(n, false); // principal chosen as pivot
    std::vector<bool> merged(n, false);     // absorbed into a supervariable

    // Quotient graph: live principal neighbors plus touched elements.
    std::vector<std::vector<std::size_t>> adjel(n);
    std::vector<std::vector<std::size_t>> elem_vars; // element -> members
    std::vector<bool> absorbed;                      // element -> dead
    std::vector<std::size_t> elem_w;                 // |Le \ Lp| scratch
    std::vector<std::size_t> elem_wstamp;            // validity clock for elem_w

    std::vector<std::size_t> degree(n);
    using entry = std::pair<std::size_t, std::size_t>;
    std::priority_queue<entry, std::vector<entry>, std::greater<entry>> heap;
    for (std::size_t v = 0; v < n; ++v) {
        degree[v] = adj[v].size();
        heap.push({degree[v], v});
    }

    // Compact an element's member list to live principals, returning its
    // weight |Le|. Each dead entry is dropped exactly once, so repeated
    // scans stay proportional to the quotient graph, not to history.
    const auto element_weight = [&](std::size_t e) {
        std::vector<std::size_t>& vars = elem_vars[e];
        std::size_t keep = 0;
        std::size_t w = 0;
        for (const std::size_t u : vars) {
            if (eliminated[u] || merged[u])
                continue;
            vars[keep++] = u;
            w += nv[u];
        }
        vars.resize(keep);
        return w;
    };

    std::vector<std::size_t> reach;          // Lp: principal variables
    std::vector<entry> hash_bucket;          // (hash, v) for supervariable detection
    std::vector<std::size_t> order;
    order.reserve(n);
    std::size_t emitted = 0;
    while (emitted < n) {
        const auto [deg, p] = heap.top();
        heap.pop();
        if (eliminated[p] || merged[p] || deg != degree[p])
            continue;
        eliminated[p] = true;
        for (std::size_t m = p; m != none; m = mem_next[m])
            order.push_back(m);
        emitted += nv[p];

        // Lp: the pivot's reach through direct edges and its elements.
        ++clock;
        stamp[p] = clock;
        reach.clear();
        std::size_t lp_weight = 0;
        for (const std::size_t u : adj[p])
            if (!eliminated[u] && !merged[u] && stamp[u] != clock) {
                stamp[u] = clock;
                reach.push_back(u);
                lp_weight += nv[u];
            }
        for (const std::size_t e : adjel[p]) {
            if (absorbed[e])
                continue;
            for (const std::size_t u : elem_vars[e])
                if (!eliminated[u] && !merged[u] && stamp[u] != clock) {
                    stamp[u] = clock;
                    reach.push_back(u);
                    lp_weight += nv[u];
                }
            absorbed[e] = true; // absorbed into the pivot's element
        }
        if (reach.empty())
            continue;
        const std::size_t reach_clock = clock;

        const std::size_t eid = elem_vars.size();
        elem_vars.push_back(reach);
        absorbed.push_back(false);
        elem_w.push_back(0);
        elem_wstamp.push_back(0);

        // One pass per adjacent element: start from |Le| and subtract the
        // members that lie in Lp, leaving elem_w[e] = |Le \ Lp|. This is
        // the approximate-degree trick — the element is scanned once per
        // pivot here instead of once per reached variable below.
        for (const std::size_t v : reach) {
            for (const std::size_t e : adjel[v]) {
                if (absorbed[e])
                    continue;
                if (elem_wstamp[e] != reach_clock) {
                    elem_wstamp[e] = reach_clock;
                    elem_w[e] = element_weight(e);
                }
                elem_w[e] -= nv[v];
            }
        }

        // Prune adjacency, absorb emptied elements, update degrees.
        for (const std::size_t v : reach) {
            std::size_t keep = 0;
            std::size_t ext_adj = 0;
            for (const std::size_t u : adj[v]) {
                if (eliminated[u] || merged[u] || stamp[u] == reach_clock)
                    continue; // dead, or covered by the new element
                adj[v][keep++] = u;
                ext_adj += nv[u];
            }
            adj[v].resize(keep);
            std::size_t ekeep = 0;
            std::size_t ext_elem = 0;
            for (const std::size_t e : adjel[v]) {
                if (absorbed[e])
                    continue;
                if (elem_wstamp[e] == reach_clock && elem_w[e] == 0) {
                    absorbed[e] = true; // aggressive absorption: Le ⊆ Lp
                    continue;
                }
                adjel[v][ekeep++] = e;
                if (elem_wstamp[e] == reach_clock)
                    ext_elem += elem_w[e];
            }
            adjel[v].resize(ekeep);
            adjel[v].push_back(eid);

            // Amestoy/Davis/Duff bound on the external degree.
            const std::size_t lp_ext = lp_weight - nv[v];
            const std::size_t cap = n - emitted >= nv[v] ? n - emitted - nv[v] : 0;
            std::size_t d = std::min(degree[v] + lp_ext, ext_adj + lp_ext + ext_elem);
            degree[v] = std::min(cap, d);
        }

        // Supervariable detection: hash each reached variable's pruned
        // adjacency; equal hashes are confirmed by exact set comparison
        // (lists are sorted in place, which also canonicalizes them) and
        // merged, smaller index as principal.
        hash_bucket.clear();
        for (const std::size_t v : reach) {
            std::sort(adj[v].begin(), adj[v].end());
            std::sort(adjel[v].begin(), adjel[v].end());
            std::size_t h = 0;
            for (const std::size_t u : adj[v])
                h += u;
            for (const std::size_t e : adjel[v])
                h += e * 2654435761u;
            hash_bucket.emplace_back(h, v);
        }
        std::sort(hash_bucket.begin(), hash_bucket.end());
        for (std::size_t i = 0; i < hash_bucket.size(); ++i) {
            const std::size_t v = hash_bucket[i].second;
            if (merged[v])
                continue;
            for (std::size_t j = i + 1;
                 j < hash_bucket.size() && hash_bucket[j].first == hash_bucket[i].first; ++j) {
                const std::size_t u = hash_bucket[j].second;
                if (merged[u] || adj[u] != adj[v] || adjel[u] != adjel[v])
                    continue;
                merged[u] = true;
                mem_next[mem_tail[v]] = u;
                mem_tail[v] = mem_tail[u];
                degree[v] = degree[v] >= nv[u] ? degree[v] - nv[u] : 0;
                nv[v] += nv[u];
                nv[u] = 0;
            }
        }
        for (const std::size_t v : reach)
            if (!merged[v])
                heap.push({degree[v], v});
    }
    return order;
}

} // namespace acstab::numeric

#endif // ACSTAB_NUMERIC_AMD_ORDER_H
