// The symbolic / numeric split of the left-looking sparse LU
// (Gilbert–Peierls with threshold partial pivoting).
//
//   * symbolic_lu — the immutable, shareable half: pivot order, column
//     preordering and the full symbolic L/U reach patterns, computed once
//     per matrix structure. Safe to share (read-only) across any number
//     of workers via shared_ptr; the sweep engine computes it once per
//     linearized snapshot instead of once per worker chunk.
//   * numeric_lu — the lightweight per-worker half: just the L/U values
//     plus O(n) scratch, refactored in place against the shared symbolic
//     object frequency to frequency. Its solve_in_place / solve_batch
//     back-solve whole RHS batches in one L and one U traversal without
//     a single heap allocation, which is what makes the sweep hot loop
//     allocation-free.
//
// sparse_lu.h keeps the original one-object facade on top of this pair
// for one-shot factor-and-solve call sites.
#ifndef ACSTAB_NUMERIC_SPARSE_FACTOR_H
#define ACSTAB_NUMERIC_SPARSE_FACTOR_H

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstddef>
#include <memory>
#include <numeric>
#include <string>
#include <type_traits>
#include <vector>

#include "common/error.h"
#include "numeric/amd_order.h"
#include "numeric/sparse_matrix.h"

namespace acstab::numeric {

/// Column pre-ordering applied before the pivot-selecting elimination.
enum class column_ordering {
    /// Natural order (ablation/bisection baseline).
    none,
    /// Ascending nonzero-count order — the seed's cheap static heuristic.
    /// Good on ladders, degenerates to the natural order on meshes where
    /// every column has the same degree.
    count,
    /// Minimum external degree on A + A^T (amd_order.h): re-ranks the
    /// remaining columns after every elimination, the production choice
    /// for thousands-of-unknowns circuits.
    amd,
};

/// Batched back-solve kernel of numeric_lu::solve_batch.
enum class batch_kernel {
    /// One right-hand side at a time inside the shared L/U traversal;
    /// bit-identical to repeated single solves.
    scalar,
    /// Split real/imag planes in an rhs-contiguous layout so the inner
    /// loop over the batch is unit-stride and auto-vectorizes; results
    /// agree with scalar to rounding (the complex multiply is expanded
    /// into real mul/adds the compiler may schedule differently).
    /// Only distinct from scalar for std::complex<double> batches of
    /// two or more right-hand sides.
    simd,
};

/// The one solver options type shared by symbolic_lu and the sparse_lu
/// facade (which forwards it verbatim), so the ordering knob is defined
/// exactly once.
struct lu_options {
    /// Diagonal entries within pivot_tol of the column maximum are
    /// preferred, preserving MNA structure and limiting fill-in.
    double pivot_tol = 0.1;
    /// Fill-reducing column pre-ordering.
    column_ordering ordering = column_ordering::amd;
};

/// Immutable symbolic factorization: pivot order, column ordering and the
/// L/U sparsity patterns (full symbolic reach, so any matrix with the seed
/// matrix's pattern can be refactored numerically against it). Pivots are
/// chosen from the seed matrix's values; the values themselves are
/// discarded — numeric_lu recomputes them per matrix.
template <class T>
class symbolic_lu {
public:
    using options = lu_options;

    /// The numeric L/U values of the seed factorization, aligned with the
    /// symbolic pattern arrays. The analysis computes them anyway (pivot
    /// selection needs the elimination); exporting them lets a one-shot
    /// caller seed its numeric_lu without repeating the numeric pass.
    struct factor_values {
        std::vector<T> lval;
        std::vector<T> uval;
    };

    explicit symbolic_lu(const csc_matrix<T>& a, options opt = {},
                         factor_values* values_out = nullptr)
        : n_(a.cols())
    {
        if (a.rows() != n_)
            throw numeric_error("symbolic_lu: matrix must be square");
        analyze(a, opt, values_out);
    }

    [[nodiscard]] std::size_t size() const noexcept { return n_; }
    /// Stored L entries plus the implicit unit diagonal.
    [[nodiscard]] std::size_t lower_nnz() const noexcept { return lrow_.size() + n_; }
    [[nodiscard]] std::size_t upper_nnz() const noexcept { return urow_.size(); }

    [[nodiscard]] const std::vector<std::size_t>& lcol_ptr() const noexcept { return lcol_ptr_; }
    [[nodiscard]] const std::vector<std::size_t>& lrow() const noexcept { return lrow_; }
    [[nodiscard]] const std::vector<std::size_t>& ucol_ptr() const noexcept { return ucol_ptr_; }
    /// Off-diagonal rows of each U column are sorted ascending (the order
    /// numeric_lu::refactor consumes them in); the diagonal is stored last.
    [[nodiscard]] const std::vector<std::size_t>& urow() const noexcept { return urow_; }
    /// Original row -> pivot position.
    [[nodiscard]] const std::vector<std::size_t>& pinv() const noexcept { return pinv_; }
    /// Pivot step -> original column.
    [[nodiscard]] const std::vector<std::size_t>& q() const noexcept { return q_; }

private:
    void analyze(const csc_matrix<T>& a, const options& opt, factor_values* values_out)
    {
        constexpr std::ptrdiff_t unset = -1;
        q_.resize(n_);
        std::iota(q_.begin(), q_.end(), std::size_t{0});
        switch (opt.ordering) {
        case column_ordering::none:
            break;
        case column_ordering::count:
            std::stable_sort(q_.begin(), q_.end(), [&a](std::size_t i, std::size_t j) {
                return a.col_ptr()[i + 1] - a.col_ptr()[i] < a.col_ptr()[j + 1] - a.col_ptr()[j];
            });
            break;
        case column_ordering::amd:
            q_ = minimum_degree_order(n_, a.col_ptr(), a.row_idx());
            break;
        }

        std::vector<std::ptrdiff_t> pinv(n_, unset);
        lcol_ptr_.assign(n_ + 1, 0);
        ucol_ptr_.assign(n_ + 1, 0);
        // Pivoting needs the numeric elimination; the values live in these
        // temporaries and are dropped once the pattern is fixed — unless
        // the caller asked for them via values_out.
        std::vector<T> lval;
        std::vector<T> uval;

        std::vector<T> x(n_, T{});
        std::vector<std::size_t> mark(n_, 0);
        std::vector<std::size_t> postorder;
        postorder.reserve(n_);
        struct frame {
            std::size_t node;
            std::size_t child;
        };
        std::vector<frame> stack;

        for (std::size_t k = 0; k < n_; ++k) {
            const std::size_t col = q_[k];
            const std::size_t stamp = k + 1;
            postorder.clear();

            // Symbolic: depth-first search of the reach set of A(:, col)
            // through the columns of L built so far.
            for (std::size_t p = a.col_ptr()[col]; p < a.col_ptr()[col + 1]; ++p) {
                const std::size_t root = a.row_idx()[p];
                if (mark[root] == stamp)
                    continue;
                mark[root] = stamp;
                stack.push_back({root, 0});
                while (!stack.empty()) {
                    frame& f = stack.back();
                    const std::ptrdiff_t c = pinv[f.node];
                    bool descended = false;
                    if (c >= 0) {
                        const std::size_t begin = lcol_ptr_[static_cast<std::size_t>(c)];
                        const std::size_t end = lcol_ptr_[static_cast<std::size_t>(c) + 1];
                        while (begin + f.child < end) {
                            const std::size_t next = lrow_[begin + f.child];
                            ++f.child;
                            if (mark[next] != stamp) {
                                mark[next] = stamp;
                                stack.push_back({next, 0});
                                descended = true;
                                break;
                            }
                        }
                    }
                    if (!descended && (c < 0 || lcol_ptr_[static_cast<std::size_t>(c)] + f.child
                                           >= lcol_ptr_[static_cast<std::size_t>(c) + 1])) {
                        postorder.push_back(f.node);
                        stack.pop_back();
                    }
                }
            }

            // Numeric: scatter A(:, col), then eliminate in reverse postorder.
            for (std::size_t p = a.col_ptr()[col]; p < a.col_ptr()[col + 1]; ++p)
                x[a.row_idx()[p]] = a.values()[p];
            for (std::size_t idx = postorder.size(); idx-- > 0;) {
                const std::size_t i = postorder[idx];
                const std::ptrdiff_t c = pinv[i];
                if (c < 0)
                    continue;
                const T xi = x[i];
                if (xi == T{})
                    continue;
                for (std::size_t p = lcol_ptr_[static_cast<std::size_t>(c)];
                     p < lcol_ptr_[static_cast<std::size_t>(c) + 1]; ++p)
                    x[lrow_[p]] -= lval[p] * xi;
            }

            // Pivot: largest magnitude among not-yet-pivotal rows, with a
            // threshold preference for the structural diagonal.
            std::ptrdiff_t ipiv = unset;
            double best = 0.0;
            for (const std::size_t i : postorder) {
                if (pinv[i] != unset)
                    continue;
                const double mag = std::abs(x[i]);
                if (mag > best) {
                    best = mag;
                    ipiv = static_cast<std::ptrdiff_t>(i);
                }
            }
            if (ipiv == unset || best == 0.0)
                throw numeric_error("symbolic_lu: singular matrix at column "
                                    + std::to_string(col));
            if (pinv[col] == unset && std::abs(x[col]) >= opt.pivot_tol * best)
                ipiv = static_cast<std::ptrdiff_t>(col);
            const T pivot = x[static_cast<std::size_t>(ipiv)];

            // Emit the full symbolic reach of U(:, k) and L(:, k) — even
            // entries that happen to be numerically zero in the seed — so
            // the pattern is purely structural (value-independent).
            for (const std::size_t i : postorder) {
                if (pinv[i] != unset) {
                    urow_.push_back(static_cast<std::size_t>(pinv[i]));
                    uval.push_back(x[i]);
                }
            }
            urow_.push_back(k);
            uval.push_back(pivot);
            ucol_ptr_[k + 1] = urow_.size();

            pinv[static_cast<std::size_t>(ipiv)] = static_cast<std::ptrdiff_t>(k);
            for (const std::size_t i : postorder) {
                if (pinv[i] == unset) {
                    lrow_.push_back(i);
                    lval.push_back(x[i] / pivot);
                }
                x[i] = T{};
            }
            lcol_ptr_[k + 1] = lrow_.size();
        }

        // Renumber L's rows into pivot order now that pinv is complete.
        pinv_.resize(n_);
        for (std::size_t i = 0; i < n_; ++i)
            pinv_[i] = static_cast<std::size_t>(pinv[i]);
        for (auto& r : lrow_)
            r = pinv_[r];

        // refactor() consumes each U column in ascending pivot order;
        // sort the off-diagonal rows (with their values kept aligned for
        // a potential export; solve order is insensitive).
        std::vector<std::pair<std::size_t, T>> col;
        for (std::size_t k = 0; k < n_; ++k) {
            const std::size_t begin = ucol_ptr_[k];
            const std::size_t last = ucol_ptr_[k + 1] - 1;
            col.clear();
            for (std::size_t p = begin; p < last; ++p)
                col.emplace_back(urow_[p], uval[p]);
            std::sort(col.begin(), col.end(),
                      [](const auto& lhs, const auto& rhs) { return lhs.first < rhs.first; });
            for (std::size_t p = begin; p < last; ++p) {
                urow_[p] = col[p - begin].first;
                uval[p] = col[p - begin].second;
            }
        }

        if (values_out != nullptr) {
            values_out->lval = std::move(lval);
            values_out->uval = std::move(uval);
        }
    }

    std::size_t n_ = 0;
    std::vector<std::size_t> lcol_ptr_, lrow_;
    std::vector<std::size_t> ucol_ptr_, urow_;
    std::vector<std::size_t> pinv_;
    std::vector<std::size_t> q_;
};

/// Per-worker numeric factorization bound to a shared symbolic_lu. Holds
/// only L/U values plus O(n) scratch; refactor(), solve_in_place() and
/// solve_batch() never allocate. One instance is NOT thread-safe (shared
/// scratch); the symbolic object it points at is.
template <class T>
class numeric_lu {
public:
    explicit numeric_lu(std::shared_ptr<const symbolic_lu<T>> sym)
        : sym_(std::move(sym)), lval_(sym_->lrow().size()), uval_(sym_->urow().size()),
          work_(sym_->size(), T{}), scratch_(sym_->size())
    {
    }

    /// Adopt the seed values the symbolic analysis computed anyway, so a
    /// one-shot factor-and-solve (the sparse_lu facade) does not repeat
    /// the numeric elimination.
    numeric_lu(std::shared_ptr<const symbolic_lu<T>> sym,
               typename symbolic_lu<T>::factor_values&& seed)
        : sym_(std::move(sym)), lval_(std::move(seed.lval)), uval_(std::move(seed.uval)),
          work_(sym_->size(), T{}), scratch_(sym_->size())
    {
        if (lval_.size() != sym_->lrow().size() || uval_.size() != sym_->urow().size())
            throw numeric_error("numeric_lu: seed values do not match the symbolic pattern");
    }

    [[nodiscard]] const symbolic_lu<T>& symbolic() const noexcept { return *sym_; }
    [[nodiscard]] std::size_t size() const noexcept { return sym_->size(); }

    /// Compute the numeric factors of a matrix with the symbolic object's
    /// sparsity pattern, reusing its pivot order (no search, no
    /// allocation). Throws numeric_error on an exactly-zero pivot; the
    /// values are then undefined but the instance may be refactored again.
    void refactor(const csc_matrix<T>& a)
    {
        const std::size_t n = sym_->size();
        if (a.rows() != n || a.cols() != n)
            throw numeric_error("numeric_lu: refactor size mismatch");
        const auto& lcol_ptr = sym_->lcol_ptr();
        const auto& lrow = sym_->lrow();
        const auto& ucol_ptr = sym_->ucol_ptr();
        const auto& urow = sym_->urow();
        const auto& pinv = sym_->pinv();
        const auto& qperm = sym_->q();
        // Work in pivot space: w[pinv[row]] accumulates the current
        // column; every position touched lies in the stored L/U pattern
        // and is cleared as it is consumed, keeping w all-zero between
        // columns (and between refactor calls).
        std::vector<T>& w = work_;
        for (std::size_t k = 0; k < n; ++k) {
            const std::size_t col = qperm[k];
            for (std::size_t p = a.col_ptr()[col]; p < a.col_ptr()[col + 1]; ++p)
                w[pinv[a.row_idx()[p]]] += a.values()[p];
            // Left-looking update: consume U rows in ascending pivot order
            // (sorted by the symbolic analysis).
            const std::size_t ulast = ucol_ptr[k + 1] - 1;
            for (std::size_t p = ucol_ptr[k]; p < ulast; ++p) {
                const std::size_t j = urow[p];
                const T wj = w[j];
                uval_[p] = wj;
                w[j] = T{};
                if (wj == T{})
                    continue;
                for (std::size_t q = lcol_ptr[j]; q < lcol_ptr[j + 1]; ++q)
                    w[lrow[q]] -= lval_[q] * wj;
            }
            const T pivot = w[k];
            w[k] = T{};
            if (pivot == T{}) {
                // Restore the all-zero invariant before reporting so the
                // instance stays refactorable.
                for (std::size_t p = lcol_ptr[k]; p < lcol_ptr[k + 1]; ++p)
                    w[lrow[p]] = T{};
                throw numeric_error("numeric_lu: refactor hit a zero pivot at column "
                                    + std::to_string(col));
            }
            uval_[ulast] = pivot;
            for (std::size_t p = lcol_ptr[k]; p < lcol_ptr[k + 1]; ++p) {
                lval_[p] = w[lrow[p]] / pivot;
                w[lrow[p]] = T{};
            }
        }
        // Growth witness from three tight contiguous passes (kept out of
        // the indirect-indexed elimination loops so they stay lean).
        const double amax = max_l1(a.values());
        growth_ = std::max(max_l1(lval_), amax > 0.0 ? max_l1(uval_) / amax : 0.0);
    }

    /// Element growth of the last refactor (L1-norm proxies): the larger
    /// of the biggest |L| multiplier and the classical U-side growth
    /// factor max|U| / max|A|. Fresh threshold pivoting bounds the L side
    /// by 1/pivot_tol and keeps the U side modest; a reused pivot order
    /// that has gone stale lets either blow up, so this is the free
    /// staleness witness the sweep engine's guard reads before deciding
    /// whether a residual check (and possibly a fresh factorization) is
    /// warranted.
    [[nodiscard]] double growth() const noexcept { return growth_; }

    /// Select the batched back-solve kernel (default scalar). The SIMD
    /// kernel grows its split-plane scratch lazily to the largest batch
    /// seen, so after the first batch of a given width the solve loop is
    /// allocation-free again.
    void set_batch_kernel(batch_kernel k) noexcept { kernel_ = k; }
    [[nodiscard]] batch_kernel kernel() const noexcept { return kernel_; }

    /// Solve A X = B for a batch of right-hand sides.
    /// b[r] points at right-hand side r (length n); x is column-major
    /// n*nrhs and is fully overwritten with the solutions. b[r] must not
    /// alias any x column (use solve_in_place for that). One traversal of
    /// L and one of U serves the whole batch, so factor loads amortize
    /// across the right-hand sides. Non-const (uses the instance
    /// scratch): per-worker use only.
    void solve_batch(const T* const* b, std::size_t nrhs, T* x)
    {
        if constexpr (std::is_same_v<T, std::complex<double>>) {
            if (kernel_ == batch_kernel::simd && nrhs >= 2) {
                solve_batch_simd(b, nrhs, x);
                return;
            }
        }
        solve_batch_scalar(b, nrhs, x);
    }

private:
    void solve_batch_scalar(const T* const* b, std::size_t nrhs, T* x)
    {
        const std::size_t n = sym_->size();
        const auto& pinv = sym_->pinv();
        const auto& qperm = sym_->q();
        const auto& lcol_ptr = sym_->lcol_ptr();
        const auto& lrow = sym_->lrow();
        const auto& ucol_ptr = sym_->ucol_ptr();
        const auto& urow = sym_->urow();

        // Scatter every column into pivot order.
        for (std::size_t r = 0; r < nrhs; ++r) {
            const T* bc = b[r];
            T* xc = x + r * n;
            for (std::size_t i = 0; i < n; ++i)
                xc[pinv[i]] = bc[i];
        }
        // Forward solve with unit-diagonal L, one pass over its columns.
        for (std::size_t c = 0; c < n; ++c) {
            const std::size_t pb = lcol_ptr[c];
            const std::size_t pe = lcol_ptr[c + 1];
            for (std::size_t r = 0; r < nrhs; ++r) {
                T* xc = x + r * n;
                const T yc = xc[c];
                if (yc == T{})
                    continue;
                for (std::size_t p = pb; p < pe; ++p)
                    xc[lrow[p]] -= lval_[p] * yc;
            }
        }
        // Back solve with U (diagonal entry stored last in each column).
        for (std::size_t c = n; c-- > 0;) {
            const std::size_t last = ucol_ptr[c + 1] - 1;
            const T diag = uval_[last];
            for (std::size_t r = 0; r < nrhs; ++r) {
                T* xc = x + r * n;
                const T v = xc[c] / diag;
                xc[c] = v;
                if (v == T{})
                    continue;
                for (std::size_t p = ucol_ptr[c]; p < last; ++p)
                    xc[urow[p]] -= uval_[p] * v;
            }
        }
        // Undo the column ordering (scratch is free again by this point
        // even when solve_in_place staged b through it: the scatter above
        // was its last read).
        for (std::size_t r = 0; r < nrhs; ++r) {
            T* xc = x + r * n;
            for (std::size_t c = 0; c < n; ++c)
                scratch_[qperm[c]] = xc[c];
            std::copy(scratch_.begin(), scratch_.end(), xc);
        }
    }

    /// SIMD batch kernel (std::complex<double> only): the batch lives in
    /// two split real/imag double planes laid out rhs-contiguously
    /// (lane r of pivot row i at [i * nrhs + r]), so every factor entry is
    /// loaded once per column while the inner loop over the batch is a
    /// unit-stride fused multiply-add chain the compiler vectorizes
    /// across right-hand sides. A column whose lanes are all zero skips
    /// its update loop entirely (the injection right-hand sides of the
    /// stability sweeps are mostly zeros). The U diagonal still divides
    /// through std::complex so both kernels share the same (robustly
    /// scaled) complex division.
    void solve_batch_simd(const T* const* b, std::size_t nrhs, T* x)
    {
        const std::size_t n = sym_->size();
        const auto& pinv = sym_->pinv();
        const auto& qperm = sym_->q();
        const auto& lcol_ptr = sym_->lcol_ptr();
        const auto& lrow = sym_->lrow();
        const auto& ucol_ptr = sym_->ucol_ptr();
        const auto& urow = sym_->urow();

        if (plane_re_.size() < n * nrhs) {
            plane_re_.resize(n * nrhs);
            plane_im_.resize(n * nrhs);
        }
        double* __restrict xr = plane_re_.data();
        double* __restrict xi = plane_im_.data();

        // Scatter into pivot order, splitting the complex lanes.
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t base = pinv[i] * nrhs;
            for (std::size_t r = 0; r < nrhs; ++r) {
                xr[base + r] = b[r][i].real();
                xi[base + r] = b[r][i].imag();
            }
        }
        // Forward solve with unit-diagonal L.
        for (std::size_t c = 0; c < n; ++c) {
            const std::size_t cb = c * nrhs;
            bool any = false;
            for (std::size_t r = 0; r < nrhs; ++r)
                any = any || xr[cb + r] != 0.0 || xi[cb + r] != 0.0;
            if (!any)
                continue;
            const std::size_t pe = lcol_ptr[c + 1];
            for (std::size_t p = lcol_ptr[c]; p < pe; ++p) {
                const double lr = lval_[p].real();
                const double li = lval_[p].imag();
                const std::size_t rb = lrow[p] * nrhs;
                for (std::size_t r = 0; r < nrhs; ++r) {
                    const double ar = xr[cb + r];
                    const double ai = xi[cb + r];
                    xr[rb + r] -= lr * ar - li * ai;
                    xi[rb + r] -= lr * ai + li * ar;
                }
            }
        }
        // Back solve with U (diagonal stored last in each column).
        for (std::size_t c = n; c-- > 0;) {
            const std::size_t last = ucol_ptr[c + 1] - 1;
            const T diag = uval_[last];
            const std::size_t cb = c * nrhs;
            bool any = false;
            for (std::size_t r = 0; r < nrhs; ++r) {
                const T v = T{xr[cb + r], xi[cb + r]} / diag;
                xr[cb + r] = v.real();
                xi[cb + r] = v.imag();
                any = any || v != T{};
            }
            if (!any)
                continue;
            for (std::size_t p = ucol_ptr[c]; p < last; ++p) {
                const double ur = uval_[p].real();
                const double ui = uval_[p].imag();
                const std::size_t rb = urow[p] * nrhs;
                for (std::size_t r = 0; r < nrhs; ++r) {
                    const double ar = xr[cb + r];
                    const double ai = xi[cb + r];
                    xr[rb + r] -= ur * ar - ui * ai;
                    xi[rb + r] -= ur * ai + ui * ar;
                }
            }
        }
        // Undo the column ordering while re-interleaving the planes.
        for (std::size_t r = 0; r < nrhs; ++r) {
            T* xc = x + r * n;
            for (std::size_t c = 0; c < n; ++c)
                xc[qperm[c]] = T{xr[c * nrhs + r], xi[c * nrhs + r]};
        }
    }

public:
    /// Solve A x = b with b and the solution in the same length-n buffer.
    /// Non-const (uses the instance scratch): per-worker use only.
    void solve_in_place(T* x)
    {
        std::copy(x, x + sym_->size(), scratch_.begin());
        const T* b = scratch_.data();
        solve_batch(&b, 1, x);
    }

    /// Allocating single solve. Touches no instance scratch, so — unlike
    /// solve_batch/solve_in_place — concurrent calls on one shared
    /// factorization are safe (the sparse_lu facade relies on this).
    [[nodiscard]] std::vector<T> solve(const std::vector<T>& b) const
    {
        const std::size_t n = sym_->size();
        if (b.size() != n)
            throw numeric_error("numeric_lu: right-hand side has wrong length");
        const auto& pinv = sym_->pinv();
        const auto& qperm = sym_->q();
        const auto& lcol_ptr = sym_->lcol_ptr();
        const auto& lrow = sym_->lrow();
        const auto& ucol_ptr = sym_->ucol_ptr();
        const auto& urow = sym_->urow();
        std::vector<T> y(n);
        for (std::size_t i = 0; i < n; ++i)
            y[pinv[i]] = b[i];
        for (std::size_t c = 0; c < n; ++c) {
            const T yc = y[c];
            if (yc == T{})
                continue;
            for (std::size_t p = lcol_ptr[c]; p < lcol_ptr[c + 1]; ++p)
                y[lrow[p]] -= lval_[p] * yc;
        }
        for (std::size_t c = n; c-- > 0;) {
            const std::size_t last = ucol_ptr[c + 1] - 1;
            const T xc = y[c] / uval_[last];
            y[c] = xc;
            if (xc == T{})
                continue;
            for (std::size_t p = ucol_ptr[c]; p < last; ++p)
                y[urow[p]] -= uval_[p] * xc;
        }
        std::vector<T> x(n);
        for (std::size_t c = 0; c < n; ++c)
            x[qperm[c]] = y[c];
        return x;
    }

private:
    [[nodiscard]] static double max_l1(const std::vector<T>& v) noexcept
    {
        double m = 0.0;
        for (const T& x : v) {
            const double mag = std::abs(std::real(x)) + std::abs(std::imag(x));
            if (mag > m)
                m = mag;
        }
        return m;
    }

    std::shared_ptr<const symbolic_lu<T>> sym_;
    std::vector<T> lval_;
    std::vector<T> uval_;
    std::vector<T> work_;    ///< refactor accumulator (pivot space)
    std::vector<T> scratch_; ///< permutation staging for batched solves
    batch_kernel kernel_ = batch_kernel::scalar;
    std::vector<double> plane_re_; ///< SIMD kernel: real lanes, grown lazily
    std::vector<double> plane_im_; ///< SIMD kernel: imaginary lanes
    double growth_ = 0.0;
};

} // namespace acstab::numeric

#endif // ACSTAB_NUMERIC_SPARSE_FACTOR_H
