// The symbolic / numeric split of the left-looking sparse LU
// (Gilbert–Peierls with threshold partial pivoting).
//
//   * symbolic_lu — the immutable, shareable half: pivot order, column
//     preordering and the full symbolic L/U reach patterns, computed once
//     per matrix structure. Safe to share (read-only) across any number
//     of workers via shared_ptr; the sweep engine computes it once per
//     linearized snapshot instead of once per worker chunk.
//   * numeric_lu — the lightweight per-worker half: just the L/U values
//     plus O(n) scratch, refactored in place against the shared symbolic
//     object frequency to frequency. Its solve_in_place / solve_batch
//     back-solve whole RHS batches in one L and one U traversal without
//     a single heap allocation, which is what makes the sweep hot loop
//     allocation-free.
//
// sparse_lu.h keeps the original one-object facade on top of this pair
// for one-shot factor-and-solve call sites.
#ifndef ACSTAB_NUMERIC_SPARSE_FACTOR_H
#define ACSTAB_NUMERIC_SPARSE_FACTOR_H

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <type_traits>
#include <vector>

#include "common/error.h"
#include "numeric/amd_order.h"
#include "numeric/sn_kernels.h"
#include "numeric/sparse_matrix.h"
#include "numeric/supernode.h"

#ifdef ACSTAB_SN_PROF
inline unsigned long long acstab_snp[16];
inline unsigned long long acstab_snp_now()
{
    unsigned lo, hi;
    __asm__ volatile("rdtsc" : "=a"(lo), "=d"(hi));
    return (static_cast<unsigned long long>(hi) << 32) | lo;
}
#define ACSTAB_SNPM(s)                                                                   \
    do {                                                                                 \
        const unsigned long long t__ = acstab_snp_now();                                 \
        acstab_snp[s] += t__ - snp_t;                                                    \
        snp_t = t__;                                                                     \
    } while (0)
#else
#define ACSTAB_SNPM(s)
#endif

namespace acstab::numeric {

/// Column pre-ordering applied before the pivot-selecting elimination.
enum class column_ordering {
    /// Natural order (ablation/bisection baseline).
    none,
    /// Ascending nonzero-count order — the seed's cheap static heuristic.
    /// Good on ladders, degenerates to the natural order on meshes where
    /// every column has the same degree.
    count,
    /// Minimum external degree on A + A^T (amd_order.h): re-ranks the
    /// remaining columns after every elimination with exact degrees.
    /// Fill matches amd_approx to a few percent; the ordering itself is
    /// the slower of the two at 100k+ nodes.
    amd,
    /// Approximate minimum degree (supervariables + the approximate
    /// external-degree bound + aggressive absorption, amd_order.h): the
    /// same fill quality at a per-pivot cost that scales to hundreds of
    /// thousands of nodes. The default.
    amd_approx,
};

/// Batched back-solve kernel of numeric_lu::solve_batch.
enum class batch_kernel {
    /// One right-hand side at a time inside the shared L/U traversal;
    /// bit-identical to repeated single solves.
    scalar,
    /// Split real/imag planes in an rhs-contiguous layout so the inner
    /// loop over the batch is unit-stride and auto-vectorizes; results
    /// agree with scalar to rounding (the complex multiply is expanded
    /// into real mul/adds the compiler may schedule differently).
    /// Only distinct from scalar for std::complex<double> batches of
    /// two or more right-hand sides.
    simd,
};

/// The one solver options type shared by symbolic_lu and the sparse_lu
/// facade (which forwards it verbatim), so the ordering knob is defined
/// exactly once.
struct lu_options {
    /// Diagonal entries within pivot_tol of the column maximum are
    /// preferred, preserving MNA structure and limiting fill-in.
    double pivot_tol = 0.1;
    /// Fill-reducing column pre-ordering.
    column_ordering ordering = column_ordering::amd_approx;
    /// Supernode partition shape for the blocked numeric path: width cap
    /// of a dense panel, and the relaxed-amalgamation padding bounds
    /// (see detect_supernodes; 0 / 0.0 keeps the strict partition). The
    /// partition only affects how the blocked path groups its work —
    /// factors and solves are identical under any setting.
    std::size_t sn_max_width = 32;
    std::size_t sn_relax_zeros = 12;
    double sn_relax_fill = 0.25;
};

/// Immutable symbolic factorization: pivot order, column ordering and the
/// L/U sparsity patterns (full symbolic reach, so any matrix with the seed
/// matrix's pattern can be refactored numerically against it). Pivots are
/// chosen from the seed matrix's values; the values themselves are
/// discarded — numeric_lu recomputes them per matrix.
template <class T>
class symbolic_lu {
public:
    using options = lu_options;

    /// The numeric L/U values of the seed factorization, aligned with the
    /// symbolic pattern arrays. The analysis computes them anyway (pivot
    /// selection needs the elimination); exporting them lets a one-shot
    /// caller seed its numeric_lu without repeating the numeric pass.
    struct factor_values {
        std::vector<T> lval;
        std::vector<T> uval;
    };

    explicit symbolic_lu(const csc_matrix<T>& a, options opt = {},
                         factor_values* values_out = nullptr)
        : n_(a.cols())
    {
        if (a.rows() != n_)
            throw numeric_error("symbolic_lu: matrix must be square");
        analyze(a, opt, values_out);
    }

    [[nodiscard]] std::size_t size() const noexcept { return n_; }
    /// Stored L entries plus the implicit unit diagonal.
    [[nodiscard]] std::size_t lower_nnz() const noexcept { return lrow_.size() + n_; }
    [[nodiscard]] std::size_t upper_nnz() const noexcept { return urow_.size(); }

    [[nodiscard]] const std::vector<std::size_t>& lcol_ptr() const noexcept { return lcol_ptr_; }
    [[nodiscard]] const std::vector<std::size_t>& lrow() const noexcept { return lrow_; }
    [[nodiscard]] const std::vector<std::size_t>& ucol_ptr() const noexcept { return ucol_ptr_; }
    /// Off-diagonal rows of each U column are sorted ascending (the order
    /// numeric_lu::refactor consumes them in); the diagonal is stored last.
    [[nodiscard]] const std::vector<std::size_t>& urow() const noexcept { return urow_; }
    /// Original row -> pivot position.
    [[nodiscard]] const std::vector<std::size_t>& pinv() const noexcept { return pinv_; }
    /// Pivot step -> original column.
    [[nodiscard]] const std::vector<std::size_t>& q() const noexcept { return q_; }
    /// Supernode partition of the pivot columns (supernode.h), computed
    /// once at analysis time; numeric_lu's blocked mode is built on it.
    [[nodiscard]] const supernode_partition& supernodes() const noexcept { return sn_; }

private:
    void analyze(const csc_matrix<T>& a, const options& opt, factor_values* values_out)
    {
        constexpr std::ptrdiff_t unset = -1;
        q_.resize(n_);
        std::iota(q_.begin(), q_.end(), std::size_t{0});
        switch (opt.ordering) {
        case column_ordering::none:
            break;
        case column_ordering::count:
            std::stable_sort(q_.begin(), q_.end(), [&a](std::size_t i, std::size_t j) {
                return a.col_ptr()[i + 1] - a.col_ptr()[i] < a.col_ptr()[j + 1] - a.col_ptr()[j];
            });
            break;
        case column_ordering::amd:
            q_ = minimum_degree_order(n_, a.col_ptr(), a.row_idx());
            break;
        case column_ordering::amd_approx:
            q_ = approx_minimum_degree_order(n_, a.col_ptr(), a.row_idx());
            break;
        }

        std::vector<std::ptrdiff_t> pinv(n_, unset);
        lcol_ptr_.assign(n_ + 1, 0);
        ucol_ptr_.assign(n_ + 1, 0);
        // Pivoting needs the numeric elimination; the values live in these
        // temporaries and are dropped once the pattern is fixed — unless
        // the caller asked for them via values_out.
        std::vector<T> lval;
        std::vector<T> uval;

        std::vector<T> x(n_, T{});
        std::vector<std::size_t> mark(n_, 0);
        std::vector<std::size_t> postorder;
        postorder.reserve(n_);
        struct frame {
            std::size_t node;
            std::size_t child;
        };
        std::vector<frame> stack;

        for (std::size_t k = 0; k < n_; ++k) {
            const std::size_t col = q_[k];
            const std::size_t stamp = k + 1;
            postorder.clear();

            // Symbolic: depth-first search of the reach set of A(:, col)
            // through the columns of L built so far.
            for (std::size_t p = a.col_ptr()[col]; p < a.col_ptr()[col + 1]; ++p) {
                const std::size_t root = a.row_idx()[p];
                if (mark[root] == stamp)
                    continue;
                mark[root] = stamp;
                stack.push_back({root, 0});
                while (!stack.empty()) {
                    frame& f = stack.back();
                    const std::ptrdiff_t c = pinv[f.node];
                    bool descended = false;
                    if (c >= 0) {
                        const std::size_t begin = lcol_ptr_[static_cast<std::size_t>(c)];
                        const std::size_t end = lcol_ptr_[static_cast<std::size_t>(c) + 1];
                        while (begin + f.child < end) {
                            const std::size_t next = lrow_[begin + f.child];
                            ++f.child;
                            if (mark[next] != stamp) {
                                mark[next] = stamp;
                                stack.push_back({next, 0});
                                descended = true;
                                break;
                            }
                        }
                    }
                    if (!descended && (c < 0 || lcol_ptr_[static_cast<std::size_t>(c)] + f.child
                                           >= lcol_ptr_[static_cast<std::size_t>(c) + 1])) {
                        postorder.push_back(f.node);
                        stack.pop_back();
                    }
                }
            }

            // Numeric: scatter A(:, col), then eliminate in reverse postorder.
            for (std::size_t p = a.col_ptr()[col]; p < a.col_ptr()[col + 1]; ++p)
                x[a.row_idx()[p]] = a.values()[p];
            for (std::size_t idx = postorder.size(); idx-- > 0;) {
                const std::size_t i = postorder[idx];
                const std::ptrdiff_t c = pinv[i];
                if (c < 0)
                    continue;
                const T xi = x[i];
                if (xi == T{})
                    continue;
                for (std::size_t p = lcol_ptr_[static_cast<std::size_t>(c)];
                     p < lcol_ptr_[static_cast<std::size_t>(c) + 1]; ++p)
                    x[lrow_[p]] -= lval[p] * xi;
            }

            // Pivot: largest magnitude among not-yet-pivotal rows, with a
            // threshold preference for the structural diagonal.
            std::ptrdiff_t ipiv = unset;
            double best = 0.0;
            for (const std::size_t i : postorder) {
                if (pinv[i] != unset)
                    continue;
                const double mag = std::abs(x[i]);
                if (mag > best) {
                    best = mag;
                    ipiv = static_cast<std::ptrdiff_t>(i);
                }
            }
            if (ipiv == unset || best == 0.0)
                throw numeric_error("symbolic_lu: singular matrix at column "
                                    + std::to_string(col));
            if (pinv[col] == unset && std::abs(x[col]) >= opt.pivot_tol * best)
                ipiv = static_cast<std::ptrdiff_t>(col);
            const T pivot = x[static_cast<std::size_t>(ipiv)];

            // Emit the full symbolic reach of U(:, k) and L(:, k) — even
            // entries that happen to be numerically zero in the seed — so
            // the pattern is purely structural (value-independent).
            for (const std::size_t i : postorder) {
                if (pinv[i] != unset) {
                    urow_.push_back(static_cast<std::size_t>(pinv[i]));
                    uval.push_back(x[i]);
                }
            }
            urow_.push_back(k);
            uval.push_back(pivot);
            ucol_ptr_[k + 1] = urow_.size();

            pinv[static_cast<std::size_t>(ipiv)] = static_cast<std::ptrdiff_t>(k);
            for (const std::size_t i : postorder) {
                if (pinv[i] == unset) {
                    lrow_.push_back(i);
                    lval.push_back(x[i] / pivot);
                }
                x[i] = T{};
            }
            lcol_ptr_[k + 1] = lrow_.size();
        }

        // Renumber L's rows into pivot order now that pinv is complete.
        pinv_.resize(n_);
        for (std::size_t i = 0; i < n_; ++i)
            pinv_[i] = static_cast<std::size_t>(pinv[i]);
        for (auto& r : lrow_)
            r = pinv_[r];

        // refactor() consumes each U column in ascending pivot order;
        // sort the off-diagonal rows (with their values kept aligned for
        // a potential export; solve order is insensitive).
        std::vector<std::pair<std::size_t, T>> col;
        for (std::size_t k = 0; k < n_; ++k) {
            const std::size_t begin = ucol_ptr_[k];
            const std::size_t last = ucol_ptr_[k + 1] - 1;
            col.clear();
            for (std::size_t p = begin; p < last; ++p)
                col.emplace_back(urow_[p], uval[p]);
            std::sort(col.begin(), col.end(),
                      [](const auto& lhs, const auto& rhs) { return lhs.first < rhs.first; });
            for (std::size_t p = begin; p < last; ++p) {
                urow_[p] = col[p - begin].first;
                uval[p] = col[p - begin].second;
            }
        }

        if (values_out != nullptr) {
            values_out->lval = std::move(lval);
            values_out->uval = std::move(uval);
        }

        // The L rows are in pivot space now, which is what the supernode
        // nesting rule is defined over.
        sn_ = detect_supernodes(n_, lcol_ptr_, lrow_, opt.sn_max_width,
                                opt.sn_relax_zeros, opt.sn_relax_fill);
    }

    std::size_t n_ = 0;
    std::vector<std::size_t> lcol_ptr_, lrow_;
    std::vector<std::size_t> ucol_ptr_, urow_;
    std::vector<std::size_t> pinv_;
    std::vector<std::size_t> q_;
    supernode_partition sn_;
};

/// Per-worker numeric factorization bound to a shared symbolic_lu. Holds
/// only L/U values plus O(n) scratch; refactor(), solve_in_place() and
/// solve_batch() never allocate. One instance is NOT thread-safe (shared
/// scratch); the symbolic object it points at is.
template <class T>
class numeric_lu {
public:
    explicit numeric_lu(std::shared_ptr<const symbolic_lu<T>> sym)
        : sym_(std::move(sym)), lval_(sym_->lrow().size()), uval_(sym_->urow().size()),
          work_(sym_->size(), T{}), scratch_(sym_->size())
    {
    }

    /// Adopt the seed values the symbolic analysis computed anyway, so a
    /// one-shot factor-and-solve (the sparse_lu facade) does not repeat
    /// the numeric elimination.
    numeric_lu(std::shared_ptr<const symbolic_lu<T>> sym,
               typename symbolic_lu<T>::factor_values&& seed)
        : sym_(std::move(sym)), lval_(std::move(seed.lval)), uval_(std::move(seed.uval)),
          work_(sym_->size(), T{}), scratch_(sym_->size())
    {
        if (lval_.size() != sym_->lrow().size() || uval_.size() != sym_->urow().size())
            throw numeric_error("numeric_lu: seed values do not match the symbolic pattern");
    }

    [[nodiscard]] const symbolic_lu<T>& symbolic() const noexcept { return *sym_; }
    [[nodiscard]] std::size_t size() const noexcept { return sym_->size(); }

    /// Compute the numeric factors of a matrix with the symbolic object's
    /// sparsity pattern, reusing its pivot order (no search, no
    /// allocation). Throws numeric_error on an exactly-zero pivot; the
    /// values are then undefined but the instance may be refactored again.
    /// In supernodal mode the blocked elimination runs instead of the
    /// column-at-a-time loop; both fill the same CSC value arrays (the
    /// blocked path additionally fills its dense panels), so every solve
    /// path stays valid either way.
    void refactor(const csc_matrix<T>& a)
    {
        const std::size_t n = sym_->size();
        if (a.rows() != n || a.cols() != n)
            throw numeric_error("numeric_lu: refactor size mismatch");
        if (snmode_)
            refactor_supernodal(a);
        else
            refactor_column(a);
        // Growth witness from three tight contiguous passes (kept out of
        // the indirect-indexed elimination loops so they stay lean).
        const double amax = max_l1(a.values());
        growth_ = std::max(max_l1(lval_), amax > 0.0 ? max_l1(uval_) / amax : 0.0);
    }

private:
    void refactor_column(const csc_matrix<T>& a)
    {
        const std::size_t n = sym_->size();
        const auto& lcol_ptr = sym_->lcol_ptr();
        const auto& lrow = sym_->lrow();
        const auto& ucol_ptr = sym_->ucol_ptr();
        const auto& urow = sym_->urow();
        const auto& pinv = sym_->pinv();
        const auto& qperm = sym_->q();
        // Work in pivot space: w[pinv[row]] accumulates the current
        // column; every position touched lies in the stored L/U pattern
        // and is cleared as it is consumed, keeping w all-zero between
        // columns (and between refactor calls).
        std::vector<T>& w = work_;
        for (std::size_t k = 0; k < n; ++k) {
            const std::size_t col = qperm[k];
            for (std::size_t p = a.col_ptr()[col]; p < a.col_ptr()[col + 1]; ++p)
                w[pinv[a.row_idx()[p]]] += a.values()[p];
            // Left-looking update: consume U rows in ascending pivot order
            // (sorted by the symbolic analysis).
            const std::size_t ulast = ucol_ptr[k + 1] - 1;
            for (std::size_t p = ucol_ptr[k]; p < ulast; ++p) {
                const std::size_t j = urow[p];
                const T wj = w[j];
                uval_[p] = wj;
                w[j] = T{};
                if (wj == T{})
                    continue;
                for (std::size_t q = lcol_ptr[j]; q < lcol_ptr[j + 1]; ++q)
                    w[lrow[q]] -= lval_[q] * wj;
            }
            const T pivot = w[k];
            w[k] = T{};
            if (pivot == T{}) {
                // Restore the all-zero invariant before reporting so the
                // instance stays refactorable.
                for (std::size_t p = lcol_ptr[k]; p < lcol_ptr[k + 1]; ++p)
                    w[lrow[p]] = T{};
                throw numeric_error("numeric_lu: refactor hit a zero pivot at column "
                                    + std::to_string(col));
            }
            uval_[ulast] = pivot;
            for (std::size_t p = lcol_ptr[k]; p < lcol_ptr[k + 1]; ++p) {
                lval_[p] = w[lrow[p]] / pivot;
                w[lrow[p]] = T{};
            }
        }
    }

    /// True when the value type is interleaved double complex, in which
    /// case the blocked refactor kernels below do the multiply in split
    /// real/imaginary form (same expressions the inline fast path of
    /// std::complex uses, minus its non-finite recovery branch that
    /// blocks vectorization).
    static constexpr bool split_cplx_ = std::is_same_v<T, std::complex<double>>;

    /// a * b without the Annex-G recovery branch.
    [[nodiscard]] static T cmul_(T a, T b) noexcept
    {
        if constexpr (split_cplx_)
            return T{a.real() * b.real() - a.imag() * b.imag(),
                     a.real() * b.imag() + a.imag() * b.real()};
        else
            return a * b;
    }

    /// y[r] -= l[r] * u for r < m (unit stride both sides). Runs of 4+
    /// complex elements go through the AVX2+FMA kernel TU when the CPU
    /// has it (snk_ok_); shorter runs aren't worth the call.
    void mul_sub_(T* __restrict y, const T* __restrict l, T u, std::size_t m) const noexcept
    {
        if constexpr (split_cplx_) {
            const double ur = u.real();
            const double ui = u.imag();
            double* __restrict yp = reinterpret_cast<double*>(y);
            const double* __restrict lp = reinterpret_cast<const double*>(l);
            if (snk_ok_ && m >= 4) {
                snk::cax_sub(yp, lp, ur, ui, m);
                return;
            }
            for (std::size_t d = 0; d < 2 * m; d += 2) {
                const double lr = lp[d];
                const double li = lp[d + 1];
                yp[d] -= lr * ur - li * ui;
                yp[d + 1] -= lr * ui + li * ur;
            }
        } else {
            for (std::size_t r = 0; r < m; ++r)
                y[r] -= l[r] * u;
        }
    }

    /// tmp[r] = l[r] * u (assignment form: the first contributing column
    /// of a run initializes the accumulator, so no zeroing pass).
    void mul_set_(T* __restrict y, const T* __restrict l, T u, std::size_t m) const noexcept
    {
        if constexpr (split_cplx_) {
            const double ur = u.real();
            const double ui = u.imag();
            double* __restrict yp = reinterpret_cast<double*>(y);
            const double* __restrict lp = reinterpret_cast<const double*>(l);
            if (snk_ok_ && m >= 4) {
                snk::cax_set(yp, lp, ur, ui, m);
                return;
            }
            for (std::size_t d = 0; d < 2 * m; d += 2) {
                const double lr = lp[d];
                const double li = lp[d + 1];
                yp[d] = lr * ur - li * ui;
                yp[d + 1] = lr * ui + li * ur;
            }
        } else {
            for (std::size_t r = 0; r < m; ++r)
                y[r] = l[r] * u;
        }
    }

    /// tmp[r] += l[r] * u.
    void mul_add_(T* __restrict y, const T* __restrict l, T u, std::size_t m) const noexcept
    {
        if constexpr (split_cplx_) {
            const double ur = u.real();
            const double ui = u.imag();
            double* __restrict yp = reinterpret_cast<double*>(y);
            const double* __restrict lp = reinterpret_cast<const double*>(l);
            if (snk_ok_ && m >= 4) {
                snk::cax_add(yp, lp, ur, ui, m);
                return;
            }
            for (std::size_t d = 0; d < 2 * m; d += 2) {
                const double lr = lp[d];
                const double li = lp[d + 1];
                yp[d] += lr * ur - li * ui;
                yp[d + 1] += lr * ui + li * ur;
            }
        } else {
            for (std::size_t r = 0; r < m; ++r)
                y[r] += l[r] * u;
        }
    }

    /// Fused pair forms of mul_set_/mul_add_: y op= l0*u0 + l1*u1 in one
    /// pass over y.
    void mul_set2_(T* __restrict y, const T* l0, T u0, const T* l1, T u1,
                   std::size_t m) const noexcept
    {
        if constexpr (split_cplx_) {
            double* __restrict yp = reinterpret_cast<double*>(y);
            const double* l0p = reinterpret_cast<const double*>(l0);
            const double* l1p = reinterpret_cast<const double*>(l1);
            if (snk_ok_ && m >= 4) {
                snk::cax_set2(yp, l0p, u0.real(), u0.imag(), l1p, u1.real(), u1.imag(), m);
                return;
            }
        }
        for (std::size_t r = 0; r < m; ++r)
            y[r] = cmul_(l0[r], u0) + cmul_(l1[r], u1);
    }

    void mul_add2_(T* __restrict y, const T* l0, T u0, const T* l1, T u1,
                   std::size_t m) const noexcept
    {
        if constexpr (split_cplx_) {
            double* __restrict yp = reinterpret_cast<double*>(y);
            const double* l0p = reinterpret_cast<const double*>(l0);
            const double* l1p = reinterpret_cast<const double*>(l1);
            if (snk_ok_ && m >= 4) {
                snk::cax_add2(yp, l0p, u0.real(), u0.imag(), l1p, u1.real(), u1.imag(), m);
                return;
            }
        }
        for (std::size_t r = 0; r < m; ++r)
            y[r] += cmul_(l0[r], u0) + cmul_(l1[r], u1);
    }

    void mul_sub2_(T* __restrict y, const T* l0, T u0, const T* l1, T u1,
                   std::size_t m) const noexcept
    {
        if constexpr (split_cplx_) {
            double* __restrict yp = reinterpret_cast<double*>(y);
            const double* l0p = reinterpret_cast<const double*>(l0);
            const double* l1p = reinterpret_cast<const double*>(l1);
            if (snk_ok_ && m >= 4) {
                snk::cax_sub2(yp, l0p, u0.real(), u0.imag(), l1p, u1.real(), u1.imag(), m);
                return;
            }
        }
        for (std::size_t r = 0; r < m; ++r)
            y[r] -= cmul_(l0[r], u0) + cmul_(l1[r], u1);
    }

    /// w[rows[r]] -= l[r] * u: direct one-column scatter for width-1
    /// runs, where staging through the accumulator would cost two extra
    /// passes over the sub-rows.
    static void scatter_sub1_(T* w, const std::size_t* rows, const T* l, T u,
                              std::size_t m) noexcept
    {
        for (std::size_t r = 0; r < m; ++r)
            w[rows[r]] -= cmul_(l[r], u);
    }

    /// w[rows[r]] -= l0[r] * u0 + l1[r] * u1: fused two-column scatter.
    static void scatter_sub2_(T* w, const std::size_t* rows, const T* l0, T u0, const T* l1,
                              T u1, std::size_t m) noexcept
    {
        for (std::size_t r = 0; r < m; ++r)
            w[rows[r]] -= cmul_(l0[r], u0) + cmul_(l1[r], u1);
    }

    /// w[rows[r]] -= t[r]: drain of the staged sub-row accumulator.
    static void scatter_sub_acc_(T* w, const std::size_t* rows, const T* t,
                                 std::size_t m) noexcept
    {
        for (std::size_t r = 0; r < m; ++r)
            w[rows[r]] -= t[r];
    }

    /// Panel-column drains: like the scatter helpers above but indexed by
    /// the precomputed target-panel slots, so the read-modify-writes land
    /// in the current (cache-resident) panel column rather than the
    /// n-sized work vector.
    static void panel_sub1_(T* pc, const std::uint32_t* slot, const T* l, T u,
                            std::size_t m) noexcept
    {
        for (std::size_t r = 0; r < m; ++r)
            pc[slot[r]] -= cmul_(l[r], u);
    }

    static void panel_sub2_(T* pc, const std::uint32_t* slot, const T* l0, T u0, const T* l1,
                            T u1, std::size_t m) noexcept
    {
        for (std::size_t r = 0; r < m; ++r)
            pc[slot[r]] -= cmul_(l0[r], u0) + cmul_(l1[r], u1);
    }

    static void panel_sub_acc_(T* pc, const std::uint32_t* slot, const T* t,
                               std::size_t m) noexcept
    {
        for (std::size_t r = 0; r < m; ++r)
            pc[slot[r]] -= t[r];
    }

    /// Blocked left-looking elimination over the symbolic supernode
    /// partition. Identical structure to refactor_column, but the U
    /// entries of a target column are consumed per *source supernode*:
    /// within one supernode the entries lie in one span of pivot rows
    /// ending at the supernode's last column (the nested L patterns close
    /// the reach through the dense diagonal block), so one run costs a
    /// dense unit-lower triangular solve against the source's diagonal
    /// block plus a dense rectangular update — instead of one indirect
    /// scatter per source column as in the column path.
    ///
    /// The target column's L region (pivot row included) accumulates in
    /// its own dense panel column rather than the work vector: deposits
    /// at or below the target column drain into the cache-resident panel
    /// through precomputed slot lists (in-block sources are fully dense,
    /// no indices at all), only rows above the target stay in the n-sized
    /// work vector for the later triangular solves that consume them.
    /// The pivot then scales the panel's L region in place (one complex
    /// division per column instead of one per L entry) and the CSC L
    /// values are gathered out of the panel. Results agree with
    /// refactor_column to rounding.
    void refactor_supernodal(const csc_matrix<T>& a)
    {
        const std::size_t n = sym_->size();
        const auto& lcol_ptr = sym_->lcol_ptr();
        const auto& ucol_ptr = sym_->ucol_ptr();
        const auto& urow = sym_->urow();
        const auto& pinv = sym_->pinv();
        const auto& qperm = sym_->q();
        const supernode_partition& sn = sym_->supernodes();
        std::vector<T>& w = work_;
        const std::uint32_t* slot_cur = sn_slots_.data();
        std::uint32_t* pos = sn_pos_.data();
#ifdef ACSTAB_SN_PROF
        unsigned long long snp_t = acstab_snp_now();
#endif
        for (std::size_t k = 0; k < n; ++k) {
            const std::size_t t = sn.col_super[k];
            const std::size_t ft = sn.first[t];
            const std::size_t wt = sn.width(t);
            const std::size_t ldt = panel_ld_[t];
            T* pant = panels_.data() + panel_off_[t];
            T* pancol_t = pant + (k - ft) * ldt; // target's panel column

            if (k == ft) {
                // Entering a new target supernode: refresh the pivot-row
                // -> panel-slot map the matrix scatter below routes
                // through.
                for (std::size_t i = 0; i < wt; ++i)
                    pos[ft + i] = static_cast<std::uint32_t>(i);
                const std::size_t* rt = sn.rows.data() + sn.row_ptr[t];
                const std::size_t mt = sn.row_ptr[t + 1] - sn.row_ptr[t];
                for (std::size_t z = 0; z < mt; ++z)
                    pos[rt[z]] = static_cast<std::uint32_t>(wt + z);
            }

            // Scatter the matrix column: rows above the target into the
            // work vector (consumed by the triangular solves below), the
            // pivot row and everything under it straight into the freshly
            // cleared panel column.
            std::fill(pancol_t + (k - ft), pancol_t + ldt, T{});
            const std::size_t col = qperm[k];
            for (std::size_t p = a.col_ptr()[col]; p < a.col_ptr()[col + 1]; ++p) {
                const std::size_t r = pinv[a.row_idx()[p]];
                if (r < k)
                    w[r] += a.values()[p];
                else
                    pancol_t[pos[r]] += a.values()[p];
            }
            ACSTAB_SNPM(0);

            const std::size_t ulast = ucol_ptr[k + 1] - 1;
            std::size_t p = ucol_ptr[k];
            const sn_run* run = sn_runs_.data() + sn_run_ptr_[k];
            const sn_run* const run_end = sn_runs_.data() + sn_run_ptr_[k + 1];
            for (; run != run_end; ++run) {
                const std::size_t j = run->j;
                const std::size_t m = run->m;
                const std::size_t msub = run->msub;
                const bool inblk = j >= ft;
                const std::uint32_t* sl = slot_cur;
                if (!inblk)
                    slot_cur += msub - run->wsub;

                if (m == 1) {
                    // Singleton span: no triangular solve, no staging —
                    // exactly the column path's cost for this source.
                    const T u0 = w[j];
                    w[j] = T{};
                    uval_[p] = u0;
                    if (inblk) { // source is the target's own supernode
                        pancol_t[j - ft] = u0;
                        if (u0 != T{}) {
                            // Diagonal tail and sub-rows are one
                            // contiguous range in both panel columns.
                            const T* lcol = panels_.data() + run->loff;
                            mul_sub_(pancol_t + (k - ft), lcol + (k - ft), u0,
                                     ldt - (k - ft));
                        }
                    } else if (u0 != T{} && msub != 0) {
                        // Off-block singleton: everything it needs is in
                        // the run record, touched only when the value
                        // actually contributes.
                        const std::size_t wsub = run->wsub;
                        const T* lsub = panels_.data() + run->loff + (run->lds - msub);
                        scatter_sub1_(w.data(), sn.rows.data() + run->rows, lsub, u0, wsub);
                        panel_sub1_(pancol_t, sl, lsub + wsub, u0, msub - wsub);
                    }
                    ACSTAB_SNPM(1);
                    ++p;
                    continue;
                }

                const std::size_t jrel = run->jrel;
                const std::size_t lds = run->lds;
                const T* lrun = panels_.data() + run->loff; // span's first L column

                // Dense unit-lower triangular solve with the trailing
                // m x m sub-block of the source's diagonal block: yields
                // this column's U values for the whole span. Contributing
                // (nonzero) columns are collected as their values become
                // final, so the update passes below skip exact zeros —
                // including any structural-zero gap positions the relaxed
                // partition padded into the span (their w is zero and
                // every product feeding them is zero, so they stay 0.0).
                T* u = sn_ubuf_.data();
                for (std::size_t i = 0; i < m; ++i) {
                    u[i] = w[j + i];
                    w[j + i] = T{};
                }
                std::size_t* idx = sn_idx_.data();
                std::size_t nc = 0;
                for (std::size_t i = 0; i < m; ++i) {
                    const T ui = u[i];
                    if (inblk)
                        pancol_t[j - ft + i] = ui;
                    if (ui == T{})
                        continue;
                    idx[nc++] = i;
                    mul_sub_(u + i + 1, lrun + i * lds + (jrel + i + 1), ui, m - i - 1);
                }
                // CSC stores only the structural subset of the span.
                const std::size_t cnt = run->cnt;
                if (cnt == m) {
                    for (std::size_t i = 0; i < m; ++i)
                        uval_[p + i] = u[i];
                } else {
                    for (std::size_t e = 0; e < cnt; ++e)
                        uval_[p + e] = u[urow[p + e] - j];
                }
                p += cnt;
                ACSTAB_SNPM(2);
                if (nc == 0)
                    continue;

                // In-block target update (source == target supernode):
                // the diagonal tail and the shared sub-rows are one
                // contiguous range of the panel columns, so the whole
                // update is dense rank-2 streams — no staging, no
                // indices.
                if (inblk) {
                    const std::size_t len = ldt - (k - ft);
                    T* dst = pancol_t + (k - ft);
                    const T* lc = lrun + (k - ft);
                    std::size_t ii = 0;
                    if (nc & 1) {
                        mul_sub_(dst, lc + idx[0] * lds, u[idx[0]], len);
                        ii = 1;
                    }
                    for (; ii + 1 < nc; ii += 2)
                        mul_sub2_(dst, lc + idx[ii] * lds, u[idx[ii]],
                                  lc + idx[ii + 1] * lds, u[idx[ii + 1]], len);
                    ACSTAB_SNPM(3);
                    continue;
                }
                ACSTAB_SNPM(3);

                // Rectangular update of an off-block source's sub-rows.
                // One or two contributing columns scatter directly
                // (staging passes would outweigh the saved scatters);
                // more accumulate pairwise in a dense buffer (unit stride
                // over each panel column) and drain once — rows above the
                // target into the work vector, the rest into the target's
                // panel column through the precomputed slots.
                if (msub != 0) {
                    const std::size_t wsub = run->wsub;
                    const std::size_t* rows = sn.rows.data() + run->rows;
                    const T* lsub0 = lrun + (lds - msub);
                    if (nc == 1) {
                        const T* l0 = lsub0 + idx[0] * lds;
                        scatter_sub1_(w.data(), rows, l0, u[idx[0]], wsub);
                        panel_sub1_(pancol_t, sl, l0 + wsub, u[idx[0]], msub - wsub);
                    } else if (nc == 2) {
                        const T* l0 = lsub0 + idx[0] * lds;
                        const T* l1 = lsub0 + idx[1] * lds;
                        scatter_sub2_(w.data(), rows, l0, u[idx[0]], l1, u[idx[1]], wsub);
                        panel_sub2_(pancol_t, sl, l0 + wsub, u[idx[0]], l1 + wsub,
                                    u[idx[1]], msub - wsub);
                    } else {
                        T* tmp = sn_subtmp_.data();
                        std::size_t ii;
                        if (nc & 1) {
                            mul_set_(tmp, lsub0 + idx[0] * lds, u[idx[0]], msub);
                            ii = 1;
                        } else {
                            mul_set2_(tmp, lsub0 + idx[0] * lds, u[idx[0]],
                                      lsub0 + idx[1] * lds, u[idx[1]], msub);
                            ii = 2;
                        }
                        for (; ii + 1 < nc; ii += 2)
                            mul_add2_(tmp, lsub0 + idx[ii] * lds, u[idx[ii]],
                                      lsub0 + idx[ii + 1] * lds, u[idx[ii + 1]], msub);
                        scatter_sub_acc_(w.data(), rows, tmp, wsub);
                        panel_sub_acc_(pancol_t, sl, tmp + wsub, msub - wsub);
                    }
                }
                ACSTAB_SNPM(4);
            }

            // The pivot accumulated in the panel; rows above it were all
            // consumed by the runs, so the work vector is already clean
            // either way.
            const T pivot = pancol_t[k - ft];
            if (pivot == T{})
                throw numeric_error("numeric_lu: refactor hit a zero pivot at column "
                                    + std::to_string(col));
            uval_[ulast] = pivot;
            const T rpivot = T{1.0} / pivot;
            sn_rdiag_[k] = rpivot;
            // Dense in-place scale of the panel's L region (padded
            // positions hold exact zeros and stay zero), then gather the
            // CSC L values from their panel slots.
            for (std::size_t r = k - ft + 1; r < ldt; ++r)
                pancol_t[r] = cmul_(pancol_t[r], rpivot);
            for (std::size_t q = lcol_ptr[k]; q < lcol_ptr[k + 1]; ++q)
                lval_[q] = pancol_t[lpanel_pos_[q]];
            ACSTAB_SNPM(5);
        }
    }

public:

    /// Element growth of the last refactor (L1-norm proxies): the larger
    /// of the biggest |L| multiplier and the classical U-side growth
    /// factor max|U| / max|A|. Fresh threshold pivoting bounds the L side
    /// by 1/pivot_tol and keeps the U side modest; a reused pivot order
    /// that has gone stale lets either blow up, so this is the free
    /// staleness witness the sweep engine's guard reads before deciding
    /// whether a residual check (and possibly a fresh factorization) is
    /// warranted.
    [[nodiscard]] double growth() const noexcept { return growth_; }

    /// Select the batched back-solve kernel (default scalar). The SIMD
    /// kernel grows its split-plane scratch lazily to the largest batch
    /// seen, so after the first batch of a given width the solve loop is
    /// allocation-free again.
    void set_batch_kernel(batch_kernel k) noexcept { kernel_ = k; }
    [[nodiscard]] batch_kernel kernel() const noexcept { return kernel_; }

    /// Enable the supernodal/blocked numeric path: refactor() runs the
    /// blocked elimination over the symbolic supernode partition and
    /// solve_batch's SIMD kernel walks dense panels per supernode
    /// instead of CSC columns. The CSC value arrays are maintained in
    /// both modes, so scalar solves (and the const allocating solve())
    /// stay valid and blocked-vs-column answers agree to rounding.
    /// Enabling loads the panels from the current CSC values, so factors
    /// adopted from the symbolic seed are usable without a refactor.
    void set_supernodal(bool on)
    {
        if (on && panels_.empty() && sym_->size() > 0)
            init_supernodal();
        if (on)
            load_panels_from_values();
        snmode_ = on;
    }
    [[nodiscard]] bool supernodal() const noexcept { return snmode_; }

private:
    /// One-time panel bookkeeping: per-supernode panel offsets/leading
    /// dimensions, the CSC-L-entry -> panel-row map, and the per-column
    /// split of U entries into off-block and in-block halves.
    void init_supernodal()
    {
        const std::size_t n = sym_->size();
        const supernode_partition& sn = sym_->supernodes();
        const std::size_t ns = sn.count();
        panel_off_.assign(ns + 1, 0);
        panel_ld_.assign(ns, 0);
        std::size_t max_w = 1;
        std::size_t max_sub = 0;
        for (std::size_t s = 0; s < ns; ++s) {
            const std::size_t w = sn.width(s);
            const std::size_t m = sn.sub_rows(s);
            panel_ld_[s] = w + m;
            panel_off_[s + 1] = panel_off_[s] + panel_ld_[s] * w;
            max_w = std::max(max_w, w);
            max_sub = std::max(max_sub, m);
        }
        panels_.assign(panel_off_[ns], T{});
        sn_ubuf_.resize(max_w);
        sn_subtmp_.resize(max_sub);
        sn_idx_.resize(max_w);
        sn_rdiag_.assign(n, T{});
        sn_max_sub_ = max_sub;

        // Panel row of every CSC L entry within its column's supernode:
        // in-block rows map to their offset in the diagonal block,
        // sub-rows to width + their slot in the supernode's shared
        // (sorted) sub-row list.
        const auto& lcol_ptr = sym_->lcol_ptr();
        const auto& lrow = sym_->lrow();
        lpanel_pos_.resize(lrow.size());
        std::vector<std::size_t> slot(n, 0);
        for (std::size_t s = 0; s < ns; ++s) {
            const std::size_t f = sn.first[s];
            const std::size_t e = sn.first[s + 1];
            const std::size_t w = sn.width(s);
            for (std::size_t r = sn.row_ptr[s]; r < sn.row_ptr[s + 1]; ++r)
                slot[sn.rows[r]] = w + (r - sn.row_ptr[s]);
            for (std::size_t k = f; k < e; ++k)
                for (std::size_t p = lcol_ptr[k]; p < lcol_ptr[k + 1]; ++p) {
                    const std::size_t row = lrow[p];
                    lpanel_pos_[p] = row < e ? row - f : slot[row];
                }
        }

        // First in-block U entry of each column (rows >= the column's
        // supernode start); entries before it are off-block and stay on
        // the CSC back-solve path.
        const auto& ucol_ptr = sym_->ucol_ptr();
        const auto& urow = sym_->urow();
        u_split_.resize(n);
        for (std::size_t k = 0; k < n; ++k) {
            const std::size_t f = sn.first[sn.col_super[k]];
            std::size_t p = ucol_ptr[k];
            const std::size_t ulast = ucol_ptr[k + 1] - 1;
            while (p < ulast && urow[p] < f)
                ++p;
            u_split_[k] = p;
        }

        // Flat run partition of every column's off-diagonal U entries:
        // group the (sorted) entries by source supernode and record each
        // group's dense span — from its first entry to the source's reach
        // end (the supernode's last column; the diagonal block closes the
        // reach), or just before the target column when the source is the
        // target's own supernode. With the strict partition every span
        // position is a CSC entry (cnt == m); relaxed amalgamation leaves
        // structural-zero gaps the dense solve carries as exact zeros.
        // Purely symbolic, so derived once here instead of re-walking
        // urow/col_super on every refactor.
        sn_run_ptr_.assign(n + 1, 0);
        sn_runs_.clear();
        sn_runs_.reserve(urow.size() / 2);
        sn_slots_.clear();
        sn_pos_.assign(n, 0);
        // Slot map of the current TARGET supernode, maintained while the
        // column sweep below crosses supernode boundaries (the refactor
        // rebuilds the same map at run time for the matrix scatter). The
        // stamp marks which rows the current map actually covers: a
        // relaxed source's union sub-rows can include rows outside the
        // target's pattern — their deposits are exact zeros, so they are
        // routed to the (harmless) pivot slot rather than a stale index.
        std::vector<std::size_t> pos_stamp(n, 0);
        for (std::size_t k = 0; k < n; ++k) {
            const std::size_t t = sn.col_super[k];
            if (k == sn.first[t]) {
                const std::size_t w = sn.width(t);
                for (std::size_t i = 0; i < w; ++i) {
                    sn_pos_[sn.first[t] + i] = static_cast<std::uint32_t>(i);
                    pos_stamp[sn.first[t] + i] = t + 1;
                }
                for (std::size_t r = sn.row_ptr[t]; r < sn.row_ptr[t + 1]; ++r) {
                    sn_pos_[sn.rows[r]] =
                        static_cast<std::uint32_t>(w + (r - sn.row_ptr[t]));
                    pos_stamp[sn.rows[r]] = t + 1;
                }
            }
            const std::size_t ulast = ucol_ptr[k + 1] - 1;
            std::size_t p = ucol_ptr[k];
            while (p < ulast) {
                const std::size_t j = urow[p];
                const std::size_t s = sn.col_super[j];
                const std::size_t run_end = s == t ? k : sn.first[s + 1];
                std::size_t cnt = 1;
                while (p + cnt < ulast && urow[p + cnt] < run_end)
                    ++cnt;
                const std::size_t jrel = j - sn.first[s];
                const std::size_t loff = panel_off_[s] + jrel * panel_ld_[s];
                // Split an off-block source's sub-rows at the target
                // column: rows above it update the work vector, rows at
                // or below it drain into the target's panel column, so
                // their slots are emitted here once instead of resolved
                // per refactor. In-block sources are fully dense against
                // the target panel and need neither.
                std::size_t wsub = 0;
                if (s != t) {
                    const std::size_t* rs = sn.rows.data() + sn.row_ptr[s];
                    const std::size_t ms = sn.sub_rows(s);
                    while (wsub < ms && rs[wsub] < k)
                        ++wsub;
                    for (std::size_t z = wsub; z < ms; ++z)
                        sn_slots_.push_back(pos_stamp[rs[z]] == t + 1
                                                ? sn_pos_[rs[z]]
                                                : static_cast<std::uint32_t>(k - sn.first[t]));
                }
                sn_runs_.push_back({j, run_end - j, cnt, jrel, loff, panel_ld_[s],
                                    sn.sub_rows(s), sn.row_ptr[s], wsub});
                p += cnt;
            }
            sn_run_ptr_[k + 1] = sn_runs_.size();
        }
    }

    /// Fill the dense panels from the CSC values (pure data movement);
    /// structural zeros inside the dense blocks were never written and
    /// stay zero from the panel allocation.
    void load_panels_from_values()
    {
        const std::size_t n = sym_->size();
        const supernode_partition& sn = sym_->supernodes();
        const auto& lcol_ptr = sym_->lcol_ptr();
        const auto& ucol_ptr = sym_->ucol_ptr();
        const auto& urow = sym_->urow();
        for (std::size_t k = 0; k < n; ++k) {
            const std::size_t t = sn.col_super[k];
            const std::size_t ft = sn.first[t];
            T* pancol = panels_.data() + panel_off_[t] + (k - ft) * panel_ld_[t];
            const std::size_t ulast = ucol_ptr[k + 1] - 1;
            for (std::size_t p = u_split_[k]; p < ulast; ++p)
                pancol[urow[p] - ft] = uval_[p];
            pancol[k - ft] = uval_[ulast];
            // Reciprocal pivot for the blocked back solve; a zero pivot
            // (factors never computed) poisons it exactly as division
            // would have.
            sn_rdiag_[k] = T{1.0} / uval_[ulast];
            for (std::size_t p = lcol_ptr[k]; p < lcol_ptr[k + 1]; ++p)
                pancol[lpanel_pos_[p]] = lval_[p];
        }
    }

public:

    /// Solve A X = B for a batch of right-hand sides.
    /// b[r] points at right-hand side r (length n); x is column-major
    /// n*nrhs and is fully overwritten with the solutions. b[r] must not
    /// alias any x column (use solve_in_place for that). One traversal of
    /// L and one of U serves the whole batch, so factor loads amortize
    /// across the right-hand sides. Non-const (uses the instance
    /// scratch): per-worker use only.
    void solve_batch(const T* const* b, std::size_t nrhs, T* x)
    {
        if constexpr (std::is_same_v<T, std::complex<double>>) {
            if (kernel_ == batch_kernel::simd && nrhs >= 2) {
                if (snmode_)
                    solve_batch_blocked(b, nrhs, x);
                else
                    solve_batch_simd(b, nrhs, x);
                return;
            }
        }
        solve_batch_scalar(b, nrhs, x);
    }

private:
    void solve_batch_scalar(const T* const* b, std::size_t nrhs, T* x)
    {
        const std::size_t n = sym_->size();
        const auto& pinv = sym_->pinv();
        const auto& qperm = sym_->q();
        const auto& lcol_ptr = sym_->lcol_ptr();
        const auto& lrow = sym_->lrow();
        const auto& ucol_ptr = sym_->ucol_ptr();
        const auto& urow = sym_->urow();

        // Scatter every column into pivot order.
        for (std::size_t r = 0; r < nrhs; ++r) {
            const T* bc = b[r];
            T* xc = x + r * n;
            for (std::size_t i = 0; i < n; ++i)
                xc[pinv[i]] = bc[i];
        }
        // Forward solve with unit-diagonal L, one pass over its columns.
        for (std::size_t c = 0; c < n; ++c) {
            const std::size_t pb = lcol_ptr[c];
            const std::size_t pe = lcol_ptr[c + 1];
            for (std::size_t r = 0; r < nrhs; ++r) {
                T* xc = x + r * n;
                const T yc = xc[c];
                if (yc == T{})
                    continue;
                for (std::size_t p = pb; p < pe; ++p)
                    xc[lrow[p]] -= lval_[p] * yc;
            }
        }
        // Back solve with U (diagonal entry stored last in each column).
        for (std::size_t c = n; c-- > 0;) {
            const std::size_t last = ucol_ptr[c + 1] - 1;
            const T diag = uval_[last];
            for (std::size_t r = 0; r < nrhs; ++r) {
                T* xc = x + r * n;
                const T v = xc[c] / diag;
                xc[c] = v;
                if (v == T{})
                    continue;
                for (std::size_t p = ucol_ptr[c]; p < last; ++p)
                    xc[urow[p]] -= uval_[p] * v;
            }
        }
        // Undo the column ordering (scratch is free again by this point
        // even when solve_in_place staged b through it: the scatter above
        // was its last read).
        for (std::size_t r = 0; r < nrhs; ++r) {
            T* xc = x + r * n;
            for (std::size_t c = 0; c < n; ++c)
                scratch_[qperm[c]] = xc[c];
            std::copy(scratch_.begin(), scratch_.end(), xc);
        }
    }

    /// SIMD batch kernel (std::complex<double> only): the batch lives in
    /// two split real/imag double planes laid out rhs-contiguously
    /// (lane r of pivot row i at [i * nrhs + r]), so every factor entry is
    /// loaded once per column while the inner loop over the batch is a
    /// unit-stride fused multiply-add chain the compiler vectorizes
    /// across right-hand sides. A column whose lanes are all zero skips
    /// its update loop entirely (the injection right-hand sides of the
    /// stability sweeps are mostly zeros). The U diagonal still divides
    /// through std::complex so both kernels share the same (robustly
    /// scaled) complex division.
    void solve_batch_simd(const T* const* b, std::size_t nrhs, T* x)
    {
        const std::size_t n = sym_->size();
        const auto& pinv = sym_->pinv();
        const auto& qperm = sym_->q();
        const auto& lcol_ptr = sym_->lcol_ptr();
        const auto& lrow = sym_->lrow();
        const auto& ucol_ptr = sym_->ucol_ptr();
        const auto& urow = sym_->urow();

        if (plane_re_.size() < n * nrhs) {
            plane_re_.resize(n * nrhs);
            plane_im_.resize(n * nrhs);
        }
        double* __restrict xr = plane_re_.data();
        double* __restrict xi = plane_im_.data();

        // Scatter into pivot order, splitting the complex lanes.
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t base = pinv[i] * nrhs;
            for (std::size_t r = 0; r < nrhs; ++r) {
                xr[base + r] = b[r][i].real();
                xi[base + r] = b[r][i].imag();
            }
        }
        // Forward solve with unit-diagonal L.
        for (std::size_t c = 0; c < n; ++c) {
            const std::size_t cb = c * nrhs;
            bool any = false;
            for (std::size_t r = 0; r < nrhs; ++r)
                any = any || xr[cb + r] != 0.0 || xi[cb + r] != 0.0;
            if (!any)
                continue;
            const std::size_t pe = lcol_ptr[c + 1];
            for (std::size_t p = lcol_ptr[c]; p < pe; ++p) {
                const double lr = lval_[p].real();
                const double li = lval_[p].imag();
                const std::size_t rb = lrow[p] * nrhs;
                for (std::size_t r = 0; r < nrhs; ++r) {
                    const double ar = xr[cb + r];
                    const double ai = xi[cb + r];
                    xr[rb + r] -= lr * ar - li * ai;
                    xi[rb + r] -= lr * ai + li * ar;
                }
            }
        }
        // Back solve with U (diagonal stored last in each column).
        for (std::size_t c = n; c-- > 0;) {
            const std::size_t last = ucol_ptr[c + 1] - 1;
            const T diag = uval_[last];
            const std::size_t cb = c * nrhs;
            bool any = false;
            for (std::size_t r = 0; r < nrhs; ++r) {
                const T v = T{xr[cb + r], xi[cb + r]} / diag;
                xr[cb + r] = v.real();
                xi[cb + r] = v.imag();
                any = any || v != T{};
            }
            if (!any)
                continue;
            for (std::size_t p = ucol_ptr[c]; p < last; ++p) {
                const double ur = uval_[p].real();
                const double ui = uval_[p].imag();
                const std::size_t rb = urow[p] * nrhs;
                for (std::size_t r = 0; r < nrhs; ++r) {
                    const double ar = xr[cb + r];
                    const double ai = xi[cb + r];
                    xr[rb + r] -= ur * ar - ui * ai;
                    xi[rb + r] -= ur * ai + ui * ar;
                }
            }
        }
        // Undo the column ordering while re-interleaving the planes.
        for (std::size_t r = 0; r < nrhs; ++r) {
            T* xc = x + r * n;
            for (std::size_t c = 0; c < n; ++c)
                xc[qperm[c]] = T{xr[c * nrhs + r], xi[c * nrhs + r]};
        }
    }

    /// Blocked split-complex batch kernel (supernodal mode): same plane
    /// layout and zero-lane skipping as solve_batch_simd, but the L
    /// forward pass walks dense panels per supernode — a dense
    /// unit-lower solve on the diagonal block, the rectangular sub-row
    /// update accumulated into contiguous scratch planes and scattered
    /// ONCE per supernode — and the U backward pass solves each
    /// supernode's dense upper-triangular block in place, leaving only
    /// the off-block U entries on the indirect CSC path. Agrees with the
    /// CSC kernels to rounding (per-row update sums are reassociated).
    void solve_batch_blocked(const T* const* b, std::size_t nrhs, T* x)
    {
        const std::size_t n = sym_->size();
        const auto& pinv = sym_->pinv();
        const auto& qperm = sym_->q();
        const auto& ucol_ptr = sym_->ucol_ptr();
        const auto& urow = sym_->urow();
        const supernode_partition& sn = sym_->supernodes();
        const std::size_t ns = sn.count();

        if (plane_re_.size() < n * nrhs) {
            plane_re_.resize(n * nrhs);
            plane_im_.resize(n * nrhs);
        }
        if (sn_plane_tr_.size() < sn_max_sub_ * nrhs) {
            sn_plane_tr_.resize(sn_max_sub_ * nrhs);
            sn_plane_ti_.resize(sn_max_sub_ * nrhs);
        }
        double* __restrict xr = plane_re_.data();
        double* __restrict xi = plane_im_.data();
        double* __restrict tr = sn_plane_tr_.data();
        double* __restrict ti = sn_plane_ti_.data();

        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t base = pinv[i] * nrhs;
            for (std::size_t r = 0; r < nrhs; ++r) {
                xr[base + r] = b[r][i].real();
                xi[base + r] = b[r][i].imag();
            }
        }

        // Forward solve with unit-diagonal L, one supernode at a time.
        for (std::size_t s = 0; s < ns; ++s) {
            const std::size_t f = sn.first[s];
            const std::size_t w = sn.width(s);
            const std::size_t msub = sn.sub_rows(s);
            const std::size_t ld = panel_ld_[s];
            const T* pan = panels_.data() + panel_off_[s];
            bool block_any = false;
            for (std::size_t c = f; c < f + w; ++c) {
                const std::size_t cb = c * nrhs;
                bool any = false;
                for (std::size_t r = 0; r < nrhs; ++r)
                    any = any || xr[cb + r] != 0.0 || xi[cb + r] != 0.0;
                if (!any)
                    continue;
                if (!block_any && msub != 0) {
                    std::fill(tr, tr + msub * nrhs, 0.0);
                    std::fill(ti, ti + msub * nrhs, 0.0);
                }
                block_any = true;
                const T* pancol = pan + (c - f) * ld;
                // Dense in-block update of the lanes below the diagonal.
                for (std::size_t rr = c - f + 1; rr < w; ++rr) {
                    const double lr = pancol[rr].real();
                    const double li = pancol[rr].imag();
                    if (lr == 0.0 && li == 0.0)
                        continue;
                    const std::size_t rb = (f + rr) * nrhs;
                    if (snk_ok_) {
                        snk::plane_sub(xr + rb, xi + rb, xr + cb, xi + cb, lr, li, nrhs);
                        continue;
                    }
                    for (std::size_t r = 0; r < nrhs; ++r) {
                        const double ar = xr[cb + r];
                        const double ai = xi[cb + r];
                        xr[rb + r] -= lr * ar - li * ai;
                        xi[rb + r] -= lr * ai + li * ar;
                    }
                }
                // Sub-row contribution, accumulated contiguously.
                const T* lsub = pancol + w;
                for (std::size_t rr = 0; rr < msub; ++rr) {
                    const double lr = lsub[rr].real();
                    const double li = lsub[rr].imag();
                    if (lr == 0.0 && li == 0.0)
                        continue;
                    const std::size_t tb = rr * nrhs;
                    if (snk_ok_) {
                        snk::plane_add(tr + tb, ti + tb, xr + cb, xi + cb, lr, li, nrhs);
                        continue;
                    }
                    for (std::size_t r = 0; r < nrhs; ++r) {
                        const double ar = xr[cb + r];
                        const double ai = xi[cb + r];
                        tr[tb + r] += lr * ar - li * ai;
                        ti[tb + r] += lr * ai + li * ar;
                    }
                }
            }
            if (block_any && msub != 0) {
                const std::size_t* rows = sn.rows.data() + sn.row_ptr[s];
                for (std::size_t rr = 0; rr < msub; ++rr) {
                    const std::size_t rb = rows[rr] * nrhs;
                    const std::size_t tb = rr * nrhs;
                    for (std::size_t r = 0; r < nrhs; ++r) {
                        xr[rb + r] -= tr[tb + r];
                        xi[rb + r] -= ti[tb + r];
                    }
                }
            }
        }

        // Back solve with U: dense diagonal block per supernode, CSC for
        // the off-block entries above it.
        for (std::size_t s = ns; s-- > 0;) {
            const std::size_t f = sn.first[s];
            const std::size_t w = sn.width(s);
            const std::size_t ld = panel_ld_[s];
            const T* pan = panels_.data() + panel_off_[s];
            for (std::size_t c = f + w; c-- > f;) {
                const std::size_t cb = c * nrhs;
                const T* pancol = pan + (c - f) * ld;
                // Divide by the diagonal via the reciprocal precomputed
                // at refactor/load time: one complex multiply per lane
                // instead of one complex division.
                const double dr = sn_rdiag_[c].real();
                const double di = sn_rdiag_[c].imag();
                bool any;
                if (snk_ok_) {
                    any = snk::plane_scale(xr + cb, xi + cb, dr, di, nrhs);
                } else {
                    any = false;
                    for (std::size_t r = 0; r < nrhs; ++r) {
                        const double ar = xr[cb + r];
                        const double ai = xi[cb + r];
                        const double vr = ar * dr - ai * di;
                        const double vi = ar * di + ai * dr;
                        xr[cb + r] = vr;
                        xi[cb + r] = vi;
                        any = any || vr != 0.0 || vi != 0.0;
                    }
                }
                if (!any)
                    continue;
                for (std::size_t rr = c - f; rr-- > 0;) {
                    const double ur = pancol[rr].real();
                    const double ui = pancol[rr].imag();
                    if (ur == 0.0 && ui == 0.0)
                        continue;
                    const std::size_t rb = (f + rr) * nrhs;
                    if (snk_ok_) {
                        snk::plane_sub(xr + rb, xi + rb, xr + cb, xi + cb, ur, ui, nrhs);
                        continue;
                    }
                    for (std::size_t r = 0; r < nrhs; ++r) {
                        const double ar = xr[cb + r];
                        const double ai = xi[cb + r];
                        xr[rb + r] -= ur * ar - ui * ai;
                        xi[rb + r] -= ur * ai + ui * ar;
                    }
                }
                for (std::size_t p = ucol_ptr[c]; p < u_split_[c]; ++p) {
                    const double ur = uval_[p].real();
                    const double ui = uval_[p].imag();
                    const std::size_t rb = urow[p] * nrhs;
                    if (snk_ok_) {
                        snk::plane_sub(xr + rb, xi + rb, xr + cb, xi + cb, ur, ui, nrhs);
                        continue;
                    }
                    for (std::size_t r = 0; r < nrhs; ++r) {
                        const double ar = xr[cb + r];
                        const double ai = xi[cb + r];
                        xr[rb + r] -= ur * ar - ui * ai;
                        xi[rb + r] -= ur * ai + ui * ar;
                    }
                }
            }
        }

        for (std::size_t r = 0; r < nrhs; ++r) {
            T* xc = x + r * n;
            for (std::size_t c = 0; c < n; ++c)
                xc[qperm[c]] = T{xr[c * nrhs + r], xi[c * nrhs + r]};
        }
    }

public:
    /// Solve A x = b with b and the solution in the same length-n buffer.
    /// Non-const (uses the instance scratch): per-worker use only.
    void solve_in_place(T* x)
    {
        std::copy(x, x + sym_->size(), scratch_.begin());
        const T* b = scratch_.data();
        solve_batch(&b, 1, x);
    }

    /// Allocating single solve. Touches no instance scratch, so — unlike
    /// solve_batch/solve_in_place — concurrent calls on one shared
    /// factorization are safe (the sparse_lu facade relies on this).
    [[nodiscard]] std::vector<T> solve(const std::vector<T>& b) const
    {
        const std::size_t n = sym_->size();
        if (b.size() != n)
            throw numeric_error("numeric_lu: right-hand side has wrong length");
        const auto& pinv = sym_->pinv();
        const auto& qperm = sym_->q();
        const auto& lcol_ptr = sym_->lcol_ptr();
        const auto& lrow = sym_->lrow();
        const auto& ucol_ptr = sym_->ucol_ptr();
        const auto& urow = sym_->urow();
        std::vector<T> y(n);
        for (std::size_t i = 0; i < n; ++i)
            y[pinv[i]] = b[i];
        for (std::size_t c = 0; c < n; ++c) {
            const T yc = y[c];
            if (yc == T{})
                continue;
            for (std::size_t p = lcol_ptr[c]; p < lcol_ptr[c + 1]; ++p)
                y[lrow[p]] -= lval_[p] * yc;
        }
        for (std::size_t c = n; c-- > 0;) {
            const std::size_t last = ucol_ptr[c + 1] - 1;
            const T xc = y[c] / uval_[last];
            y[c] = xc;
            if (xc == T{})
                continue;
            for (std::size_t p = ucol_ptr[c]; p < last; ++p)
                y[urow[p]] -= uval_[p] * xc;
        }
        std::vector<T> x(n);
        for (std::size_t c = 0; c < n; ++c)
            x[qperm[c]] = y[c];
        return x;
    }

private:
    [[nodiscard]] static double max_l1(const std::vector<T>& v) noexcept
    {
        double m = 0.0;
        for (const T& x : v) {
            const double mag = std::abs(std::real(x)) + std::abs(std::imag(x));
            if (mag > m)
                m = mag;
        }
        return m;
    }

    std::shared_ptr<const symbolic_lu<T>> sym_;
    std::vector<T> lval_;
    std::vector<T> uval_;
    std::vector<T> work_;    ///< refactor accumulator (pivot space)
    std::vector<T> scratch_; ///< permutation staging for batched solves
    batch_kernel kernel_ = batch_kernel::scalar;
    std::vector<double> plane_re_; ///< SIMD kernel: real lanes, grown lazily
    std::vector<double> plane_im_; ///< SIMD kernel: imaginary lanes
    double growth_ = 0.0;
    // Supernodal mode (set_supernodal). Panels are column-major dense
    // blocks, one per supernode: rows 0..w-1 hold the diagonal block
    // (U upper triangle including the diagonal, L strictly lower, unit
    // diagonal implicit), rows w..w+msub-1 the rectangular L sub-rows in
    // the partition's shared sorted order.
    bool snmode_ = false;
    std::vector<T> panels_;
    std::vector<std::size_t> panel_off_; ///< supernode -> panel start
    std::vector<std::size_t> panel_ld_;  ///< supernode -> leading dimension
    std::vector<std::size_t> lpanel_pos_; ///< CSC L entry -> panel row
    std::vector<std::size_t> u_split_;    ///< column -> first in-block U entry
    std::vector<T> sn_ubuf_;   ///< refactor: gathered run of U values
    std::vector<T> sn_subtmp_; ///< refactor: accumulated sub-row update
    std::vector<std::size_t> sn_idx_; ///< refactor: contributing columns of a run
    /// One symbolic run of a column's off-diagonal U entries: the `cnt`
    /// CSC entries falling inside one source supernode, solved as the
    /// dense span of `m` pivot rows from `j` to the source's reach end.
    /// Under relaxed amalgamation the span may cover structural zeros
    /// (cnt < m); those positions hold exact 0.0 throughout — the padded
    /// panel L is zero, so the dense solve reproduces the strict values
    /// bit-for-bit and zero lanes skip the update passes. The source
    /// geometry the update needs is denormalized into the record (one
    /// cache line) so the refactor streams a flat array instead of
    /// chasing six per-supernode arrays per run — the singleton-run walk
    /// was lookup-bound, not flop-bound.
    struct sn_run {
        std::size_t j;    ///< first pivot row of the span
        std::size_t m;    ///< span width (source columns consumed)
        std::size_t cnt;  ///< CSC U entries in the span (== m when gapless)
        std::size_t jrel; ///< j - first column of the source supernode
        std::size_t loff; ///< panels_ offset of the span's first L column
        std::size_t lds;  ///< source panel leading dimension
        std::size_t msub; ///< source sub-row count
        std::size_t rows; ///< offset of the source's sub-row list in sn.rows
        std::size_t wsub; ///< sub-rows above the target column (work-vector part)
    };
    std::vector<sn_run> sn_runs_;         ///< refactor: flat run partition
    std::vector<std::size_t> sn_run_ptr_; ///< column -> range in sn_runs_
    /// Per off-block run, the target-panel slots of its sub-rows at or
    /// below the target column (rows[wsub..msub)), laid out in run order:
    /// those deposits land in the target's dense panel column instead of
    /// the work vector, so the hottest scatter walks an L1-resident
    /// column with a precomputed, streamed index list.
    std::vector<std::uint32_t> sn_slots_;
    std::vector<std::uint32_t> sn_pos_; ///< refactor: pivot row -> target panel slot
    std::vector<T> sn_rdiag_;  ///< blocked solve: per-column 1/pivot
    bool snk_ok_ = snk::available(); ///< AVX2+FMA kernel TU usable
    std::size_t sn_max_sub_ = 0;
    std::vector<double> sn_plane_tr_; ///< blocked solve: sub-row lanes (re)
    std::vector<double> sn_plane_ti_; ///< blocked solve: sub-row lanes (im)
};

} // namespace acstab::numeric

#endif // ACSTAB_NUMERIC_SPARSE_FACTOR_H
