#include "numeric/supernode.h"

#include <algorithm>

namespace acstab::numeric {

namespace {

/// Greedy left-to-right relaxed amalgamation over a strict partition.
/// Adjacent supernodes merge while the merged panel stays within
/// max_width and the explicit zeros the merge pads into its L area stay
/// within the caller's bounds. The merged sub-row pattern is the union
/// of the members' patterns restricted below the merged block (rows a
/// member kept below its own block but above the merged end move into
/// the diagonal block). Zeros are counted against the merged panel's
/// full L area — dense lower triangle plus width * |union sub-rows| —
/// versus the true structural L count, so a group stops growing once
/// padding would outweigh the scatter savings.
supernode_partition amalgamate(std::size_t n, const supernode_partition& strict,
                               std::size_t max_width, std::size_t relax_zeros,
                               double relax_fill)
{
    supernode_partition out;
    out.col_super.assign(n, 0);
    out.row_ptr.push_back(0);

    const auto tri = [](std::size_t w) { return w * (w - 1) / 2; };
    const auto true_l = [&](std::size_t s) {
        // Structural L entries of strict supernode s: its diagonal block
        // is fully dense below the diagonal (patterns nest), plus the
        // shared sub-rows under every member column.
        const std::size_t w = strict.width(s);
        return tri(w) + w * strict.sub_rows(s);
    };
    const auto rows_begin = [&](std::size_t s) {
        return strict.rows.begin() + static_cast<std::ptrdiff_t>(strict.row_ptr[s]);
    };
    const auto rows_end = [&](std::size_t s) {
        return strict.rows.begin() + static_cast<std::ptrdiff_t>(strict.row_ptr[s + 1]);
    };

    // Current group: strict supernodes [a, cur_end) columns, union
    // sub-row pattern uni (sorted, all >= cur_end), structural L count.
    std::size_t a = 0;
    std::size_t cur_end = strict.first[1];
    std::vector<std::size_t> uni(rows_begin(0), rows_end(0));
    std::vector<std::size_t> merged;
    std::size_t group_true = true_l(0);

    const auto emit = [&](std::size_t end) {
        const std::size_t s = out.first.size();
        out.first.push_back(a);
        for (std::size_t k = a; k < end; ++k)
            out.col_super[k] = s;
        out.rows.insert(out.rows.end(), uni.begin(), uni.end());
        out.row_ptr.push_back(out.rows.size());
    };

    for (std::size_t s = 1; s < strict.count(); ++s) {
        const std::size_t c = strict.first[s];
        const std::size_t d = strict.first[s + 1];
        if (d - a <= max_width) {
            // Candidate union: uni's rows at or past d (those in [c, d)
            // are absorbed into the merged diagonal block) merged with
            // the next supernode's pattern (all >= d by construction).
            const auto keep = std::lower_bound(uni.begin(), uni.end(), d);
            merged.clear();
            std::set_union(keep, uni.end(), rows_begin(s), rows_end(s),
                           std::back_inserter(merged));
            const std::size_t w = d - a;
            const std::size_t dense = tri(w) + w * merged.size();
            const std::size_t truth = group_true + true_l(s);
            const std::size_t zeros = dense - std::min(dense, truth);
            if (zeros <= relax_zeros
                || static_cast<double>(zeros) <= relax_fill * static_cast<double>(dense)) {
                cur_end = d;
                uni.swap(merged);
                group_true = truth;
                continue;
            }
        }
        emit(cur_end);
        a = c;
        cur_end = d;
        uni.assign(rows_begin(s), rows_end(s));
        group_true = true_l(s);
    }
    emit(cur_end);
    out.first.push_back(n);
    return out;
}

} // namespace

supernode_partition detect_supernodes(std::size_t n, const std::vector<std::size_t>& lcol_ptr,
                                      const std::vector<std::size_t>& lrow,
                                      std::size_t max_width, std::size_t relax_zeros,
                                      double relax_fill)
{
    supernode_partition sn;
    sn.col_super.assign(n, 0);
    sn.row_ptr.push_back(0);
    if (n == 0) {
        sn.first.push_back(0);
        return sn;
    }
    if (max_width == 0)
        max_width = 1;

    // Stamp array over pivot rows: stamp[r] == clock while r is in the
    // pattern of the current supernode's last accepted column. lrow is
    // unsorted within a column, so membership tests go through stamps
    // rather than ordered comparison.
    std::vector<std::size_t> stamp(n, 0);
    std::size_t clock = 0;

    const auto stamp_column = [&](std::size_t k) {
        ++clock;
        for (std::size_t p = lcol_ptr[k]; p < lcol_ptr[k + 1]; ++p)
            stamp[lrow[p]] = clock;
    };

    std::size_t start = 0;
    stamp_column(0);
    const auto close_run = [&](std::size_t end) {
        // end is one past the last column of the finished supernode.
        const std::size_t s = sn.first.size();
        sn.first.push_back(start);
        for (std::size_t k = start; k < end; ++k)
            sn.col_super[k] = s;
        // The shared sub-diagonal pattern is the LAST column's, sorted
        // ascending so panel rows have one canonical order.
        const std::size_t last = end - 1;
        sn.rows.insert(sn.rows.end(), lrow.begin() + static_cast<std::ptrdiff_t>(lcol_ptr[last]),
                       lrow.begin() + static_cast<std::ptrdiff_t>(lcol_ptr[last + 1]));
        std::sort(sn.rows.begin() + static_cast<std::ptrdiff_t>(sn.row_ptr.back()),
                  sn.rows.end());
        sn.row_ptr.push_back(sn.rows.size());
        start = end;
    };

    for (std::size_t k = 1; k < n; ++k) {
        const std::size_t prev_nnz = lcol_ptr[k] - lcol_ptr[k - 1];
        const std::size_t cur_nnz = lcol_ptr[k + 1] - lcol_ptr[k];
        bool extends = k - start < max_width && cur_nnz + 1 == prev_nnz
            && stamp[k] == clock;
        if (extends) {
            // P(k) must be P(k-1) \ {k}; sizes already match, so subset
            // suffices.
            for (std::size_t p = lcol_ptr[k]; extends && p < lcol_ptr[k + 1]; ++p)
                extends = stamp[lrow[p]] == clock;
        }
        if (!extends)
            close_run(k);
        stamp_column(k);
    }
    close_run(n);
    sn.first.push_back(n); // sentinel: first[count()] == n
    if ((relax_zeros == 0 && relax_fill <= 0.0) || sn.count() < 2)
        return sn;
    return amalgamate(n, sn, max_width, relax_zeros, relax_fill);
}

} // namespace acstab::numeric
