// Real-coefficient polynomials with root finding via companion matrices.
//
// Coefficients are stored ascending: p(x) = c[0] + c[1] x + ... + c[n] x^n.
// Used to build analytic transfer functions against which the stability
// plot and the MNA pole analysis are validated.
#ifndef ACSTAB_NUMERIC_POLYNOMIAL_H
#define ACSTAB_NUMERIC_POLYNOMIAL_H

#include <vector>

#include "common/types.h"

namespace acstab::numeric {

class polynomial {
public:
    polynomial() : coeffs_{0.0} {}
    explicit polynomial(std::vector<real> ascending_coeffs);

    /// p(x) = value (degree 0).
    [[nodiscard]] static polynomial constant(real value) { return polynomial({value}); }

    /// Monic polynomial with the given real roots.
    [[nodiscard]] static polynomial from_roots(const std::vector<real>& roots);

    /// Monic polynomial with the given (conjugate-closed) complex roots.
    /// Throws numeric_error when the set is not closed under conjugation.
    [[nodiscard]] static polynomial from_complex_roots(const std::vector<cplx>& roots);

    [[nodiscard]] std::size_t degree() const noexcept { return coeffs_.size() - 1; }
    [[nodiscard]] const std::vector<real>& coeffs() const noexcept { return coeffs_; }
    [[nodiscard]] real coeff(std::size_t k) const { return k < coeffs_.size() ? coeffs_[k] : 0.0; }

    [[nodiscard]] real operator()(real x) const noexcept;
    [[nodiscard]] cplx operator()(cplx x) const noexcept;

    [[nodiscard]] polynomial derivative() const;

    friend polynomial operator+(const polynomial& a, const polynomial& b);
    friend polynomial operator-(const polynomial& a, const polynomial& b);
    friend polynomial operator*(const polynomial& a, const polynomial& b);
    friend polynomial operator*(real s, const polynomial& p);

    /// All complex roots via the companion-matrix eigenproblem.
    /// Throws numeric_error for the zero polynomial.
    [[nodiscard]] std::vector<cplx> roots() const;

private:
    void trim();

    std::vector<real> coeffs_; // ascending powers, never empty
};

} // namespace acstab::numeric

#endif // ACSTAB_NUMERIC_POLYNOMIAL_H
