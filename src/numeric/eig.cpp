#include "numeric/eig.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace acstab::numeric {

namespace {

    [[nodiscard]] double sign_like(double magnitude, double sign_source) noexcept
    {
        return sign_source >= 0.0 ? std::fabs(magnitude) : -std::fabs(magnitude);
    }

} // namespace

void balance(dense_matrix<real>& a)
{
    const std::size_t n = a.rows();
    constexpr double radix = 2.0;
    constexpr double sqrdx = radix * radix;

    bool done = false;
    while (!done) {
        done = true;
        for (std::size_t i = 0; i < n; ++i) {
            double col = 0.0;
            double row = 0.0;
            for (std::size_t j = 0; j < n; ++j) {
                if (j == i)
                    continue;
                col += std::fabs(a(j, i));
                row += std::fabs(a(i, j));
            }
            if (col == 0.0 || row == 0.0)
                continue;
            double factor = 1.0;
            const double total = col + row;
            double target = row / radix;
            while (col < target) {
                factor *= radix;
                col *= sqrdx;
            }
            target = row * radix;
            while (col > target) {
                factor /= radix;
                col /= sqrdx;
            }
            if ((col + row) / factor < 0.95 * total) {
                done = false;
                const double inv = 1.0 / factor;
                for (std::size_t j = 0; j < n; ++j)
                    a(i, j) *= inv;
                for (std::size_t j = 0; j < n; ++j)
                    a(j, i) *= factor;
            }
        }
    }
}

void hessenberg(dense_matrix<real>& a)
{
    const std::size_t n = a.rows();
    if (n < 3)
        return;
    std::vector<double> v(n);

    for (std::size_t k = 0; k + 2 < n; ++k) {
        // Householder vector annihilating a(k+2..n-1, k).
        double scale = 0.0;
        for (std::size_t i = k + 1; i < n; ++i)
            scale += std::fabs(a(i, k));
        if (scale == 0.0)
            continue;
        double norm2 = 0.0;
        for (std::size_t i = k + 1; i < n; ++i) {
            v[i] = a(i, k) / scale;
            norm2 += v[i] * v[i];
        }
        double alpha = -sign_like(std::sqrt(norm2), v[k + 1]);
        const double vk1 = v[k + 1];
        const double beta_denom = norm2 - alpha * vk1;
        if (beta_denom == 0.0)
            continue;
        v[k + 1] = vk1 - alpha;

        // Apply P = I - v v^T / beta_denom from both sides.
        for (std::size_t j = 0; j < n; ++j) {
            double dot = 0.0;
            for (std::size_t i = k + 1; i < n; ++i)
                dot += v[i] * a(i, j);
            dot /= beta_denom;
            for (std::size_t i = k + 1; i < n; ++i)
                a(i, j) -= dot * v[i];
        }
        for (std::size_t i = 0; i < n; ++i) {
            double dot = 0.0;
            for (std::size_t j = k + 1; j < n; ++j)
                dot += a(i, j) * v[j];
            dot /= beta_denom;
            for (std::size_t j = k + 1; j < n; ++j)
                a(i, j) -= dot * v[j];
        }
        a(k + 1, k) = alpha * scale;
        for (std::size_t i = k + 2; i < n; ++i)
            a(i, k) = 0.0;
    }
}

std::vector<cplx> hessenberg_eigenvalues(dense_matrix<real>& a)
{
    const std::ptrdiff_t size = static_cast<std::ptrdiff_t>(a.rows());
    std::vector<cplx> eig;
    eig.reserve(a.rows());
    if (size == 0)
        return eig;

    constexpr double eps = std::numeric_limits<double>::epsilon();

    double anorm = 0.0;
    for (std::ptrdiff_t i = 0; i < size; ++i)
        for (std::ptrdiff_t j = std::max<std::ptrdiff_t>(i - 1, 0); j < size; ++j)
            anorm += std::fabs(a(i, j));
    if (anorm == 0.0) {
        eig.assign(a.rows(), cplx{0.0, 0.0});
        return eig;
    }

    std::ptrdiff_t nn = size - 1;
    double shift_total = 0.0;
    int iterations = 0;

    double p = 0.0;
    double q = 0.0;
    double r = 0.0;

    while (nn >= 0) {
        std::ptrdiff_t l = 0;
        do {
            // Look for a negligible subdiagonal element to split the problem.
            for (l = nn; l >= 1; --l) {
                double s = std::fabs(a(l - 1, l - 1)) + std::fabs(a(l, l));
                if (s == 0.0)
                    s = anorm;
                if (std::fabs(a(l, l - 1)) <= eps * s) {
                    a(l, l - 1) = 0.0;
                    break;
                }
            }
            double x = a(nn, nn);
            if (l == nn) {
                // One real eigenvalue deflates.
                eig.emplace_back(x + shift_total, 0.0);
                --nn;
                iterations = 0;
            } else {
                double y = a(nn - 1, nn - 1);
                double w = a(nn, nn - 1) * a(nn - 1, nn);
                if (l == nn - 1) {
                    // A 2x2 block deflates: real pair or complex pair.
                    p = 0.5 * (y - x);
                    q = p * p + w;
                    double z = std::sqrt(std::fabs(q));
                    x += shift_total;
                    if (q >= 0.0) {
                        z = p + sign_like(z, p);
                        const double first = x + z;
                        double second = first;
                        if (z != 0.0)
                            second = x - w / z;
                        eig.emplace_back(first, 0.0);
                        eig.emplace_back(second, 0.0);
                    } else {
                        eig.emplace_back(x + p, z);
                        eig.emplace_back(x + p, -z);
                    }
                    nn -= 2;
                    iterations = 0;
                } else {
                    // No deflation: perform one implicit double-shift sweep.
                    if (iterations == 40)
                        throw numeric_error("eig: QR iteration failed to converge");
                    if (iterations == 10 || iterations == 20) {
                        // Exceptional shift to break cycling.
                        shift_total += x;
                        for (std::ptrdiff_t i = 0; i <= nn; ++i)
                            a(i, i) -= x;
                        const double s = std::fabs(a(nn, nn - 1)) + std::fabs(a(nn - 1, nn - 2));
                        y = x = 0.75 * s;
                        w = -0.4375 * s * s;
                    }
                    ++iterations;

                    std::ptrdiff_t m = 0;
                    for (m = nn - 2; m >= l; --m) {
                        const double z = a(m, m);
                        const double rr = x - z;
                        const double ss = y - z;
                        p = (rr * ss - w) / a(m + 1, m) + a(m, m + 1);
                        q = a(m + 1, m + 1) - z - rr - ss;
                        r = a(m + 2, m + 1);
                        const double scale = std::fabs(p) + std::fabs(q) + std::fabs(r);
                        p /= scale;
                        q /= scale;
                        r /= scale;
                        if (m == l)
                            break;
                        const double u = std::fabs(a(m, m - 1)) * (std::fabs(q) + std::fabs(r));
                        const double v = std::fabs(p)
                            * (std::fabs(a(m - 1, m - 1)) + std::fabs(z) + std::fabs(a(m + 1, m + 1)));
                        if (u <= eps * v)
                            break;
                    }
                    for (std::ptrdiff_t i = m + 2; i <= nn; ++i) {
                        a(i, i - 2) = 0.0;
                        if (i != m + 2)
                            a(i, i - 3) = 0.0;
                    }
                    for (std::ptrdiff_t k = m; k <= nn - 1; ++k) {
                        double col_scale = 0.0;
                        if (k != m) {
                            p = a(k, k - 1);
                            q = a(k + 1, k - 1);
                            r = 0.0;
                            if (k != nn - 1)
                                r = a(k + 2, k - 1);
                            col_scale = std::fabs(p) + std::fabs(q) + std::fabs(r);
                            if (col_scale != 0.0) {
                                p /= col_scale;
                                q /= col_scale;
                                r /= col_scale;
                            }
                        }
                        const double s = sign_like(std::sqrt(p * p + q * q + r * r), p);
                        if (s == 0.0)
                            continue;
                        if (k == m) {
                            if (l != m)
                                a(k, k - 1) = -a(k, k - 1);
                        } else {
                            a(k, k - 1) = -s * col_scale;
                        }
                        p += s;
                        const double x2 = p / s;
                        const double y2 = q / s;
                        const double z2 = r / s;
                        q /= p;
                        r /= p;
                        for (std::ptrdiff_t j = k; j <= nn; ++j) {
                            double pp = a(k, j) + q * a(k + 1, j);
                            if (k != nn - 1) {
                                pp += r * a(k + 2, j);
                                a(k + 2, j) -= pp * z2;
                            }
                            a(k + 1, j) -= pp * y2;
                            a(k, j) -= pp * x2;
                        }
                        const std::ptrdiff_t mmin = std::min(nn, k + 3);
                        for (std::ptrdiff_t i = l; i <= mmin; ++i) {
                            double pp = x2 * a(i, k) + y2 * a(i, k + 1);
                            if (k != nn - 1) {
                                pp += z2 * a(i, k + 2);
                                a(i, k + 2) -= pp * r;
                            }
                            a(i, k + 1) -= pp * q;
                            a(i, k) -= pp;
                        }
                    }
                }
            }
        } while (l < nn - 1 && nn >= 0);
    }
    return eig;
}

std::vector<cplx> eigenvalues(dense_matrix<real> a)
{
    if (a.rows() != a.cols())
        throw numeric_error("eig: matrix must be square");
    balance(a);
    hessenberg(a);
    return hessenberg_eigenvalues(a);
}

} // namespace acstab::numeric
