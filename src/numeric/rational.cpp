#include "numeric/rational.h"

#include <cmath>

#include "common/error.h"

namespace acstab::numeric {

rational::rational(polynomial num, polynomial den) : num_(std::move(num)), den_(std::move(den))
{
    if (den_.degree() == 0 && den_.coeff(0) == 0.0)
        throw numeric_error("rational: zero denominator");
}

rational rational::from_poles_zeros(const std::vector<cplx>& zeros,
                                    const std::vector<cplx>& poles,
                                    real gain)
{
    return {gain * polynomial::from_complex_roots(zeros), polynomial::from_complex_roots(poles)};
}

rational rational::second_order_lowpass(real zeta, real omega_n)
{
    if (omega_n <= 0.0)
        throw numeric_error("rational: natural frequency must be positive");
    const real wn2 = omega_n * omega_n;
    return {polynomial({wn2}), polynomial({wn2, 2.0 * zeta * omega_n, 1.0})};
}

cplx rational::operator()(cplx s) const
{
    return num_(s) / den_(s);
}

real rational::magnitude(real omega) const
{
    return std::abs((*this)(cplx{0.0, omega}));
}

real rational::phase(real omega) const
{
    return std::arg((*this)(cplx{0.0, omega}));
}

rational rational::unity_feedback_closed_loop() const
{
    return {num_, num_ + den_};
}

} // namespace acstab::numeric
