// Rational transfer functions H(s) = N(s) / D(s).
//
// The analytic fixture behind the method's theory: second-order prototypes,
// pole/zero construction, evaluation along the jw axis. Tests compare the
// simulator's measured responses and the stability plot against these.
#ifndef ACSTAB_NUMERIC_RATIONAL_H
#define ACSTAB_NUMERIC_RATIONAL_H

#include <vector>

#include "common/types.h"
#include "numeric/polynomial.h"

namespace acstab::numeric {

class rational {
public:
    rational() : num_(polynomial::constant(1.0)), den_(polynomial::constant(1.0)) {}
    rational(polynomial num, polynomial den);

    /// H(s) = gain * prod(s - z) / prod(s - p); root sets must be
    /// conjugate-closed so that the coefficients are real.
    [[nodiscard]] static rational from_poles_zeros(const std::vector<cplx>& zeros,
                                                   const std::vector<cplx>& poles,
                                                   real gain = 1.0);

    /// The paper's normalized prototype T(s) = 1 / (s^2 + 2 zeta s + 1)
    /// scaled to natural frequency wn [rad/s]: T(s) = wn^2/(s^2+2 zeta wn s+wn^2).
    [[nodiscard]] static rational second_order_lowpass(real zeta, real omega_n = 1.0);

    [[nodiscard]] const polynomial& num() const noexcept { return num_; }
    [[nodiscard]] const polynomial& den() const noexcept { return den_; }

    [[nodiscard]] cplx operator()(cplx s) const;

    /// |H(j*omega)|.
    [[nodiscard]] real magnitude(real omega) const;

    /// Phase of H(j*omega) in radians, principal value.
    [[nodiscard]] real phase(real omega) const;

    [[nodiscard]] std::vector<cplx> poles() const { return den_.roots(); }
    [[nodiscard]] std::vector<cplx> zeros() const { return num_.roots(); }

    [[nodiscard]] friend rational operator*(const rational& a, const rational& b)
    {
        return {a.num_ * b.num_, a.den_ * b.den_};
    }

    /// Closed-loop transfer function H/(1+H) of a unity-feedback loop whose
    /// forward path is *this.
    [[nodiscard]] rational unity_feedback_closed_loop() const;

private:
    polynomial num_;
    polynomial den_;
};

} // namespace acstab::numeric

#endif // ACSTAB_NUMERIC_RATIONAL_H
