// Vector kernels for the supernodal numeric path (sparse_factor.h).
//
// The blocked refactor and solve spend their flops in unit-stride
// complex rank-1 updates over dense panel columns and over split
// real/imaginary solution planes. Those loops vectorize — but the
// library is built for baseline x86-64 (SSE2, no FMA), so this one
// translation unit is compiled with AVX2+FMA enabled (see CMakeLists)
// and selected at runtime behind a cpuid check. Callers fall back to
// their portable scalar loops when the CPU (or the build) lacks the
// extensions, so results and portability never depend on them being
// present; the kernels compute the same split-complex expressions as
// the scalar fallbacks, in the same order, differing only by FMA
// contraction (within the paths' documented rounding slack).
//
// Interleaved arrays are std::complex<double> storage viewed as
// double[2*m] (re, im pairs); `m` counts complex elements throughout.
#ifndef ACSTAB_NUMERIC_SN_KERNELS_H
#define ACSTAB_NUMERIC_SN_KERNELS_H

#include <cstddef>

namespace acstab::numeric::snk {

/// True when the AVX2+FMA kernels below are compiled in and the CPU
/// supports them (checked once, cached).
[[nodiscard]] bool available() noexcept;

/// Interleaved complex rank-1 updates: y op= l * (ur + i*ui).
void cax_sub(double* y, const double* l, double ur, double ui, std::size_t m) noexcept;
void cax_set(double* y, const double* l, double ur, double ui, std::size_t m) noexcept;
void cax_add(double* y, const double* l, double ur, double ui, std::size_t m) noexcept;

/// Fused rank-2 forms: y op= l0*u0 + l1*u1 in a single pass over y,
/// halving the accumulator load/store traffic of the refactor's panel
/// update (its hottest loop).
void cax_set2(double* y, const double* l0, double u0r, double u0i, const double* l1,
              double u1r, double u1i, std::size_t m) noexcept;
void cax_add2(double* y, const double* l0, double u0r, double u0i, const double* l1,
              double u1r, double u1i, std::size_t m) noexcept;
void cax_sub2(double* y, const double* l0, double u0r, double u0i, const double* l1,
              double u1r, double u1i, std::size_t m) noexcept;

/// Split-plane complex rank-1 update (solve kernels): for r < m,
///   yr[r] op= lr*xr[r] - li*xi[r],  yi[r] op= lr*xi[r] + li*xr[r].
void plane_sub(double* yr, double* yi, const double* xr, const double* xi, double lr,
               double li, std::size_t m) noexcept;
void plane_add(double* yr, double* yi, const double* xr, const double* xi, double lr,
               double li, std::size_t m) noexcept;

/// In-place split-plane scaling by a complex constant (reciprocal
/// diagonal in the blocked back solve): xr,xi <- xr*dr - xi*di,
/// xr*di + xi*dr. Returns true when any resulting lane is nonzero.
bool plane_scale(double* xr, double* xi, double dr, double di, std::size_t m) noexcept;

} // namespace acstab::numeric::snk

#endif // ACSTAB_NUMERIC_SN_KERNELS_H
