// Finite-difference derivatives on non-uniform grids.
//
// The stability plot (paper eq. 1.3) is the curvature of ln|T| versus
// ln(w); log_log_curvature() computes it with three-point stencils that are
// exact for quadratics even when the grid is slightly non-uniform in log
// space. The direct eq.-(1.3) form is also provided for the A3 ablation.
#ifndef ACSTAB_NUMERIC_DIFFERENTIATION_H
#define ACSTAB_NUMERIC_DIFFERENTIATION_H

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace acstab::numeric {

/// First derivative dy/dx on a non-uniform grid (three-point stencils,
/// one-sided at the ends). x must be strictly increasing.
[[nodiscard]] inline std::vector<real> derivative_nonuniform(std::span<const real> x,
                                                             std::span<const real> y)
{
    const std::size_t n = x.size();
    if (n != y.size())
        throw numeric_error("derivative: x/y length mismatch");
    if (n < 3)
        throw numeric_error("derivative: need at least 3 points");
    for (std::size_t i = 1; i < n; ++i)
        if (!(x[i] > x[i - 1]))
            throw numeric_error("derivative: grid must be strictly increasing");

    std::vector<real> d(n);
    for (std::size_t i = 1; i + 1 < n; ++i) {
        const real h1 = x[i] - x[i - 1];
        const real h2 = x[i + 1] - x[i];
        // Exact for quadratics on non-uniform grids.
        d[i] = (y[i + 1] * h1 * h1 + y[i] * (h2 * h2 - h1 * h1) - y[i - 1] * h2 * h2)
            / (h1 * h2 * (h1 + h2));
    }
    {
        const real h1 = x[1] - x[0];
        const real h2 = x[2] - x[1];
        d[0] = (-y[2] * h1 * h1 + y[1] * (h1 + h2) * (h1 + h2) - y[0] * (h2 * h2 + 2.0 * h1 * h2))
            / (h1 * h2 * (h1 + h2));
        const real g1 = x[n - 2] - x[n - 3];
        const real g2 = x[n - 1] - x[n - 2];
        d[n - 1] = (y[n - 3] * g2 * g2 - y[n - 2] * (g1 + g2) * (g1 + g2)
                    + y[n - 1] * (g1 * g1 + 2.0 * g1 * g2))
            / (g1 * g2 * (g1 + g2));
    }
    return d;
}

/// Second derivative d2y/dx2 on a non-uniform grid (three-point central,
/// copied at the boundary points).
[[nodiscard]] inline std::vector<real> second_derivative_nonuniform(std::span<const real> x,
                                                                    std::span<const real> y)
{
    const std::size_t n = x.size();
    if (n != y.size())
        throw numeric_error("second_derivative: x/y length mismatch");
    if (n < 3)
        throw numeric_error("second_derivative: need at least 3 points");

    std::vector<real> d(n);
    for (std::size_t i = 1; i + 1 < n; ++i) {
        const real h1 = x[i] - x[i - 1];
        const real h2 = x[i + 1] - x[i];
        d[i] = 2.0 * (y[i - 1] * h2 - y[i] * (h1 + h2) + y[i + 1] * h1) / (h1 * h2 * (h1 + h2));
    }
    d[0] = d[1];
    d[n - 1] = d[n - 2];
    return d;
}

/// Curvature of ln(y) with respect to ln(x):  d^2 ln y / d (ln x)^2.
/// For the paper's stability plot, x is frequency and y = |T(jw)|; the
/// result peaks at -1/zeta^2 at each complex-pole natural frequency.
/// Requires strictly positive x and y.
[[nodiscard]] inline std::vector<real> log_log_curvature(std::span<const real> x,
                                                         std::span<const real> y)
{
    const std::size_t n = x.size();
    if (n != y.size())
        throw numeric_error("log_log_curvature: x/y length mismatch");
    std::vector<real> lx(n);
    std::vector<real> ly(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (!(x[i] > 0.0) || !(y[i] > 0.0))
            throw numeric_error("log_log_curvature: x and y must be positive");
        lx[i] = std::log(x[i]);
        ly[i] = std::log(y[i]);
    }
    return second_derivative_nonuniform(lx, ly);
}

/// Direct transcription of paper eq. (1.3):
///   P(w) = d/dw [ (d|T|/dw) * w / |T| ] * w
/// computed with the same non-uniform three-point stencils. Analytically
/// identical to log_log_curvature (substitute u = ln w); the two differ
/// only in discretization error, quantified by the formula ablation (A3).
[[nodiscard]] inline std::vector<real> stability_function_direct(std::span<const real> x,
                                                                 std::span<const real> y)
{
    const std::size_t n = x.size();
    const std::vector<real> dy = derivative_nonuniform(x, y);
    std::vector<real> normalized(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (y[i] == 0.0)
            throw numeric_error("stability_function_direct: zero magnitude");
        normalized[i] = dy[i] * x[i] / y[i];
    }
    std::vector<real> outer = derivative_nonuniform(x, normalized);
    for (std::size_t i = 0; i < n; ++i)
        outer[i] *= x[i];
    return outer;
}

} // namespace acstab::numeric

#endif // ACSTAB_NUMERIC_DIFFERENTIATION_H
