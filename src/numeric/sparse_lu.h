// One-object facade over the symbolic/numeric sparse LU split
// (sparse_factor.h): factor-and-solve for call sites that do not share a
// symbolic factorization across workers (DC/transient solves, one-shot
// AC points). The sweep engine uses symbolic_lu + numeric_lu directly.
//
// This is the production solver for MNA systems: each column's sparse
// triangular solve only touches the symbolic reach set, so ladder-like
// circuit matrices factor in near-linear time. The dense lu.h path remains
// as the reference implementation (ablation A2 compares the two).
#ifndef ACSTAB_NUMERIC_SPARSE_LU_H
#define ACSTAB_NUMERIC_SPARSE_LU_H

#include <cstddef>
#include <memory>
#include <vector>

#include "common/error.h"
#include "numeric/sparse_factor.h"
#include "numeric/sparse_matrix.h"

namespace acstab::numeric {

template <class T>
class sparse_lu {
public:
    /// The shared lu_options (pivot_tol + column_ordering) plus the
    /// facade's own refactor guard — the slice the symbolic analysis
    /// consumes is forwarded verbatim, so the ordering enum is defined
    /// exactly once (in sparse_factor.h).
    struct options : lu_options {
        /// Allow refactor() calls for matrices with the same structure
        /// but different values. (The pattern is always symbolic since
        /// the split; the flag is kept as an API guard so accidental
        /// refactors of one-shot factorizations still throw.)
        bool prepare_refactor = false;
    };

    explicit sparse_lu(const csc_matrix<T>& a, options opt = {})
        : sym_(std::make_shared<const symbolic_lu<T>>(
              a, static_cast<const lu_options&>(opt), &seed_values_)),
          num_(sym_, std::move(seed_values_)), refactor_ready_(opt.prepare_refactor)
    {
    }

    [[nodiscard]] std::size_t size() const noexcept { return sym_->size(); }
    [[nodiscard]] std::size_t lower_nnz() const noexcept { return sym_->lower_nnz(); }
    [[nodiscard]] std::size_t upper_nnz() const noexcept { return sym_->upper_nnz(); }

    /// The immutable symbolic half, shareable with other numeric_lu
    /// instances (e.g. worker-local refactor loops).
    [[nodiscard]] const std::shared_ptr<const symbolic_lu<T>>& symbolic() const noexcept
    {
        return sym_;
    }

    /// Solve A x = b.
    [[nodiscard]] std::vector<T> solve(const std::vector<T>& b) const { return num_.solve(b); }

    /// Recompute the numeric factorization for a matrix with the SAME
    /// sparsity pattern as the one originally factored, reusing the pivot
    /// order and the symbolic L/U structure (no search, no allocation).
    /// Requires options::prepare_refactor at construction. Throws
    /// numeric_error on an exactly-zero pivot; the values are then
    /// undefined and must be recomputed (another refactor, or a fresh
    /// factorization when the pivot order itself has gone stale).
    void refactor(const csc_matrix<T>& a)
    {
        if (!refactor_ready_)
            throw numeric_error("sparse_lu: refactor requires prepare_refactor");
        num_.refactor(a);
    }

private:
    /// Declared before sym_/num_: the symbolic analysis fills it and the
    /// numeric half adopts it (member initialization order is declaration
    /// order), so one-shot factorizations run the elimination only once.
    typename symbolic_lu<T>::factor_values seed_values_;
    std::shared_ptr<const symbolic_lu<T>> sym_;
    numeric_lu<T> num_;
    bool refactor_ready_ = false;
};

} // namespace acstab::numeric

#endif // ACSTAB_NUMERIC_SPARSE_LU_H
