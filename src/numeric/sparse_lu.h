// Left-looking sparse LU (Gilbert–Peierls) with threshold partial pivoting
// and an optional nonzero-count column preordering.
//
// This is the production solver for MNA systems: each column's sparse
// triangular solve only touches the symbolic reach set, so ladder-like
// circuit matrices factor in near-linear time. The dense lu.h path remains
// as the reference implementation (ablation A2 compares the two).
#ifndef ACSTAB_NUMERIC_SPARSE_LU_H
#define ACSTAB_NUMERIC_SPARSE_LU_H

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numeric>
#include <vector>

#include "common/error.h"
#include "numeric/sparse_matrix.h"

namespace acstab::numeric {

template <class T>
class sparse_lu {
public:
    struct options {
        /// Diagonal entries within pivot_tol of the column maximum are
        /// preferred, preserving MNA structure and limiting fill-in.
        double pivot_tol = 0.1;
        /// Factor columns in ascending nonzero-count order (cheap
        /// fill-reducing heuristic).
        bool order_columns = true;
        /// Keep the full symbolic reach in L/U (even entries that are
        /// numerically zero at factorization time) so refactor() can reuse
        /// the pattern for a matrix with the same structure but different
        /// values. Costs a few explicit zeros; required before refactor().
        bool prepare_refactor = false;
    };

    explicit sparse_lu(const csc_matrix<T>& a, options opt = {}) : n_(a.cols())
    {
        if (a.rows() != n_)
            throw numeric_error("sparse_lu: matrix must be square");
        factor(a, opt);
    }

    [[nodiscard]] std::size_t size() const noexcept { return n_; }
    [[nodiscard]] std::size_t lower_nnz() const noexcept { return lrow_.size() + n_; }
    [[nodiscard]] std::size_t upper_nnz() const noexcept { return urow_.size(); }

    /// Solve A x = b.
    [[nodiscard]] std::vector<T> solve(const std::vector<T>& b) const
    {
        if (b.size() != n_)
            throw numeric_error("sparse_lu: right-hand side has wrong length");
        // Permute into pivot order.
        std::vector<T> y(n_);
        for (std::size_t i = 0; i < n_; ++i)
            y[pinv_[i]] = b[i];
        // Forward solve with unit-diagonal L.
        for (std::size_t c = 0; c < n_; ++c) {
            const T yc = y[c];
            if (yc == T{})
                continue;
            for (std::size_t p = lcol_ptr_[c]; p < lcol_ptr_[c + 1]; ++p)
                y[lrow_[p]] -= lval_[p] * yc;
        }
        // Back solve with U (diagonal entry stored last in each column).
        for (std::size_t c = n_; c-- > 0;) {
            const std::size_t last = ucol_ptr_[c + 1] - 1;
            const T xc = y[c] / uval_[last];
            y[c] = xc;
            if (xc == T{})
                continue;
            for (std::size_t p = ucol_ptr_[c]; p < last; ++p)
                y[urow_[p]] -= uval_[p] * xc;
        }
        // Undo the column ordering.
        std::vector<T> x(n_);
        for (std::size_t c = 0; c < n_; ++c)
            x[q_[c]] = y[c];
        return x;
    }

    /// Recompute the numeric factorization for a matrix with the SAME
    /// sparsity pattern as the one originally factored, reusing the pivot
    /// order and the symbolic L/U structure (no search, no allocation).
    /// Requires options::prepare_refactor at construction. Throws
    /// numeric_error on an exactly-zero pivot; the factorization is then
    /// in an undefined state and must be rebuilt from scratch.
    void refactor(const csc_matrix<T>& a)
    {
        if (!refactor_ready_)
            throw numeric_error("sparse_lu: refactor requires prepare_refactor");
        if (a.rows() != n_ || a.cols() != n_)
            throw numeric_error("sparse_lu: refactor size mismatch");
        // Work in pivot space: w[pinv_[row]] accumulates the current
        // column; every position touched lies in the stored L/U pattern
        // and is cleared as it is consumed, keeping w all-zero between
        // columns.
        std::vector<T>& w = refactor_work_;
        w.assign(n_, T{});
        for (std::size_t k = 0; k < n_; ++k) {
            const std::size_t col = q_[k];
            for (std::size_t p = a.col_ptr()[col]; p < a.col_ptr()[col + 1]; ++p)
                w[pinv_[a.row_idx()[p]]] += a.values()[p];
            // Left-looking update: consume U rows in ascending pivot order
            // (sorted by factor() when prepare_refactor is set).
            const std::size_t ulast = ucol_ptr_[k + 1] - 1;
            for (std::size_t p = ucol_ptr_[k]; p < ulast; ++p) {
                const std::size_t j = urow_[p];
                const T wj = w[j];
                uval_[p] = wj;
                w[j] = T{};
                if (wj == T{})
                    continue;
                for (std::size_t q = lcol_ptr_[j]; q < lcol_ptr_[j + 1]; ++q)
                    w[lrow_[q]] -= lval_[q] * wj;
            }
            const T pivot = w[k];
            w[k] = T{};
            if (pivot == T{})
                throw numeric_error("sparse_lu: refactor hit a zero pivot at column "
                                    + std::to_string(col));
            uval_[ulast] = pivot;
            for (std::size_t p = lcol_ptr_[k]; p < lcol_ptr_[k + 1]; ++p) {
                lval_[p] = w[lrow_[p]] / pivot;
                w[lrow_[p]] = T{};
            }
        }
    }

private:
    void factor(const csc_matrix<T>& a, const options& opt)
    {
        constexpr std::ptrdiff_t unset = -1;
        q_.resize(n_);
        std::iota(q_.begin(), q_.end(), std::size_t{0});
        if (opt.order_columns) {
            std::stable_sort(q_.begin(), q_.end(), [&a](std::size_t i, std::size_t j) {
                return a.col_ptr()[i + 1] - a.col_ptr()[i] < a.col_ptr()[j + 1] - a.col_ptr()[j];
            });
        }

        std::vector<std::ptrdiff_t> pinv(n_, unset);
        lcol_ptr_.assign(n_ + 1, 0);
        ucol_ptr_.assign(n_ + 1, 0);

        std::vector<T> x(n_, T{});
        std::vector<std::size_t> mark(n_, 0);
        std::vector<std::size_t> postorder;
        postorder.reserve(n_);
        struct frame {
            std::size_t node;
            std::size_t child;
        };
        std::vector<frame> stack;

        for (std::size_t k = 0; k < n_; ++k) {
            const std::size_t col = q_[k];
            const std::size_t stamp = k + 1;
            postorder.clear();

            // Symbolic: depth-first search of the reach set of A(:, col)
            // through the columns of L built so far.
            for (std::size_t p = a.col_ptr()[col]; p < a.col_ptr()[col + 1]; ++p) {
                const std::size_t root = a.row_idx()[p];
                if (mark[root] == stamp)
                    continue;
                mark[root] = stamp;
                stack.push_back({root, 0});
                while (!stack.empty()) {
                    frame& f = stack.back();
                    const std::ptrdiff_t c = pinv[f.node];
                    bool descended = false;
                    if (c >= 0) {
                        const std::size_t begin = lcol_ptr_[static_cast<std::size_t>(c)];
                        const std::size_t end = lcol_ptr_[static_cast<std::size_t>(c) + 1];
                        while (begin + f.child < end) {
                            const std::size_t next = lrow_[begin + f.child];
                            ++f.child;
                            if (mark[next] != stamp) {
                                mark[next] = stamp;
                                stack.push_back({next, 0});
                                descended = true;
                                break;
                            }
                        }
                    }
                    if (!descended && (c < 0 || lcol_ptr_[static_cast<std::size_t>(c)] + f.child
                                           >= lcol_ptr_[static_cast<std::size_t>(c) + 1])) {
                        postorder.push_back(f.node);
                        stack.pop_back();
                    }
                }
            }

            // Numeric: scatter A(:, col), then eliminate in reverse postorder.
            for (std::size_t p = a.col_ptr()[col]; p < a.col_ptr()[col + 1]; ++p)
                x[a.row_idx()[p]] = a.values()[p];
            for (std::size_t idx = postorder.size(); idx-- > 0;) {
                const std::size_t i = postorder[idx];
                const std::ptrdiff_t c = pinv[i];
                if (c < 0)
                    continue;
                const T xi = x[i];
                if (xi == T{})
                    continue;
                for (std::size_t p = lcol_ptr_[static_cast<std::size_t>(c)];
                     p < lcol_ptr_[static_cast<std::size_t>(c) + 1]; ++p)
                    x[lrow_[p]] -= lval_[p] * xi;
            }

            // Pivot: largest magnitude among not-yet-pivotal rows, with a
            // threshold preference for the structural diagonal.
            std::ptrdiff_t ipiv = unset;
            double best = 0.0;
            for (const std::size_t i : postorder) {
                if (pinv[i] != unset)
                    continue;
                const double mag = std::abs(x[i]);
                if (mag > best) {
                    best = mag;
                    ipiv = static_cast<std::ptrdiff_t>(i);
                }
            }
            if (ipiv == unset || best == 0.0)
                throw numeric_error("sparse_lu: singular matrix at column "
                                    + std::to_string(col));
            if (pinv[col] == unset && std::abs(x[col]) >= opt.pivot_tol * best)
                ipiv = static_cast<std::ptrdiff_t>(col);
            const T pivot = x[static_cast<std::size_t>(ipiv)];

            // Emit U(:, k): previously pivotal rows plus the diagonal last.
            // prepare_refactor keeps numerically-zero reach entries so the
            // emitted pattern is purely symbolic (value-independent).
            for (const std::size_t i : postorder) {
                if (pinv[i] == unset)
                    continue;
                if (opt.prepare_refactor || x[i] != T{}) {
                    urow_.push_back(static_cast<std::size_t>(pinv[i]));
                    uval_.push_back(x[i]);
                }
            }
            urow_.push_back(k);
            uval_.push_back(pivot);
            ucol_ptr_[k + 1] = urow_.size();

            // Emit L(:, k) scaled by the pivot (unit diagonal implicit).
            pinv[static_cast<std::size_t>(ipiv)] = static_cast<std::ptrdiff_t>(k);
            for (const std::size_t i : postorder) {
                if (pinv[i] == unset && (opt.prepare_refactor || x[i] != T{})) {
                    lrow_.push_back(i);
                    lval_.push_back(x[i] / pivot);
                }
                x[i] = T{};
            }
            lcol_ptr_[k + 1] = lrow_.size();
        }

        // Renumber L's rows into pivot order now that pinv is complete.
        pinv_.resize(n_);
        for (std::size_t i = 0; i < n_; ++i)
            pinv_[i] = static_cast<std::size_t>(pinv[i]);
        for (auto& r : lrow_)
            r = pinv_[r];

        if (opt.prepare_refactor) {
            // refactor() consumes each U column in ascending pivot order;
            // sort the off-diagonal entries (solve order is insensitive).
            std::vector<std::pair<std::size_t, T>> col;
            for (std::size_t k = 0; k < n_; ++k) {
                const std::size_t begin = ucol_ptr_[k];
                const std::size_t last = ucol_ptr_[k + 1] - 1;
                col.clear();
                for (std::size_t p = begin; p < last; ++p)
                    col.emplace_back(urow_[p], uval_[p]);
                std::sort(col.begin(), col.end(),
                          [](const auto& a, const auto& b) { return a.first < b.first; });
                for (std::size_t p = begin; p < last; ++p) {
                    urow_[p] = col[p - begin].first;
                    uval_[p] = col[p - begin].second;
                }
            }
            refactor_ready_ = true;
        }
    }

    std::size_t n_ = 0;
    std::vector<std::size_t> lcol_ptr_, lrow_;
    std::vector<T> lval_;
    std::vector<std::size_t> ucol_ptr_, urow_;
    std::vector<T> uval_;
    std::vector<std::size_t> pinv_; // original row -> pivot position
    std::vector<std::size_t> q_;    // pivot step -> original column
    bool refactor_ready_ = false;
    std::vector<T> refactor_work_;
};

} // namespace acstab::numeric

#endif // ACSTAB_NUMERIC_SPARSE_LU_H
