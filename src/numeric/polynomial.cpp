#include "numeric/polynomial.h"

#include <cmath>

#include "common/error.h"
#include "numeric/eig.h"

namespace acstab::numeric {

polynomial::polynomial(std::vector<real> ascending_coeffs) : coeffs_(std::move(ascending_coeffs))
{
    if (coeffs_.empty())
        coeffs_.push_back(0.0);
    trim();
}

polynomial polynomial::from_roots(const std::vector<real>& roots)
{
    polynomial p({1.0});
    for (const real r : roots)
        p = p * polynomial({-r, 1.0});
    return p;
}

polynomial polynomial::from_complex_roots(const std::vector<cplx>& roots)
{
    // Pair each complex root with its conjugate so coefficients stay real.
    std::vector<bool> used(roots.size(), false);
    polynomial p({1.0});
    constexpr real tol = 1e-9;
    for (std::size_t i = 0; i < roots.size(); ++i) {
        if (used[i])
            continue;
        const cplx r = roots[i];
        if (std::fabs(r.imag()) <= tol * (1.0 + std::abs(r))) {
            p = p * polynomial({-r.real(), 1.0});
            used[i] = true;
            continue;
        }
        bool paired = false;
        for (std::size_t j = i + 1; j < roots.size(); ++j) {
            if (used[j])
                continue;
            if (std::abs(roots[j] - std::conj(r)) <= tol * (1.0 + std::abs(r))) {
                // (x - r)(x - conj r) = x^2 - 2 Re(r) x + |r|^2
                p = p * polynomial({std::norm(r), -2.0 * r.real(), 1.0});
                used[i] = used[j] = true;
                paired = true;
                break;
            }
        }
        if (!paired)
            throw numeric_error("polynomial: complex roots not closed under conjugation");
    }
    return p;
}

real polynomial::operator()(real x) const noexcept
{
    real acc = 0.0;
    for (std::size_t k = coeffs_.size(); k-- > 0;)
        acc = acc * x + coeffs_[k];
    return acc;
}

cplx polynomial::operator()(cplx x) const noexcept
{
    cplx acc = 0.0;
    for (std::size_t k = coeffs_.size(); k-- > 0;)
        acc = acc * x + coeffs_[k];
    return acc;
}

polynomial polynomial::derivative() const
{
    if (coeffs_.size() == 1)
        return polynomial({0.0});
    std::vector<real> d(coeffs_.size() - 1);
    for (std::size_t k = 1; k < coeffs_.size(); ++k)
        d[k - 1] = static_cast<real>(k) * coeffs_[k];
    return polynomial(std::move(d));
}

polynomial operator+(const polynomial& a, const polynomial& b)
{
    std::vector<real> c(std::max(a.coeffs_.size(), b.coeffs_.size()), 0.0);
    for (std::size_t k = 0; k < c.size(); ++k)
        c[k] = a.coeff(k) + b.coeff(k);
    return polynomial(std::move(c));
}

polynomial operator-(const polynomial& a, const polynomial& b)
{
    std::vector<real> c(std::max(a.coeffs_.size(), b.coeffs_.size()), 0.0);
    for (std::size_t k = 0; k < c.size(); ++k)
        c[k] = a.coeff(k) - b.coeff(k);
    return polynomial(std::move(c));
}

polynomial operator*(const polynomial& a, const polynomial& b)
{
    std::vector<real> c(a.coeffs_.size() + b.coeffs_.size() - 1, 0.0);
    for (std::size_t i = 0; i < a.coeffs_.size(); ++i)
        for (std::size_t j = 0; j < b.coeffs_.size(); ++j)
            c[i + j] += a.coeffs_[i] * b.coeffs_[j];
    return polynomial(std::move(c));
}

polynomial operator*(real s, const polynomial& p)
{
    std::vector<real> c = p.coeffs_;
    for (auto& v : c)
        v *= s;
    return polynomial(std::move(c));
}

std::vector<cplx> polynomial::roots() const
{
    const std::size_t n = degree();
    if (n == 0) {
        if (coeffs_[0] == 0.0)
            throw numeric_error("polynomial: zero polynomial has no well-defined roots");
        return {};
    }
    if (n == 1)
        return {cplx{-coeffs_[0] / coeffs_[1], 0.0}};

    // Companion matrix of the monic normalization.
    const real lead = coeffs_[n];
    dense_matrix<real> companion(n, n);
    for (std::size_t i = 1; i < n; ++i)
        companion(i, i - 1) = 1.0;
    for (std::size_t i = 0; i < n; ++i)
        companion(i, n - 1) = -coeffs_[i] / lead;
    return eigenvalues(std::move(companion));
}

void polynomial::trim()
{
    while (coeffs_.size() > 1 && coeffs_.back() == 0.0)
        coeffs_.pop_back();
}

} // namespace acstab::numeric
