// Minimal dense matrix for MNA systems and eigen analysis.
//
// Row-major storage, value-semantic, templated over the scalar (double or
// std::complex<double>). Only the operations the simulator actually needs
// are provided; heavy factorizations live in lu.h / eig.h.
#ifndef ACSTAB_NUMERIC_DENSE_MATRIX_H
#define ACSTAB_NUMERIC_DENSE_MATRIX_H

#include <cassert>
#include <cstddef>
#include <vector>

#include "common/error.h"

namespace acstab::numeric {

template <class T>
class dense_matrix {
public:
    dense_matrix() = default;

    dense_matrix(std::size_t rows, std::size_t cols, T init = T{})
        : rows_(rows), cols_(cols), data_(rows * cols, init) {}

    [[nodiscard]] static dense_matrix identity(std::size_t n)
    {
        dense_matrix m(n, n);
        for (std::size_t i = 0; i < n; ++i)
            m(i, i) = T{1};
        return m;
    }

    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
    [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

    T& operator()(std::size_t r, std::size_t c) noexcept
    {
        assert(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    const T& operator()(std::size_t r, std::size_t c) const noexcept
    {
        assert(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    /// Reset every entry to zero, keeping the shape.
    void set_zero()
    {
        data_.assign(data_.size(), T{});
    }

    /// Resize to rows x cols and zero-fill (contents are not preserved).
    void resize_zero(std::size_t rows, std::size_t cols)
    {
        rows_ = rows;
        cols_ = cols;
        data_.assign(rows * cols, T{});
    }

    dense_matrix& operator+=(const dense_matrix& other)
    {
        if (rows_ != other.rows_ || cols_ != other.cols_)
            throw numeric_error("matrix shape mismatch in operator+=");
        for (std::size_t i = 0; i < data_.size(); ++i)
            data_[i] += other.data_[i];
        return *this;
    }

    dense_matrix& operator*=(T scale)
    {
        for (auto& v : data_)
            v *= scale;
        return *this;
    }

    [[nodiscard]] friend dense_matrix operator*(const dense_matrix& a, const dense_matrix& b)
    {
        if (a.cols_ != b.rows_)
            throw numeric_error("matrix shape mismatch in operator*");
        dense_matrix c(a.rows_, b.cols_);
        for (std::size_t i = 0; i < a.rows_; ++i)
            for (std::size_t k = 0; k < a.cols_; ++k) {
                const T aik = a(i, k);
                if (aik == T{})
                    continue;
                for (std::size_t j = 0; j < b.cols_; ++j)
                    c(i, j) += aik * b(k, j);
            }
        return c;
    }

    [[nodiscard]] friend std::vector<T> operator*(const dense_matrix& a, const std::vector<T>& x)
    {
        if (a.cols_ != x.size())
            throw numeric_error("matrix/vector shape mismatch in operator*");
        std::vector<T> y(a.rows_, T{});
        for (std::size_t i = 0; i < a.rows_; ++i) {
            T acc{};
            for (std::size_t j = 0; j < a.cols_; ++j)
                acc += a(i, j) * x[j];
            y[i] = acc;
        }
        return y;
    }

    [[nodiscard]] dense_matrix transposed() const
    {
        dense_matrix t(cols_, rows_);
        for (std::size_t i = 0; i < rows_; ++i)
            for (std::size_t j = 0; j < cols_; ++j)
                t(j, i) = (*this)(i, j);
        return t;
    }

    friend bool operator==(const dense_matrix&, const dense_matrix&) = default;

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<T> data_;
};

} // namespace acstab::numeric

#endif // ACSTAB_NUMERIC_DENSE_MATRIX_H
