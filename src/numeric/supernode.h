// Supernode detection for the blocked numeric LU path.
//
// A supernode is a maximal run of consecutive pivot columns whose L
// patterns nest one into the next: P(k+1) == P(k) \ {k+1}. Within such a
// run the factor columns share one sub-diagonal row structure, so the
// run's L/U entries can be stored as a dense column-major panel and the
// left-looking update consumed per *supernode* instead of per column —
// one dense triangular solve plus one dense rank-run update plus a
// single indirect scatter, where the column-at-a-time path pays one
// indirect scatter per source column. numeric_lu's supernodal mode
// (sparse_factor.h) is built on this partition.
//
// Detection reads only the symbolic L pattern (pivot-renumbered rows as
// symbolic_lu stores them, unsorted within a column), so the partition
// is computed once per symbolic analysis and shared read-only by every
// worker alongside the patterns themselves.
#ifndef ACSTAB_NUMERIC_SUPERNODE_H
#define ACSTAB_NUMERIC_SUPERNODE_H

#include <cstddef>
#include <vector>

namespace acstab::numeric {

/// Partition of the pivot columns 0..n-1 into supernodes of consecutive
/// columns with nested L patterns. Plain index data, value-type
/// independent; immutable once built.
struct supernode_partition {
    /// First pivot column of each supernode; first[count()] == n.
    std::vector<std::size_t> first;
    /// Pivot column -> supernode id (size n).
    std::vector<std::size_t> col_super;
    /// Per supernode, the shared sub-diagonal row pattern (the L pattern
    /// of the supernode's LAST column), sorted ascending in pivot space:
    /// rows[row_ptr[s] .. row_ptr[s+1]).
    std::vector<std::size_t> row_ptr;
    std::vector<std::size_t> rows;

    [[nodiscard]] std::size_t count() const noexcept
    {
        return first.empty() ? 0 : first.size() - 1;
    }
    [[nodiscard]] std::size_t width(std::size_t s) const noexcept
    {
        return first[s + 1] - first[s];
    }
    [[nodiscard]] std::size_t sub_rows(std::size_t s) const noexcept
    {
        return row_ptr[s + 1] - row_ptr[s];
    }
};

/// Detect supernodes in a symbolic L pattern given as CSC-style arrays
/// (lcol_ptr of size n+1; lrow holds each column's sub-diagonal rows in
/// pivot space, in any order). Column k+1 extends the current supernode
/// iff its pattern is the current column's minus the pivot row k+1
/// itself; max_width caps a run so the dense panels stay cache-sized.
///
/// Circuit matrices under fill-reducing orderings leave most strict
/// supernodes at width 1, so the strict pass is followed by relaxed
/// amalgamation: adjacent supernodes are greedily merged when the
/// explicit zeros this pads into the merged panel stay small — at most
/// relax_zeros entries, or at most a relax_fill fraction of the merged
/// panel's L area. Padded positions hold exact 0.0 and every structural
/// value is reproduced bit-for-bit (0.0 * x == 0.0 contributes nothing),
/// so relaxation trades a few wasted flops for far fewer, longer panel
/// updates. Pass relax_zeros == 0 and relax_fill == 0.0 for the strict
/// partition.
[[nodiscard]] supernode_partition
detect_supernodes(std::size_t n, const std::vector<std::size_t>& lcol_ptr,
                  const std::vector<std::size_t>& lrow, std::size_t max_width = 32,
                  std::size_t relax_zeros = 12, double relax_fill = 0.25);

} // namespace acstab::numeric

#endif // ACSTAB_NUMERIC_SUPERNODE_H
