// Deterministic fault injection shared by the farm orchestrator and the
// serve daemon (ACSTAB_FAULT_INJECT).
//
// The whole fault model of `farm exec` and `acstab serve` is testable
// because every fault the code is built to absorb can be injected
// deterministically from one environment variable, which flows unchanged
// from the serve daemon through the orchestrator into the worker
// processes. Directives are comma-separated `kind:arg[:seconds][:always]`
// tokens:
//
//   worker-level (consumed by `farm worker` processes):
//     crash:<idx>            worker SIGKILLs itself before running <idx>
//     stall:<idx>[:<s>]      worker sleeps <s> (default 30) before <idx>
//   orchestrator-level (consumed by exec_campaign):
//     interrupt:<n>          behave as if SIGINT arrived after the n-th
//                            completed point
//   serve-level (consumed by serve::run_server):
//     client-drop:<k>        hard-close connection <k> right after its
//                            first streamed point frame (simulates the
//                            client vanishing mid-request)
//     slow-reader:<k>        stop draining connection <k>'s output and
//                            cap its buffer small, forcing the bounded
//                            output-buffer overflow (slow client) path
//     mid-frame-kill:<k>     treat connection <k> as disconnected as
//                            soon as a partial (newline-less) frame is
//                            pending (simulates a client killed mid-send)
//
// Each directive fires once per working directory — an O_CREAT|O_EXCL
// marker file records the firing, across processes and resumes — unless
// suffixed `:always`, so the retry of an injected fault runs clean and
// campaigns still converge to the byte-identical report.
#ifndef ACSTAB_FARM_FAULT_INJECT_H
#define ACSTAB_FARM_FAULT_INJECT_H

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.h"

namespace acstab::farm {

struct fault_directive {
    enum class kind {
        crash,
        stall,
        interrupt,
        client_drop,
        slow_reader,
        mid_frame_kill,
    };
    kind k = kind::crash;
    std::size_t arg = 0; ///< point index / completion count / connection serial
    real seconds = 30.0; ///< stall duration (stall directives only)
    bool always = false; ///< repeat on every attempt (default: fire once)
};

/// Parse ACSTAB_FAULT_INJECT; empty/unset -> no directives. Throws
/// analysis_error on malformed directives or unknown kinds (a typo'd
/// injection silently not firing would invalidate the chaos test that
/// set it).
[[nodiscard]] std::vector<fault_directive> parse_fault_env();

/// Fire-once bookkeeping: creating the marker file with O_EXCL succeeds
/// exactly once per directory, across processes and resumes.
[[nodiscard]] bool try_fire_marker(const std::string& dir, const char* kind,
                                   std::size_t arg);

/// EINTR-safe nanosleep (stall directives).
void fault_sleep(real seconds);

} // namespace acstab::farm

#endif // ACSTAB_FARM_FAULT_INJECT_H
