// Per-shard campaign executor and deterministic merge.
//
// run_shard() executes one contiguous slice of a campaign's grid points
// through the regular analysis stack (core::stability_analyzer over
// engine::sweep_engine, adaptive sweep included) and emits one
// index-slotted record per point. Records carry the machine-readable
// per-point frequency response — not just the summary table — because
// downstream model-free estimation (Cooman et al.) consumes the raw
// responses. merge_shards() reassembles shard documents into one report
// whose bytes are identical to the single-process run: records are
// keyed by global index, numbers round-trip exactly through the JSON
// layer, and coverage is verified (every index exactly once).
#ifndef ACSTAB_FARM_EXECUTOR_H
#define ACSTAB_FARM_EXECUTOR_H

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/sweeps.h"
#include "farm/campaign.h"
#include "farm/json.h"

namespace acstab::farm {

/// Schema tags shared by shard documents and merged campaign reports.
inline constexpr const char* shard_schema = "acstab-farm-shard-v1";
inline constexpr const char* report_schema = "acstab-farm-report-v1";

/// Impedance-campaign summary and raw samples of one grid point (present
/// when the campaign's analysis kind is impedance and the point is ok).
/// The raw minor-loop gain is stored as parallel re/im arrays so the
/// Nyquist locus can be reconstructed exactly from the report.
struct impedance_point_summary {
    bool stable = false;
    int encirclements = 0;
    real nyquist_margin = 0.0;
    real nyquist_margin_freq_hz = 0.0;
    bool has_unity_crossing = false;
    real phase_margin_deg = 0.0;
    bool has_phase_crossing = false;
    real gain_margin_db = 0.0;
    std::vector<real> freq_hz;
    std::vector<real> lm_re;
    std::vector<real> lm_im;
};

/// Transient-campaign summary of one grid point (present when the
/// campaign's analysis kind is transient and the point is ok): the
/// step-response verdict, the second-order read-back (damping +
/// equivalent phase margin, the paper's Fig. 2 cross-check against the
/// AC verdict) and a decimated waveform so record size stays bounded
/// regardless of the timestep.
struct transient_point_summary {
    bool stable = false;
    bool ringing = false;
    real overshoot_pct = 0.0;
    real ringing_freq_hz = 0.0;
    real settling_time_s = 0.0;
    real final_value = 0.0;
    real zeta = 0.0;        ///< from overshoot inversion / log decrement
    real equiv_pm_deg = 0.0; ///< min(100 * zeta, 90), the AC analyzer's mapping
    std::vector<real> time_s; ///< decimated step response
    std::vector<real> value;
};

/// One grid point's serialized outcome.
struct point_record {
    std::size_t index = 0; ///< stable global grid index
    core::grid_point point;
    core::point_status status = core::point_status::ok;
    std::string error;

    // Stability-campaign summary (meaningful when status == ok).
    bool has_peak = false;
    real fn_hz = 0.0;
    real peak = 0.0;
    real zeta = 0.0;
    real phase_margin_deg = 0.0;
    real overshoot_pct = 0.0;

    /// Raw response record: the watched node's |Z(j 2 pi f)| samples.
    std::vector<real> freq_hz;
    std::vector<real> magnitude;

    /// Impedance-campaign payload (replaces the stability summary).
    std::optional<impedance_point_summary> impedance;

    /// Transient-campaign payload (replaces the stability summary).
    std::optional<transient_point_summary> transient;
};

/// Execute shard `shard` of `shard_count` (points from shard_slice) with
/// `threads` point-level workers (0 = all cores; per-point analysis is
/// serial either way, so results do not depend on the thread count).
[[nodiscard]] std::vector<point_record> run_shard(const campaign_spec& spec,
                                                  std::size_t shard, std::size_t shard_count,
                                                  std::size_t threads = 1);

/// One-point-at-a-time executor for the work-stealing farm workers: each
/// call runs a single grid point serially and returns its record. Records
/// are byte-identical (after point_record_to_json) to what run_shard
/// produces for the same point — per-point analysis is independent and
/// deterministic — which is the foundation of the orchestrator's
/// retries-are-byte-safe and merge-byte-identity guarantees.
class point_runner {
public:
    explicit point_runner(campaign_spec spec);
    [[nodiscard]] point_record run(std::size_t index) const;
    [[nodiscard]] const campaign_spec& spec() const noexcept { return spec_; }

private:
    campaign_spec spec_;
    core::circuit_template tmpl_;
};

/// Canonical JSON form of one point record (the byte layout shard
/// documents, JSONL shard streams and merged reports all share).
[[nodiscard]] json_value point_record_to_json(const point_record& rec);
[[nodiscard]] point_record point_record_from_json(const json_value& obj);

/// Shard result document: campaign echo + slice + records.
[[nodiscard]] json_value shard_to_json(const campaign_spec& spec, std::size_t shard,
                                       std::size_t shard_count,
                                       const std::vector<point_record>& records);

/// Parse one shard document's records (validates the schema field).
[[nodiscard]] std::vector<point_record> records_from_json(const json_value& shard_doc);

/// Merge shard documents into the campaign report. Verifies that every
/// shard echoes the same campaign spec and that the records cover every
/// grid index exactly once; output records are ordered by global index,
/// making the report byte-identical to a single-process run's.
[[nodiscard]] json_value merge_shards(const campaign_spec& spec,
                                      const std::vector<json_value>& shard_docs);

/// Human-readable table of a merged report (label, fn, peak, zeta, PM;
/// failed points print their status).
[[nodiscard]] std::string format_report(const json_value& report);

} // namespace acstab::farm

#endif // ACSTAB_FARM_EXECUTOR_H
