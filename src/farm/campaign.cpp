#include "farm/campaign.h"

#include "common/error.h"
#include "farm/json_convert.h"

namespace acstab::farm {

namespace {

    constexpr const char* campaign_schema = "acstab-farm-campaign-v1";

    const char* ordering_name(numeric::column_ordering o)
    {
        switch (o) {
        case numeric::column_ordering::none:
            return "none";
        case numeric::column_ordering::count:
            return "count";
        case numeric::column_ordering::amd:
            return "amd";
        case numeric::column_ordering::amd_approx:
            return "amd-approx";
        }
        return "amd-approx";
    }

    numeric::column_ordering ordering_from_name(const std::string& name)
    {
        if (name == "none")
            return numeric::column_ordering::none;
        if (name == "count")
            return numeric::column_ordering::count;
        if (name == "amd")
            return numeric::column_ordering::amd;
        if (name == "amd-approx")
            return numeric::column_ordering::amd_approx;
        throw analysis_error("farm: unknown column ordering '" + name
                             + "' (amd-approx | amd | count | none)");
    }

} // namespace

core::stability_options campaign_spec::stability_options(std::size_t threads) const
{
    core::stability_options opt;
    opt.sweep.fstart = fstart;
    opt.sweep.fstop = fstop;
    opt.sweep.points_per_decade = points_per_decade;
    opt.adaptive = adaptive;
    opt.fit_tol = fit_tol;
    opt.anchors_per_decade = anchors_per_decade;
    opt.tuning = tuning;
    opt.threads = threads;
    return opt;
}

analysis::impedance_options campaign_spec::impedance_options(std::size_t threads) const
{
    analysis::impedance_options opt;
    opt.fstart = fstart;
    opt.fstop = fstop;
    opt.points_per_decade = points_per_decade;
    opt.adaptive = adaptive;
    opt.fit_tol = fit_tol;
    opt.anchors_per_decade = anchors_per_decade;
    opt.source_elements = source_elements;
    opt.tuning = tuning;
    opt.threads = threads;
    return opt;
}

core::tran_stability_options campaign_spec::transient_options() const
{
    core::tran_stability_options opt;
    opt.source = tran_source;
    opt.step_size = tran_step;
    opt.tstop = tran_tstop;
    opt.dt = tran_dt;
    opt.tran.tuning.ordering = tuning.ordering;
    opt.tran.tuning.supernodal = tuning.supernodal;
    opt.tran.tuning.simd = tuning.simd;
    return opt;
}

json_value to_json(const campaign_spec& spec)
{
    json_value grid = json_value::object();
    grid.set("temps", reals_to_json(spec.grid.temps));
    json_value corners = json_value::array();
    for (const core::corner_def& c : spec.grid.corners) {
        json_value corner = json_value::object();
        corner.set("name", json_value::str(c.name));
        corner.set("overrides", overrides_to_json(c.overrides));
        corners.push_back(std::move(corner));
    }
    grid.set("corners", std::move(corners));
    json_value axes = json_value::array();
    for (const core::param_axis& a : spec.grid.axes) {
        json_value axis = json_value::object();
        axis.set("name", json_value::str(a.name));
        axis.set("values", reals_to_json(a.values));
        axes.push_back(std::move(axis));
    }
    grid.set("axes", std::move(axes));

    json_value doc = json_value::object();
    doc.set("schema", json_value::str(campaign_schema));
    doc.set("netlist", json_value::str(spec.netlist));
    doc.set("node", json_value::str(spec.node));
    // Stability campaigns omit the analysis member entirely: their plan
    // bytes stay identical to pre-impedance builds, so shard files from
    // older binaries still pass the merge step's byte-exact campaign
    // echo comparison.
    if (spec.analysis == campaign_analysis::impedance) {
        doc.set("analysis", json_value::str("impedance"));
        json_value sources = json_value::array();
        for (const std::string& name : spec.source_elements)
            sources.push_back(json_value::str(name));
        doc.set("source_elements", std::move(sources));
    } else if (spec.analysis == campaign_analysis::transient) {
        doc.set("analysis", json_value::str("transient"));
        json_value tran = json_value::object();
        tran.set("tstop", json_value::number(spec.tran_tstop));
        tran.set("dt", json_value::number(spec.tran_dt));
        tran.set("step", json_value::number(spec.tran_step));
        if (!spec.tran_source.empty())
            tran.set("source", json_value::str(spec.tran_source));
        doc.set("transient", std::move(tran));
    }
    doc.set("grid", std::move(grid));
    doc.set("points", json_value::number(spec.grid.size()));
    json_value sweep = json_value::object();
    sweep.set("fstart", json_value::number(spec.fstart));
    sweep.set("fstop", json_value::number(spec.fstop));
    sweep.set("points_per_decade", json_value::number(spec.points_per_decade));
    sweep.set("adaptive", json_value::boolean(spec.adaptive));
    sweep.set("fit_tol", json_value::number(spec.fit_tol));
    sweep.set("anchors_per_decade", json_value::number(spec.anchors_per_decade));
    // Solver tuning only appears when non-default (same byte-stability
    // contract as the analysis member above).
    const engine::solver_tuning default_tuning;
    if (spec.tuning.ordering != default_tuning.ordering)
        sweep.set("order", json_value::str(ordering_name(spec.tuning.ordering)));
    if (spec.tuning.simd != default_tuning.simd)
        sweep.set("simd", json_value::boolean(spec.tuning.simd));
    if (spec.tuning.warm_start != default_tuning.warm_start)
        sweep.set("warm", json_value::boolean(spec.tuning.warm_start));
    if (spec.tuning.supernodal != default_tuning.supernodal)
        sweep.set("supernodal", json_value::boolean(spec.tuning.supernodal));
    if (spec.tuning.warm_pipeline != default_tuning.warm_pipeline)
        sweep.set("warm_pipeline", json_value::boolean(spec.tuning.warm_pipeline));
    doc.set("sweep", std::move(sweep));
    return doc;
}

campaign_spec campaign_from_json(const json_value& doc)
{
    if (const json_value* schema = doc.find("schema");
        schema == nullptr || schema->as_string() != campaign_schema)
        throw analysis_error("farm: not an acstab campaign plan (bad schema field)");

    campaign_spec spec;
    spec.netlist = doc.at("netlist").as_string();
    spec.node = doc.at("node").as_string();
    // Plans from builds predating impedance campaigns carry no analysis
    // field; they are stability campaigns.
    if (const json_value* kind = doc.find("analysis")) {
        if (kind->as_string() == "impedance")
            spec.analysis = campaign_analysis::impedance;
        else if (kind->as_string() == "transient")
            spec.analysis = campaign_analysis::transient;
        else if (kind->as_string() != "stability")
            throw analysis_error("farm: unknown campaign analysis kind '"
                                 + kind->as_string() + "'");
    }
    if (const json_value* sources = doc.find("source_elements"))
        for (const json_value& name : sources->items())
            spec.source_elements.push_back(name.as_string());
    if (spec.analysis == campaign_analysis::transient) {
        const json_value& tran = doc.at("transient");
        spec.tran_tstop = tran.at("tstop").as_number();
        spec.tran_dt = tran.at("dt").as_number();
        spec.tran_step = tran.at("step").as_number();
        if (const json_value* src = tran.find("source"))
            spec.tran_source = src->as_string();
    }

    const json_value& grid = doc.at("grid");
    spec.grid.temps = reals_from_json(grid.at("temps"));
    for (const json_value& c : grid.at("corners").items())
        spec.grid.corners.push_back(
            {c.at("name").as_string(), overrides_from_json(c.at("overrides"))});
    for (const json_value& a : grid.at("axes").items())
        spec.grid.axes.push_back({a.at("name").as_string(), reals_from_json(a.at("values"))});

    const json_value& sweep = doc.at("sweep");
    spec.fstart = sweep.at("fstart").as_number();
    spec.fstop = sweep.at("fstop").as_number();
    spec.points_per_decade = sweep.at("points_per_decade").as_index();
    spec.adaptive = sweep.at("adaptive").as_bool();
    spec.fit_tol = sweep.at("fit_tol").as_number();
    spec.anchors_per_decade = sweep.at("anchors_per_decade").as_index();
    if (const json_value* order = sweep.find("order"))
        spec.tuning.ordering = ordering_from_name(order->as_string());
    if (const json_value* simd = sweep.find("simd"))
        spec.tuning.simd = simd->as_bool();
    if (const json_value* warm = sweep.find("warm"))
        spec.tuning.warm_start = warm->as_bool();
    if (const json_value* sn = sweep.find("supernodal"))
        spec.tuning.supernodal = sn->as_bool();
    if (const json_value* wp = sweep.find("warm_pipeline"))
        spec.tuning.warm_pipeline = wp->as_bool();

    // The recorded point count guards against grid-decoding drift between
    // the planning and executing binaries.
    if (doc.at("points").as_index() != spec.grid.size())
        throw analysis_error("farm: plan's point count disagrees with its grid");
    return spec;
}

shard_range shard_slice(std::size_t total, std::size_t shard, std::size_t shard_count)
{
    if (shard_count == 0)
        throw analysis_error("farm: shard count must be >= 1");
    if (shard >= shard_count)
        throw analysis_error("farm: shard index " + std::to_string(shard)
                             + " out of range for " + std::to_string(shard_count)
                             + " shards");
    const std::size_t base = total / shard_count;
    const std::size_t extra = total % shard_count;
    shard_range r;
    r.begin = shard * base + std::min(shard, extra);
    r.end = r.begin + base + (shard < extra ? 1 : 0);
    return r;
}

} // namespace acstab::farm
