// Fault-tolerant farm orchestrator: `acstab farm exec`.
//
// exec_campaign() self-spawns N worker processes (the tool binary's
// internal `farm worker` mode) and feeds them grid points by dynamic
// work-stealing: workers lease SMALL contiguous index ranges from the
// orchestrator as they go idle, instead of receiving fixed contiguous
// slices up front — adaptive points have wildly uneven cost, and a fixed
// partition strands the whole campaign behind its slowest shard. The
// resulting merged report is nevertheless byte-identical to the legacy
// single-process path because records are slotted by stable global index
// and every per-point analysis is serial and deterministic.
//
// Fault model (per point):
//   * worker crash (any signal/exit) -> the in-flight point is retried
//     with exponential backoff; the untouched remainder of its lease is
//     requeued with no penalty; a replacement worker is spawned with a
//     FRESH shard file (a dead worker's file may end in a truncated
//     record and must never be appended again);
//   * wall-clock timeout on one point -> the worker is killed and the
//     point handled as a crash;
//   * retry budget exhausted -> the point is quarantined: its error text
//     is recorded and a placeholder record (status "quarantined") is
//     merged into the report instead of aborting the campaign;
//   * SIGINT/SIGTERM (the CLI sets `interrupt`) -> workers are stopped,
//     the journal records the interruption, and `--resume` re-leases
//     only unfinished/quarantined points (finished records are read back
//     from the crash-safe shard streams).
//
// The journal (workdir/journal.jsonl) is an append-only audit log:
// header written atomically (temp + rename), one flushed JSONL event per
// lease/completion/failure/quarantine. The authoritative completed-point
// set for resume is the shard streams themselves, so losing journal
// events can at worst repeat work, never corrupt results.
//
// Deterministic fault injection for tests rides on ACSTAB_FAULT_INJECT
// (comma-separated directives):
//   crash:<idx>            worker SIGKILLs itself before running <idx>
//   stall:<idx>[:<s>]      worker sleeps <s> (default 30) before <idx>
//   interrupt:<n>          orchestrator behaves as if SIGINT arrived
//                          after the n-th completed point
// Each directive fires once per workdir (an O_CREAT|O_EXCL marker file
// records the firing) unless suffixed ":always", so the retry of an
// injected fault succeeds and the campaign still converges to the
// byte-identical report.
#ifndef ACSTAB_FARM_ORCHESTRATOR_H
#define ACSTAB_FARM_ORCHESTRATOR_H

#include <csignal>
#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "farm/campaign.h"

namespace acstab::farm {

struct exec_options {
    std::size_t workers = 2;      ///< worker processes to keep alive
    std::string workdir;          ///< journal + shard streams (required)
    std::string out;              ///< merged report path (required)
    std::string plan_path;        ///< plan file workers re-read (required)
    bool resume = false;          ///< continue an interrupted campaign
    real point_timeout_s = 300.0; ///< per-point wall-clock budget
    std::size_t max_attempts = 3; ///< attempts before quarantine
    real backoff_s = 0.25;        ///< retry backoff base (doubles per attempt)
    /// Worker binary; empty = this process's own executable
    /// (/proc/self/exe). Tests point it at the real tool binary.
    std::string tool_path;
    /// CLI's SIGINT/SIGTERM flag; polled every loop iteration (nullptr =
    /// not interruptible from outside).
    const volatile std::sig_atomic_t* interrupt = nullptr;
    /// Cooperative cancellation hook polled alongside `interrupt`;
    /// returning true stops the campaign exactly like SIGINT (workers
    /// killed, on-disk state stays resumable). The serve daemon points
    /// this at the request's cancel flag so a client disconnect or
    /// deadline reaps exactly that request's workers.
    std::function<bool()> cancelled;
    /// Streamed per completed point: the global index plus the exact
    /// record line appended to the shard stream (canonical
    /// point_record_to_json bytes, durable before this fires). Called
    /// from inside the orchestrator loop; must not throw. Points
    /// recovered from shard streams by --resume are NOT replayed.
    std::function<void(std::size_t index, const std::string& record_json)> on_point;
    bool verbose = true; ///< per-point progress lines on stdout
};

struct exec_summary {
    std::size_t total = 0;
    std::size_t completed = 0; ///< points with a real record
    /// Quarantined points and their recorded error text, index-sorted.
    std::vector<std::pair<std::size_t, std::string>> quarantined;
    bool interrupted = false; ///< stopped early; resumable
};

/// Run (or resume) a campaign under the fault-tolerant orchestrator and
/// merge the report to opt.out. Throws analysis_error on setup/config
/// errors; worker-level failures are retried/quarantined, not thrown.
exec_summary exec_campaign(const campaign_spec& spec, const exec_options& opt);

/// Worker-process entry point (`acstab farm worker`, spawned by
/// exec_campaign): read "L <begin> <end>" leases on stdin, run each point
/// serially, append its record to the shard stream (durably, BEFORE
/// acknowledging), answer "P <idx>" per point and "D <begin> <end>" per
/// lease on stdout; exit 0 on stdin EOF.
int run_worker(const campaign_spec& spec, const std::string& shard_path,
               std::size_t worker_id);

} // namespace acstab::farm

#endif // ACSTAB_FARM_ORCHESTRATOR_H
