// Corner-farm campaign planning: a serializable description of "analyze
// this node of this netlist at every point of this TEMP x corner x
// .param grid" (the paper's computer-farm run capability).
//
// The spec is the unit of distribution. `acstab farm plan` writes it
// once; every shard process reads the SAME spec, derives its contiguous
// slice of global point indices from --shard k/N, and executes
// independently; the merge step reassembles slotted records. Nothing in
// the spec is machine-specific (thread counts live on the run command),
// so a plan file is valid on any host that can read the netlist.
#ifndef ACSTAB_FARM_CAMPAIGN_H
#define ACSTAB_FARM_CAMPAIGN_H

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/impedance.h"
#include "core/analyzer.h"
#include "core/param_grid.h"
#include "core/tran_stability.h"
#include "farm/json.h"

namespace acstab::farm {

/// What each grid point runs: the paper's stability-plot analysis, the
/// Nyquist-like impedance-partition criterion at the same node, or the
/// time-domain step-response cross-check (paper Fig. 2).
enum class campaign_analysis { stability, impedance, transient };

struct campaign_spec {
    /// Netlist path as given to `farm plan`; shard processes re-read it,
    /// so it must resolve on every farm machine (relative to the shared
    /// working directory, or absolute on a shared filesystem).
    std::string netlist;
    /// The watched node (single-node analysis per grid point); for
    /// impedance campaigns, the partition node.
    std::string node;
    campaign_analysis analysis = campaign_analysis::stability;
    /// Elements forced onto the impedance partition's source side
    /// (ignored by stability campaigns).
    std::vector<std::string> source_elements;
    core::param_grid grid;

    // Transient-campaign settings (serialized only for transient
    // campaigns, so stability/impedance plan bytes are untouched).
    real tran_tstop = 0.0;       ///< step-response record length (required)
    real tran_dt = 0.0;          ///< nominal step; 0 selects tstop / 4000
    real tran_step = 0.01;       ///< step amplitude (V on a source, A injected)
    /// Element pulsed per point; empty injects a current step into the
    /// watched node (works on netlists with no source at all).
    std::string tran_source;

    // Frequency-sweep and analysis settings, mirrored from
    // core::stability_options so every shard analyzes identically.
    real fstart = 1e3;
    real fstop = 1e9;
    std::size_t points_per_decade = 40;
    bool adaptive = false;
    real fit_tol = 1e-6;
    std::size_t anchors_per_decade = 4;
    /// Sparse-solver tuning (column ordering / SIMD kernel / warm start),
    /// pinned by the plan so every shard solves identically. Serialized
    /// only when it differs from the defaults, so plans that do not touch
    /// it keep their pre-tuning bytes.
    engine::solver_tuning tuning;

    /// The per-point analysis options this spec pins down. `threads` is
    /// the executor's machine-local point-level parallelism; it does not
    /// affect results (points are slotted by index).
    [[nodiscard]] core::stability_options stability_options(std::size_t threads) const;
    /// The impedance-campaign equivalent (same sweep/adaptive settings).
    [[nodiscard]] analysis::impedance_options impedance_options(std::size_t threads) const;
    /// The transient-campaign equivalent (step stimulus + the plan's
    /// solver tuning routed into the shared transient solver). Points are
    /// single-threaded inside; the executor parallelizes across points.
    [[nodiscard]] core::tran_stability_options transient_options() const;
};

/// Spec <-> JSON (the plan file). Round trips exactly: numbers use the
/// shortest round-trip form and map-valued fields serialize name-sorted.
[[nodiscard]] json_value to_json(const campaign_spec& spec);
[[nodiscard]] campaign_spec campaign_from_json(const json_value& doc);

/// Contiguous slice of global point indices [begin, end) owned by shard
/// `shard` (0-based) of `shard_count`. Every point lands in exactly one
/// shard; earlier shards take the remainder, so sizes differ by at most
/// one. Throws analysis_error on shard >= shard_count or shard_count == 0.
struct shard_range {
    std::size_t begin = 0;
    std::size_t end = 0;
};
[[nodiscard]] shard_range shard_slice(std::size_t total, std::size_t shard,
                                      std::size_t shard_count);

} // namespace acstab::farm

#endif // ACSTAB_FARM_CAMPAIGN_H
