// Shared JSON conversions for farm documents. campaign.cpp and
// executor.cpp must serialize these types IDENTICALLY forever — the
// merge step compares campaign echoes byte for byte — so the conversions
// live here once instead of drifting apart as private copies.
#ifndef ACSTAB_FARM_JSON_CONVERT_H
#define ACSTAB_FARM_JSON_CONVERT_H

#include <algorithm>
#include <string>
#include <vector>

#include "farm/json.h"
#include "spice/parser/expression.h"

namespace acstab::farm {

/// parameter_table -> object with name-sorted members (the table is
/// hash-ordered; sorting makes the bytes deterministic).
[[nodiscard]] inline json_value overrides_to_json(const spice::parameter_table& table)
{
    std::vector<std::string> names;
    names.reserve(table.size());
    for (const auto& [name, v] : table)
        names.push_back(name);
    std::sort(names.begin(), names.end());
    json_value obj = json_value::object();
    for (const std::string& name : names)
        obj.set(name, json_value::number(table.at(name)));
    return obj;
}

[[nodiscard]] inline spice::parameter_table overrides_from_json(const json_value& obj)
{
    spice::parameter_table table;
    for (const auto& [name, v] : obj.members())
        table[name] = v.as_number();
    return table;
}

[[nodiscard]] inline json_value reals_to_json(const std::vector<real>& values)
{
    json_value arr = json_value::array();
    for (const real v : values)
        arr.push_back(json_value::number(v));
    return arr;
}

[[nodiscard]] inline std::vector<real> reals_from_json(const json_value& arr)
{
    std::vector<real> out;
    out.reserve(arr.items().size());
    for (const json_value& v : arr.items())
        out.push_back(v.as_number());
    return out;
}

} // namespace acstab::farm

#endif // ACSTAB_FARM_JSON_CONVERT_H
