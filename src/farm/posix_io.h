// EINTR-safe POSIX I/O helpers shared by the farm orchestrator and the
// serve daemon.
//
// Every pipe and socket write in the long-lived paths must survive two
// things the default C library behavior does not: signal interruption
// (EINTR, including partial writes) and a peer that died mid-transfer
// (SIGPIPE's default disposition kills the writing PROCESS — a dead
// worker or client must never take down the orchestrator or the server).
// Callers pair these helpers with ignore_sigpipe() so a broken pipe
// surfaces as a plain EPIPE errno they can handle per-peer.
#ifndef ACSTAB_FARM_POSIX_IO_H
#define ACSTAB_FARM_POSIX_IO_H

#include <cerrno>
#include <csignal>
#include <cstddef>

#include <fcntl.h>
#include <unistd.h>

namespace acstab::farm {

/// Ignore SIGPIPE process-wide (idempotent). A worker or client dying
/// mid-write then yields EPIPE from write(), which the per-peer error
/// handling absorbs, instead of killing the whole process.
inline void ignore_sigpipe()
{
    struct sigaction sa {};
    sa.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &sa, nullptr);
}

/// write() the whole buffer, retrying EINTR and short writes. Returns
/// false on any other error (errno preserved); EPIPE here means the
/// peer is gone, not a reason to die.
[[nodiscard]] inline bool write_fully(int fd, const void* data, std::size_t len)
{
    const char* p = static_cast<const char*>(data);
    while (len > 0) {
        const ssize_t n = ::write(fd, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

/// read() retrying EINTR; other outcomes (including EAGAIN on
/// non-blocking fds and 0 = EOF) pass through to the caller.
[[nodiscard]] inline ssize_t read_retry(int fd, void* buf, std::size_t len)
{
    while (true) {
        const ssize_t n = ::read(fd, buf, len);
        if (n < 0 && errno == EINTR)
            continue;
        return n;
    }
}

/// Keep parent-held fds out of forked worker processes.
inline void set_cloexec(int fd)
{
    const int flags = ::fcntl(fd, F_GETFD);
    if (flags >= 0)
        ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

/// Non-blocking mode for the server's event loop fds.
[[nodiscard]] inline bool set_nonblock(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

} // namespace acstab::farm

#endif // ACSTAB_FARM_POSIX_IO_H
