#include "farm/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/error.h"

namespace acstab::farm {

json_value json_value::boolean(bool b)
{
    json_value v;
    v.kind_ = kind::boolean;
    v.bool_ = b;
    return v;
}

json_value json_value::number(real x)
{
    json_value v;
    v.kind_ = kind::number;
    v.number_ = x;
    return v;
}

json_value json_value::number(std::size_t x)
{
    return number(static_cast<real>(x));
}

json_value json_value::str(std::string s)
{
    json_value v;
    v.kind_ = kind::string;
    v.string_ = std::move(s);
    return v;
}

json_value json_value::array()
{
    json_value v;
    v.kind_ = kind::array;
    return v;
}

json_value json_value::object()
{
    json_value v;
    v.kind_ = kind::object;
    return v;
}

void json_value::push_back(json_value v)
{
    if (kind_ != kind::array)
        throw analysis_error("json: push_back on a non-array");
    items_.push_back(std::move(v));
}

void json_value::set(std::string key, json_value v)
{
    if (kind_ != kind::object)
        throw analysis_error("json: set on a non-object");
    for (auto& [k, existing] : members_) {
        if (k == key) {
            existing = std::move(v);
            return;
        }
    }
    members_.emplace_back(std::move(key), std::move(v));
}

bool json_value::as_bool() const
{
    if (kind_ != kind::boolean)
        throw analysis_error("json: value is not a boolean");
    return bool_;
}

real json_value::as_number() const
{
    // Non-finite numbers are serialized as the strings "nan"/"inf"/"-inf"
    // (valid JSON, unlike bare nan/inf tokens); accept exactly those
    // spellings back so parsed documents keep their string kind — and
    // their bytes — while numeric consumers see the value.
    if (kind_ == kind::string) {
        if (string_ == "nan")
            return std::nan("");
        if (string_ == "inf")
            return std::numeric_limits<real>::infinity();
        if (string_ == "-inf")
            return -std::numeric_limits<real>::infinity();
        throw analysis_error("json: value is not a number");
    }
    if (kind_ != kind::number)
        throw analysis_error("json: value is not a number");
    return number_;
}

std::size_t json_value::as_index() const
{
    const real v = as_number();
    if (!(v >= 0.0) || v != std::floor(v) || v > 9.007199254740992e15)
        throw analysis_error("json: value is not a non-negative integer");
    return static_cast<std::size_t>(v);
}

const std::string& json_value::as_string() const
{
    if (kind_ != kind::string)
        throw analysis_error("json: value is not a string");
    return string_;
}

const std::vector<json_value>& json_value::items() const
{
    if (kind_ != kind::array)
        throw analysis_error("json: value is not an array");
    return items_;
}

const std::vector<std::pair<std::string, json_value>>& json_value::members() const
{
    if (kind_ != kind::object)
        throw analysis_error("json: value is not an object");
    return members_;
}

const json_value* json_value::find(std::string_view key) const
{
    if (kind_ != kind::object)
        return nullptr;
    for (const auto& [k, v] : members_)
        if (k == key)
            return &v;
    return nullptr;
}

const json_value& json_value::at(std::string_view key) const
{
    if (const json_value* v = find(key); v != nullptr)
        return *v;
    throw analysis_error("json: missing member '" + std::string(key) + "'");
}

namespace {

    void dump_string(const std::string& s, std::string& out)
    {
        out.push_back('"');
        for (const char c : s) {
            const auto u = static_cast<unsigned char>(c);
            switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (u < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", u);
                    out += buf;
                } else {
                    out.push_back(c);
                }
            }
        }
        out.push_back('"');
    }

    void dump_number(real v, std::string& out)
    {
        // Non-finite values have no JSON number spelling; bare nan/inf
        // tokens (what to_chars emits) break every standard consumer
        // (jq, Python json, ...). Encode them as the canonical strings
        // instead; as_number() and the parser accept both forms.
        if (!std::isfinite(v)) {
            out += std::isnan(v) ? "\"nan\"" : (v > 0.0 ? "\"inf\"" : "\"-inf\"");
            return;
        }
        // Shortest round-trip form: value -> text -> value is exact, and
        // the same value always produces the same bytes.
        char buf[40];
        const std::to_chars_result r = std::to_chars(buf, buf + sizeof buf, v);
        out.append(buf, r.ptr);
    }

} // namespace

void json_value::dump_into(std::string& out) const
{
    switch (kind_) {
    case kind::null:
        out += "null";
        return;
    case kind::boolean:
        out += bool_ ? "true" : "false";
        return;
    case kind::number:
        dump_number(number_, out);
        return;
    case kind::string:
        dump_string(string_, out);
        return;
    case kind::array:
        out.push_back('[');
        for (std::size_t i = 0; i < items_.size(); ++i) {
            if (i != 0)
                out.push_back(',');
            items_[i].dump_into(out);
        }
        out.push_back(']');
        return;
    case kind::object:
        out.push_back('{');
        for (std::size_t i = 0; i < members_.size(); ++i) {
            if (i != 0)
                out.push_back(',');
            dump_string(members_[i].first, out);
            out.push_back(':');
            members_[i].second.dump_into(out);
        }
        out.push_back('}');
        return;
    }
}

std::string json_value::dump() const
{
    std::string out;
    dump_into(out);
    return out;
}

namespace {

    class json_parser {
    public:
        explicit json_parser(std::string_view text) : text_(text) {}

        [[nodiscard]] json_value run()
        {
            json_value v = parse_value();
            skip_ws();
            if (pos_ != text_.size())
                fail("trailing characters after the document");
            return v;
        }

    private:
        [[noreturn]] void fail(const std::string& what) const
        {
            throw parse_error("json: " + what + " at offset " + std::to_string(pos_));
        }

        void skip_ws()
        {
            while (pos_ < text_.size()) {
                const char c = text_[pos_];
                if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                    break;
                ++pos_;
            }
        }

        [[nodiscard]] char peek()
        {
            if (pos_ >= text_.size())
                fail("unexpected end of input");
            return text_[pos_];
        }

        bool consume_literal(std::string_view lit)
        {
            if (text_.substr(pos_, lit.size()) != lit)
                return false;
            pos_ += lit.size();
            return true;
        }

        /// Containers beyond this nesting depth fail with parse_error
        /// instead of overflowing the stack (farm documents nest ~4 deep;
        /// anything near the limit is corrupt or hostile input).
        static constexpr int max_depth = 128;

        [[nodiscard]] json_value parse_value()
        {
            skip_ws();
            const char c = peek();
            if (c == '{' || c == '[') {
                if (depth_ >= max_depth)
                    fail("nesting too deep");
                ++depth_;
                json_value v = c == '{' ? parse_object() : parse_array();
                --depth_;
                return v;
            }
            if (c == '"')
                return json_value::str(parse_string());
            if (consume_literal("null"))
                return json_value{};
            if (consume_literal("true"))
                return json_value::boolean(true);
            if (consume_literal("false"))
                return json_value::boolean(false);
            return parse_number();
        }

        [[nodiscard]] json_value parse_object()
        {
            ++pos_; // '{'
            json_value obj = json_value::object();
            skip_ws();
            if (peek() == '}') {
                ++pos_;
                return obj;
            }
            while (true) {
                skip_ws();
                if (peek() != '"')
                    fail("expected a member name");
                std::string key = parse_string();
                skip_ws();
                if (peek() != ':')
                    fail("expected ':'");
                ++pos_;
                obj.set(std::move(key), parse_value());
                skip_ws();
                const char c = peek();
                if (c == ',') {
                    ++pos_;
                    continue;
                }
                if (c == '}') {
                    ++pos_;
                    return obj;
                }
                fail("expected ',' or '}'");
            }
        }

        [[nodiscard]] json_value parse_array()
        {
            ++pos_; // '['
            json_value arr = json_value::array();
            skip_ws();
            if (peek() == ']') {
                ++pos_;
                return arr;
            }
            while (true) {
                arr.push_back(parse_value());
                skip_ws();
                const char c = peek();
                if (c == ',') {
                    ++pos_;
                    continue;
                }
                if (c == ']') {
                    ++pos_;
                    return arr;
                }
                fail("expected ',' or ']'");
            }
        }

        [[nodiscard]] std::string parse_string()
        {
            ++pos_; // '"'
            std::string out;
            while (true) {
                if (pos_ >= text_.size())
                    fail("unterminated string");
                const char c = text_[pos_++];
                if (c == '"')
                    return out;
                if (c != '\\') {
                    out.push_back(c);
                    continue;
                }
                if (pos_ >= text_.size())
                    fail("unterminated escape");
                const char e = text_[pos_++];
                switch (e) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    if (pos_ + 4 > text_.size())
                        fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int k = 0; k < 4; ++k) {
                        const char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            fail("bad \\u escape digit");
                    }
                    // Encode as UTF-8 (the serializer only ever emits
                    // \u00xx control escapes, but accept the full BMP).
                    if (code < 0x80) {
                        out.push_back(static_cast<char>(code));
                    } else if (code < 0x800) {
                        out.push_back(static_cast<char>(0xc0 | (code >> 6)));
                        out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
                    } else {
                        out.push_back(static_cast<char>(0xe0 | (code >> 12)));
                        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
                        out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
                    }
                    break;
                }
                default: fail("unknown escape");
                }
            }
        }

        [[nodiscard]] json_value parse_number()
        {
            // Bare non-finite tokens: not valid JSON, but older acstab
            // builds dumped them via to_chars; keep reading those files.
            // (The serializer now emits the strings "nan"/"inf"/"-inf".)
            if (consume_literal("nan"))
                return json_value::number(std::nan(""));
            if (consume_literal("inf"))
                return json_value::number(std::numeric_limits<real>::infinity());
            if (consume_literal("-inf"))
                return json_value::number(-std::numeric_limits<real>::infinity());
            real v = 0.0;
            const char* begin = text_.data() + pos_;
            const char* end = text_.data() + text_.size();
            const std::from_chars_result r = std::from_chars(begin, end, v);
            if (r.ec != std::errc{} || r.ptr == begin)
                fail("malformed number");
            pos_ = static_cast<std::size_t>(r.ptr - text_.data());
            return json_value::number(v);
        }

        std::string_view text_;
        std::size_t pos_ = 0;
        int depth_ = 0;
    };

} // namespace

json_value json_value::parse(std::string_view text)
{
    return json_parser(text).run();
}

} // namespace acstab::farm
