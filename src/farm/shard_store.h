// Crash-safe append-only shard store + streaming merge.
//
// The work-stealing farm cannot use the one-document-per-shard format of
// `farm run`: a worker that is killed mid-campaign must lose at most the
// record it was writing, and a million-point merge must not hold the
// whole report in memory. Shard STREAMS therefore are JSONL files —
// line 1 is a header object (schema + byte-exact campaign echo + worker
// id), every further line is one point record in the exact byte form
// `point_record_to_json(rec).dump()`. Records are append-only and
// record-atomic: each is written with a single fwrite of "record\n" and
// flushed before the point is acknowledged, so after SIGKILL the file is
// a valid prefix plus at most one truncated trailing line, which readers
// detect (missing trailing newline) and drop — the orchestrator simply
// re-runs that point, and because per-point analysis is deterministic
// the re-run is byte-safe.
//
// merge_shard_streams() is the O(1)-resident-records merge: a first pass
// scans every shard line by line recording only {point index -> file,
// byte offset, length}, then the report is emitted record by record in
// global index order by seeking back into the shards. Duplicate records
// for one index are legal iff byte-identical (a worker that died after
// appending but before acknowledging leaves one; the retry appends an
// identical copy); conflicting duplicates abort the merge. The emitted
// bytes are identical to the in-memory merge_shards() path.
#ifndef ACSTAB_FARM_SHARD_STORE_H
#define ACSTAB_FARM_SHARD_STORE_H

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "farm/executor.h"

namespace acstab::farm {

/// Schema tag on line 1 of every shard stream file.
inline constexpr const char* shard_stream_schema = "acstab-farm-shardstream-v1";

/// Append-only writer for one worker's shard stream. The header is
/// written (and flushed) on creation of a fresh file; append() performs
/// one fwrite + fflush per record, which is the record-atomicity
/// contract above. A file is owned by exactly one writer process for its
/// whole lifetime — respawned workers get a fresh file, never an append
/// handle to a dead worker's (its tail may be truncated).
class shard_writer {
public:
    shard_writer(const std::string& path, const campaign_spec& spec, std::size_t worker_id);
    ~shard_writer();
    shard_writer(const shard_writer&) = delete;
    shard_writer& operator=(const shard_writer&) = delete;

    /// Append one finished point record (single write + flush).
    void append(const point_record& rec);

    [[nodiscard]] const std::string& path() const noexcept { return path_; }

private:
    std::string path_;
    std::FILE* file_ = nullptr;
};

/// Location of one record line inside a scanned shard stream.
struct stream_record_ref {
    std::size_t point = 0;   ///< global grid index
    std::uint64_t offset = 0; ///< byte offset of the record line
    std::size_t length = 0;  ///< line length, excluding the '\n'
};

struct shard_stream_scan {
    std::vector<stream_record_ref> records;
    /// Bytes of a truncated trailing record that was dropped (0 = clean
    /// file). A non-zero value is the normal signature of a killed
    /// worker, not an error.
    std::size_t truncated_tail_bytes = 0;
};

/// Scan one shard stream: verify the header (schema + campaign echo
/// byte-equal to `spec_bytes`), locate every record line and its point
/// index, and drop a truncated trailing record. Corruption anywhere else
/// throws analysis_error with the file name, byte offset and a
/// what-to-do-next hint (satisfying "actionable, not a bare parse
/// failure"). Memory stays O(1 record).
[[nodiscard]] shard_stream_scan scan_shard_stream(const std::string& path,
                                                  const std::string& spec_bytes);

/// True when `path` starts with a shard-stream header (sniffs the first
/// bytes; used by `farm merge` to dispatch between document shards and
/// JSONL stream shards).
[[nodiscard]] bool is_shard_stream_file(const std::string& path);

struct stream_merge_result {
    std::size_t points = 0;
    /// Indices whose record came from `extra_records` (quarantined
    /// points synthesized by the orchestrator). An extra whose index
    /// already has a real shard record is ignored — a completed result
    /// always beats a quarantine placeholder.
    std::vector<std::size_t> extras_used;
};

/// Streaming merge of shard stream files (+ synthesized fallback records
/// for quarantined points) into the campaign report at `out_path`,
/// written atomically (temp file + rename; empty path = stdout). Bytes
/// are identical to merge_shards() on the same records. Coverage is
/// verified: every grid index exactly once, byte-identical duplicates
/// folded. Resident memory is O(1) records plus O(points) slot refs.
stream_merge_result merge_shard_streams(const campaign_spec& spec,
                                        const std::vector<std::string>& shard_paths,
                                        const std::vector<point_record>& extra_records,
                                        const std::string& out_path);

/// Parse a whole-document farm JSON file's text with an actionable
/// error: on malformed/truncated input, the analysis_error names the
/// file, the byte offset and the likely cause (crashed writer) plus the
/// --resume recovery hint instead of a bare parse failure.
[[nodiscard]] json_value parse_shard_document(const std::string& text,
                                              const std::string& name);

} // namespace acstab::farm

#endif // ACSTAB_FARM_SHARD_STORE_H
