#include "farm/shard_store.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include <unistd.h>

#include "common/error.h"

namespace acstab::farm {

namespace {

    [[nodiscard]] std::string errno_text()
    {
        return std::strerror(errno);
    }

    /// Corrupt-shard diagnostics must tell the operator what happened and
    /// what to do next, not just where the parser gave up.
    [[noreturn]] void throw_corrupt(const std::string& path, std::uint64_t offset,
                                    const std::string& detail)
    {
        throw analysis_error("farm: shard file '" + path + "' is corrupt at byte offset "
                             + std::to_string(offset) + " (" + detail
                             + "); the writing worker likely crashed mid-write — "
                               "delete this shard file and re-run with "
                               "'acstab farm exec --resume' to recompute its points");
    }

    /// Read `length` bytes at `offset` from an already-open shard file
    /// (used to byte-compare duplicate records without keeping either
    /// resident past the comparison).
    [[nodiscard]] std::string read_span(std::FILE* f, const std::string& path,
                                        std::uint64_t offset, std::size_t length)
    {
        std::string buf(length, '\0');
        if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0
            || std::fread(buf.data(), 1, length, f) != length)
            throw analysis_error("farm: short read from shard file '" + path
                                 + "' at byte offset " + std::to_string(offset)
                                 + " (file changed while merging?)");
        return buf;
    }

} // namespace

shard_writer::shard_writer(const std::string& path, const campaign_spec& spec,
                           std::size_t worker_id)
    : path_(path)
{
    file_ = std::fopen(path.c_str(), "ab");
    if (file_ == nullptr)
        throw analysis_error("farm: cannot open shard file '" + path
                             + "' for append: " + errno_text());
    // A fresh (empty) file gets the header line; an existing file keeps
    // its own — appending after a crash is the orchestrator's job to
    // forbid (it hands respawned workers fresh files), not ours.
    if (std::ftell(file_) == 0) {
        json_value header = json_value::object();
        header.set("schema", json_value::str(shard_stream_schema));
        header.set("campaign", to_json(spec));
        header.set("worker", json_value::number(worker_id));
        const std::string line = header.dump() + "\n";
        if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()
            || std::fflush(file_) != 0)
            throw analysis_error("farm: cannot write shard header to '" + path
                                 + "': " + errno_text());
    }
}

shard_writer::~shard_writer()
{
    if (file_ != nullptr)
        std::fclose(file_);
}

void shard_writer::append(const point_record& rec)
{
    // One fwrite for "record\n", then flush: after a SIGKILL the file
    // holds a valid prefix plus at most one newline-less tail, which
    // scan_shard_stream() drops.
    const std::string line = point_record_to_json(rec).dump() + "\n";
    if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()
        || std::fflush(file_) != 0)
        throw analysis_error("farm: cannot append record to shard file '" + path_
                             + "': " + errno_text());
}

shard_stream_scan scan_shard_stream(const std::string& path, const std::string& spec_bytes)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw analysis_error("farm: cannot open shard file '" + path + "'");

    shard_stream_scan scan;
    std::string line;
    std::uint64_t offset = 0;
    bool saw_header = false;
    while (std::getline(in, line)) {
        // getline() sets eofbit when the last line has no trailing
        // newline — exactly the signature of a record cut short by a
        // killed worker. Drop it; the point is simply not finished.
        if (in.eof()) {
            if (!saw_header)
                throw_corrupt(path, offset, "header line is truncated");
            scan.truncated_tail_bytes = line.size();
            break;
        }
        if (!saw_header) {
            json_value header;
            try {
                header = json_value::parse(line);
            } catch (const parse_error& e) {
                throw_corrupt(path, offset, e.what());
            }
            const json_value* schema = header.find("schema");
            if (schema == nullptr || schema->type() != json_value::kind::string
                || schema->as_string() != shard_stream_schema)
                throw analysis_error("farm: '" + path
                                     + "' is not an acstab shard stream (bad schema field)");
            if (!spec_bytes.empty() && header.at("campaign").dump() != spec_bytes)
                throw analysis_error("farm: shard file '" + path
                                     + "' was produced by a different campaign plan");
            saw_header = true;
        } else {
            json_value rec;
            try {
                rec = json_value::parse(line);
            } catch (const parse_error& e) {
                // Mid-file damage (every complete record line must parse;
                // only the very last line may be a crash casualty).
                throw_corrupt(path, offset, e.what());
            }
            const json_value* index = rec.find("index");
            if (index == nullptr)
                throw_corrupt(path, offset, "record has no index field");
            scan.records.push_back({index->as_index(), offset, line.size()});
        }
        offset += line.size() + 1;
        line.clear();
    }
    if (!saw_header && scan.truncated_tail_bytes == 0)
        throw analysis_error("farm: '" + path
                             + "' is not an acstab shard stream (empty file)");
    return scan;
}

bool is_shard_stream_file(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    // Cheap sniff: the canonical header starts with the schema member.
    const std::string magic = std::string("{\"schema\":\"") + shard_stream_schema + "\"";
    std::string head(magic.size(), '\0');
    in.read(head.data(), static_cast<std::streamsize>(head.size()));
    return static_cast<std::size_t>(in.gcount()) == magic.size() && head == magic;
}

stream_merge_result merge_shard_streams(const campaign_spec& spec,
                                        const std::vector<std::string>& shard_paths,
                                        const std::vector<point_record>& extra_records,
                                        const std::string& out_path)
{
    const std::size_t total = spec.grid.size();
    const std::string spec_bytes = to_json(spec).dump();

    // Pass 1: scan every shard, slotting (file, offset, length) per grid
    // index. Only refs are resident — O(points) small structs, O(1)
    // record bodies.
    struct slot_ref {
        std::size_t file = 0;
        std::uint64_t offset = 0;
        std::size_t length = 0;
        bool filled = false;
    };
    std::vector<slot_ref> slots(total);
    std::vector<std::FILE*> files;
    files.reserve(shard_paths.size());
    const auto close_all = [&files] {
        for (std::FILE* f : files)
            if (f != nullptr)
                std::fclose(f);
    };
    try {
        for (std::size_t fi = 0; fi < shard_paths.size(); ++fi) {
            const std::string& path = shard_paths[fi];
            const shard_stream_scan scan = scan_shard_stream(path, spec_bytes);
            std::FILE* f = std::fopen(path.c_str(), "rb");
            if (f == nullptr)
                throw analysis_error("farm: cannot open shard file '" + path + "'");
            files.push_back(f);
            for (const stream_record_ref& ref : scan.records) {
                if (ref.point >= total)
                    throw analysis_error("farm: shard file '" + path + "' has record index "
                                         + std::to_string(ref.point) + " outside the grid");
                slot_ref& slot = slots[ref.point];
                if (slot.filled) {
                    // A worker that died after appending but before its
                    // acknowledgment leaves a duplicate; the retried
                    // computation is deterministic, so the copies must be
                    // byte-identical. Anything else is a real conflict.
                    const std::string a = read_span(files[slot.file], shard_paths[slot.file],
                                                    slot.offset, slot.length);
                    const std::string b = read_span(f, path, ref.offset, ref.length);
                    if (a != b)
                        throw analysis_error(
                            "farm: conflicting records for point " + std::to_string(ref.point)
                            + " in '" + shard_paths[slot.file] + "' and '" + path
                            + "' (shards from different campaign runs mixed together?)");
                    continue;
                }
                slot = {fi, ref.offset, ref.length, true};
            }
        }
    } catch (...) {
        close_all();
        throw;
    }

    // Quarantined points ride as synthesized fallback records; a real
    // result (e.g. appended just before the worker's final crash) beats
    // its own quarantine placeholder.
    stream_merge_result result;
    std::vector<std::string> extra_bytes(total);
    for (const point_record& rec : extra_records) {
        if (rec.index >= total) {
            close_all();
            throw analysis_error("farm: extra record index " + std::to_string(rec.index)
                                 + " outside the grid");
        }
        if (slots[rec.index].filled)
            continue;
        extra_bytes[rec.index] = point_record_to_json(rec).dump();
        result.extras_used.push_back(rec.index);
    }

    std::size_t missing = 0;
    std::size_t first_missing = 0;
    for (std::size_t i = 0; i < total; ++i) {
        if (!slots[i].filled && extra_bytes[i].empty()) {
            if (missing == 0)
                first_missing = i;
            ++missing;
        }
    }
    if (missing != 0) {
        close_all();
        throw analysis_error("farm: merge is missing " + std::to_string(missing) + " of "
                             + std::to_string(total) + " points (first missing index "
                             + std::to_string(first_missing)
                             + "); re-run with 'acstab farm exec --resume' to finish them");
    }

    // Pass 2: emit the report record by record, one resident at a time.
    // Bytes match merge_shards(): same prefix, same record bytes (the
    // writer stored the canonical dump), same separators.
    const std::string tmp_path = out_path.empty() ? std::string() : out_path + ".tmp";
    std::FILE* out = out_path.empty() ? stdout : std::fopen(tmp_path.c_str(), "wb");
    if (out == nullptr) {
        close_all();
        throw analysis_error("farm: cannot write '" + tmp_path + "': " + errno_text());
    }
    const auto emit = [&](const std::string& text) {
        if (std::fwrite(text.data(), 1, text.size(), out) != text.size())
            throw analysis_error("farm: cannot write report: " + errno_text());
    };
    std::string prefix = "{\"schema\":\"";
    prefix += report_schema;
    prefix += "\",\"campaign\":";
    prefix += spec_bytes;
    prefix += ",\"points\":";
    prefix += json_value::number(total).dump();
    prefix += ",\"records\":[";
    try {
        emit(prefix);
        for (std::size_t i = 0; i < total; ++i) {
            if (i != 0)
                emit(",");
            if (slots[i].filled)
                emit(read_span(files[slots[i].file], shard_paths[slots[i].file],
                               slots[i].offset, slots[i].length));
            else
                emit(extra_bytes[i]);
        }
        emit("]}\n");
    } catch (...) {
        if (out != stdout) {
            std::fclose(out);
            std::remove(tmp_path.c_str());
        }
        close_all();
        throw;
    }
    close_all();
    if (out != stdout) {
        const bool flushed = std::fflush(out) == 0 && ::fsync(fileno(out)) == 0;
        std::fclose(out);
        if (!flushed || std::rename(tmp_path.c_str(), out_path.c_str()) != 0) {
            const std::string msg = errno_text();
            std::remove(tmp_path.c_str());
            throw analysis_error("farm: cannot finalize report '" + out_path + "': " + msg);
        }
    } else {
        std::fflush(out);
    }
    result.points = total;
    return result;
}

json_value parse_shard_document(const std::string& text, const std::string& name)
{
    try {
        return json_value::parse(text);
    } catch (const parse_error& e) {
        // parse_error already reports "at offset N"; prepend the file and
        // append the recovery route so the message stands on its own.
        throw analysis_error("farm: cannot parse '" + name + "': " + e.what()
                             + "; if this is a farm shard, the writing worker likely "
                               "crashed mid-write — re-run with 'acstab farm exec "
                               "--resume' (JSONL shards recover automatically)");
    }
}

} // namespace acstab::farm
