// Minimal JSON document model for the corner-farm subsystem.
//
// The farm's whole contract is byte-stable serialization: a merged
// campaign report must be byte-identical whether its points were
// computed in one process or reassembled from N shard files. That rules
// out printf-rounded doubles (not round-trip exact) and hash-ordered
// objects (iteration order varies). This model therefore:
//   * serializes numbers with std::to_chars shortest round-trip form, so
//     value -> text -> value is exact and text -> text is stable;
//   * keeps object members in insertion order (a vector of pairs, not a
//     map), so the producer controls the byte layout;
//   * dumps compactly with no whitespace, one canonical form per value;
//   * encodes non-finite numbers as the STRINGS "nan"/"inf"/"-inf" (JSON
//     has no number spelling for them, and bare tokens would break jq /
//     Python consumers of farm reports); as_number() accepts exactly
//     those spellings back, so documents round-trip byte-stably.
// Parsing accepts standard JSON plus legacy bare nan/inf number tokens
// (older builds dumped those via to_chars).
#ifndef ACSTAB_FARM_JSON_H
#define ACSTAB_FARM_JSON_H

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.h"

namespace acstab::farm {

class json_value {
public:
    enum class kind { null, boolean, number, string, array, object };

    json_value() = default;

    [[nodiscard]] static json_value boolean(bool b);
    [[nodiscard]] static json_value number(real v);
    [[nodiscard]] static json_value number(std::size_t v);
    [[nodiscard]] static json_value str(std::string s);
    [[nodiscard]] static json_value array();
    [[nodiscard]] static json_value object();

    [[nodiscard]] kind type() const noexcept { return kind_; }

    /// Append to an array value.
    void push_back(json_value v);
    /// Append a member to an object value (replaces an existing key in
    /// place, keeping its position).
    void set(std::string key, json_value v);

    // Checked accessors; throw analysis_error on a kind mismatch.
    [[nodiscard]] bool as_bool() const;
    [[nodiscard]] real as_number() const;
    /// as_number() narrowed to a non-negative integer (indices, counts).
    [[nodiscard]] std::size_t as_index() const;
    [[nodiscard]] const std::string& as_string() const;
    [[nodiscard]] const std::vector<json_value>& items() const;
    [[nodiscard]] const std::vector<std::pair<std::string, json_value>>& members() const;

    /// Object member lookup; nullptr when absent (or not an object).
    [[nodiscard]] const json_value* find(std::string_view key) const;
    /// Object member lookup; throws analysis_error when absent.
    [[nodiscard]] const json_value& at(std::string_view key) const;

    /// Canonical compact serialization (deterministic byte-for-byte).
    [[nodiscard]] std::string dump() const;

    /// Parse a complete JSON document; throws parse_error on malformed
    /// input or trailing garbage.
    [[nodiscard]] static json_value parse(std::string_view text);

private:
    void dump_into(std::string& out) const;

    kind kind_ = kind::null;
    bool bool_ = false;
    real number_ = 0.0;
    std::string string_;
    std::vector<json_value> items_;
    std::vector<std::pair<std::string, json_value>> members_;
};

} // namespace acstab::farm

#endif // ACSTAB_FARM_JSON_H
