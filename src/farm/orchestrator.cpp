#include "farm/orchestrator.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include <dirent.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/error.h"
#include "core/param_grid.h"
#include "farm/executor.h"
#include "farm/fault_inject.h"
#include "farm/posix_io.h"
#include "farm/shard_store.h"

namespace acstab::farm {

namespace {

    using steady_clock = std::chrono::steady_clock;

    constexpr const char* journal_schema = "acstab-farm-journal-v1";

    [[nodiscard]] std::string errno_text()
    {
        return std::strerror(errno);
    }

    /// Locale-independent seconds formatting for error/journal text (the
    /// quarantine error lands in the merged report, whose bytes must not
    /// depend on the host locale).
    [[nodiscard]] std::string format_seconds(real s)
    {
        return json_value::number(s).dump();
    }

    [[nodiscard]] std::string dirname_of(const std::string& path)
    {
        const std::size_t pos = path.rfind('/');
        if (pos == std::string::npos)
            return ".";
        return pos == 0 ? "/" : path.substr(0, pos);
    }

    // ----- deterministic fault injection (ACSTAB_FAULT_INJECT) -----
    // Directive parsing and fire-once markers live in farm/fault_inject.h,
    // shared with the serve daemon (whose client-drop/slow-reader/
    // mid-frame-kill directives this hook ignores).

    /// Worker-side hook, called before each point runs.
    void fault_point_hook(const std::vector<fault_directive>& faults,
                          const std::string& marker_dir, std::size_t index)
    {
        for (const fault_directive& d : faults) {
            if (d.arg != index)
                continue;
            switch (d.k) {
            case fault_directive::kind::crash:
                if (d.always || try_fire_marker(marker_dir, "crash", index))
                    ::kill(::getpid(), SIGKILL);
                break;
            case fault_directive::kind::stall:
                if (d.always || try_fire_marker(marker_dir, "stall", index))
                    fault_sleep(d.seconds);
                break;
            default:
                break; // orchestrator- or serve-side directive
            }
        }
    }

    // ----- journal -----

    class journal_writer {
    public:
        journal_writer() = default;
        ~journal_writer()
        {
            if (file_ != nullptr)
                std::fclose(file_);
        }
        journal_writer(const journal_writer&) = delete;
        journal_writer& operator=(const journal_writer&) = delete;

        void open_append(const std::string& path)
        {
            file_ = std::fopen(path.c_str(), "ab");
            if (file_ == nullptr)
                throw analysis_error("farm: cannot open journal '" + path
                                     + "': " + errno_text());
        }

        /// One flushed JSONL line per event; losing the tail on a crash
        /// costs at worst repeated work (shard streams are authoritative).
        void append(const json_value& event)
        {
            if (file_ == nullptr)
                return;
            const std::string line = event.dump() + "\n";
            std::fwrite(line.data(), 1, line.size(), file_);
            std::fflush(file_);
        }

    private:
        std::FILE* file_ = nullptr;
    };

    // ----- worker process management -----

    struct worker_proc {
        pid_t pid = -1;
        int to_fd = -1;   ///< orchestrator -> worker stdin
        int from_fd = -1; ///< worker stdout -> orchestrator
        std::size_t id = 0;
        bool idle = true;
        bool timed_out = false;
        core::point_lease lease{0, 0};
        std::size_t next_unacked = 0; ///< in-flight point (leases run in order)
        steady_clock::time_point point_start{};
        std::string buf;        ///< partial protocol line
        std::string shard_path; ///< this worker's append-only stream
        /// Byte offset of the next unread record line in shard_path (0 =
        /// header not skipped yet); advanced per acknowledged point by the
        /// on_point streaming tail reader.
        std::uint64_t tail_offset = 0;
    };

    /// Read the one record line the worker appended (and flushed) before
    /// the acknowledgment that just arrived. Returns nullopt on any read
    /// hiccup — streaming is best-effort; the merge stays authoritative.
    [[nodiscard]] std::optional<std::string> read_appended_record(worker_proc& w)
    {
        std::ifstream in(w.shard_path, std::ios::binary);
        if (!in)
            return std::nullopt;
        std::string line;
        if (w.tail_offset == 0) {
            if (!std::getline(in, line) || in.eof())
                return std::nullopt;
            w.tail_offset = line.size() + 1;
        }
        in.seekg(static_cast<std::streamoff>(w.tail_offset));
        if (!std::getline(in, line) || in.eof())
            return std::nullopt;
        w.tail_offset += line.size() + 1;
        return line;
    }

    [[nodiscard]] std::string self_exe_path()
    {
        char buf[4096];
        const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
        if (n <= 0)
            throw analysis_error("farm: cannot resolve own executable path; "
                                 "pass the tool path explicitly");
        buf[n] = '\0';
        return buf;
    }

    [[nodiscard]] worker_proc spawn_worker(const exec_options& opt,
                                           const std::string& tool,
                                           std::size_t id,
                                           const std::string& shard_path)
    {
        int to_pipe[2];
        int from_pipe[2];
        if (::pipe(to_pipe) != 0)
            throw analysis_error("farm: pipe: " + errno_text());
        if (::pipe(from_pipe) != 0) {
            ::close(to_pipe[0]);
            ::close(to_pipe[1]);
            throw analysis_error("farm: pipe: " + errno_text());
        }
        // Parent-held ends must not leak into sibling workers.
        set_cloexec(to_pipe[1]);
        set_cloexec(from_pipe[0]);
        const pid_t pid = ::fork();
        if (pid < 0) {
            ::close(to_pipe[0]);
            ::close(to_pipe[1]);
            ::close(from_pipe[0]);
            ::close(from_pipe[1]);
            throw analysis_error("farm: fork: " + errno_text());
        }
        if (pid == 0) {
            ::dup2(to_pipe[0], STDIN_FILENO);
            ::dup2(from_pipe[1], STDOUT_FILENO);
            ::close(to_pipe[0]);
            ::close(from_pipe[1]);
            const std::string id_str = std::to_string(id);
            const char* argv[] = {
                tool.c_str(),      "farm",         "worker",
                opt.plan_path.c_str(), "--shard-file", shard_path.c_str(),
                "--worker-id",     id_str.c_str(), nullptr,
            };
            ::execv(tool.c_str(), const_cast<char* const*>(argv));
            std::fprintf(stderr, "farm worker: cannot exec '%s': %s\n", tool.c_str(),
                         std::strerror(errno));
            ::_exit(127);
        }
        ::close(to_pipe[0]);
        ::close(from_pipe[1]);
        worker_proc w;
        w.pid = pid;
        w.to_fd = to_pipe[1];
        w.from_fd = from_pipe[0];
        w.id = id;
        w.shard_path = shard_path;
        return w;
    }

    /// worker-<id>.jsonl shard streams already present in the workdir,
    /// id-sorted, plus the highest id seen (respawned workers continue
    /// the numbering so no file is ever appended by two processes).
    struct shard_file_listing {
        std::vector<std::string> paths;
        std::size_t next_id = 0;
    };

    [[nodiscard]] shard_file_listing list_shard_files(const std::string& workdir)
    {
        shard_file_listing out;
        DIR* dir = ::opendir(workdir.c_str());
        if (dir == nullptr)
            return out;
        std::vector<std::pair<std::size_t, std::string>> found;
        while (dirent* ent = ::readdir(dir)) {
            const std::string name = ent->d_name;
            if (name.size() < std::strlen("worker-0.jsonl") || name.rfind("worker-", 0) != 0
                || name.substr(name.size() - 6) != ".jsonl")
                continue;
            const std::string digits = name.substr(7, name.size() - 7 - 6);
            if (digits.empty()
                || digits.find_first_not_of("0123456789") != std::string::npos)
                continue;
            const std::size_t id = std::strtoul(digits.c_str(), nullptr, 10);
            found.emplace_back(id, workdir + "/" + name);
            out.next_id = std::max(out.next_id, id + 1);
        }
        ::closedir(dir);
        std::sort(found.begin(), found.end());
        for (auto& [id, path] : found)
            out.paths.push_back(std::move(path));
        return out;
    }

    [[nodiscard]] std::string describe_worker_death(int status)
    {
        if (WIFSIGNALED(status))
            return "worker killed by signal " + std::to_string(WTERMSIG(status));
        if (WIFEXITED(status))
            return "worker exited with status " + std::to_string(WEXITSTATUS(status));
        return "worker stopped unexpectedly";
    }

} // namespace

int run_worker(const campaign_spec& spec, const std::string& shard_path,
               std::size_t worker_id)
{
    // A dying orchestrator must not kill this worker mid-append via
    // SIGPIPE; the failed ack below is the clean exit path (the appended
    // record is durable either way).
    ignore_sigpipe();
    const std::vector<fault_directive> faults = parse_fault_env();
    const std::string marker_dir = dirname_of(shard_path);
    const point_runner runner(spec);
    shard_writer writer(shard_path, spec, worker_id);

    const auto ack = [](const std::string& text) {
        return std::fwrite(text.data(), 1, text.size(), stdout) == text.size()
            && std::fflush(stdout) == 0;
    };
    std::string line;
    while (std::getline(std::cin, line)) {
        unsigned long begin = 0;
        unsigned long end = 0;
        if (std::sscanf(line.c_str(), "L %lu %lu", &begin, &end) != 2) {
            std::fprintf(stderr, "farm worker: bad lease line '%s'\n", line.c_str());
            return 2;
        }
        for (unsigned long i = begin; i < end; ++i) {
            fault_point_hook(faults, marker_dir, i);
            const point_record rec = runner.run(i);
            // Durability before acknowledgment: the record is appended
            // and flushed FIRST, so an ack always refers to a record
            // that survives this process.
            writer.append(rec);
            if (!ack("P " + std::to_string(i) + "\n"))
                return 0; // orchestrator gone (EPIPE); records are durable
        }
        if (!ack("D " + std::to_string(begin) + " " + std::to_string(end) + "\n"))
            return 0;
    }
    return 0;
}

exec_summary exec_campaign(const campaign_spec& spec, const exec_options& opt)
{
    const std::size_t total = spec.grid.size();
    const std::string spec_bytes = to_json(spec).dump();
    if (opt.workdir.empty())
        throw analysis_error("farm exec: no working directory (--dir)");
    if (opt.out.empty())
        throw analysis_error("farm exec: no report path (--out)");
    if (opt.plan_path.empty())
        throw analysis_error("farm exec: no plan path for workers");
    if (opt.max_attempts == 0)
        throw analysis_error("farm exec: --retries must allow at least one attempt");
    // Probe the report destination BEFORE any work runs: an unwritable
    // --out would otherwise surface only at the final merge, hours of
    // compute later, as a mid-merge crash with partial state.
    {
        const std::string out_dir = dirname_of(opt.out);
        struct stat st {};
        if (::stat(out_dir.c_str(), &st) != 0)
            throw analysis_error("farm exec: report directory '" + out_dir
                                 + "' does not exist (--out " + opt.out
                                 + "); create it first — no points were run");
        if (!S_ISDIR(st.st_mode))
            throw analysis_error("farm exec: report path '" + opt.out
                                 + "' is not inside a directory ('" + out_dir
                                 + "' is not a directory) — no points were run");
        if (::access(out_dir.c_str(), W_OK) != 0)
            throw analysis_error("farm exec: report directory '" + out_dir
                                 + "' is not writable: " + errno_text()
                                 + " — no points were run");
    }
    const std::size_t nworkers = std::min(std::max<std::size_t>(1, opt.workers), total);
    const std::string tool = opt.tool_path.empty() ? self_exe_path() : opt.tool_path;

    if (::mkdir(opt.workdir.c_str(), 0777) != 0 && errno != EEXIST)
        throw analysis_error("farm exec: cannot create workdir '" + opt.workdir
                             + "': " + errno_text());

    // --- journal: create fresh (atomically) or verify + continue ---
    const std::string journal_path = opt.workdir + "/journal.jsonl";
    const bool journal_exists = ::access(journal_path.c_str(), F_OK) == 0;
    if (journal_exists && !opt.resume)
        throw analysis_error("farm exec: '" + opt.workdir
                             + "' already holds a campaign journal; pass --resume to "
                               "continue it or choose a fresh --dir");
    if (!journal_exists && opt.resume)
        throw analysis_error("farm exec: nothing to resume in '" + opt.workdir
                             + "' (no journal)");
    if (journal_exists) {
        std::ifstream in(journal_path, std::ios::binary);
        std::string header_line;
        if (!std::getline(in, header_line))
            throw analysis_error("farm exec: journal '" + journal_path + "' is empty");
        const json_value header = parse_shard_document(header_line, journal_path);
        const json_value* schema = header.find("schema");
        if (schema == nullptr || schema->as_string() != journal_schema)
            throw analysis_error("farm exec: '" + journal_path
                                 + "' is not an acstab farm journal");
        if (header.at("campaign").dump() != spec_bytes)
            throw analysis_error("farm exec: the plan does not match the campaign "
                                 "journaled in '" + opt.workdir
                                 + "' (resume must use the original plan file)");
    } else {
        json_value header = json_value::object();
        header.set("schema", json_value::str(journal_schema));
        header.set("campaign", json_value::parse(spec_bytes));
        header.set("workers", json_value::number(nworkers));
        header.set("point_timeout_s", json_value::number(opt.point_timeout_s));
        header.set("max_attempts", json_value::number(opt.max_attempts));
        const std::string tmp = journal_path + ".tmp";
        std::FILE* f = std::fopen(tmp.c_str(), "wb");
        if (f == nullptr)
            throw analysis_error("farm exec: cannot write '" + tmp + "': " + errno_text());
        const std::string line = header.dump() + "\n";
        const bool ok = std::fwrite(line.data(), 1, line.size(), f) == line.size()
            && std::fflush(f) == 0;
        std::fclose(f);
        if (!ok || std::rename(tmp.c_str(), journal_path.c_str()) != 0) {
            std::remove(tmp.c_str());
            throw analysis_error("farm exec: cannot create journal '" + journal_path
                                 + "': " + errno_text());
        }
    }
    journal_writer journal;
    journal.open_append(journal_path);

    // --- recover completed points from existing shard streams ---
    core::lease_ledger ledger(total);
    shard_file_listing existing = list_shard_files(opt.workdir);
    for (const std::string& path : existing.paths) {
        const shard_stream_scan scan = scan_shard_stream(path, spec_bytes);
        for (const stream_record_ref& ref : scan.records) {
            if (ref.point >= total)
                throw analysis_error("farm exec: shard file '" + path
                                     + "' has record index " + std::to_string(ref.point)
                                     + " outside the grid");
            ledger.complete(ref.point);
        }
    }
    std::size_t next_worker_id = existing.next_id;

    const std::vector<fault_directive> faults = parse_fault_env();
    const std::size_t chunk
        = std::clamp<std::size_t>(total / (nworkers * 4), 1, 16);

    {
        json_value ev = json_value::object();
        ev.set("ev", json_value::str("start"));
        ev.set("resume", json_value::boolean(opt.resume));
        ev.set("pending", json_value::number(ledger.unresolved()));
        ev.set("workers", json_value::number(nworkers));
        journal.append(ev);
    }

    // Writing a lease to a worker that died microseconds ago must not
    // kill the orchestrator. Restored on every exit path.
    struct sigpipe_guard {
        struct sigaction old {};
        sigpipe_guard()
        {
            struct sigaction ignore {};
            ignore.sa_handler = SIG_IGN;
            ::sigaction(SIGPIPE, &ignore, &old);
        }
        ~sigpipe_guard() { ::sigaction(SIGPIPE, &old, nullptr); }
    } pipe_guard;

    std::vector<worker_proc> workers;
    // On ANY exit (including a thrown setup/journal error) no worker
    // process may outlive the orchestrator.
    struct fleet_guard {
        std::vector<worker_proc>& fleet;
        ~fleet_guard()
        {
            for (worker_proc& w : fleet) {
                if (w.pid > 0) {
                    ::kill(w.pid, SIGKILL);
                    int status = 0;
                    ::waitpid(w.pid, &status, 0);
                }
                if (w.to_fd >= 0)
                    ::close(w.to_fd);
                if (w.from_fd >= 0)
                    ::close(w.from_fd);
            }
        }
    } guard{workers};
    std::vector<std::pair<steady_clock::time_point, std::size_t>> cooling;
    std::map<std::size_t, std::string> quarantine_errors;
    std::size_t completed_this_run = 0;
    std::size_t idle_deaths = 0; ///< deaths with no lease: startup failures
    bool interrupted = false;

    const auto close_worker_fds = [](worker_proc& w) {
        if (w.to_fd >= 0)
            ::close(w.to_fd);
        if (w.from_fd >= 0)
            ::close(w.from_fd);
        w.to_fd = w.from_fd = -1;
    };

    const auto user_interrupted = [&] {
        return (opt.interrupt != nullptr && *opt.interrupt != 0)
            || (opt.cancelled && opt.cancelled());
    };

    /// A worker died (crash, timeout kill, or premature exit): charge the
    /// in-flight point one attempt, requeue the untouched lease tail,
    /// reap the process.
    const auto handle_death = [&](worker_proc& w) {
        int status = 0;
        ::waitpid(w.pid, &status, 0);
        close_worker_fds(w);
        w.pid = -1;
        const std::string reason = w.timed_out
            ? "point exceeded " + format_seconds(opt.point_timeout_s)
                + "s wall-clock timeout"
            : describe_worker_death(status);
        if (w.idle) {
            // Death with no lease in hand is a startup failure (bad tool
            // path, plan unreadable by the worker, ...). A few in a row
            // means every respawn will fail too — abort instead of
            // spinning the respawn loop forever.
            if (++idle_deaths > nworkers * 3)
                throw analysis_error("farm exec: workers keep dying before accepting "
                                     "work (" + reason
                                     + "); check the worker tool path and plan file");
        }
        if (!w.idle && w.next_unacked < w.lease.end) {
            for (std::size_t i = w.next_unacked + 1; i < w.lease.end; ++i)
                ledger.requeue(i);
            const std::size_t inflight = w.next_unacked;
            const std::size_t attempts = ledger.fail(inflight);
            {
                json_value ev = json_value::object();
                ev.set("ev", json_value::str("fail"));
                ev.set("point", json_value::number(inflight));
                ev.set("attempt", json_value::number(attempts));
                ev.set("error", json_value::str(reason));
                journal.append(ev);
            }
            if (attempts >= opt.max_attempts) {
                ledger.quarantine(inflight);
                quarantine_errors[inflight] = "quarantined after "
                    + std::to_string(attempts) + " failed attempts; last error: " + reason;
                {
                    json_value ev = json_value::object();
                    ev.set("ev", json_value::str("quarantine"));
                    ev.set("point", json_value::number(inflight));
                    ev.set("error", json_value::str(quarantine_errors[inflight]));
                    journal.append(ev);
                }
                if (opt.verbose) {
                    std::printf("farm exec: point %zu quarantined (%s)\n", inflight,
                                reason.c_str());
                    std::fflush(stdout);
                }
            } else {
                const std::size_t shift = std::min<std::size_t>(attempts - 1, 6);
                const real delay = opt.backoff_s * static_cast<real>(1u << shift);
                cooling.emplace_back(
                    steady_clock::now()
                        + std::chrono::microseconds(static_cast<long>(delay * 1e6)),
                    inflight);
                if (opt.verbose) {
                    std::printf("farm exec: point %zu failed (%s), retry %zu/%zu\n",
                                inflight, reason.c_str(), attempts + 1, opt.max_attempts);
                    std::fflush(stdout);
                }
            }
        }
    };

    /// Protocol lines from one worker's stdout.
    const auto handle_line = [&](worker_proc& w, const std::string& line) {
        unsigned long a = 0;
        unsigned long b = 0;
        if (std::sscanf(line.c_str(), "P %lu", &a) == 1) {
            ledger.complete(a);
            {
                json_value ev = json_value::object();
                ev.set("ev", json_value::str("done"));
                ev.set("point", json_value::number(static_cast<std::size_t>(a)));
                ev.set("worker", json_value::number(w.id));
                journal.append(ev);
            }
            w.next_unacked = a + 1;
            w.point_start = steady_clock::now();
            w.timed_out = false;
            ++completed_this_run;
            if (opt.on_point) {
                // The record was flushed before this ack, so the tail
                // read sees a complete line.
                if (std::optional<std::string> rec = read_appended_record(w))
                    opt.on_point(static_cast<std::size_t>(a), *rec);
            }
            if (opt.verbose) {
                std::printf("farm exec: point %lu done (%zu/%zu)\n", a, ledger.done(),
                            total);
                std::fflush(stdout);
            }
            for (const fault_directive& d : faults) {
                if (d.k == fault_directive::kind::interrupt && completed_this_run >= d.arg
                    && (d.always || try_fire_marker(opt.workdir, "interrupt", d.arg)))
                    interrupted = true;
            }
        } else if (std::sscanf(line.c_str(), "D %lu %lu", &a, &b) == 2) {
            w.idle = true;
            w.lease = {0, 0};
        } else if (!line.empty()) {
            std::fprintf(stderr, "farm exec: ignoring unexpected worker line '%s'\n",
                         line.c_str());
        }
    };

    while (!interrupted && !user_interrupted() && ledger.unresolved() > 0) {
        const steady_clock::time_point now = steady_clock::now();

        // Backoff expiry: cooling points become grantable again.
        for (std::size_t i = 0; i < cooling.size();) {
            if (cooling[i].first <= now) {
                ledger.release(cooling[i].second);
                cooling[i] = cooling.back();
                cooling.pop_back();
            } else {
                ++i;
            }
        }

        // Keep the worker pool full; respawns get fresh ids and fresh
        // shard files (a dead worker's stream may end mid-record).
        while (workers.size() < nworkers) {
            const std::size_t id = next_worker_id++;
            const std::string shard_path
                = opt.workdir + "/worker-" + std::to_string(id) + ".jsonl";
            workers.push_back(spawn_worker(opt, tool, id, shard_path));
        }

        // Hand small leases to idle workers (dynamic work-stealing).
        for (worker_proc& w : workers) {
            if (!w.idle)
                continue;
            const std::optional<core::point_lease> lease = ledger.grant(chunk);
            if (!lease)
                break;
            const std::string msg = "L " + std::to_string(lease->begin) + " "
                + std::to_string(lease->end) + "\n";
            if (!write_fully(w.to_fd, msg.data(), msg.size())) {
                // Dead before the lease arrived: undo the grant; the
                // poll loop below reaps the corpse.
                for (std::size_t i = lease->begin; i < lease->end; ++i)
                    ledger.requeue(i);
                continue;
            }
            w.idle = false;
            w.lease = *lease;
            w.next_unacked = lease->begin;
            w.point_start = now;
            w.timed_out = false;
            {
                json_value ev = json_value::object();
                ev.set("ev", json_value::str("lease"));
                ev.set("worker", json_value::number(w.id));
                ev.set("begin", json_value::number(lease->begin));
                ev.set("end", json_value::number(lease->end));
                journal.append(ev);
            }
        }

        // Sleep until the next deadline (lease timeout or backoff
        // expiry), capped low enough to stay SIGINT-responsive.
        long timeout_ms = 200;
        const auto consider = [&](steady_clock::time_point due) {
            const long ms = static_cast<long>(
                std::chrono::duration_cast<std::chrono::milliseconds>(due - now).count());
            timeout_ms = std::clamp(ms, 0L, timeout_ms);
        };
        const auto point_deadline = [&](const worker_proc& w) {
            return w.point_start
                + std::chrono::microseconds(
                    static_cast<long>(opt.point_timeout_s * 1e6));
        };
        for (const worker_proc& w : workers)
            if (!w.idle)
                consider(point_deadline(w));
        for (const auto& [due, idx] : cooling)
            consider(due);

        std::vector<pollfd> fds;
        fds.reserve(workers.size());
        for (const worker_proc& w : workers)
            fds.push_back({w.from_fd, POLLIN, 0});
        const int rc = ::poll(fds.data(), fds.size(), static_cast<int>(timeout_ms));
        if (rc < 0 && errno != EINTR)
            throw analysis_error("farm exec: poll: " + errno_text());

        std::vector<std::size_t> dead;
        for (std::size_t i = 0; i < workers.size() && rc > 0; ++i) {
            if (fds[i].revents == 0)
                continue;
            char buf[4096];
            const ssize_t n = read_retry(workers[i].from_fd, buf, sizeof buf);
            if (n > 0) {
                workers[i].buf.append(buf, static_cast<std::size_t>(n));
                std::size_t nl;
                while ((nl = workers[i].buf.find('\n')) != std::string::npos) {
                    const std::string line = workers[i].buf.substr(0, nl);
                    workers[i].buf.erase(0, nl + 1);
                    handle_line(workers[i], line);
                }
            } else if (n == 0 || (n < 0 && errno != EAGAIN)) {
                dead.push_back(i);
            }
        }
        // Reap dead workers, highest index first so the swap-erase below
        // never moves another doomed entry.
        std::sort(dead.rbegin(), dead.rend());
        for (const std::size_t i : dead) {
            handle_death(workers[i]);
            workers[i] = std::move(workers.back());
            workers.pop_back();
        }

        // Per-point wall-clock enforcement: kill the worker; the EOF on
        // its pipe routes the point through the normal crash path with
        // the timeout recorded as the failure reason.
        const steady_clock::time_point after = steady_clock::now();
        for (worker_proc& w : workers) {
            if (!w.idle && !w.timed_out && after >= point_deadline(w)) {
                w.timed_out = true;
                ::kill(w.pid, SIGKILL);
            }
        }
    }

    if (interrupted || user_interrupted()) {
        // Stop the fleet hard; shard streams are crash-safe by design,
        // so --resume recovers every acknowledged point.
        for (worker_proc& w : workers) {
            ::kill(w.pid, SIGKILL);
            int status = 0;
            ::waitpid(w.pid, &status, 0);
            close_worker_fds(w);
        }
        json_value ev = json_value::object();
        ev.set("ev", json_value::str("interrupt"));
        ev.set("completed", json_value::number(ledger.done()));
        journal.append(ev);
        workers.clear();
        exec_summary summary;
        summary.total = total;
        summary.completed = ledger.done();
        summary.interrupted = true;
        for (const auto& [idx, err] : quarantine_errors)
            summary.quarantined.emplace_back(idx, err);
        return summary;
    }

    // Graceful shutdown: close stdins (workers exit on EOF), drain any
    // trailing acknowledgments, reap.
    for (worker_proc& w : workers) {
        ::close(w.to_fd);
        w.to_fd = -1;
    }
    for (worker_proc& w : workers) {
        char buf[4096];
        while (::read(w.from_fd, buf, sizeof buf) > 0) { }
        int status = 0;
        ::waitpid(w.pid, &status, 0);
        close_worker_fds(w);
    }
    workers.clear();

    // Quarantined points enter the report as explicit placeholder
    // records (status "quarantined" + the recorded error) — listed, not
    // silently dropped. A real record beats its own placeholder inside
    // merge_shard_streams (the worker may have died after the append).
    std::vector<point_record> extras;
    for (const auto& [idx, err] : quarantine_errors) {
        point_record rec;
        rec.point = spec.grid.point(idx);
        rec.index = idx;
        rec.status = core::point_status::quarantined;
        rec.error = err;
        extras.push_back(std::move(rec));
    }
    const shard_file_listing final_files = list_shard_files(opt.workdir);
    stream_merge_result merged;
    try {
        merged = merge_shard_streams(spec, final_files.paths, extras, opt.out);
    } catch (const error& e) {
        // Every acknowledged record is durable in the shard streams; a
        // failed merge (out path vanished, disk full, ...) must not read
        // as lost compute.
        throw analysis_error(std::string(e.what())
                             + "; all completed point records are safe in '" + opt.workdir
                             + "' — fix the report path and re-run with --resume to "
                               "merge without recomputing");
    }

    exec_summary summary;
    summary.total = total;
    summary.completed = total - merged.extras_used.size();
    for (const std::size_t idx : merged.extras_used)
        summary.quarantined.emplace_back(idx, quarantine_errors.at(idx));
    {
        json_value ev = json_value::object();
        ev.set("ev", json_value::str("complete"));
        ev.set("completed", json_value::number(summary.completed));
        ev.set("quarantined", json_value::number(summary.quarantined.size()));
        journal.append(ev);
    }
    return summary;
}

} // namespace acstab::farm
