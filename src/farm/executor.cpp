#include "farm/executor.h"

#include <cstdio>
#include <utility>

#include "common/error.h"
#include "engine/sweep_engine.h"
#include "farm/json_convert.h"
#include "spice/units.h"

namespace acstab::farm {

namespace {

    [[nodiscard]] const char* status_name(core::point_status s)
    {
        switch (s) {
        case core::point_status::ok: return "ok";
        case core::point_status::dc_failed: return "dc_failed";
        case core::point_status::analysis_failed: return "failed";
        case core::point_status::quarantined: return "quarantined";
        }
        return "failed";
    }

    [[nodiscard]] core::point_status status_from_name(const std::string& s)
    {
        if (s == "ok")
            return core::point_status::ok;
        if (s == "dc_failed")
            return core::point_status::dc_failed;
        if (s == "failed")
            return core::point_status::analysis_failed;
        if (s == "quarantined")
            return core::point_status::quarantined;
        throw analysis_error("farm: unknown record status '" + s + "'");
    }

    [[nodiscard]] json_value impedance_to_json(const impedance_point_summary& imp)
    {
        json_value obj = json_value::object();
        obj.set("stable", json_value::boolean(imp.stable));
        // Encirclement counts are signed (negative marks a side with its
        // own RHP poles), so they ride as plain numbers, not indices.
        obj.set("encirclements", json_value::number(static_cast<real>(imp.encirclements)));
        obj.set("nyquist_margin", json_value::number(imp.nyquist_margin));
        obj.set("nyquist_margin_freq_hz", json_value::number(imp.nyquist_margin_freq_hz));
        obj.set("has_unity_crossing", json_value::boolean(imp.has_unity_crossing));
        if (imp.has_unity_crossing)
            obj.set("phase_margin_deg", json_value::number(imp.phase_margin_deg));
        obj.set("has_phase_crossing", json_value::boolean(imp.has_phase_crossing));
        if (imp.has_phase_crossing)
            obj.set("gain_margin_db", json_value::number(imp.gain_margin_db));
        obj.set("freq_hz", reals_to_json(imp.freq_hz));
        obj.set("lm_re", reals_to_json(imp.lm_re));
        obj.set("lm_im", reals_to_json(imp.lm_im));
        return obj;
    }

    [[nodiscard]] impedance_point_summary impedance_from_json(const json_value& obj)
    {
        impedance_point_summary imp;
        imp.stable = obj.at("stable").as_bool();
        imp.encirclements = static_cast<int>(obj.at("encirclements").as_number());
        imp.nyquist_margin = obj.at("nyquist_margin").as_number();
        imp.nyquist_margin_freq_hz = obj.at("nyquist_margin_freq_hz").as_number();
        imp.has_unity_crossing = obj.at("has_unity_crossing").as_bool();
        if (imp.has_unity_crossing)
            imp.phase_margin_deg = obj.at("phase_margin_deg").as_number();
        imp.has_phase_crossing = obj.at("has_phase_crossing").as_bool();
        if (imp.has_phase_crossing)
            imp.gain_margin_db = obj.at("gain_margin_db").as_number();
        imp.freq_hz = reals_from_json(obj.at("freq_hz"));
        imp.lm_re = reals_from_json(obj.at("lm_re"));
        imp.lm_im = reals_from_json(obj.at("lm_im"));
        return imp;
    }

    [[nodiscard]] json_value transient_to_json(const transient_point_summary& tr)
    {
        json_value obj = json_value::object();
        obj.set("stable", json_value::boolean(tr.stable));
        obj.set("ringing", json_value::boolean(tr.ringing));
        obj.set("overshoot_pct", json_value::number(tr.overshoot_pct));
        obj.set("ringing_freq_hz", json_value::number(tr.ringing_freq_hz));
        obj.set("settling_time_s", json_value::number(tr.settling_time_s));
        obj.set("final_value", json_value::number(tr.final_value));
        obj.set("zeta", json_value::number(tr.zeta));
        obj.set("equiv_pm_deg", json_value::number(tr.equiv_pm_deg));
        obj.set("time_s", reals_to_json(tr.time_s));
        obj.set("value", reals_to_json(tr.value));
        return obj;
    }

    [[nodiscard]] transient_point_summary transient_from_json(const json_value& obj)
    {
        transient_point_summary tr;
        tr.stable = obj.at("stable").as_bool();
        tr.ringing = obj.at("ringing").as_bool();
        tr.overshoot_pct = obj.at("overshoot_pct").as_number();
        tr.ringing_freq_hz = obj.at("ringing_freq_hz").as_number();
        tr.settling_time_s = obj.at("settling_time_s").as_number();
        tr.final_value = obj.at("final_value").as_number();
        tr.zeta = obj.at("zeta").as_number();
        tr.equiv_pm_deg = obj.at("equiv_pm_deg").as_number();
        tr.time_s = reals_from_json(obj.at("time_s"));
        tr.value = reals_from_json(obj.at("value"));
        return tr;
    }

} // namespace

json_value point_record_to_json(const point_record& rec)
{
    json_value obj = json_value::object();
    obj.set("index", json_value::number(rec.index));
    if (rec.point.temp_celsius)
        obj.set("temp", json_value::number(*rec.point.temp_celsius));
    if (!rec.point.corner.empty())
        obj.set("corner", json_value::str(rec.point.corner));
    obj.set("overrides", overrides_to_json(rec.point.overrides));
    obj.set("label", json_value::str(rec.point.label()));
    obj.set("status", json_value::str(status_name(rec.status)));
    if (rec.status != core::point_status::ok) {
        obj.set("error", json_value::str(rec.error));
        return obj;
    }
    if (rec.impedance) {
        obj.set("impedance", impedance_to_json(*rec.impedance));
        return obj;
    }
    if (rec.transient) {
        obj.set("transient", transient_to_json(*rec.transient));
        return obj;
    }
    obj.set("has_peak", json_value::boolean(rec.has_peak));
    if (rec.has_peak) {
        obj.set("fn_hz", json_value::number(rec.fn_hz));
        obj.set("peak", json_value::number(rec.peak));
        obj.set("zeta", json_value::number(rec.zeta));
        obj.set("phase_margin_deg", json_value::number(rec.phase_margin_deg));
        obj.set("overshoot_pct", json_value::number(rec.overshoot_pct));
    }
    obj.set("freq_hz", reals_to_json(rec.freq_hz));
    obj.set("magnitude", reals_to_json(rec.magnitude));
    return obj;
}

point_record point_record_from_json(const json_value& obj)
{
    point_record rec;
    rec.index = obj.at("index").as_index();
    rec.point.index = rec.index;
    if (const json_value* t = obj.find("temp"))
        rec.point.temp_celsius = t->as_number();
    if (const json_value* c = obj.find("corner"))
        rec.point.corner = c->as_string();
    for (const auto& [name, v] : obj.at("overrides").members())
        rec.point.overrides[name] = v.as_number();
    rec.status = status_from_name(obj.at("status").as_string());
    if (rec.status != core::point_status::ok) {
        rec.error = obj.at("error").as_string();
        return rec;
    }
    if (const json_value* imp = obj.find("impedance")) {
        rec.impedance = impedance_from_json(*imp);
        return rec;
    }
    if (const json_value* tr = obj.find("transient")) {
        rec.transient = transient_from_json(*tr);
        return rec;
    }
    rec.has_peak = obj.at("has_peak").as_bool();
    if (rec.has_peak) {
        rec.fn_hz = obj.at("fn_hz").as_number();
        rec.peak = obj.at("peak").as_number();
        rec.zeta = obj.at("zeta").as_number();
        rec.phase_margin_deg = obj.at("phase_margin_deg").as_number();
        rec.overshoot_pct = obj.at("overshoot_pct").as_number();
    }
    rec.freq_hz = reals_from_json(obj.at("freq_hz"));
    rec.magnitude = reals_from_json(obj.at("magnitude"));
    return rec;
}


namespace {

    /// One impedance grid point, serially, every failure recorded.
    [[nodiscard]] point_record run_impedance_point(const campaign_spec& spec,
                                                   const core::circuit_template& tmpl,
                                                   const analysis::impedance_options& opt,
                                                   std::size_t index)
    {
        point_record rec;
        rec.point = spec.grid.point(index);
        rec.index = rec.point.index;
        try {
            spice::circuit c = std::move(tmpl.build(rec.point).ckt);
            const analysis::impedance_result res
                = analysis::analyze_impedance(c, spec.node, opt);
            impedance_point_summary imp;
            imp.stable = res.stable;
            imp.encirclements = res.encirclements;
            imp.nyquist_margin = res.nyquist_margin;
            imp.nyquist_margin_freq_hz = res.nyquist_margin_freq_hz;
            imp.has_unity_crossing = res.margins.has_unity_crossing;
            imp.phase_margin_deg = res.margins.phase_margin_deg;
            imp.has_phase_crossing = res.margins.has_phase_crossing;
            imp.gain_margin_db = res.margins.gain_margin_db;
            imp.freq_hz = res.freq_hz;
            imp.lm_re.resize(res.minor_loop.size());
            imp.lm_im.resize(res.minor_loop.size());
            for (std::size_t k = 0; k < res.minor_loop.size(); ++k) {
                imp.lm_re[k] = res.minor_loop[k].real();
                imp.lm_im[k] = res.minor_loop[k].imag();
            }
            rec.impedance = std::move(imp);
        } catch (const convergence_error& e) {
            rec.status = core::point_status::dc_failed;
            rec.error = e.what();
        } catch (const error& e) {
            rec.status = core::point_status::analysis_failed;
            rec.error = e.what();
        }
        return rec;
    }

    /// Impedance-campaign shard body: one analyze_impedance per point,
    /// points dispatched on the shared pool (per-point analysis serial,
    /// mirroring core::sweep_stability_grid), every failure recorded.
    [[nodiscard]] std::vector<point_record>
    run_impedance_shard(const campaign_spec& spec, const shard_range& range,
                        std::size_t threads)
    {
        const core::circuit_template tmpl{spec.netlist, ""};
        const analysis::impedance_options point_opt = spec.impedance_options(1);

        std::vector<point_record> records(range.end - range.begin);
        engine::sweep_engine_options eopt;
        eopt.threads = threads;
        const engine::sweep_engine eng(eopt);
        eng.for_each(records.size(), [&](std::size_t i) {
            records[i] = run_impedance_point(spec, tmpl, point_opt, range.begin + i);
        });
        return records;
    }

    /// One transient grid point, serially, every failure recorded
    /// (convergence failures — DC operating point or a transient Newton
    /// ladder bottoming out — report dc_failed like the other kinds).
    [[nodiscard]] point_record run_transient_point(const campaign_spec& spec,
                                                   const core::circuit_template& tmpl,
                                                   std::size_t index)
    {
        point_record rec;
        rec.point = spec.grid.point(index);
        rec.index = rec.point.index;
        try {
            spice::circuit c = std::move(tmpl.build(rec.point).ckt);
            const core::tran_stability_result res
                = core::measure_tran_stability(c, spec.node, spec.transient_options());
            transient_point_summary tr;
            tr.stable = res.stable;
            tr.ringing = res.ringing;
            tr.overshoot_pct = res.overshoot_pct;
            tr.ringing_freq_hz = res.ringing_freq_hz;
            tr.settling_time_s = res.settling_time_s;
            tr.final_value = res.final_value;
            tr.zeta = res.zeta;
            tr.equiv_pm_deg = res.equiv_pm_deg;
            tr.time_s = res.time;
            tr.value = res.value;
            rec.transient = std::move(tr);
        } catch (const convergence_error& e) {
            rec.status = core::point_status::dc_failed;
            rec.error = e.what();
        } catch (const error& e) {
            rec.status = core::point_status::analysis_failed;
            rec.error = e.what();
        }
        return rec;
    }

    /// Transient-campaign shard body, mirroring the impedance shape:
    /// per-point analysis serial, points dispatched on the shared pool.
    [[nodiscard]] std::vector<point_record>
    run_transient_shard(const campaign_spec& spec, const shard_range& range,
                        std::size_t threads)
    {
        const core::circuit_template tmpl{spec.netlist, ""};
        std::vector<point_record> records(range.end - range.begin);
        engine::sweep_engine_options eopt;
        eopt.threads = threads;
        const engine::sweep_engine eng(eopt);
        eng.for_each(records.size(), [&](std::size_t i) {
            records[i] = run_transient_point(spec, tmpl, range.begin + i);
        });
        return records;
    }

    /// One stability grid point as a point_record (shared by run_shard's
    /// bulk path and the orchestrator's point_runner).
    [[nodiscard]] point_record record_from_grid_result(const core::grid_point_result& res)
    {
        point_record rec;
        rec.index = res.point.index;
        rec.point = res.point;
        rec.status = res.status;
        rec.error = res.error;
        if (res.status != core::point_status::ok)
            return rec;
        rec.has_peak = res.node.has_peak;
        if (res.node.has_peak) {
            rec.fn_hz = res.node.dominant.freq_hz;
            rec.peak = res.node.dominant.value;
            rec.zeta = res.node.zeta;
            rec.phase_margin_deg = res.node.phase_margin_est_deg;
            rec.overshoot_pct = res.node.overshoot_est_pct;
        }
        rec.freq_hz = res.node.plot.freq_hz;
        rec.magnitude = res.node.plot.magnitude;
        return rec;
    }

} // namespace

std::vector<point_record> run_shard(const campaign_spec& spec, std::size_t shard,
                                    std::size_t shard_count, std::size_t threads)
{
    if (spec.node.empty())
        throw analysis_error("farm: campaign has no watched node");
    const shard_range range = shard_slice(spec.grid.size(), shard, shard_count);

    if (spec.analysis == campaign_analysis::impedance)
        return run_impedance_shard(spec, range, threads);
    if (spec.analysis == campaign_analysis::transient)
        return run_transient_shard(spec, range, threads);

    const core::circuit_template tmpl{spec.netlist, ""};
    const std::vector<core::grid_point_result> results = core::sweep_stability_grid(
        [&tmpl, &spec](spice::circuit& c, const core::grid_point& pt) {
            c = std::move(tmpl.build(pt).ckt);
            return spec.node;
        },
        spec.grid, range.begin, range.end, spec.stability_options(threads));

    std::vector<point_record> records(results.size());
    for (std::size_t i = 0; i < results.size(); ++i)
        records[i] = record_from_grid_result(results[i]);
    return records;
}

point_runner::point_runner(campaign_spec spec)
    : spec_(std::move(spec)), tmpl_{spec_.netlist, ""}
{
    if (spec_.node.empty())
        throw analysis_error("farm: campaign has no watched node");
    (void)spec_.grid.size(); // validate the axes once, not per point
}

point_record point_runner::run(std::size_t index) const
{
    if (spec_.analysis == campaign_analysis::impedance)
        return run_impedance_point(spec_, tmpl_, spec_.impedance_options(1), index);
    if (spec_.analysis == campaign_analysis::transient)
        return run_transient_point(spec_, tmpl_, index);

    const std::vector<core::grid_point_result> results = core::sweep_stability_grid(
        [this](spice::circuit& c, const core::grid_point& pt) {
            c = std::move(tmpl_.build(pt).ckt);
            return spec_.node;
        },
        spec_.grid, index, index + 1, spec_.stability_options(1));
    return record_from_grid_result(results.front());
}

json_value shard_to_json(const campaign_spec& spec, std::size_t shard,
                         std::size_t shard_count, const std::vector<point_record>& records)
{
    const shard_range range = shard_slice(spec.grid.size(), shard, shard_count);
    json_value doc = json_value::object();
    doc.set("schema", json_value::str(shard_schema));
    doc.set("campaign", to_json(spec));
    json_value sh = json_value::object();
    sh.set("index", json_value::number(shard));
    sh.set("count", json_value::number(shard_count));
    sh.set("begin", json_value::number(range.begin));
    sh.set("end", json_value::number(range.end));
    doc.set("shard", std::move(sh));
    json_value recs = json_value::array();
    for (const point_record& rec : records)
        recs.push_back(point_record_to_json(rec));
    doc.set("records", std::move(recs));
    return doc;
}

std::vector<point_record> records_from_json(const json_value& shard_doc)
{
    if (const json_value* schema = shard_doc.find("schema");
        schema == nullptr || schema->as_string() != shard_schema)
        throw analysis_error("farm: not an acstab shard result (bad schema field)");
    std::vector<point_record> records;
    for (const json_value& rec : shard_doc.at("records").items())
        records.push_back(point_record_from_json(rec));
    return records;
}

json_value merge_shards(const campaign_spec& spec, const std::vector<json_value>& shard_docs)
{
    const std::size_t total = spec.grid.size();
    const std::string spec_bytes = to_json(spec).dump();

    // Slot every shard's records by global index, verifying coverage.
    std::vector<const json_value*> slots(total, nullptr);
    for (const json_value& doc : shard_docs) {
        if (const json_value* schema = doc.find("schema");
            schema == nullptr || schema->as_string() != shard_schema)
            throw analysis_error("farm: merge input is not an acstab shard result");
        if (doc.at("campaign").dump() != spec_bytes)
            throw analysis_error("farm: shard was produced by a different campaign plan");
        for (const json_value& rec : doc.at("records").items()) {
            const std::size_t index = rec.at("index").as_index();
            if (index >= total)
                throw analysis_error("farm: record index " + std::to_string(index)
                                     + " outside the grid");
            if (slots[index] != nullptr)
                throw analysis_error("farm: duplicate record for point "
                                     + std::to_string(index));
            slots[index] = &rec;
        }
    }
    std::size_t missing = 0;
    for (const json_value* slot : slots)
        missing += slot == nullptr ? 1 : 0;
    if (missing != 0)
        throw analysis_error("farm: merge is missing " + std::to_string(missing) + " of "
                             + std::to_string(total) + " points");

    // Re-serializing parsed records is byte-stable: numbers round-trip
    // exactly and member order was fixed by the producer.
    json_value report = json_value::object();
    report.set("schema", json_value::str(report_schema));
    report.set("campaign", json_value::parse(spec_bytes));
    report.set("points", json_value::number(total));
    json_value recs = json_value::array();
    for (const json_value* slot : slots)
        recs.push_back(*slot);
    report.set("records", std::move(recs));
    return report;
}

std::string format_report(const json_value& report)
{
    if (const json_value* schema = report.find("schema");
        schema == nullptr || schema->as_string() != report_schema)
        throw analysis_error("farm: not an acstab farm report (bad schema field)");

    std::string out;
    const json_value& campaign = report.at("campaign");
    const std::string& node = campaign.at("node").as_string();
    const json_value* kind = campaign.find("analysis");
    const bool impedance = kind != nullptr && kind->as_string() == "impedance";
    const bool transient = kind != nullptr && kind->as_string() == "transient";

    if (transient) {
        out += "transient-campaign report, node '" + node + "'\n";
        out += "point  label                                     verdict   overshoot  "
               "equiv PM   settle\n";
        out += "----------------------------------------------------------------------------"
               "-----\n";
        for (const json_value& rec : report.at("records").items()) {
            char line[220];
            const std::size_t index = rec.at("index").as_index();
            const std::string& label = rec.at("label").as_string();
            const std::string& status = rec.at("status").as_string();
            if (status != "ok") {
                std::snprintf(line, sizeof line, "%-6zu %-40.40s  (%s: %.80s)\n", index,
                              label.c_str(), status.c_str(),
                              rec.at("error").as_string().c_str());
            } else {
                const json_value& tr = rec.at("transient");
                std::snprintf(line, sizeof line,
                              "%-6zu %-40.40s  %-8s %7.2f %%  %5.1f deg  %9.3g s\n", index,
                              label.c_str(),
                              tr.at("stable").as_bool() ? "stable" : "UNSTABLE",
                              tr.at("overshoot_pct").as_number(),
                              tr.at("equiv_pm_deg").as_number(),
                              tr.at("settling_time_s").as_number());
            }
            out += line;
        }
        return out;
    }

    if (impedance) {
        out += "impedance-campaign report, partition node '" + node + "'\n";
        out += "point  label                                     verdict   enc   min|1+Lm|   "
               "PM(Lm)\n";
        out += "----------------------------------------------------------------------------"
               "------\n";
        for (const json_value& rec : report.at("records").items()) {
            char line[220];
            const std::size_t index = rec.at("index").as_index();
            const std::string& label = rec.at("label").as_string();
            const std::string& status = rec.at("status").as_string();
            if (status != "ok") {
                std::snprintf(line, sizeof line, "%-6zu %-40.40s  (%s: %.80s)\n", index,
                              label.c_str(), status.c_str(),
                              rec.at("error").as_string().c_str());
            } else {
                const json_value& imp = rec.at("impedance");
                char pm[32];
                if (imp.at("has_unity_crossing").as_bool())
                    std::snprintf(pm, sizeof pm, "%6.1f deg",
                                  imp.at("phase_margin_deg").as_number());
                else
                    std::snprintf(pm, sizeof pm, "%9s", "-");
                std::snprintf(line, sizeof line, "%-6zu %-40.40s  %-8s %4d   %9.4g   %s\n",
                              index, label.c_str(),
                              imp.at("stable").as_bool() ? "stable" : "UNSTABLE",
                              static_cast<int>(imp.at("encirclements").as_number()),
                              imp.at("nyquist_margin").as_number(), pm);
            }
            out += line;
        }
        return out;
    }

    out += "corner-farm campaign report, node '" + node + "'\n";
    out += "point  label                                     fn            zeta     est. PM\n";
    out += "-----------------------------------------------------------------------------\n";
    for (const json_value& rec : report.at("records").items()) {
        char line[220];
        const std::size_t index = rec.at("index").as_index();
        const std::string& label = rec.at("label").as_string();
        const std::string& status = rec.at("status").as_string();
        if (status != "ok") {
            std::snprintf(line, sizeof line, "%-6zu %-40.40s  (%s: %.80s)\n", index,
                          label.c_str(), status.c_str(), rec.at("error").as_string().c_str());
        } else if (!rec.at("has_peak").as_bool()) {
            std::snprintf(line, sizeof line, "%-6zu %-40.40s  (no complex-pole peak)\n",
                          index, label.c_str());
        } else {
            std::snprintf(line, sizeof line, "%-6zu %-40.40s  %-12s %7.3f  %7.1f deg\n",
                          index, label.c_str(),
                          spice::format_frequency(rec.at("fn_hz").as_number()).c_str(),
                          rec.at("zeta").as_number(),
                          rec.at("phase_margin_deg").as_number());
        }
        out += line;
    }
    return out;
}

} // namespace acstab::farm
