#include "farm/fault_inject.h"

#include <cerrno>
#include <cstdlib>
#include <ctime>

#include <fcntl.h>
#include <unistd.h>

#include "common/error.h"

namespace acstab::farm {

std::vector<fault_directive> parse_fault_env()
{
    std::vector<fault_directive> out;
    const char* env = std::getenv("ACSTAB_FAULT_INJECT");
    if (env == nullptr || *env == '\0')
        return out;
    std::string text = env;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t comma = text.find(',', start);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string token = text.substr(start, comma - start);
        start = comma + 1;
        if (token.empty())
            continue;
        std::vector<std::string> fields;
        std::size_t fs = 0;
        while (fs <= token.size()) {
            std::size_t colon = token.find(':', fs);
            if (colon == std::string::npos)
                colon = token.size();
            fields.push_back(token.substr(fs, colon - fs));
            fs = colon + 1;
        }
        if (fields.size() < 2)
            throw analysis_error("farm: bad ACSTAB_FAULT_INJECT directive '" + token
                                 + "' (want kind:arg[:seconds][:always])");
        fault_directive d;
        if (fields[0] == "crash")
            d.k = fault_directive::kind::crash;
        else if (fields[0] == "stall")
            d.k = fault_directive::kind::stall;
        else if (fields[0] == "interrupt")
            d.k = fault_directive::kind::interrupt;
        else if (fields[0] == "client-drop")
            d.k = fault_directive::kind::client_drop;
        else if (fields[0] == "slow-reader")
            d.k = fault_directive::kind::slow_reader;
        else if (fields[0] == "mid-frame-kill")
            d.k = fault_directive::kind::mid_frame_kill;
        else
            throw analysis_error("farm: unknown ACSTAB_FAULT_INJECT kind '" + fields[0]
                                 + "' (crash, stall, interrupt, client-drop, "
                                   "slow-reader or mid-frame-kill)");
        char* end = nullptr;
        d.arg = std::strtoul(fields[1].c_str(), &end, 10);
        if (end == fields[1].c_str() || *end != '\0')
            throw analysis_error("farm: bad ACSTAB_FAULT_INJECT index in '" + token + "'");
        for (std::size_t i = 2; i < fields.size(); ++i) {
            if (fields[i] == "always") {
                d.always = true;
            } else if (fields[i] == "once") {
                d.always = false;
            } else {
                d.seconds = std::strtod(fields[i].c_str(), &end);
                if (end == fields[i].c_str() || *end != '\0')
                    throw analysis_error("farm: bad ACSTAB_FAULT_INJECT field '" + fields[i]
                                         + "' in '" + token + "'");
            }
        }
        out.push_back(d);
    }
    return out;
}

bool try_fire_marker(const std::string& dir, const char* kind, std::size_t arg)
{
    const std::string path = dir + "/fault-" + kind + "-" + std::to_string(arg) + ".fired";
    const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd < 0)
        return false;
    ::close(fd);
    return true;
}

void fault_sleep(real seconds)
{
    if (seconds <= 0)
        return;
    timespec ts;
    ts.tv_sec = static_cast<time_t>(seconds);
    ts.tv_nsec = static_cast<long>((seconds - static_cast<real>(ts.tv_sec)) * 1e9);
    while (::nanosleep(&ts, &ts) != 0 && errno == EINTR) { }
}

} // namespace acstab::farm
