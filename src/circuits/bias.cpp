#include "circuits/bias.h"

#include "spice/devices/passive.h"
#include "spice/devices/sources.h"

namespace acstab::circuits {

spice::bjt_model bias_npn_model(real temp_celsius)
{
    spice::bjt_model m;
    m.temp = temp_celsius;
    m.polarity = spice::bjt_polarity::npn;
    m.is = 1e-16;
    m.bf = 150.0;
    m.br = 2.0;
    m.vaf = 80.0;
    m.cje = 0.25e-12;
    m.vje = 0.75;
    m.mje = 0.33;
    m.cjc = 0.15e-12;
    m.vjc = 0.6;
    m.mjc = 0.4;
    m.tf = 0.35e-9;
    m.tr = 10e-9;
    return m;
}

spice::bjt_model bias_pnp_model(real temp_celsius)
{
    // Slow lateral PNP: large tf makes the mirror the loop's weak link.
    spice::bjt_model m;
    m.temp = temp_celsius;
    m.polarity = spice::bjt_polarity::pnp;
    m.is = 1e-16;
    m.bf = 60.0;
    m.br = 4.0;
    m.vaf = 50.0;
    m.cje = 0.3e-12;
    m.vje = 0.75;
    m.mje = 0.33;
    m.cjc = 0.25e-12;
    m.vjc = 0.6;
    m.mjc = 0.4;
    m.tf = 1.2e-9;
    m.tr = 30e-9;
    return m;
}

bias_nodes build_zero_tc_bias(spice::circuit& c, const bias_params& p)
{
    bias_nodes n;
    const spice::node_id vdd = c.node(p.vdd_node);
    const spice::node_id vbe = c.node(n.vbe);
    const spice::node_id mir = c.node(n.mirror);
    const spice::node_id e2 = c.node(n.emitter2);

    spice::bjt_model npn = bias_npn_model(p.temp_celsius);
    spice::bjt_model npn_big = npn;
    npn_big.is = npn.is * p.area_ratio;
    const spice::bjt_model pnp = bias_pnp_model(p.temp_celsius);

    // Core: Q1 diode (Vbe), Q2 with emitter degeneration R2 (Delta-Vbe),
    // Q4 diode + Q3 forming the PNP mirror that equalizes the currents.
    c.add<spice::bjt>("q1", vbe, vbe, spice::ground_node, npn);
    c.add<spice::bjt>("q2", mir, vbe, e2, npn_big);
    c.add<spice::resistor>("r2", e2, spice::ground_node, p.r2);
    c.add<spice::bjt>("q4", mir, mir, vdd, pnp); // diode-connected master
    c.add<spice::bjt>("q3", vbe, mir, vdd, pnp); // mirror slave into Q1
    c.add<spice::resistor>("r1", vbe, spice::ground_node, p.r1);
    c.add<spice::resistor>("rstart", vdd, vbe, p.rstart);

    if (p.cpar_mirror > 0.0)
        c.add<spice::capacitor>("cpar_mir", mir, spice::ground_node, p.cpar_mirror);
    if (p.cpar_vbe > 0.0)
        c.add<spice::capacitor>("cpar_vbe", vbe, spice::ground_node, p.cpar_vbe);

    // Follower-buffered distribution rail: Q7 buffers the mirror voltage
    // through a wiring/ballast resistance into a capacitive net — the
    // classic local ringer the paper's method is built to catch.
    const spice::node_id fb = c.node(n.fol_base);
    const spice::node_id rail = c.node(n.rail);
    c.add<spice::resistor>("rb7", mir, fb, p.rbase);
    c.add<spice::bjt>("q7", vdd, fb, rail, bias_npn_model(p.temp_celsius));
    c.add<spice::resistor>("rpull", rail, spice::ground_node, p.rpull);
    if (p.cpar_rail > 0.0)
        c.add<spice::capacitor>("cpar_rail", rail, spice::ground_node, p.cpar_rail);
    if (p.compensated) {
        const spice::node_id snub = c.node("b_snub");
        c.add<spice::resistor>("rcomp_rail", rail, snub, p.comp_res);
        c.add<spice::capacitor>("ccomp_rail", snub, spice::ground_node, p.comp_cap);
    }

    // Optional mirror output sourcing the reference into another block
    // (2:1 area ratio lifts the core's ~10 uA to the ~20 uA reference the
    // op-amp expects).
    if (!p.out_current_node.empty()) {
        const spice::node_id out = c.node(p.out_current_node);
        spice::bjt_model pnp_out = pnp;
        pnp_out.is = pnp.is * 2.0;
        c.add<spice::bjt>("q6", out, mir, vdd, pnp_out);
    }
    return n;
}

bias_nodes build_standalone_bias(spice::circuit& c, const bias_params& p, real vdd_volts)
{
    const spice::node_id vdd = c.node(p.vdd_node);
    c.add<spice::vsource>("vdd_supply", vdd, spice::ground_node, vdd_volts);
    bias_nodes n = build_zero_tc_bias(c, p);

    // Output branch: NPN mirror slaved to Q1 with a resistive load.
    const spice::node_id out = c.node(n.out);
    const spice::node_id vbe = *c.find_node(n.vbe);
    c.add<spice::bjt>("q5", out, vbe, spice::ground_node,
                      bias_npn_model(p.temp_celsius));
    c.add<spice::resistor>("rload", vdd, out, 100e3);
    return n;
}

} // namespace acstab::circuits
