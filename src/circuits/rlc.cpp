#include "circuits/rlc.h"

#include <cmath>

#include "common/error.h"
#include "spice/devices/controlled.h"
#include "spice/devices/passive.h"
#include "spice/devices/sources.h"

namespace acstab::circuits {

void add_parallel_rlc_tank(spice::circuit& c, const std::string& node, real zeta, real fn_hz,
                           real c_farads)
{
    if (!(zeta > 0.0) || !(fn_hz > 0.0) || !(c_farads > 0.0))
        throw circuit_error("rlc tank: zeta, fn and C must be positive");
    const real wn = to_omega(fn_hz);
    const real l = 1.0 / (wn * wn * c_farads);
    // zeta = 1/(2 R) * sqrt(L/C)  ->  R = sqrt(L/C) / (2 zeta)
    const real r = std::sqrt(l / c_farads) / (2.0 * zeta);
    const spice::node_id n = c.node(node);
    c.add<spice::resistor>("r_" + node, n, spice::ground_node, r);
    c.add<spice::inductor>("l_" + node, n, spice::ground_node, l);
    c.add<spice::capacitor>("c_" + node, n, spice::ground_node, c_farads);
}

two_pole_loop_nodes build_two_pole_loop(spice::circuit& c, const two_pole_loop_spec& spec)
{
    two_pole_loop_nodes nodes;
    const spice::node_id in = c.node(nodes.input);
    const spice::node_id s1 = c.node(nodes.stage1);
    const spice::node_id out = c.node(nodes.output);
    const spice::node_id fb = c.node(nodes.feedback);

    // Stage 1: i = gm1 (v_in - v_fb) into r1 || c1; gain a1 = gm1 r1.
    const real r1 = 10e3;
    const real gm1 = spec.a1 / r1;
    const real c1 = 1.0 / (to_omega(spec.p1_hz) * r1);
    c.add<spice::vccs>("g1", spice::ground_node, s1, in, fb, gm1);
    c.add<spice::resistor>("r1", s1, spice::ground_node, r1);
    c.add<spice::capacitor>("c1", s1, spice::ground_node, c1);

    // Stage 2: i = gm2 v_s1 into r2 || c2; gain a2 = gm2 r2.
    const real r2 = 10e3;
    const real gm2 = spec.a2 / r2;
    const real c2 = 1.0 / (to_omega(spec.p2_hz) * r2);
    c.add<spice::vccs>("g2", spice::ground_node, out, s1, spice::ground_node, gm2);
    c.add<spice::resistor>("r2", out, spice::ground_node, r2);
    c.add<spice::capacitor>("c2", out, spice::ground_node, c2);

    // Feedback wire through the loop-gain probe (plus on the driving side).
    c.add<spice::vsource>(nodes.probe, out, fb, 0.0);
    // A large resistor keeps fb biased even if the probe is manipulated.
    c.add<spice::resistor>("rfb_bleed", fb, spice::ground_node, 1e12);

    c.add<spice::vsource>(nodes.source, in, spice::ground_node,
                          spice::waveform_spec::make_ac(0.0, 1.0));
    return nodes;
}

void build_rc_ladder(spice::circuit& c, std::size_t sections, real r_ohms, real c_farads)
{
    if (sections == 0)
        throw circuit_error("rc ladder: need at least one section");
    spice::node_id prev = c.node("in");
    c.add<spice::vsource>("vin", prev, spice::ground_node,
                          spice::waveform_spec::make_ac(1.0, 1.0));
    for (std::size_t k = 0; k < sections; ++k) {
        const spice::node_id next = c.node("n" + std::to_string(k));
        c.add<spice::resistor>("r" + std::to_string(k), prev, next, r_ohms);
        c.add<spice::capacitor>("c" + std::to_string(k), next, spice::ground_node, c_farads);
        prev = next;
    }
}

} // namespace acstab::circuits
