// The paper's Fig. 5 class of circuit: a self-biased zero-TC current
// reference (BJT beta-multiplier: Delta-Vbe/R2 PTAT current summed with a
// Vbe/R1 CTAT term, PNP mirror on top) with a deliberately under-damped
// local loop in the tens of MHz — the loop the paper's tool uncovers and
// the authors compensate "by adding a 1 pF capacitor at the collector of
// Q3".
#ifndef ACSTAB_CIRCUITS_BIAS_H
#define ACSTAB_CIRCUITS_BIAS_H

#include <string>

#include "spice/circuit.h"
#include "spice/devices/bjt.h"

namespace acstab::circuits {

struct bias_params {
    /// Name of an existing supply node (created if absent by the
    /// standalone builder).
    std::string vdd_node = "vdd";
    /// When non-empty, a PNP mirror output sources the reference current
    /// into this node (used to bias the op-amp).
    std::string out_current_node;
    real temp_celsius = 27.0; ///< device temperature (in-tool TEMP sweep)
    real r1 = 200e3;        ///< Vbe/R1 CTAT branch
    real r2 = 5.4e3;        ///< Delta-Vbe/R2 PTAT degeneration
    real rstart = 500e3;    ///< startup bleed (strong enough to leave the
                            ///< zero-current equilibrium)
    real area_ratio = 8.0;  ///< Q2:Q1 emitter area ratio
    real cpar_mirror = 0.4e-12; ///< wiring parasitic at the PNP mirror node
    real cpar_vbe = 0.2e-12;    ///< wiring parasitic at the Vbe node
    /// Follower-buffered bias rail (the local ringer): Q7 buffers the
    /// mirror rail into a capacitive distribution net.
    real rbase = 5.6e3;       ///< wiring/ballast resistance at Q7's base
    real rpull = 39e3;        ///< follower bias pulldown
    real cpar_rail = 3.3e-12; ///< distribution-net wiring capacitance
    /// The paper damps their local loop with 1 pF at Q3's collector; the
    /// equivalent fix for our follower loop is a series-RC snubber on the
    /// buffered rail (raises the loop's damping ratio past 0.7). Off by
    /// default so the loop rings like the paper's uncompensated circuit.
    bool compensated = false;
    real comp_cap = 10e-12;
    real comp_res = 500.0;
};

struct bias_nodes {
    std::string vbe = "b_vbe";     ///< Q1 base/collector (Vbe node)
    std::string mirror = "b_mir";  ///< PNP mirror base/collector
    std::string emitter2 = "b_e2"; ///< Q2 emitter (top of R2)
    std::string fol_base = "b_fb"; ///< Q7 base behind the ballast
    std::string rail = "b_ref";    ///< follower-buffered bias rail
    std::string out = "b_out";     ///< standalone output branch
};

/// Add the bias core to an existing circuit with a supply on vdd_node.
bias_nodes build_zero_tc_bias(spice::circuit& c, const bias_params& p = {});

/// Standalone Fig. 5 fixture: supply + core + an NPN mirror output branch
/// loaded by a resistor, so every characteristic node exists.
bias_nodes build_standalone_bias(spice::circuit& c, const bias_params& p = {}, real vdd = 5.0);

[[nodiscard]] spice::bjt_model bias_npn_model(real temp_celsius = 27.0);
[[nodiscard]] spice::bjt_model bias_pnp_model(real temp_celsius = 27.0);

} // namespace acstab::circuits

#endif // ACSTAB_CIRCUITS_BIAS_H
