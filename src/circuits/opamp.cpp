#include "circuits/opamp.h"

#include "circuits/bias.h"
#include "spice/devices/passive.h"
#include "spice/devices/sources.h"

namespace acstab::circuits {

spice::mosfet_model opamp_nmos_model()
{
    spice::mosfet_model m;
    m.polarity = spice::mos_polarity::nmos;
    m.vto = 0.7;
    m.kp = 100e-6;
    m.lambda = 0.05;
    m.gamma = 0.45;
    m.phi = 0.65;
    m.cox = 2.3e-3;
    m.cgso = 0.3e-9;
    m.cgdo = 0.3e-9;
    m.cbd = 15e-15;
    m.cbs = 15e-15;
    return m;
}

spice::mosfet_model opamp_pmos_model()
{
    spice::mosfet_model m;
    m.polarity = spice::mos_polarity::pmos;
    m.vto = 0.8;
    m.kp = 40e-6;
    m.lambda = 0.08;
    m.gamma = 0.4;
    m.phi = 0.65;
    m.cox = 2.3e-3;
    m.cgso = 0.3e-9;
    m.cgdo = 0.3e-9;
    m.cbd = 20e-15;
    m.cbs = 20e-15;
    return m;
}

namespace {

    /// Everything common to both configurations: supplies, bias chain, the
    /// two gain stages and the compensation/load network. The inverting
    /// input node is returned for the caller to wire (buffer vs open loop).
    spice::node_id build_core(spice::circuit& c, const opamp_params& p, const opamp_nodes& n)
    {
        const spice::node_id vdd = c.node("vdd");
        const spice::node_id out = c.node(n.out);
        const spice::node_id stg1 = c.node(n.stg1);
        const spice::node_id mirror = c.node(n.mirror);
        const spice::node_id tail = c.node(n.tail);
        const spice::node_id comp = c.node(n.comp);
        const spice::node_id nbias = c.node(n.nbias);
        const spice::node_id inp = c.node(n.inp);
        const spice::node_id inm = c.node("inm");

        const spice::mosfet_model nmos = opamp_nmos_model();
        const spice::mosfet_model pmos = opamp_pmos_model();

        c.add<spice::vsource>("vdd_supply", vdd, spice::ground_node, p.vdd);

        // Bias reference: ideal source or the Fig. 5 zero-TC generator.
        if (p.use_bias_generator) {
            bias_params bp;
            bp.vdd_node = "vdd";
            bp.out_current_node = n.nbias;
            build_zero_tc_bias(c, bp);
        } else {
            c.add<spice::isource>("ibias_ref", vdd, nbias, p.ibias);
        }
        // Diode-connected bias mirror master.
        c.add<spice::mosfet>("m8", nbias, nbias, spice::ground_node, spice::ground_node, nmos,
                             p.w5, p.l5);

        // Differential pair with PMOS mirror load. The second stage adds
        // one more inversion, so the mirror-side gate (M1) is the
        // inverting input of the complete amplifier.
        c.add<spice::mosfet>("m1", mirror, inm, tail, spice::ground_node, nmos, p.w1, p.l1);
        c.add<spice::mosfet>("m2", stg1, inp, tail, spice::ground_node, nmos, p.w1, p.l1);
        c.add<spice::mosfet>("m3", mirror, mirror, vdd, vdd, pmos, p.w3, p.l3);
        c.add<spice::mosfet>("m4", stg1, mirror, vdd, vdd, pmos, p.w3, p.l3);
        c.add<spice::mosfet>("m5", tail, nbias, spice::ground_node, spice::ground_node, nmos,
                             p.w5, p.l5);

        // Second stage: PMOS common source with NMOS mirror sink.
        c.add<spice::mosfet>("m6", out, stg1, vdd, vdd, pmos, p.w6, p.l6);
        c.add<spice::mosfet>("m7", out, nbias, spice::ground_node, spice::ground_node, nmos,
                             p.w7, p.l7);

        // Miller compensation with nulling resistor, and the load.
        c.add<spice::resistor>("rzero", out, comp, p.rzero);
        c.add<spice::capacitor>("c1", comp, stg1, p.c1);
        c.add<spice::capacitor>("cload", out, spice::ground_node, p.cload);

        return inm;
    }

} // namespace

opamp_nodes build_opamp_buffer(spice::circuit& c, const opamp_params& p)
{
    opamp_nodes n;
    const spice::node_id inm = build_core(c, p, n);
    const spice::node_id out = c.node(n.out);
    const spice::node_id inp = c.node(n.inp);

    // Unity feedback: inverting input tied to the output.
    c.add<spice::resistor>("rfb_short", inm, out, 1.0);

    spice::waveform_spec in_spec = p.step_volts > 0.0
        ? spice::waveform_spec::make_step(p.vcm, p.vcm + p.step_volts, p.step_delay, p.step_rise)
        : spice::waveform_spec::make_dc(p.vcm);
    in_spec.ac_mag = 1.0;
    c.add<spice::vsource>(n.input_source, inp, spice::ground_node, in_spec);
    return n;
}

opamp_nodes build_opamp_open_loop(spice::circuit& c, const opamp_params& p)
{
    opamp_nodes n;
    const spice::node_id inm = build_core(c, p, n);
    const spice::node_id out = c.node(n.out);
    const spice::node_id inp = c.node(n.inp);
    const spice::node_id stim = c.node("stim");

    // DC servo through a huge inductor keeps the buffer bias intact while
    // opening the loop at AC; the stimulus couples through a huge cap.
    c.add<spice::inductor>("lservo", out, inm, 1e6);
    c.add<spice::capacitor>("cstim", stim, inm, 1.0);
    c.add<spice::vsource>("vstim", stim, spice::ground_node,
                          spice::waveform_spec::make_ac(0.0, 1.0));
    c.add<spice::vsource>(n.input_source, inp, spice::ground_node, p.vcm);
    return n;
}

} // namespace acstab::circuits
