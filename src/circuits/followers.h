// Local-instability fixtures the paper's introduction motivates: emitter
// and source followers driving capacitive loads (their inductive output
// impedance resonates with the load), and a current mirror with a
// parasitic-loaded gate node.
#ifndef ACSTAB_CIRCUITS_FOLLOWERS_H
#define ACSTAB_CIRCUITS_FOLLOWERS_H

#include <string>

#include "spice/circuit.h"

namespace acstab::circuits {

struct follower_params {
    real vdd = 5.0;
    real vbias = 2.5;    ///< base/gate DC bias
    real rsource = 10e3; ///< source resistance feeding the base/gate
    real cload = 50e-12; ///< capacitive load at the emitter/source
    real ibias = 1e-3;   ///< follower bias current
};

struct follower_nodes {
    std::string input = "f_in";  ///< base/gate node behind rsource
    std::string output = "f_out"; ///< emitter/source node
};

/// NPN emitter follower with source resistance and capacitive load — the
/// textbook local oscillator when rsource and cload are both large.
follower_nodes build_emitter_follower(spice::circuit& c, const follower_params& p = {});

/// NMOS source follower variant.
follower_nodes build_source_follower(spice::circuit& c, const follower_params& p = {});

/// NMOS 1:4 current mirror with explicit gate-node capacitance; the gate
/// node shows a well-damped pole, a negative control for peak detection.
struct mirror_nodes {
    std::string gate = "m_gate";
    std::string out = "m_out";
};
mirror_nodes build_current_mirror(spice::circuit& c, real cgate = 1e-12, real iin = 100e-6);

} // namespace acstab::circuits

#endif // ACSTAB_CIRCUITS_FOLLOWERS_H
