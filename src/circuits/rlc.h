// Analytically tractable fixtures: second-order tanks, behavioral
// two-pole feedback loops and RC ladders. Tests and ablations validate
// the stability plot against these closed-form circuits.
#ifndef ACSTAB_CIRCUITS_RLC_H
#define ACSTAB_CIRCUITS_RLC_H

#include <string>

#include "spice/circuit.h"

namespace acstab::circuits {

/// Parallel RLC tank from `node` to ground with natural frequency fn [Hz]
/// and damping ratio zeta. The node's driving-point impedance is
/// Z(s) = sL / (s^2 LC + sL/R + 1): its stability plot peaks at exactly
/// -1/zeta^2 at fn (the numerator zero at s=0 is filtered out by the
/// double differentiation).
void add_parallel_rlc_tank(spice::circuit& c, const std::string& node, real zeta, real fn_hz,
                           real c_farads = 1e-9);

/// Behavioral two-pole unity-feedback loop built from VCCS stages:
///   L(s) = a1 a2 / ((1 + s/p1)(1 + s/p2)).
/// The feedback wire runs out -> probe (0 V vsource "vprobe") -> fb, so
/// loop-gain analyses can inject at the probe. The closed-loop input is
/// the vsource "vin" driving node "in"; the output node is "out".
struct two_pole_loop_spec {
    real a1 = 100.0;
    real p1_hz = 1e3;
    real a2 = 100.0;
    real p2_hz = 1e6;
};

struct two_pole_loop_nodes {
    std::string input = "in";
    std::string stage1 = "s1";
    std::string output = "out";
    std::string feedback = "fb";
    std::string probe = "vprobe";
    std::string source = "vin";
};

two_pole_loop_nodes build_two_pole_loop(spice::circuit& c, const two_pole_loop_spec& spec);

/// Uniform RC ladder with n sections from node "in" (driven by vsource
/// "vin") to "n<k>" nodes; used by solver-scaling ablations.
void build_rc_ladder(spice::circuit& c, std::size_t sections, real r_ohms = 1e3,
                     real c_farads = 1e-12);

} // namespace acstab::circuits

#endif // ACSTAB_CIRCUITS_RLC_H
