#include "circuits/followers.h"

#include "circuits/bias.h"
#include "circuits/opamp.h"
#include "spice/devices/bjt.h"
#include "spice/devices/mosfet.h"
#include "spice/devices/passive.h"
#include "spice/devices/sources.h"

namespace acstab::circuits {

follower_nodes build_emitter_follower(spice::circuit& c, const follower_params& p)
{
    follower_nodes n;
    const spice::node_id vdd = c.node("vdd");
    const spice::node_id in = c.node(n.input);
    const spice::node_id out = c.node(n.output);

    c.add<spice::vsource>("vdd_supply", vdd, spice::ground_node, p.vdd);
    c.add<spice::vsource>("vbias", c.node("f_src"), spice::ground_node,
                          spice::waveform_spec::make_ac(p.vbias, 1.0));
    c.add<spice::resistor>("rsource", *c.find_node("f_src"), in, p.rsource);

    spice::bjt_model npn = bias_npn_model();
    npn.tf = 0.5e-9;
    c.add<spice::bjt>("qf", vdd, in, out, npn);
    c.add<spice::isource>("iload", out, spice::ground_node, p.ibias);
    c.add<spice::capacitor>("cload", out, spice::ground_node, p.cload);
    return n;
}

follower_nodes build_source_follower(spice::circuit& c, const follower_params& p)
{
    follower_nodes n;
    const spice::node_id vdd = c.node("vdd");
    const spice::node_id in = c.node(n.input);
    const spice::node_id out = c.node(n.output);

    c.add<spice::vsource>("vdd_supply", vdd, spice::ground_node, p.vdd);
    c.add<spice::vsource>("vbias", c.node("f_src"), spice::ground_node,
                          spice::waveform_spec::make_ac(p.vbias, 1.0));
    c.add<spice::resistor>("rsource", *c.find_node("f_src"), in, p.rsource);

    c.add<spice::mosfet>("mf", vdd, in, out, spice::ground_node, opamp_nmos_model(), 200e-6,
                         1e-6);
    c.add<spice::isource>("iload", out, spice::ground_node, p.ibias);
    c.add<spice::capacitor>("cload", out, spice::ground_node, p.cload);
    return n;
}

mirror_nodes build_current_mirror(spice::circuit& c, real cgate, real iin)
{
    mirror_nodes n;
    const spice::node_id vdd = c.node("vdd");
    const spice::node_id gate = c.node(n.gate);
    const spice::node_id out = c.node(n.out);

    c.add<spice::vsource>("vdd_supply", vdd, spice::ground_node, 5.0);
    c.add<spice::isource>("iin", vdd, gate, iin);
    const spice::mosfet_model nmos = opamp_nmos_model();
    c.add<spice::mosfet>("mm1", gate, gate, spice::ground_node, spice::ground_node, nmos,
                         20e-6, 2e-6);
    c.add<spice::mosfet>("mm2", out, gate, spice::ground_node, spice::ground_node, nmos,
                         80e-6, 2e-6);
    c.add<spice::capacitor>("cgate", gate, spice::ground_node, cgate);
    c.add<spice::resistor>("rload", vdd, out, 10e3);
    return n;
}

} // namespace acstab::circuits
