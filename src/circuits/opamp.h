// The paper's Fig. 1 class of circuit: a ~2 MHz two-stage Miller op-amp
// (NMOS input pair, PMOS mirror load, PMOS common-source second stage)
// connected as a unity-gain buffer, with the compensation deliberately
// weak (~20 deg phase margin) exactly as in the paper's example.
//
// The original TI schematic is proprietary; this is a from-scratch design
// reproducing its published figures of merit (DESIGN.md, substitutions).
#ifndef ACSTAB_CIRCUITS_OPAMP_H
#define ACSTAB_CIRCUITS_OPAMP_H

#include <string>

#include "spice/circuit.h"
#include "spice/devices/mosfet.h"

namespace acstab::circuits {

struct opamp_params {
    real vdd = 5.0;
    real vcm = 2.5;       ///< buffer input DC level
    real ibias = 20e-6;   ///< reference current
    real c1 = 1.15e-12;   ///< Miller compensation capacitor (paper's C1)
    real rzero = 650.0;   ///< nulling resistor in series with C1 (rzero)
    real cload = 205e-12; ///< output load capacitor (cload)
    /// Geometry [W, L] in meters.
    real w1 = 20e-6, l1 = 10e-6;   ///< input pair
    real w3 = 10e-6, l3 = 1e-6;    ///< PMOS mirror load
    real w5 = 20e-6, l5 = 2e-6;    ///< tail / bias mirror unit
    real w6 = 290e-6, l6 = 1e-6;   ///< second-stage PMOS
    real w7 = 100e-6, l7 = 2e-6;   ///< output sink (5x bias mirror)
    /// Use the BJT zero-TC bias generator (Fig. 5) instead of an ideal
    /// current source for ibias — the paper's full circuit, whose
    /// all-nodes report shows both the main loop and the bias loops.
    bool use_bias_generator = true;
    /// Small differential step on the buffer input for transient runs.
    real step_volts = 0.0;
    real step_delay = 1e-6;
    real step_rise = 10e-9;
};

struct opamp_nodes {
    std::string out = "out";        ///< buffer output
    std::string stg1 = "net052";    ///< first-stage output / M6 gate
    std::string mirror = "net136";  ///< PMOS mirror gate node
    std::string tail = "net138";    ///< differential-pair tail
    std::string comp = "net99";     ///< rzero/C1 junction
    std::string nbias = "nbias";    ///< NMOS bias mirror gate
    std::string inp = "inp";        ///< non-inverting input (driven)
    std::string input_source = "vinp";
};

/// Unity-gain buffer (paper Fig. 1). The input source carries AC 1 and,
/// when step_volts > 0, a rising step for Fig. 2 transients.
opamp_nodes build_opamp_buffer(spice::circuit& c, const opamp_params& p = {});

/// Open-loop variant for the Fig. 3 baseline: the feedback runs through a
/// huge inductor (DC servo) and the inverting input is driven through a
/// huge capacitor by the AC source "vstim", so V(out)/V(stim) = -A(s) and
/// the buffer loop gain is A(s).
opamp_nodes build_opamp_open_loop(spice::circuit& c, const opamp_params& p = {});

/// Shared device models.
[[nodiscard]] spice::mosfet_model opamp_nmos_model();
[[nodiscard]] spice::mosfet_model opamp_pmos_model();

} // namespace acstab::circuits

#endif // ACSTAB_CIRCUITS_OPAMP_H
