// Full walkthrough of the paper's experiment (sections 3-4) on the
// Fig. 1-class op-amp buffer:
//   1. traditional open-loop Bode analysis (Fig. 3),
//   2. traditional transient step overshoot (Fig. 2),
//   3. the stability plot at the output node (Fig. 4),
//   4. the all-nodes report finding every loop (Table 2).
#include <cstdio>

#include "analysis/bode.h"
#include "analysis/pole_zero.h"
#include "analysis/transient_overshoot.h"
#include "circuits/opamp.h"
#include "core/analyzer.h"
#include "core/ascii_plot.h"
#include "core/report.h"
#include "core/second_order.h"
#include "numeric/interpolation.h"
#include "spice/dc_analysis.h"
#include "spice/units.h"

int main()
{
    using namespace acstab;

    // ---- 1. Open-loop gain/phase (the traditional method, Fig. 3) ----
    {
        spice::circuit c;
        const circuits::opamp_nodes n = circuits::build_opamp_open_loop(c);
        const std::vector<real> freqs = numeric::log_space(1e2, 1e9, 400);
        const analysis::frequency_response fr
            = analysis::measure_response(c, "vstim", n.out, freqs);
        // V(out)/V(stim) = -A(s); the buffer loop gain is +A(s).
        std::vector<cplx> loop(fr.h.size());
        for (std::size_t i = 0; i < loop.size(); ++i)
            loop[i] = -fr.h[i];
        const spice::bode_margins m = spice::margins(freqs, loop);
        std::puts("== Fig. 3 baseline: open-loop gain/phase ==");
        std::printf("  0 dB crossover : %s\n", spice::format_frequency(m.unity_freq_hz).c_str());
        std::printf("  phase margin   : %.1f deg\n", m.phase_margin_deg);
        if (m.has_phase_crossing)
            std::printf("  -180 deg at    : %s (gain margin %.1f dB)\n",
                        spice::format_frequency(m.phase_cross_freq_hz).c_str(),
                        m.gain_margin_db);
    }

    // ---- 2. Step response (the traditional method, Fig. 2) ----
    real measured_overshoot = 0.0;
    {
        spice::circuit c;
        circuits::opamp_params p;
        p.step_volts = 0.01;
        const circuits::opamp_nodes n = circuits::build_opamp_buffer(c, p);
        analysis::step_options so;
        so.tstop = 6e-6;
        const analysis::step_response_metrics sm
            = analysis::measure_step_response(c, n.out, so);
        measured_overshoot = sm.overshoot_pct;
        std::puts("\n== Fig. 2 baseline: small-signal step response ==");
        std::printf("  overshoot      : %.1f %%\n", sm.overshoot_pct);
        std::printf("  ringing freq   : %s\n",
                    spice::format_frequency(sm.ringing_freq_hz).c_str());
        std::printf("  settling (2%%)  : %.3g s\n", sm.settling_time_s);
    }

    // ---- 3+4. The paper's method ----
    {
        spice::circuit c;
        const circuits::opamp_nodes n = circuits::build_opamp_buffer(c);

        core::stability_options opt;
        opt.sweep.fstart = 1e3;
        opt.sweep.fstop = 1e9;
        opt.sweep.points_per_decade = 60;
        core::stability_analyzer analyzer(c, opt);

        std::puts("\n== Fig. 4: stability plot at the output node ==");
        const core::node_stability ns = analyzer.analyze_node(n.out);
        std::fputs(core::format_node_summary(ns).c_str(), stdout);
        std::printf("  predicted overshoot %.1f %% vs measured %.1f %%\n",
                    ns.overshoot_est_pct, measured_overshoot);

        core::ascii_plot_options po;
        po.title = "\nStability plot P(f) at 'out'";
        std::fputs(core::ascii_plot(ns.plot.freq_hz, ns.plot.p, po).c_str(), stdout);

        std::puts("\n== Table 2: all-nodes report ==");
        const core::stability_report report = analyzer.analyze_all_nodes();
        std::fputs(core::format_all_nodes_report(report).c_str(), stdout);

        // Cross-check against the MNA pole analysis.
        std::puts("== Cross-check: complex poles from the (G,C) pencil ==");
        const auto poles
            = analysis::complex_pairs(analysis::circuit_poles(c, analyzer.operating_point()));
        for (const auto& p : poles)
            std::printf("  pole at %-12s zeta = %.3f\n",
                        spice::format_frequency(p.freq_hz).c_str(), p.zeta);
    }
    return 0;
}
