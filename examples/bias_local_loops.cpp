// The paper's Fig. 5 scenario: a zero-TC bias circuit hides a local loop
// near 50 MHz that black-box analysis of the main amplifier never sees.
// The all-nodes stability sweep finds it; the paper's fix — 1 pF at the
// collector of Q3 — damps it. This example shows the report before and
// after the fix.
#include <cstdio>

#include "analysis/pole_zero.h"
#include "circuits/bias.h"
#include "core/analyzer.h"
#include "core/report.h"
#include "core/sweeps.h"
#include "spice/units.h"

namespace {

void run(bool compensated)
{
    using namespace acstab;
    spice::circuit c;
    circuits::bias_params bp;
    bp.compensated = compensated;
    circuits::build_standalone_bias(c, bp);

    core::stability_options opt;
    opt.sweep.fstart = 1e4;
    opt.sweep.fstop = 1e10;
    opt.sweep.points_per_decade = 50;
    core::stability_analyzer analyzer(c, opt);

    std::printf("==== zero-TC bias circuit, %s ====\n",
                compensated ? "with the 1 pF fix at Q3's collector" : "uncompensated");
    const core::stability_report report = analyzer.analyze_all_nodes();
    std::fputs(core::format_all_nodes_report(report).c_str(), stdout);

    const auto poles
        = analysis::complex_pairs(analysis::circuit_poles(c, analyzer.operating_point()));
    std::puts("complex poles (pencil cross-check):");
    for (const auto& p : poles)
        std::printf("  %-12s zeta = %.3f\n", spice::format_frequency(p.freq_hz).c_str(),
                    p.zeta);
    std::puts("");
}

} // namespace

int main()
{
    run(false);
    run(true);

    // The original tool lists "in-tool sweeps (TEMP etc)" as an upcoming
    // feature; here is that feature: the local loop across temperature.
    using namespace acstab;
    std::puts("==== local loop vs temperature (rail node) ====");
    const auto points = core::sweep_stability(
        [](spice::circuit& c, real temp) {
            circuits::bias_params bp;
            bp.temp_celsius = temp;
            const circuits::bias_nodes n = circuits::build_standalone_bias(c, bp);
            return n.rail;
        },
        {-40.0, 0.0, 27.0, 85.0, 125.0});
    std::fputs(core::format_sweep(points, "T [C]").c_str(), stdout);
    return 0;
}
