// Quickstart: probe one node of a known second-order circuit and read the
// loop's damping ratio and phase margin off the stability plot.
//
// A parallel RLC tank with zeta = 0.2 and fn = 1 MHz must show a negative
// stability peak of -1/zeta^2 = -25 at 1 MHz (paper eq. 1.4).
#include <cstdio>

#include "core/analyzer.h"
#include "core/ascii_plot.h"
#include "core/report.h"
#include "circuits/rlc.h"
#include "spice/circuit.h"

int main()
{
    using namespace acstab;

    spice::circuit c;
    circuits::add_parallel_rlc_tank(c, "tank", /*zeta=*/0.2, /*fn_hz=*/1e6);

    core::stability_options opt;
    opt.sweep.fstart = 1e4;
    opt.sweep.fstop = 1e8;
    opt.sweep.points_per_decade = 60;

    core::stability_analyzer analyzer(c, opt);
    const core::node_stability ns = analyzer.analyze_node("tank");

    std::puts("== acstab quickstart: parallel RLC tank, zeta=0.2, fn=1 MHz ==\n");
    std::fputs(core::format_node_summary(ns).c_str(), stdout);

    core::ascii_plot_options plot_opt;
    plot_opt.title = "\nStability plot P(f) at node 'tank'";
    std::fputs(core::ascii_plot(ns.plot.freq_hz, ns.plot.p, plot_opt).c_str(), stdout);

    std::printf("\nExpected: peak = -25 at 1 MHz; measured: %.2f at %.4g Hz\n",
                ns.dominant.value, ns.dominant.freq_hz);
    return 0;
}
