// Compare three ways to judge the same loop — all without breaking it:
//   1. the paper's stability plot (one AC run, any node, no probe),
//   2. a Middlebrook double-injection loop-gain probe (two AC runs,
//      needs a probe element in the loop wire — the "stb" approach),
//   3. the (G,C) pencil eigenvalues (ground truth).
// Swept over the second pole position so the loop walks from comfortable
// to nearly unstable.
#include <cstdio>

#include "analysis/loop_gain.h"
#include "analysis/pole_zero.h"
#include "circuits/rlc.h"
#include "core/analyzer.h"
#include "core/second_order.h"
#include "numeric/interpolation.h"
#include "spice/circuit.h"
#include "spice/units.h"

int main()
{
    using namespace acstab;

    std::puts("p2/p1 ratio sweep of a two-pole unity-feedback loop (a1*a2 = 10000)\n");
    std::puts("p2 [Hz]   | stability plot            | loop-gain probe   | pencil");
    std::puts("          | fn          PM_est  zeta  | fc          PM    | zeta");
    std::puts("-----------------------------------------------------------------------");

    for (const real p2 : {3e4, 1e5, 3e5, 1e6, 3e6}) {
        spice::circuit c;
        circuits::two_pole_loop_spec spec;
        spec.p1_hz = 1e3;
        spec.p2_hz = p2;
        const circuits::two_pole_loop_nodes nodes = circuits::build_two_pole_loop(c, spec);

        core::stability_options opt;
        opt.sweep.fstart = 1e2;
        opt.sweep.fstop = 1e9;
        opt.sweep.points_per_decade = 50;
        core::stability_analyzer an(c, opt);
        const core::node_stability ns = an.analyze_node(nodes.output);

        const std::vector<real> freqs = numeric::log_space(1e2, 1e9, 300);
        const analysis::loop_gain_result lg
            = analysis::measure_loop_gain(c, nodes.probe, freqs);

        analysis::pole dom;
        const bool has_pole = analysis::dominant_complex_pole(
            analysis::circuit_poles(c, an.operating_point()), dom);

        char stab[48] = "no peak (well damped)     ";
        if (ns.has_peak && ns.is_underdamped)
            std::snprintf(stab, sizeof stab, "%-11s %5.1f  %5.3f",
                          spice::format_frequency(ns.dominant.freq_hz).c_str(),
                          ns.phase_margin_est_deg, ns.zeta);
        std::printf("%-9s | %s | %-11s %5.1f | %s\n",
                    spice::format_engineering(p2).c_str(), stab,
                    spice::format_frequency(lg.margins.unity_freq_hz).c_str(),
                    lg.margins.phase_margin_deg,
                    has_pole ? spice::format_engineering(dom.zeta, 3).c_str() : "-");
    }

    std::puts("\nReading: as p2 falls toward the crossover the loop loses phase margin;");
    std::puts("the stability plot, the probe, and the eigenvalues tell the same story,");
    std::puts("but only the stability plot needed neither a probe element nor a second");
    std::puts("run — it can be applied to every node of a full chip netlist.");
    return 0;
}
