// A5 — large-circuit solver scaling on the generated stress corpus
// (`acstab gen`, src/gen/netlist_gen.h): the PR 6 ablation, extended in
// PR 9 with the supernodal/approx-ordering/pipelined round-2 stack.
//
//   * fill table: L+U nonzeros of the shared symbolic factorization under
//     the column pre-orderings (none / count / amd / amd-approx) on RC
//     ladders and 2-D RC meshes. The mesh is the discriminating workload
//     — every interior column has the same degree, so the count heuristic
//     degenerates to the natural order and fills like n*k while minimum
//     degree stays near n*log n; amd-approx must track exact amd's fill.
//     CI asserts the >= 2x reduction from the amd rows of this table.
//   * phase breakdown ("scaling_phase" rows): wall time of each solver
//     phase in isolation — exact vs approximate minimum-degree ordering,
//     the full symbolic analysis, one numeric refactorization on the
//     column vs the supernodal path, and one 24-RHS batched back-solve
//     on each path (with the blocked-vs-column solution equivalence
//     recorded as max_rel_err). CI's perf-ratio guard reads the
//     refactor_column / refactor_supernodal pair of this table.
//   * sweep ablation: wall time per frequency point of a serial
//     injection sweep under the stacked solver configurations —
//       pr5            count ordering, scalar kernel, cold refactor per
//                      frequency (the PR 5 solver path, the baseline)
//       amd            minimum-degree ordering only
//       amd_simd       + the split real/imag vectorized batch kernel
//       amd_simd_warm  + frequency-coherence warm-started refactorization
//       amdx_simd      approximate minimum degree + SIMD (column path)
//       amdx_sn_simd   + the supernodal/blocked numeric path (the PR 9
//                      default configuration)
//       amdx_sn_pipe   + the pipelined warm start (the next point's
//                      refactorization runs on a pool worker while this
//                      point's batches solve; bit-identical to cold)
//     with each configuration's answers checked against the first
//     configuration run at that size and the warm accept/fallback
//     counters reported. The ablation runs in both right-hand-side
//     regimes because they favor opposite configurations: 24 probes (the
//     all-nodes stability shape — the regime the classic warm start
//     loses; the pipelined variant stays correct here and wins given a
//     spare core, though a core-starved host pays a ~1.1-1.2x
//     contention tax at 8k — see the CI tripwire) and 1 probe (the
//     single-node stability / ac / impedance / loopgain shape). The
//     scalar column modes are skipped above ~4k unknowns in the 24-probe
//     regime (hours of wall clock for a known-overtaken configuration).
//
// Prints tables plus one machine-readable ACSTAB_BENCH_JSON line; the
// committed BENCH_9.json at the repo root is this line's array (see
// README "Benchmarks"). --quick restricts sizes/grids for the CI smoke
// job; this binary registers no google-benchmark cases.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include <memory>

#include "engine/linearized_snapshot.h"
#include "engine/sweep_engine.h"
#include "gen/netlist_gen.h"
#include "numeric/amd_order.h"
#include "numeric/interpolation.h"
#include "numeric/sparse_factor.h"
#include "spice/ac_analysis.h"
#include "spice/circuit.h"
#include "spice/dc_analysis.h"
#include "spice/parser/netlist_parser.h"

namespace {

using namespace acstab;

struct row {
    std::string bench;          ///< "scaling_fill" | "scaling_sweep"
    std::string kind;           ///< "ladder" | "rcmesh"
    std::size_t unknowns = 0;
    std::string mode;           ///< ordering name or sweep configuration
    long long probes = -1;      ///< right-hand sides of the sweep ablation
    long long lu_nnz = -1;      ///< L+U nonzeros of the symbolic pattern
    double ms_per_freq = -1.0;  ///< sweep wall time / frequency count
    long long factors = -1;     ///< cold numeric factorizations
    long long warm_accepts = -1;
    long long warm_fallbacks = -1;
    double max_rel_err = 0.0;   ///< vs the pr5 baseline magnitudes
};

std::vector<row>& results()
{
    static std::vector<row> r;
    return r;
}

void emit_json()
{
    std::fputs("ACSTAB_BENCH_JSON [", stdout);
    for (std::size_t i = 0; i < results().size(); ++i) {
        const row& r = results()[i];
        std::printf("%s{\"bench\":\"%s\",\"kind\":\"%s\",\"unknowns\":%zu,"
                    "\"mode\":\"%s\",\"probes\":%lld,\"lu_nnz\":%lld,\"ms_per_freq\":%.5f,"
                    "\"factors\":%lld,\"warm_accepts\":%lld,\"warm_fallbacks\":%lld,"
                    "\"max_rel_err\":%.3g}",
                    i == 0 ? "" : ",", r.bench.c_str(), r.kind.c_str(), r.unknowns,
                    r.mode.c_str(), r.probes, r.lu_nnz, r.ms_per_freq, r.factors,
                    r.warm_accepts, r.warm_fallbacks, r.max_rel_err);
    }
    std::puts("]");
}

double time_ms(const std::function<void()>& fn)
{
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(stop - start).count();
}

/// One generated workload, parsed and linearized once, shared by the
/// fill table and the sweep ablation.
struct workload {
    std::string kind;
    spice::parsed_netlist net;
    std::vector<real> op;

    workload(const std::string& kind_, std::size_t size)
        : kind(kind_)
    {
        gen::gen_options gopt;
        gopt.size = size;
        net = spice::parse_netlist(gen::generate_netlist(kind, gopt));
        net.ckt.finalize();
        op = spice::dc_operating_point(net.ckt).solution;
    }
};

const char* ordering_name(numeric::column_ordering o)
{
    switch (o) {
    case numeric::column_ordering::none: return "none";
    case numeric::column_ordering::count: return "count";
    case numeric::column_ordering::amd: return "amd";
    case numeric::column_ordering::amd_approx: return "amd-approx";
    }
    return "?";
}

/// L+U nonzero counts of the symbolic pattern under each pre-ordering,
/// on the complex MNA matrix assembled at the band's middle frequency.
void print_fill_table(const std::vector<std::size_t>& sizes)
{
    std::puts("==============================================================================");
    std::puts("A5a — symbolic fill (L+U nonzeros) vs column pre-ordering, generated corpus");
    std::puts("==============================================================================");
    std::puts("kind     unknowns    A nnz      none      count        amd amd-approx  amd/cnt");
    std::puts("------------------------------------------------------------------------------");
    for (const std::string kind : {"ladder", "rcmesh"}) {
        for (const std::size_t size : sizes) {
            workload w(kind, size);
            const engine::linearized_snapshot snap(w.net.ckt, w.op, {});
            numeric::csc_matrix<cplx> work = snap.make_workspace();
            snap.assemble(to_omega(1e6), work);
            std::size_t nnz[4] = {0, 0, 0, 0};
            for (const auto o : {numeric::column_ordering::none,
                                 numeric::column_ordering::count,
                                 numeric::column_ordering::amd,
                                 numeric::column_ordering::amd_approx}) {
                numeric::lu_options lopt;
                lopt.ordering = o;
                const numeric::symbolic_lu<cplx> sym(work, lopt);
                nnz[static_cast<int>(o)] = sym.lower_nnz() + sym.upper_nnz();
                results().push_back({"scaling_fill", kind, snap.size(), ordering_name(o), -1,
                                     static_cast<long long>(nnz[static_cast<int>(o)])});
            }
            std::printf("%-8s %8zu %8zu  %8zu   %8zu   %8zu   %8zu   %5.2fx\n", kind.c_str(),
                        snap.size(), work.nnz(), nnz[0], nnz[1], nnz[2], nnz[3],
                        static_cast<double>(nnz[1]) / static_cast<double>(nnz[2]));
        }
    }
    std::puts("");
}

/// Wall time of each solver phase in isolation — ordering (exact vs
/// approximate minimum degree), full symbolic analysis, one numeric
/// refactorization and one 24-RHS batched back-solve on the column and
/// the supernodal paths — plus the blocked-vs-column solution agreement.
void print_phase_breakdown(const std::vector<std::size_t>& sizes, int repeats)
{
    std::puts("==============================================================================");
    std::puts("A5d — per-phase wall time [ms], column vs supernodal numeric paths");
    std::puts("==============================================================================");
    std::puts("kind     unknowns  order_amd  order_amdx  symbolic  refac_col  refac_sn  "
              "solve24_col  solve24_sn  sn err");
    std::puts("------------------------------------------------------------------------------");
    for (const std::string kind : {"ladder", "rcmesh"}) {
        for (const std::size_t size : sizes) {
            workload w(kind, size);
            const engine::linearized_snapshot snap(w.net.ckt, w.op, {});
            const std::size_t n = snap.size();
            numeric::csc_matrix<cplx> work = snap.make_workspace();
            snap.assemble(to_omega(1e6), work);
            const int reps = size > 4000 ? std::max(1, repeats / 2) : repeats;

            const auto best_of = [reps](const std::function<void()>& fn) {
                double ms = 1e300;
                for (int rep = 0; rep < reps; ++rep)
                    ms = std::min(ms, time_ms(fn));
                return ms;
            };

            std::vector<std::size_t> order;
            const double ms_amd = best_of([&] {
                order = numeric::minimum_degree_order(n, work.col_ptr(), work.row_idx());
            });
            const double ms_amdx = best_of([&] {
                order = numeric::approx_minimum_degree_order(n, work.col_ptr(), work.row_idx());
            });

            numeric::lu_options lopt;
            lopt.ordering = numeric::column_ordering::amd_approx;
            std::shared_ptr<const numeric::symbolic_lu<cplx>> sym;
            const double ms_sym = best_of([&] {
                sym = std::make_shared<const numeric::symbolic_lu<cplx>>(work, lopt);
            });

            numeric::numeric_lu<cplx> col(sym);
            col.set_batch_kernel(numeric::batch_kernel::simd);
            numeric::numeric_lu<cplx> blk(sym);
            blk.set_batch_kernel(numeric::batch_kernel::simd);
            blk.set_supernodal(true);
            col.refactor(work); // prime allocations outside the timed region
            blk.refactor(work);
            const double ms_refac_col = best_of([&] { col.refactor(work); });
            const double ms_refac_sn = best_of([&] { blk.refactor(work); });

            constexpr std::size_t nrhs = 24;
            std::vector<std::vector<cplx>> rhs(nrhs, std::vector<cplx>(n, cplx{}));
            for (std::size_t r = 0; r < nrhs; ++r)
                rhs[r][(r * 31) % n] = cplx{1.0, 0.0};
            std::vector<const cplx*> cols;
            for (const auto& b : rhs)
                cols.push_back(b.data());
            std::vector<cplx> xc(n * nrhs);
            std::vector<cplx> xb(n * nrhs);
            const double ms_solve_col = best_of([&] {
                col.solve_batch(cols.data(), nrhs, xc.data());
            });
            const double ms_solve_sn = best_of([&] {
                blk.solve_batch(cols.data(), nrhs, xb.data());
            });
            double err = 0.0;
            for (std::size_t i = 0; i < xc.size(); ++i) {
                const double mag = std::max(std::abs(xc[i]), std::abs(xb[i]));
                if (mag > 1e-30)
                    err = std::max(err, std::abs(xc[i] - xb[i]) / mag);
            }

            std::printf("%-8s %8zu   %8.2f    %8.2f  %8.2f   %8.2f  %8.2f     %8.3f    "
                        "%8.3f  %.2g\n",
                        kind.c_str(), n, ms_amd, ms_amdx, ms_sym, ms_refac_col, ms_refac_sn,
                        ms_solve_col, ms_solve_sn, err);
            const auto phase_row = [&](const char* mode, double ms, long long probes,
                                       double rel_err) {
                results().push_back({"scaling_phase", kind, n, mode, probes, -1, ms, -1, -1,
                                     -1, rel_err});
            };
            phase_row("order_amd", ms_amd, -1, 0.0);
            phase_row("order_amd_approx", ms_amdx, -1, 0.0);
            phase_row("symbolic", ms_sym, -1, 0.0);
            phase_row("refactor_column", ms_refac_col, -1, 0.0);
            phase_row("refactor_supernodal", ms_refac_sn, -1, 0.0);
            phase_row("solve24_column", ms_solve_col, 24, 0.0);
            phase_row("solve24_supernodal", ms_solve_sn, 24, err);
        }
    }
    std::puts("");
}

struct sweep_mode {
    const char* name;
    engine::solver_tuning tuning;
    /// Skip this configuration above ~4k unknowns (the scalar column
    /// modes: hours of wall clock for a known-overtaken path).
    bool skip_large = false;
};

engine::solver_tuning make_tuning(numeric::column_ordering ordering, bool simd, bool warm,
                                  bool supernodal, bool pipeline)
{
    engine::solver_tuning t;
    t.ordering = ordering;
    t.simd = simd;
    t.warm_start = warm;
    t.supernodal = supernodal;
    t.warm_pipeline = pipeline;
    return t;
}

/// Serial batched injection sweep (the all-nodes stability shape: one
/// unit-current stimulus per probed node) under one solver configuration.
/// magnitude[ri][fi] of the response at the injected node.
std::vector<std::vector<real>> run_sweep(const workload& w,
                                         const engine::linearized_snapshot& snap,
                                         const std::vector<real>& freqs,
                                         const std::vector<engine::sweep_engine::injection>& inj,
                                         const engine::solver_tuning& tuning,
                                         engine::sweep_stats* stats)
{
    engine::sweep_engine_options eopt;
    eopt.threads = 1;
    eopt.tuning = tuning;
    eopt.stats = stats;
    std::vector<std::vector<real>> mag(inj.size(), std::vector<real>(freqs.size(), 0.0));
    engine::sweep_engine(eopt).run_injections(
        snap, freqs, inj,
        [&mag, &inj](std::size_t fi, std::size_t ri, std::span<const cplx> sol) {
            mag[ri][fi] = std::abs(sol[inj[ri].index]);
        });
    return mag;
}

double max_rel_err(const std::vector<std::vector<real>>& a,
                   const std::vector<std::vector<real>>& b)
{
    double worst = 0.0;
    for (std::size_t k = 0; k < a.size(); ++k)
        for (std::size_t f = 0; f < a[k].size(); ++f) {
            const double scale = std::max({std::fabs(a[k][f]), std::fabs(b[k][f]), 1e-30});
            worst = std::max(worst, std::fabs(a[k][f] - b[k][f]) / scale);
        }
    return worst;
}

/// Time per frequency point of the four solver configurations, serial,
/// on a dense enough grid (40/decade) that neighboring points fall
/// inside the warm-start eligibility window (ratio 1.059 < 1.1).
void print_sweep_ablation(const char* title, std::size_t nprobes,
                          const std::vector<std::size_t>& sizes, int repeats)
{
    std::puts("==============================================================================");
    std::printf("%s\n", title);
    std::puts("      pr5 = count ordering + scalar kernel + cold refactor per frequency");
    std::puts("==============================================================================");
    std::puts("kind     unknowns  mode            ms/freq   speedup   cold   warm   max err");
    std::puts("------------------------------------------------------------------------------");

    using co = numeric::column_ordering;
    const std::vector<sweep_mode> modes = {
        {"pr5", make_tuning(co::count, false, false, false, false), true},
        {"amd", make_tuning(co::amd, false, false, false, false), true},
        {"amd_simd", make_tuning(co::amd, true, false, false, false)},
        {"amd_simd_warm", make_tuning(co::amd, true, true, false, false)},
        {"amdx_simd", make_tuning(co::amd_approx, true, false, false, false)},
        {"amdx_sn_simd", make_tuning(co::amd_approx, true, false, true, false)},
        {"amdx_sn_pipe", make_tuning(co::amd_approx, true, false, true, true)},
    };
    const std::vector<real> freqs = numeric::log_grid(1e4, 1e7, 40);

    for (const std::string kind : {"ladder", "rcmesh"}) {
        for (const std::size_t size : sizes) {
            workload w(kind, size);
            engine::snapshot_options sopt;
            sopt.gshunt = 1e-9;
            sopt.zero_all_sources = true;
            const engine::linearized_snapshot snap(w.net.ckt, w.op, sopt);

            // Unit-current probes spread evenly over the non-forced nodes
            // (the stability sweeps' stimulus shape, bounded so the
            // per-frequency batch cost stays comparable across sizes).
            const std::vector<bool> forced = w.net.ckt.source_forced_nodes();
            std::vector<engine::sweep_engine::injection> inj;
            const std::size_t nodes = w.net.ckt.node_count();
            const std::size_t stride = std::max<std::size_t>(1, nodes / (nprobes + 1));
            for (std::size_t k = 0; k < nodes && inj.size() < nprobes; k += stride)
                if (!forced[k])
                    inj.push_back({k, cplx{1.0, 0.0}});

            std::vector<std::vector<real>> baseline;
            double pr5_ms = 0.0;
            // Above ~4k unknowns a single pass is already seconds long and
            // far above timer noise; best-of-N only matters for the small
            // fast cases.
            const int reps = size > 4000 ? 1 : repeats;
            for (const sweep_mode& m : modes) {
                if (m.skip_large && nprobes > 1 && size > 4000)
                    continue;
                engine::sweep_stats stats;
                std::vector<std::vector<real>> mag;
                double ms = 1e300;
                for (int rep = 0; rep < reps; ++rep) {
                    engine::sweep_stats fresh;
                    ms = std::min(ms, time_ms([&] {
                        mag = run_sweep(w, snap, freqs, inj, m.tuning, &fresh);
                    }));
                    if (rep + 1 == reps) {
                        stats.cold_factors = fresh.cold_factors.load();
                        stats.warm_accepts = fresh.warm_accepts.load();
                        stats.warm_fallbacks = fresh.warm_fallbacks.load();
                    }
                }
                const double per_freq = ms / static_cast<double>(freqs.size());
                if (baseline.empty()) {
                    baseline = mag;
                    pr5_ms = ms;
                }
                const double err = max_rel_err(baseline, mag);
                std::printf("%-8s %8zu  %-14s %8.4f   %6.2fx  %5zu  %5zu   %.2g\n",
                            kind.c_str(), snap.size(), m.name, per_freq, pr5_ms / ms,
                            stats.cold_factors.load(), stats.warm_accepts.load(), err);
                results().push_back({"scaling_sweep", kind, snap.size(), m.name,
                                     static_cast<long long>(inj.size()), -1, per_freq,
                                     static_cast<long long>(stats.cold_factors.load()),
                                     static_cast<long long>(stats.warm_accepts.load()),
                                     static_cast<long long>(stats.warm_fallbacks.load()), err});
            }
        }
    }
    std::puts("");
}

} // namespace

int main(int argc, char** argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;

    const char* title24 = "A5b — batched sweep, ms per frequency point (serial, 24 probes, "
                          "40 ppd)";
    const char* title1 = "A5c — single-probe sweep, ms per frequency point (serial, 1 probe, "
                         "40 ppd)";
    if (quick) {
        // CI smoke: one ~2k-unknown point per kind, single timing pass,
        // plus the 8k point the supernodal and pipelined perf guards
        // read (the scalar column modes are skipped there, so it stays
        // within the job's minutes budget).
        print_fill_table({2048});
        print_phase_breakdown({2048, 8192}, 1);
        print_sweep_ablation(title24, 24, {2048, 8192}, 1);
        print_sweep_ablation(title1, 1, {2048}, 1);
    } else {
        print_fill_table({512, 2048, 8192});
        print_phase_breakdown({512, 2048, 8192}, 3);
        print_sweep_ablation(title24, 24, {512, 2048, 8192}, 3);
        print_sweep_ablation(title1, 1, {512, 2048, 8192}, 3);
    }
    emit_json();
    return 0;
}
